//! Parameterized scenario families: grid/sweep expansion.
//!
//! A *family file* holds one base scenario plus a list of axes, each a
//! dotted parameter path and a list of values:
//!
//! ```json
//! {
//!   "base": { ... any scenario ... },
//!   "axes": [
//!     { "path": "campus.gnb_sites", "values": [2, 4, 6, 9] },
//!     { "path": "loads.nr", "values": [0.05, 0.3] }
//!   ]
//! }
//! ```
//!
//! [`expand`] takes the cartesian product of the axes (file order,
//! last axis fastest) and yields one scenario per grid point, its name
//! suffixed with the axis settings (`paper_campus_gnb_sites_4_nr_0p3`)
//! so every variant is a distinct campaign job with its own derived
//! seed. Expansion is pure data → data; `scen expand` writes each
//! variant as a canonical scenario file.

use crate::parse::{scenario_from_value, ScenarioError};
use crate::spec::{ScenarioSpec, SurveySpec, WorkloadSpec};
use fiveg_obs::{parse_json, JsonValue};

/// One sweep axis: a parameter path and the values it takes.
#[derive(Debug, Clone, PartialEq)]
pub struct Axis {
    /// Dotted parameter path, e.g. `campus.gnb_sites`.
    pub path: String,
    /// Values in sweep order.
    pub values: Vec<f64>,
}

/// A parsed family file: the base scenario plus sweep axes.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySpec {
    /// The scenario every variant starts from.
    pub base: ScenarioSpec,
    /// Sweep axes, in file order.
    pub axes: Vec<Axis>,
}

/// The numeric parameter paths [`set_path`] understands.
pub const PATHS: &[&str] = &[
    "campus.width_m",
    "campus.height_m",
    "campus.enb_sites",
    "campus.gnb_sites",
    "campus.concrete_fraction",
    "city.tiles_x",
    "city.tiles_y",
    "city.enb_per_tile",
    "city.gnb_per_tile",
    "city.concrete_fraction",
    "trace.sample",
    "trace.ring",
    "loads.lte",
    "loads.nr",
    "workload.speed_kmh",
    "workload.interval_ms",
    "workload.duration_s",
    "workload.tick_ms",
];

fn as_u32(path: &str, v: f64) -> Result<u32, String> {
    if v.fract() == 0.0 && (0.0..=f64::from(u32::MAX)).contains(&v) {
        Ok(v as u32)
    } else {
        Err(format!("`{path}` needs a non-negative integer, got {v}"))
    }
}

fn as_u64_int(path: &str, v: f64) -> Result<u64, String> {
    if v.fract() == 0.0 && v >= 0.0 && v <= u64::MAX as f64 {
        Ok(v as u64)
    } else {
        Err(format!("`{path}` needs a non-negative integer, got {v}"))
    }
}

/// Sets one swept parameter on a spec. Unknown paths and workload
/// mismatches (survey path on a fleet scenario) are errors.
pub fn set_path(spec: &mut ScenarioSpec, path: &str, value: f64) -> Result<(), String> {
    match path {
        "campus.width_m" => spec.campus.width_m = value,
        "campus.height_m" => spec.campus.height_m = value,
        "campus.enb_sites" => spec.campus.enb_sites = as_u32(path, value)?,
        "campus.gnb_sites" => spec.campus.gnb_sites = as_u32(path, value)?,
        "campus.concrete_fraction" => spec.campus.concrete_fraction = value,
        "city.tiles_x"
        | "city.tiles_y"
        | "city.enb_per_tile"
        | "city.gnb_per_tile"
        | "city.concrete_fraction" => {
            let Some(city) = &mut spec.city else {
                return Err(format!(
                    "`{path}` needs a `city` block in the base scenario"
                ));
            };
            match path {
                "city.tiles_x" => city.tiles_x = as_u32(path, value)?,
                "city.tiles_y" => city.tiles_y = as_u32(path, value)?,
                "city.enb_per_tile" => city.enb_per_tile = as_u32(path, value)?,
                "city.gnb_per_tile" => city.gnb_per_tile = as_u32(path, value)?,
                _ => city.concrete_fraction = value,
            }
        }
        "trace.sample" | "trace.ring" => {
            let Some(trace) = &mut spec.trace else {
                return Err(format!(
                    "`{path}` needs a `trace` block in the base scenario"
                ));
            };
            match path {
                "trace.sample" => trace.sample = as_u32(path, value)?,
                _ => trace.ring = as_u32(path, value)?,
            }
        }
        "loads.lte" => spec.loads.lte = Some(value),
        "loads.nr" => spec.loads.nr = Some(value),
        "workload.speed_kmh" => match &mut spec.workload {
            WorkloadSpec::Survey(SurveySpec { speed_kmh, .. }) => *speed_kmh = value,
            WorkloadSpec::Fleet(_) => {
                return Err("`workload.speed_kmh` applies to survey workloads only".into())
            }
        },
        "workload.interval_ms" => match &mut spec.workload {
            WorkloadSpec::Survey(SurveySpec { interval_ms, .. }) => {
                *interval_ms = as_u64_int(path, value)?;
            }
            WorkloadSpec::Fleet(_) => {
                return Err("`workload.interval_ms` applies to survey workloads only".into())
            }
        },
        "workload.duration_s" => match &mut spec.workload {
            WorkloadSpec::Fleet(f) => f.duration_s = as_u64_int(path, value)?,
            WorkloadSpec::Survey(_) => {
                return Err("`workload.duration_s` applies to fleet workloads only".into())
            }
        },
        "workload.tick_ms" => match &mut spec.workload {
            WorkloadSpec::Fleet(f) => f.tick_ms = as_u64_int(path, value)?,
            WorkloadSpec::Survey(_) => {
                return Err("`workload.tick_ms` applies to fleet workloads only".into())
            }
        },
        other => {
            return Err(format!(
                "unknown sweep path `{other}` (known: {})",
                PATHS.join(", ")
            ))
        }
    }
    Ok(())
}

/// Renders a swept value as a name-safe token: `0.3` → `0p3`,
/// `-2.5` → `m2p5`, `4.0` → `4`.
pub fn value_token(v: f64) -> String {
    format!("{v}").replace('.', "p").replace('-', "m")
}

/// Last path segment, used in variant names (`campus.gnb_sites` →
/// `gnb_sites`).
fn path_tag(path: &str) -> &str {
    path.rsplit('.').next().unwrap_or(path)
}

/// Expands a family into its variant scenarios (cartesian product,
/// file order, last axis fastest). Every variant is re-validated; the
/// first invalid grid point aborts the expansion with a message naming
/// the variant.
pub fn expand(family: &FamilySpec) -> Result<Vec<ScenarioSpec>, String> {
    let mut total: usize = 1;
    for axis in &family.axes {
        if axis.values.is_empty() {
            return Err(format!("axis `{}` has no values", axis.path));
        }
        total = total.saturating_mul(axis.values.len());
    }
    if total > 4096 {
        return Err(format!(
            "family expands to {total} variants (limit 4096); trim the axes"
        ));
    }
    let mut out = Vec::with_capacity(total);
    // Odometer over the axes: index i counts in mixed radix with the
    // last axis as the least significant digit.
    for i in 0..total {
        let mut spec = family.base.clone();
        let mut name = spec.name.clone();
        let mut rem = i;
        let mut picks = vec![0usize; family.axes.len()];
        for (k, axis) in family.axes.iter().enumerate().rev() {
            picks[k] = rem % axis.values.len();
            rem /= axis.values.len();
        }
        for (axis, &pick) in family.axes.iter().zip(&picks) {
            let v = axis.values[pick];
            set_path(&mut spec, &axis.path, v).map_err(|e| format!("variant {i}: {e}"))?;
            name.push('_');
            name.push_str(path_tag(&axis.path));
            name.push('_');
            name.push_str(&value_token(v));
        }
        spec.name = name;
        spec.validate()
            .map_err(|e| format!("variant `{}` is invalid: {e}", spec.name))?;
        out.push(spec);
    }
    Ok(out)
}

/// Parses a family file. `file` is the display name for errors.
pub fn parse_family(src: &str, file: &str) -> Result<FamilySpec, ScenarioError> {
    let err = |message: String| ScenarioError {
        file: file.to_string(),
        line: 0,
        message,
    };
    let v = parse_json(src).map_err(|e| ScenarioError {
        file: file.to_string(),
        line: 1 + src.as_bytes()[..e.offset.min(src.len())]
            .iter()
            .filter(|&&b| b == b'\n')
            .count(),
        message: e.message,
    })?;
    let map = v
        .as_object()
        .ok_or_else(|| err("family file must be a JSON object".into()))?;
    for key in map.keys() {
        if key != "base" && key != "axes" {
            return Err(err(format!(
                "unknown key `{key}` in family file (allowed: base, axes)"
            )));
        }
    }
    let base_v = map
        .get("base")
        .ok_or_else(|| err("family file is missing required key `base`".into()))?;
    let base = scenario_from_value(base_v, src, file)?;
    let axes_v = map
        .get("axes")
        .ok_or_else(|| err("family file is missing required key `axes`".into()))?;
    let JsonValue::Array(items) = axes_v else {
        return Err(err("`axes` must be an array".into()));
    };
    let mut axes = Vec::with_capacity(items.len());
    for (i, item) in items.iter().enumerate() {
        let amap = item
            .as_object()
            .ok_or_else(|| err(format!("axes[{i}] must be an object")))?;
        for key in amap.keys() {
            if key != "path" && key != "values" {
                return Err(err(format!(
                    "unknown key `{key}` in axes[{i}] (allowed: path, values)"
                )));
            }
        }
        let path = amap
            .get("path")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| err(format!("axes[{i}] needs a string `path`")))?
            .to_string();
        if !PATHS.contains(&path.as_str()) {
            return Err(err(format!(
                "axes[{i}]: unknown sweep path `{path}` (known: {})",
                PATHS.join(", ")
            )));
        }
        let values_v = amap
            .get("values")
            .ok_or_else(|| err(format!("axes[{i}] needs a `values` array")))?;
        let JsonValue::Array(value_items) = values_v else {
            return Err(err(format!("axes[{i}].values must be an array")));
        };
        let mut values = Vec::with_capacity(value_items.len());
        for v in value_items {
            values.push(
                v.as_f64()
                    .ok_or_else(|| err(format!("axes[{i}].values must all be numbers")))?,
            );
        }
        axes.push(Axis { path, values });
    }
    Ok(FamilySpec { base, axes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{CampusSpec, LoadSpec};

    fn base() -> ScenarioSpec {
        ScenarioSpec {
            name: "sweep".into(),
            description: String::new(),
            campus: CampusSpec::default(),
            city: None,
            trace: None,
            loads: LoadSpec::default(),
            workload: WorkloadSpec::Survey(SurveySpec::default()),
            faults: Vec::new(),
        }
    }

    #[test]
    fn expand_is_a_cartesian_product_in_order() {
        let family = FamilySpec {
            base: base(),
            axes: vec![
                Axis {
                    path: "campus.gnb_sites".into(),
                    values: vec![2.0, 6.0],
                },
                Axis {
                    path: "loads.nr".into(),
                    values: vec![0.05, 0.3],
                },
            ],
        };
        let variants = expand(&family).unwrap();
        assert_eq!(variants.len(), 4);
        let names: Vec<&str> = variants.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            [
                "sweep_gnb_sites_2_nr_0p05",
                "sweep_gnb_sites_2_nr_0p3",
                "sweep_gnb_sites_6_nr_0p05",
                "sweep_gnb_sites_6_nr_0p3",
            ]
        );
        assert_eq!(variants[0].campus.gnb_sites, 2);
        assert_eq!(variants[3].campus.gnb_sites, 6);
        assert_eq!(variants[3].loads.nr, Some(0.3));
    }

    #[test]
    fn invalid_grid_points_are_named() {
        let family = FamilySpec {
            base: base(),
            axes: vec![Axis {
                path: "campus.gnb_sites".into(),
                values: vec![99.0], // > enb_sites → validate() fails
            }],
        };
        let e = expand(&family).unwrap_err();
        assert!(e.contains("sweep_gnb_sites_99"), "{e}");
        assert!(e.contains("gnb_sites"), "{e}");
    }

    #[test]
    fn workload_mismatched_paths_fail() {
        let mut spec = base();
        assert!(set_path(&mut spec, "workload.duration_s", 60.0)
            .unwrap_err()
            .contains("fleet workloads only"));
        assert!(set_path(&mut spec, "bogus.path", 1.0)
            .unwrap_err()
            .contains("unknown sweep path"));
        assert!(set_path(&mut spec, "campus.enb_sites", 2.5)
            .unwrap_err()
            .contains("integer"));
    }

    #[test]
    fn family_file_parses_and_expands() {
        let src = r#"{
  "base": {
    "name": "density",
    "workload": { "kind": "survey" }
  },
  "axes": [
    { "path": "campus.gnb_sites", "values": [2, 4] }
  ]
}"#;
        let family = parse_family(src, "fam.json").unwrap();
        assert_eq!(family.base.name, "density");
        let variants = expand(&family).unwrap();
        assert_eq!(variants.len(), 2);
        assert_eq!(variants[1].name, "density_gnb_sites_4");
    }

    #[test]
    fn family_file_rejects_unknown_keys_and_paths() {
        let src = r#"{ "base": { "name": "x", "workload": { "kind": "survey" } },
                       "axes": [ { "path": "campus.magic", "values": [1] } ] }"#;
        let e = parse_family(src, "fam.json").unwrap_err();
        assert!(
            e.message.contains("unknown sweep path `campus.magic`"),
            "{e}"
        );

        let src = r#"{ "base": { "name": "x", "workload": { "kind": "survey" } },
                       "axes": [], "extra": 1 }"#;
        let e = parse_family(src, "fam.json").unwrap_err();
        assert!(e.message.contains("unknown key `extra`"), "{e}");
    }

    #[test]
    fn value_tokens_are_name_safe() {
        assert_eq!(value_token(0.3), "0p3");
        assert_eq!(value_token(4.0), "4");
        assert_eq!(value_token(-2.5), "m2p5");
    }
}
