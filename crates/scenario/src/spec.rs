//! The scenario data model.
//!
//! A [`ScenarioSpec`] is the in-memory form of one scenario file: which
//! campus to generate, what the interference loads look like, what the
//! workload is (a road survey or a UE fleet with mobility models,
//! arrival processes and per-group applications), and a schedule of
//! fault events injected at fixed sim times.
//!
//! The types here are plain data — no simulation state. `fiveg-core`
//! interprets a spec into a running scenario; this crate only defines,
//! parses, validates and emits it.

/// Campus-generation overrides. Defaults reproduce the paper's campus
/// (500 × 920 m, 13 eNB sites, 6 co-sited gNB sites).
#[derive(Debug, Clone, PartialEq)]
pub struct CampusSpec {
    /// Campus width (east-west), metres.
    pub width_m: f64,
    /// Campus height (north-south), metres.
    pub height_m: f64,
    /// Number of eNB sites.
    pub enb_sites: u32,
    /// Number of gNB sites (must be ≤ `enb_sites`; NSA co-siting).
    pub gnb_sites: u32,
    /// Fraction of concrete (vs brick) buildings.
    pub concrete_fraction: f64,
}

impl Default for CampusSpec {
    fn default() -> Self {
        CampusSpec {
            width_m: 500.0,
            height_m: 920.0,
            enb_sites: 13,
            gnb_sites: 6,
            concrete_fraction: 0.35,
        }
    }
}

/// Procedural-city generation parameters (the `city` block). When
/// present the scenario runs on a generated metro city
/// ([`fiveg_geo::city`]) instead of the single campus block, and the
/// `campus` block is ignored. All fields are concrete after parsing —
/// missing keys resolve against the named preset — so canonical
/// emission is total.
#[derive(Debug, Clone, PartialEq)]
pub struct CityDslSpec {
    /// Generator preset supplying the tile grammar: `dense_urban`,
    /// `rural` or `indoor_hotspot`.
    pub preset: String,
    /// Tiles east-west.
    pub tiles_x: u32,
    /// Tiles north-south.
    pub tiles_y: u32,
    /// LTE eNB sites per tile.
    pub enb_per_tile: u32,
    /// NR gNB sites per tile (≤ `enb_per_tile`; NSA co-siting).
    pub gnb_per_tile: u32,
    /// Fraction of concrete (vs brick) buildings.
    pub concrete_fraction: f64,
}

impl CityDslSpec {
    /// The spec with every field at the preset's defaults, or `None`
    /// for an unknown preset name.
    pub fn from_preset(preset: &str) -> Option<CityDslSpec> {
        let base = fiveg_geo::CitySpec::preset(preset)?;
        Some(CityDslSpec {
            preset: preset.to_string(),
            tiles_x: base.tiles_x as u32,
            tiles_y: base.tiles_y as u32,
            enb_per_tile: base.enb_per_tile as u32,
            gnb_per_tile: base.gnb_per_tile as u32,
            concrete_fraction: base.concrete_fraction,
        })
    }

    /// Resolves to the generator's [`fiveg_geo::CitySpec`]: the preset
    /// supplies the tile grammar (tile size, block lattice, heights),
    /// this spec overrides the swept densities.
    ///
    /// `None` for an unknown preset ([`ScenarioSpec::validate`]
    /// rejects those).
    pub fn to_city_spec(&self) -> Option<fiveg_geo::CitySpec> {
        let mut spec = fiveg_geo::CitySpec::preset(&self.preset)?;
        spec.tiles_x = self.tiles_x as usize;
        spec.tiles_y = self.tiles_y as usize;
        spec.enb_per_tile = self.enb_per_tile as usize;
        spec.gnb_per_tile = self.gnb_per_tile as usize;
        spec.concrete_fraction = self.concrete_fraction;
        Some(spec)
    }
}

/// Event categories the trace recorder understands, in mask-bit order.
/// `shard` (physical shard-message events) is opt-in: it is the one
/// category whose bytes legitimately vary with `FIVEG_SHARDS`.
pub const TRACE_CATEGORIES: &[&str] = &["radio", "fault", "kpi", "cc", "shard"];

/// Trace recording parameters (the `trace` block). Configures the
/// flight recorder when the run is traced (`repro --trace`); without
/// `--trace` the block is inert. All fields are concrete after parsing
/// — missing keys resolve to the recorder defaults — so canonical
/// emission is total.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceDslSpec {
    /// KPI sampling stride: one KPI row every `sample` ticks per UE
    /// (1 = every tick). Sparse event kinds are never sampled down.
    pub sample: u32,
    /// Flight-recorder capacity: last `ring` events kept per category
    /// in ring mode. Ignored by `--trace=full`.
    pub ring: u32,
    /// Recorded event categories, a subset of [`TRACE_CATEGORIES`].
    pub categories: Vec<String>,
}

impl Default for TraceDslSpec {
    fn default() -> Self {
        TraceDslSpec {
            sample: 1,
            ring: 1024,
            // The recorder default: everything except the shard-count
            // dependent `shard` category.
            categories: ["radio", "fault", "kpi", "cc"]
                .iter()
                .map(ToString::to_string)
                .collect(),
        }
    }
}

/// Time-of-day regime selecting the default interference loads
/// (Sec. 4.1: 4G busy by day, the early 5G network nearly empty).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Period {
    /// Daytime busy hour: LTE load 0.5, NR load 0.05.
    Day,
    /// Night: LTE load 0.2, NR load 0.03.
    Night,
}

impl Period {
    /// Stable lowercase name used in scenario files.
    pub fn name(self) -> &'static str {
        match self {
            Period::Day => "day",
            Period::Night => "night",
        }
    }

    /// Default `(lte_load, nr_load)` activity factors for the period.
    pub fn default_loads(self) -> (f64, f64) {
        match self {
            Period::Day => (0.5, 0.05),
            Period::Night => (0.2, 0.03),
        }
    }
}

/// Cell activity factors driving inter-cell interference.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadSpec {
    /// Time-of-day regime providing the defaults.
    pub period: Period,
    /// Explicit LTE activity-factor override, `0..=1`.
    pub lte: Option<f64>,
    /// Explicit NR activity-factor override, `0..=1`.
    pub nr: Option<f64>,
}

impl Default for LoadSpec {
    fn default() -> Self {
        LoadSpec {
            period: Period::Day,
            lte: None,
            nr: None,
        }
    }
}

impl LoadSpec {
    /// Resolves the effective `(lte_load, nr_load)` pair.
    pub fn resolve(&self) -> (f64, f64) {
        let (lte, nr) = self.period.default_loads();
        (self.lte.unwrap_or(lte), self.nr.unwrap_or(nr))
    }
}

/// The workload the scenario runs.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadSpec {
    /// The Sec. 3.1 blanket road survey (walk every road, sample KPIs).
    /// With default parameters this is byte-faithful to the registry's
    /// `table1` job.
    Survey(SurveySpec),
    /// A UE fleet: groups with mobility models, arrival processes and
    /// per-group applications, sampled on a fixed tick.
    Fleet(FleetSpec),
}

/// Road-survey parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SurveySpec {
    /// Walking speed, km/h (paper: 4.5).
    pub speed_kmh: f64,
    /// KPI sampling interval, milliseconds (paper: 1000).
    pub interval_ms: u64,
}

impl Default for SurveySpec {
    fn default() -> Self {
        SurveySpec {
            speed_kmh: 4.5,
            interval_ms: 1000,
        }
    }
}

/// Fleet-workload parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetSpec {
    /// Run length, seconds of sim time.
    pub duration_s: u64,
    /// KPI sampling tick, milliseconds.
    pub tick_ms: u64,
    /// UE groups, in file order.
    pub groups: Vec<UeGroupSpec>,
}

/// One homogeneous UE group.
#[derive(Debug, Clone, PartialEq)]
pub struct UeGroupSpec {
    /// Group name; must be unique within the scenario.
    pub name: String,
    /// Number of UEs.
    pub count: u32,
    /// Radio access technology the group camps on.
    pub tech: TechSpec,
    /// Mobility model.
    pub mobility: MobilitySpec,
    /// Arrival process spreading UE session starts over the run.
    pub arrival: ArrivalSpec,
    /// The application every UE of the group runs.
    pub app: AppSpec,
}

/// Radio access technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TechSpec {
    /// 4G LTE.
    Lte,
    /// 5G NR (NSA).
    Nr,
}

impl TechSpec {
    /// Stable lowercase name used in scenario files.
    pub fn name(self) -> &'static str {
        match self {
            TechSpec::Lte => "lte",
            TechSpec::Nr => "nr",
        }
    }
}

/// Mobility models for fleet UEs.
#[derive(Debug, Clone, PartialEq)]
pub enum MobilitySpec {
    /// Stationary at a random outdoor point.
    Static,
    /// Random waypoint between outdoor points, per-leg speed drawn
    /// uniformly from the range.
    Waypoint {
        /// Minimum leg speed, km/h.
        speed_min_kmh: f64,
        /// Maximum leg speed, km/h.
        speed_max_kmh: f64,
    },
    /// A straight back-and-forth walk between two fixed points.
    Transect {
        /// Start point `(x, y)`, metres.
        from: (f64, f64),
        /// End point `(x, y)`, metres.
        to: (f64, f64),
        /// Speed, km/h.
        speed_kmh: f64,
    },
}

/// Arrival processes: when each UE of a group starts its session,
/// within the run window `[0, duration)`.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalSpec {
    /// Session starts spread uniformly over the run.
    Steady,
    /// Diurnal shape: the run window maps onto one day, arrival density
    /// follows a raised cosine centred at `peak_frac` of the window.
    Diurnal {
        /// Peak position as a fraction of the run window, `0..=1`.
        peak_frac: f64,
    },
    /// Flash crowd: everyone arrives in a short exponential burst.
    FlashCrowd {
        /// Burst start, seconds into the run.
        at_s: f64,
        /// Mean arrival delay after the burst start, seconds.
        spread_s: f64,
    },
}

/// Per-group applications, parameterised by the `fiveg-apps` models.
#[derive(Debug, Clone, PartialEq)]
pub enum AppSpec {
    /// iperf-like full-buffer bulk download.
    Bulk,
    /// Panoramic video telephony at a fixed resolution/scene.
    Video {
        /// Stream resolution.
        resolution: VideoRes,
        /// Scene dynamics.
        scene: SceneSpec,
    },
    /// Repeated page loads with think time between pages.
    Web {
        /// Page category (sizes and render model follow the paper).
        category: WebCategory,
        /// Mean think time between pages, seconds.
        think_s: f64,
    },
}

impl AppSpec {
    /// Stable kind name used in scenario files and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            AppSpec::Bulk => "bulk",
            AppSpec::Video { .. } => "video",
            AppSpec::Web { .. } => "web",
        }
    }
}

/// Video resolutions (mirrors `fiveg_apps::Resolution`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VideoRes {
    /// 720p panoramic.
    P720,
    /// 1080p panoramic.
    P1080,
    /// 4K panoramic.
    K4,
    /// 5.7K panoramic.
    K57,
}

impl VideoRes {
    /// Stable lowercase name used in scenario files.
    pub fn name(self) -> &'static str {
        match self {
            VideoRes::P720 => "720p",
            VideoRes::P1080 => "1080p",
            VideoRes::K4 => "4k",
            VideoRes::K57 => "5.7k",
        }
    }
}

/// Scene dynamics (mirrors `fiveg_apps::SceneKind`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SceneSpec {
    /// Tripod-style static scene.
    Static,
    /// Constantly moving camera.
    Dynamic,
}

impl SceneSpec {
    /// Stable lowercase name used in scenario files.
    pub fn name(self) -> &'static str {
        match self {
            SceneSpec::Static => "static",
            SceneSpec::Dynamic => "dynamic",
        }
    }
}

/// Web page categories (mirrors `fiveg_apps::PageCategory`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WebCategory {
    /// Search result pages.
    Search,
    /// Image-heavy pages.
    Image,
    /// On-line shopping.
    Shopping,
    /// Map navigation.
    Map,
    /// Video-streaming landing pages.
    Video,
}

impl WebCategory {
    /// Stable lowercase name used in scenario files.
    pub fn name(self) -> &'static str {
        match self {
            WebCategory::Search => "search",
            WebCategory::Image => "image",
            WebCategory::Shopping => "shopping",
            WebCategory::Map => "map",
            WebCategory::Video => "video",
        }
    }
}

/// A fault event injected into the sim over a half-open time window
/// `[start_s, end_s)`.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultSpec {
    /// The listed cells stop serving (and stop being hand-off targets)
    /// for the window — a site power loss.
    CellOutage {
        /// Window start, seconds.
        start_s: f64,
        /// Window end, seconds (exclusive).
        end_s: f64,
        /// Physical cell ids taken down.
        pcis: Vec<u16>,
    },
    /// The shared wireline backhaul degrades to a fixed aggregate
    /// capacity, split equally among active UEs.
    BackhaulBrownout {
        /// Window start, seconds.
        start_s: f64,
        /// Window end, seconds (exclusive).
        end_s: f64,
        /// Aggregate capacity during the window, Mbps.
        capacity_mbps: f64,
    },
    /// The hand-off hysteresis margin is overridden (0 dB produces
    /// ping-pong storms at cell edges).
    HandoffStorm {
        /// Window start, seconds.
        start_s: f64,
        /// Window end, seconds (exclusive).
        end_s: f64,
        /// Hysteresis margin during the window, dB.
        hysteresis_db: f64,
    },
}

impl FaultSpec {
    /// Stable kind name used in scenario files and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            FaultSpec::CellOutage { .. } => "cell_outage",
            FaultSpec::BackhaulBrownout { .. } => "backhaul_brownout",
            FaultSpec::HandoffStorm { .. } => "handoff_storm",
        }
    }

    /// The event window `(start_s, end_s)`.
    pub fn window(&self) -> (f64, f64) {
        match *self {
            FaultSpec::CellOutage { start_s, end_s, .. }
            | FaultSpec::BackhaulBrownout { start_s, end_s, .. }
            | FaultSpec::HandoffStorm { start_s, end_s, .. } => (start_s, end_s),
        }
    }
}

/// One complete scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name: the campaign job name and artifact file stem.
    /// Restricted to `[a-z0-9_]` so artifact paths and derived-seed
    /// inputs stay predictable.
    pub name: String,
    /// Free-text description.
    pub description: String,
    /// Campus generation parameters. Ignored when `city` is present.
    pub campus: CampusSpec,
    /// Procedural-city generation parameters. When present the run
    /// uses a generated metro city instead of the campus block.
    pub city: Option<CityDslSpec>,
    /// Trace-recorder overrides, applied when the run is traced.
    pub trace: Option<TraceDslSpec>,
    /// Interference loads.
    pub loads: LoadSpec,
    /// The workload.
    pub workload: WorkloadSpec,
    /// Fault schedule, in file order.
    pub faults: Vec<FaultSpec>,
}

impl ScenarioSpec {
    /// Semantic validation beyond what parsing enforces. Returns the
    /// first violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty()
            || !self
                .name
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
        {
            return Err(format!(
                "name `{}` must be non-empty and match [a-z0-9_]+",
                self.name
            ));
        }
        if self.campus.gnb_sites > self.campus.enb_sites {
            return Err(format!(
                "campus.gnb_sites ({}) must be <= campus.enb_sites ({}): every gNB co-sits with an eNB",
                self.campus.gnb_sites, self.campus.enb_sites
            ));
        }
        if self.campus.width_m <= 0.0 || self.campus.height_m <= 0.0 {
            return Err("campus dimensions must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.campus.concrete_fraction) {
            return Err("campus.concrete_fraction must be in [0, 1]".into());
        }
        if let Some(city) = &self.city {
            let Some(spec) = city.to_city_spec() else {
                return Err(format!(
                    "city.preset `{}` is unknown (expected dense_urban, rural or indoor_hotspot)",
                    city.preset
                ));
            };
            spec.validate().map_err(|e| format!("city: {e}"))?;
        }
        if let Some(t) = &self.trace {
            if t.sample == 0 {
                return Err("trace.sample must be at least 1".into());
            }
            if t.ring == 0 {
                return Err("trace.ring must be at least 1".into());
            }
            if t.categories.is_empty() {
                return Err("trace.categories must name at least one category".into());
            }
            let mut seen: Vec<&str> = Vec::new();
            for c in &t.categories {
                if !TRACE_CATEGORIES.contains(&c.as_str()) {
                    return Err(format!(
                        "trace.categories: unknown category `{c}` (expected {})",
                        TRACE_CATEGORIES.join(", ")
                    ));
                }
                if seen.contains(&c.as_str()) {
                    return Err(format!("trace.categories: duplicate category `{c}`"));
                }
                seen.push(c);
            }
        }
        let (lte, nr) = self.loads.resolve();
        if !(0.0..=1.0).contains(&lte) || !(0.0..=1.0).contains(&nr) {
            return Err("loads must be in [0, 1]".into());
        }
        match &self.workload {
            WorkloadSpec::Survey(s) => {
                if s.speed_kmh <= 0.0 {
                    return Err("survey speed_kmh must be positive".into());
                }
                if s.interval_ms == 0 {
                    return Err("survey interval_ms must be positive".into());
                }
            }
            WorkloadSpec::Fleet(f) => {
                if f.duration_s == 0 {
                    return Err("fleet duration_s must be positive".into());
                }
                if f.tick_ms == 0 {
                    return Err("fleet tick_ms must be positive".into());
                }
                if f.groups.is_empty() {
                    return Err("fleet needs at least one UE group".into());
                }
                let mut seen: Vec<&str> = Vec::new();
                for g in &f.groups {
                    if g.name.is_empty() {
                        return Err("group name must be non-empty".into());
                    }
                    if seen.contains(&g.name.as_str()) {
                        return Err(format!("duplicate group name `{}`", g.name));
                    }
                    seen.push(&g.name);
                    if g.count == 0 {
                        return Err(format!("group `{}` has zero UEs", g.name));
                    }
                    match &g.mobility {
                        MobilitySpec::Waypoint {
                            speed_min_kmh,
                            speed_max_kmh,
                        } => {
                            if !(*speed_min_kmh > 0.0 && speed_max_kmh >= speed_min_kmh) {
                                return Err(format!(
                                    "group `{}`: waypoint speed range [{speed_min_kmh}, {speed_max_kmh}] is invalid",
                                    g.name
                                ));
                            }
                        }
                        MobilitySpec::Transect { speed_kmh, .. } => {
                            if *speed_kmh <= 0.0 {
                                return Err(format!(
                                    "group `{}`: transect speed must be positive",
                                    g.name
                                ));
                            }
                        }
                        MobilitySpec::Static => {}
                    }
                    match &g.arrival {
                        ArrivalSpec::Diurnal { peak_frac } => {
                            if !(0.0..=1.0).contains(peak_frac) {
                                return Err(format!(
                                    "group `{}`: diurnal peak_frac must be in [0, 1]",
                                    g.name
                                ));
                            }
                        }
                        ArrivalSpec::FlashCrowd { at_s, spread_s } => {
                            let ok = *at_s >= 0.0 && *spread_s > 0.0; // false on NaN
                            if !ok {
                                return Err(format!(
                                    "group `{}`: flash_crowd needs at_s >= 0 and spread_s > 0",
                                    g.name
                                ));
                            }
                        }
                        ArrivalSpec::Steady => {}
                    }
                    if let AppSpec::Web { think_s, .. } = &g.app {
                        let ok = *think_s >= 0.0; // false on NaN
                        if !ok {
                            return Err(format!("group `{}`: web think_s must be >= 0", g.name));
                        }
                    }
                }
            }
        }
        for (i, fault) in self.faults.iter().enumerate() {
            let (start, end) = fault.window();
            let well_formed = start >= 0.0 && end > start; // false on NaN
            if !well_formed {
                return Err(format!(
                    "fault[{i}] ({}) window [{start}, {end}) is invalid: needs 0 <= start < end",
                    fault.kind()
                ));
            }
            match fault {
                FaultSpec::CellOutage { pcis, .. } => {
                    if pcis.is_empty() {
                        return Err(format!("fault[{i}] (cell_outage) lists no PCIs"));
                    }
                }
                FaultSpec::BackhaulBrownout { capacity_mbps, .. } => {
                    let ok = *capacity_mbps > 0.0; // false on NaN
                    if !ok {
                        return Err(format!(
                            "fault[{i}] (backhaul_brownout) capacity_mbps must be positive"
                        ));
                    }
                }
                FaultSpec::HandoffStorm { hysteresis_db, .. } => {
                    let ok = *hysteresis_db >= 0.0; // false on NaN
                    if !ok {
                        return Err(format!(
                            "fault[{i}] (handoff_storm) hysteresis_db must be >= 0"
                        ));
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> ScenarioSpec {
        ScenarioSpec {
            name: "t".into(),
            description: String::new(),
            campus: CampusSpec::default(),
            city: None,
            trace: None,
            loads: LoadSpec::default(),
            workload: WorkloadSpec::Survey(SurveySpec::default()),
            faults: Vec::new(),
        }
    }

    #[test]
    fn defaults_are_paper_shaped() {
        let c = CampusSpec::default();
        assert_eq!((c.width_m, c.height_m), (500.0, 920.0));
        assert_eq!((c.enb_sites, c.gnb_sites), (13, 6));
        assert_eq!(LoadSpec::default().resolve(), (0.5, 0.05));
        assert_eq!(Period::Night.default_loads(), (0.2, 0.03));
    }

    #[test]
    fn validate_accepts_minimal() {
        assert_eq!(minimal().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_name_and_sites() {
        let mut s = minimal();
        s.name = "Bad Name".into();
        assert!(s.validate().is_err());
        let mut s = minimal();
        s.campus.gnb_sites = 99;
        assert!(s.validate().unwrap_err().contains("gnb_sites"));
    }

    #[test]
    fn validate_rejects_inverted_fault_window() {
        let mut s = minimal();
        s.faults.push(FaultSpec::CellOutage {
            start_s: 50.0,
            end_s: 10.0,
            pcis: vec![60],
        });
        assert!(s.validate().unwrap_err().contains("window"));
    }

    #[test]
    fn validate_rejects_nan_windows_and_empty_pcis() {
        let mut s = minimal();
        s.faults.push(FaultSpec::HandoffStorm {
            start_s: f64::NAN,
            end_s: 10.0,
            hysteresis_db: 0.0,
        });
        assert!(s.validate().is_err());
        let mut s = minimal();
        s.faults.push(FaultSpec::CellOutage {
            start_s: 0.0,
            end_s: 1.0,
            pcis: vec![],
        });
        assert!(s.validate().unwrap_err().contains("no PCIs"));
    }
}
