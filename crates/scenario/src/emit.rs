//! Canonical scenario emission.
//!
//! [`emit_scenario`] renders a [`ScenarioSpec`] as JSON in one fixed
//! shape: fixed key order, two-space indent, `\n` line ends, floats in
//! Rust `{}` form. `scen fmt` rewrites files into this form and CI
//! checks committed scenarios stay in it, so diffs over scenario files
//! are always semantic. Emission is total (no panics) and round-trip
//! stable: `emit(parse(emit(s))) == emit(s)`.

use crate::spec::{
    AppSpec, ArrivalSpec, FaultSpec, MobilitySpec, ScenarioSpec, SurveySpec, UeGroupSpec,
    WorkloadSpec,
};

/// Writer with canonical indentation. All content goes through
/// `line`/`open`/`close` so the output shape is decided in one place.
struct Emitter {
    out: String,
    depth: usize,
}

impl Emitter {
    fn new() -> Self {
        Emitter {
            out: String::with_capacity(1024),
            depth: 0,
        }
    }

    fn indent(&mut self) {
        for _ in 0..self.depth {
            self.out.push_str("  ");
        }
    }

    /// Emits one full line at the current depth. `comma` appends the
    /// separator for non-final aggregate members.
    fn line(&mut self, content: &str, comma: bool) {
        self.indent();
        self.out.push_str(content);
        if comma {
            self.out.push(',');
        }
        self.out.push('\n');
    }

    /// Opens an aggregate (`{` / `[`), optionally keyed.
    fn open(&mut self, key: Option<&str>, bracket: char) {
        self.indent();
        if let Some(key) = key {
            self.out.push_str(&json_string(key));
            self.out.push_str(": ");
        }
        self.out.push(bracket);
        self.out.push('\n');
        self.depth += 1;
    }

    fn close(&mut self, bracket: char, comma: bool) {
        self.depth = self.depth.saturating_sub(1);
        self.indent();
        self.out.push(bracket);
        if comma {
            self.out.push(',');
        }
        self.out.push('\n');
    }
}

/// JSON string literal with the escapes the `fiveg-obs` reader accepts.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Canonical float form: Rust `{}` Display. Integral floats print as
/// integers (`4.0` → `"4"`), which the parser reads back as the same
/// value, keeping round trips byte-stable.
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

fn kv_str(key: &str, v: &str) -> String {
    format!("{}: {}", json_string(key), json_string(v))
}

fn kv_f64(key: &str, v: f64) -> String {
    format!("{}: {}", json_string(key), fmt_f64(v))
}

fn kv_u64(key: &str, v: u64) -> String {
    format!("{}: {v}", json_string(key))
}

fn emit_survey(e: &mut Emitter, s: &SurveySpec, comma: bool) {
    e.open(Some("workload"), '{');
    e.line(&kv_str("kind", "survey"), true);
    e.line(&kv_f64("speed_kmh", s.speed_kmh), true);
    e.line(&kv_u64("interval_ms", s.interval_ms), false);
    e.close('}', comma);
}

fn emit_group(e: &mut Emitter, g: &UeGroupSpec, comma: bool) {
    e.open(None, '{');
    e.line(&kv_str("name", &g.name), true);
    e.line(&kv_u64("count", u64::from(g.count)), true);
    e.line(&kv_str("tech", g.tech.name()), true);
    e.open(Some("mobility"), '{');
    match &g.mobility {
        MobilitySpec::Static => e.line(&kv_str("model", "static"), false),
        MobilitySpec::Waypoint {
            speed_min_kmh,
            speed_max_kmh,
        } => {
            e.line(&kv_str("model", "waypoint"), true);
            e.line(&kv_f64("speed_min_kmh", *speed_min_kmh), true);
            e.line(&kv_f64("speed_max_kmh", *speed_max_kmh), false);
        }
        MobilitySpec::Transect {
            from,
            to,
            speed_kmh,
        } => {
            e.line(&kv_str("model", "transect"), true);
            e.line(
                &format!("\"from\": [{}, {}]", fmt_f64(from.0), fmt_f64(from.1)),
                true,
            );
            e.line(
                &format!("\"to\": [{}, {}]", fmt_f64(to.0), fmt_f64(to.1)),
                true,
            );
            e.line(&kv_f64("speed_kmh", *speed_kmh), false);
        }
    }
    e.close('}', true);
    e.open(Some("arrival"), '{');
    match &g.arrival {
        ArrivalSpec::Steady => e.line(&kv_str("process", "steady"), false),
        ArrivalSpec::Diurnal { peak_frac } => {
            e.line(&kv_str("process", "diurnal"), true);
            e.line(&kv_f64("peak_frac", *peak_frac), false);
        }
        ArrivalSpec::FlashCrowd { at_s, spread_s } => {
            e.line(&kv_str("process", "flash_crowd"), true);
            e.line(&kv_f64("at_s", *at_s), true);
            e.line(&kv_f64("spread_s", *spread_s), false);
        }
    }
    e.close('}', true);
    e.open(Some("app"), '{');
    match &g.app {
        AppSpec::Bulk => e.line(&kv_str("kind", "bulk"), false),
        AppSpec::Video { resolution, scene } => {
            e.line(&kv_str("kind", "video"), true);
            e.line(&kv_str("resolution", resolution.name()), true);
            e.line(&kv_str("scene", scene.name()), false);
        }
        AppSpec::Web { category, think_s } => {
            e.line(&kv_str("kind", "web"), true);
            e.line(&kv_str("category", category.name()), true);
            e.line(&kv_f64("think_s", *think_s), false);
        }
    }
    e.close('}', false);
    e.close('}', comma);
}

fn emit_fault(e: &mut Emitter, f: &FaultSpec, comma: bool) {
    e.open(None, '{');
    let (start_s, end_s) = f.window();
    e.line(&kv_str("kind", f.kind()), true);
    e.line(&kv_f64("start_s", start_s), true);
    match f {
        FaultSpec::CellOutage { pcis, .. } => {
            e.line(&kv_f64("end_s", end_s), true);
            let list = pcis
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            e.line(&format!("\"pcis\": [{list}]"), false);
        }
        FaultSpec::BackhaulBrownout { capacity_mbps, .. } => {
            e.line(&kv_f64("end_s", end_s), true);
            e.line(&kv_f64("capacity_mbps", *capacity_mbps), false);
        }
        FaultSpec::HandoffStorm { hysteresis_db, .. } => {
            e.line(&kv_f64("end_s", end_s), true);
            e.line(&kv_f64("hysteresis_db", *hysteresis_db), false);
        }
    }
    e.close('}', comma);
}

/// Renders a scenario in canonical form (ends with a newline).
pub fn emit_scenario(spec: &ScenarioSpec) -> String {
    let mut e = Emitter::new();
    e.open(None, '{');
    let have_faults = !spec.faults.is_empty();
    e.line(&kv_str("name", &spec.name), true);
    if !spec.description.is_empty() {
        e.line(&kv_str("description", &spec.description), true);
    }
    e.open(Some("campus"), '{');
    e.line(&kv_f64("width_m", spec.campus.width_m), true);
    e.line(&kv_f64("height_m", spec.campus.height_m), true);
    e.line(&kv_u64("enb_sites", u64::from(spec.campus.enb_sites)), true);
    e.line(&kv_u64("gnb_sites", u64::from(spec.campus.gnb_sites)), true);
    e.line(
        &kv_f64("concrete_fraction", spec.campus.concrete_fraction),
        false,
    );
    e.close('}', true);
    if let Some(city) = &spec.city {
        e.open(Some("city"), '{');
        e.line(&kv_str("preset", &city.preset), true);
        e.line(&kv_u64("tiles_x", u64::from(city.tiles_x)), true);
        e.line(&kv_u64("tiles_y", u64::from(city.tiles_y)), true);
        e.line(&kv_u64("enb_per_tile", u64::from(city.enb_per_tile)), true);
        e.line(&kv_u64("gnb_per_tile", u64::from(city.gnb_per_tile)), true);
        e.line(&kv_f64("concrete_fraction", city.concrete_fraction), false);
        e.close('}', true);
    }
    if let Some(t) = &spec.trace {
        e.open(Some("trace"), '{');
        e.line(&kv_u64("sample", u64::from(t.sample)), true);
        e.line(&kv_u64("ring", u64::from(t.ring)), true);
        let list = t
            .categories
            .iter()
            .map(|c| json_string(c))
            .collect::<Vec<_>>()
            .join(", ");
        e.line(&format!("\"categories\": [{list}]"), false);
        e.close('}', true);
    }
    e.open(Some("loads"), '{');
    let mut load_lines: Vec<String> = vec![kv_str("period", spec.loads.period.name())];
    if let Some(lte) = spec.loads.lte {
        load_lines.push(kv_f64("lte", lte));
    }
    if let Some(nr) = spec.loads.nr {
        load_lines.push(kv_f64("nr", nr));
    }
    let last = load_lines.len() - 1;
    for (i, l) in load_lines.iter().enumerate() {
        e.line(l, i != last);
    }
    e.close('}', true);
    match &spec.workload {
        WorkloadSpec::Survey(s) => emit_survey(&mut e, s, have_faults),
        WorkloadSpec::Fleet(f) => {
            e.open(Some("workload"), '{');
            e.line(&kv_str("kind", "fleet"), true);
            e.line(&kv_u64("duration_s", f.duration_s), true);
            e.line(&kv_u64("tick_ms", f.tick_ms), true);
            e.open(Some("groups"), '[');
            let last = f.groups.len().saturating_sub(1);
            for (i, g) in f.groups.iter().enumerate() {
                emit_group(&mut e, g, i != last);
            }
            e.close(']', false);
            e.close('}', have_faults);
        }
    }
    if have_faults {
        e.open(Some("faults"), '[');
        let last = spec.faults.len() - 1;
        for (i, f) in spec.faults.iter().enumerate() {
            emit_fault(&mut e, f, i != last);
        }
        e.close(']', false);
    }
    e.close('}', false);
    e.out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_scenario;
    use crate::spec::{CampusSpec, LoadSpec};

    fn survey_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: "paper_campus".into(),
            description: "paper-default road survey".into(),
            campus: CampusSpec::default(),
            city: None,
            trace: None,
            loads: LoadSpec::default(),
            workload: WorkloadSpec::Survey(SurveySpec::default()),
            faults: Vec::new(),
        }
    }

    #[test]
    fn emit_parse_round_trip_preserves_spec() {
        let spec = survey_spec();
        let text = emit_scenario(&spec);
        let back = parse_scenario(&text, "mem").expect("canonical text parses");
        assert_eq!(back, spec);
    }

    #[test]
    fn emit_is_byte_stable_under_round_trip() {
        let spec = survey_spec();
        let first = emit_scenario(&spec);
        let reparsed = parse_scenario(&first, "mem").expect("parses");
        assert_eq!(emit_scenario(&reparsed), first);
    }

    #[test]
    fn canonicalises_a_sparse_handwritten_file() {
        let sparse = r#"{"workload":{"kind":"survey"},"name":"smoke"}"#;
        let spec = parse_scenario(sparse, "mem").expect("parses");
        let text = emit_scenario(&spec);
        assert!(text.starts_with("{\n  \"name\": \"smoke\",\n"), "{text}");
        assert!(text.ends_with("}\n"), "{text}");
        assert!(text.contains("\"speed_kmh\": 4.5"), "{text}");
        // Stable on re-format.
        let again = emit_scenario(&parse_scenario(&text, "mem").expect("parses"));
        assert_eq!(again, text);
    }

    #[test]
    fn city_block_round_trips_with_preset_defaults_filled() {
        // A sparse handwritten city block picks up preset defaults on
        // parse; the canonical emission is fully concrete and stable.
        let sparse = r#"{
  "name": "metro",
  "city": { "preset": "dense_urban", "tiles_x": 4 },
  "workload": { "kind": "survey" }
}"#;
        let spec = parse_scenario(sparse, "mem").expect("parses");
        let city = spec.city.as_ref().expect("city block present");
        assert_eq!(city.tiles_x, 4);
        assert_eq!(city.tiles_y, 2); // dense_urban preset default
        assert_eq!(city.enb_per_tile, 4);
        let text = emit_scenario(&spec);
        assert!(text.contains("\"preset\": \"dense_urban\""), "{text}");
        assert!(text.contains("\"tiles_x\": 4"), "{text}");
        assert!(text.contains("\"gnb_per_tile\": 2"), "{text}");
        let back = parse_scenario(&text, "mem").expect("canonical parses");
        assert_eq!(back, spec);
        assert_eq!(emit_scenario(&back), text);
    }

    #[test]
    fn unknown_city_preset_is_rejected_at_parse() {
        let bad = r#"{
  "name": "metro",
  "city": { "preset": "megalopolis" },
  "workload": { "kind": "survey" }
}"#;
        let e = parse_scenario(bad, "mem").expect_err("unknown preset fails");
        assert!(e.message.contains("unknown city preset"), "{e}");
    }

    #[test]
    fn integral_floats_survive_round_trip() {
        let mut spec = survey_spec();
        spec.campus.width_m = 400.0; // prints as "400", reparses as UInt
        spec.faults.push(FaultSpec::BackhaulBrownout {
            start_s: 30.0,
            end_s: 60.5,
            capacity_mbps: 200.0,
        });
        let text = emit_scenario(&spec);
        assert!(text.contains("\"width_m\": 400,"), "{text}");
        assert!(text.contains("\"end_s\": 60.5"), "{text}");
        let back = parse_scenario(&text, "mem").expect("parses");
        assert_eq!(back, spec);
        assert_eq!(emit_scenario(&back), text);
    }

    #[test]
    fn strings_are_escaped() {
        let mut spec = survey_spec();
        spec.description = "say \"hi\"\nback\\slash".into();
        let text = emit_scenario(&spec);
        assert!(text.contains(r#""say \"hi\"\nback\\slash""#), "{text}");
        let back = parse_scenario(&text, "mem").expect("parses");
        assert_eq!(back.description, spec.description);
    }
}
