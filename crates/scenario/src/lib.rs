//! `fiveg-scenario`: the declarative scenario DSL.
//!
//! Scenarios — campus layout, interference loads, UE fleets with
//! mobility/arrival/app mixes, and fault-injection schedules — are
//! data files, not Rust code. This crate defines the data model
//! ([`ScenarioSpec`]), a strict parser built on the `fiveg-obs` JSON
//! reader ([`parse_scenario`], unknown keys rejected with `file:line`
//! locations), a canonical emitter ([`emit_scenario`], byte-stable
//! round trips), and a grid/sweep variant generator ([`variants`]).
//!
//! `fiveg-core` interprets a parsed spec into a running simulation;
//! `fiveg-campaign` schedules scenario files as jobs next to the
//! registry; the `scen` binary checks, formats and expands scenario
//! files from the command line.
//!
//! Zero external dependencies: parsing reuses the observability
//! crate's deterministic JSON reader, keeping scenario bytes →
//! artifact bytes a closed, reproducible loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod emit;
pub mod parse;
pub mod spec;
pub mod variants;

pub use emit::emit_scenario;
pub use parse::{parse_scenario, ScenarioError};
pub use spec::{
    AppSpec, ArrivalSpec, CampusSpec, CityDslSpec, FaultSpec, FleetSpec, LoadSpec, MobilitySpec,
    Period, ScenarioSpec, SceneSpec, SurveySpec, TechSpec, TraceDslSpec, UeGroupSpec, VideoRes,
    WebCategory, WorkloadSpec, TRACE_CATEGORIES,
};
pub use variants::{expand, parse_family, Axis, FamilySpec};
