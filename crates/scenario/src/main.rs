//! `scen`: the scenario-file tool.
//!
//! Checks, canonically formats and grid-expands scenario files. The
//! library does all the work; this binary is argument parsing, file
//! IO and exit codes (0 ok, 1 check/fmt difference, 2 usage or IO
//! error) so CI stages can gate on it.

use fiveg_scenario::{emit_scenario, expand, parse_family, parse_scenario};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "\
Usage: scen <COMMAND> [ARGS]

Scenario-file tool: validate, canonically format, expand families.

Commands:
  check FILE...           parse and validate scenario files; errors carry
                          file:line locations
  fmt [--check] FILE...   rewrite scenario files into canonical form;
                          with --check, only report files that would
                          change (exit 1) without writing
  expand FAMILY --out DIR expand a family file (base scenario + sweep
                          axes) into one canonical scenario file per
                          grid point under DIR
  -h, --help              show this help
";

fn read(path: &Path) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))
}

fn cmd_check(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("error: check needs at least one FILE\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut bad = 0usize;
    for file in files {
        let path = Path::new(file);
        let src = match read(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                bad += 1;
                continue;
            }
        };
        match parse_scenario(&src, file) {
            Ok(spec) => {
                let workload = match &spec.workload {
                    fiveg_scenario::WorkloadSpec::Survey(_) => "survey".to_string(),
                    fiveg_scenario::WorkloadSpec::Fleet(f) => {
                        let ues: u64 = f.groups.iter().map(|g| u64::from(g.count)).sum();
                        format!(
                            "fleet ({} groups, {ues} UEs, {} s)",
                            f.groups.len(),
                            f.duration_s
                        )
                    }
                };
                eprintln!(
                    "ok      {file}: `{}` {workload}, {} faults",
                    spec.name,
                    spec.faults.len()
                );
            }
            Err(e) => {
                eprintln!("error: {e}");
                bad += 1;
            }
        }
    }
    if bad > 0 {
        eprintln!("{bad} of {} files failed", files.len());
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_fmt(args: &[String]) -> ExitCode {
    let check_only = args.first().map(String::as_str) == Some("--check");
    let files = if check_only { &args[1..] } else { args };
    if files.is_empty() {
        eprintln!("error: fmt needs at least one FILE\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    }
    let mut changed = 0usize;
    let mut bad = 0usize;
    for file in files {
        let path = Path::new(file);
        let src = match read(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: {e}");
                bad += 1;
                continue;
            }
        };
        let spec = match parse_scenario(&src, file) {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: {e}");
                bad += 1;
                continue;
            }
        };
        let canonical = emit_scenario(&spec);
        if canonical == src {
            continue;
        }
        changed += 1;
        if check_only {
            eprintln!("would reformat {file}");
        } else if let Err(e) = std::fs::write(path, &canonical) {
            eprintln!("error: writing {}: {e}", path.display());
            bad += 1;
        } else {
            eprintln!("reformatted {file}");
        }
    }
    if bad > 0 {
        ExitCode::from(2)
    } else if check_only && changed > 0 {
        eprintln!(
            "{changed} of {} files are not canonical (run `scen fmt`)",
            files.len()
        );
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn cmd_expand(args: &[String]) -> ExitCode {
    let mut family_file: Option<String> = None;
    let mut out_dir: Option<PathBuf> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => match it.next() {
                Some(dir) => out_dir = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("error: --out requires a value\n");
                    eprint!("{USAGE}");
                    return ExitCode::from(2);
                }
            },
            other if family_file.is_none() && !other.starts_with('-') => {
                family_file = Some(other.to_string());
            }
            other => {
                eprintln!("error: unexpected argument `{other}`\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        }
    }
    let (Some(family_file), Some(out_dir)) = (family_file, out_dir) else {
        eprintln!("error: expand needs a FAMILY file and --out DIR\n");
        eprint!("{USAGE}");
        return ExitCode::from(2);
    };
    let src = match read(Path::new(&family_file)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let family = match parse_family(&src, &family_file) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    };
    let variants = match expand(&family) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {family_file}: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = std::fs::create_dir_all(&out_dir) {
        eprintln!("error: creating {}: {e}", out_dir.display());
        return ExitCode::from(2);
    }
    for spec in &variants {
        let path = out_dir.join(format!("{}.json", spec.name));
        if let Err(e) = std::fs::write(&path, emit_scenario(spec)) {
            eprintln!("error: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("wrote {}", path.display());
    }
    eprintln!(
        "expanded {} over {} axes into {} variants in {}",
        family.base.name,
        family.axes.len(),
        variants.len(),
        out_dir.display()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => cmd_check(&args[1..]),
        Some("fmt") => cmd_fmt(&args[1..]),
        Some("expand") => cmd_expand(&args[1..]),
        Some("-h" | "--help") => {
            print!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("error: unknown command `{other}`\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
        None => {
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
