//! Strict scenario parsing over the `fiveg-obs` JSON reader.
//!
//! Scenario files are machine- and human-written JSON. Parsing is
//! deliberately strict: unknown keys are rejected (a typo like
//! `"speeed_kmh"` must fail loudly, not silently fall back to a
//! default), enum tags must match exactly, and every semantic error
//! carries `file:line` so a failing campaign names the offending line
//! of the scenario file rather than a Rust backtrace.
//!
//! The `fiveg-obs` reader keeps object keys in a sorted map without
//! source offsets, so locations for semantic errors are recovered by
//! scanning the source text for the key token (`"key"` followed by
//! `:`). Structural errors carry exact byte offsets already.

use crate::spec::{
    AppSpec, ArrivalSpec, CampusSpec, CityDslSpec, FaultSpec, FleetSpec, LoadSpec, MobilitySpec,
    Period, ScenarioSpec, SceneSpec, SurveySpec, TechSpec, TraceDslSpec, UeGroupSpec, VideoRes,
    WebCategory, WorkloadSpec,
};
use fiveg_obs::{parse_json, JsonValue};
use std::collections::BTreeMap;

/// A scenario parse/validation failure, located in the source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioError {
    /// File the scenario came from (display name, as given).
    pub file: String,
    /// 1-based line of the offending token (0 = unknown).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(f, "{}:{}: {}", self.file, self.line, self.message)
        } else {
            write!(f, "{}: {}", self.file, self.message)
        }
    }
}

impl std::error::Error for ScenarioError {}

/// 1-based line number of a byte offset in `src`.
fn line_of_offset(src: &str, offset: usize) -> usize {
    let upto = offset.min(src.len());
    1 + src.as_bytes()[..upto]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
}

/// Best-effort 1-based line of the JSON key `key` in `src`: the first
/// `"key"` token whose next non-whitespace byte is `:`. Falls back to
/// 0 (unknown) when the key cannot be located.
fn line_of_key(src: &str, key: &str) -> usize {
    let needle = format!("\"{key}\"");
    let bytes = src.as_bytes();
    let mut from = 0;
    while let Some(rel) = src[from..].find(&needle) {
        let at = from + rel;
        let mut after = at + needle.len();
        while after < bytes.len() && bytes[after].is_ascii_whitespace() {
            after += 1;
        }
        if bytes.get(after) == Some(&b':') {
            return line_of_offset(src, at);
        }
        from = at + needle.len();
    }
    0
}

/// Shared parse context: the raw source for location recovery.
struct Ctx<'a> {
    src: &'a str,
    file: &'a str,
}

impl Ctx<'_> {
    fn err_at_key(&self, key: &str, message: String) -> ScenarioError {
        ScenarioError {
            file: self.file.to_string(),
            line: line_of_key(self.src, key),
            message,
        }
    }

    fn err(&self, message: String) -> ScenarioError {
        ScenarioError {
            file: self.file.to_string(),
            line: 0,
            message,
        }
    }

    /// Rejects keys of `map` not in `allowed` — the strictness rule.
    fn check_keys(
        &self,
        map: &BTreeMap<String, JsonValue>,
        allowed: &[&str],
        what: &str,
    ) -> Result<(), ScenarioError> {
        for key in map.keys() {
            if !allowed.contains(&key.as_str()) {
                return Err(self.err_at_key(
                    key,
                    format!(
                        "unknown key `{key}` in {what} (allowed: {})",
                        allowed.join(", ")
                    ),
                ));
            }
        }
        Ok(())
    }

    fn obj<'v>(
        &self,
        v: &'v JsonValue,
        what: &str,
        key: &str,
    ) -> Result<&'v BTreeMap<String, JsonValue>, ScenarioError> {
        v.as_object()
            .ok_or_else(|| self.err_at_key(key, format!("{what} must be a JSON object")))
    }

    fn str_field(
        &self,
        map: &BTreeMap<String, JsonValue>,
        key: &str,
    ) -> Result<Option<String>, ScenarioError> {
        match map.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_str()
                .map(|s| Some(s.to_string()))
                .ok_or_else(|| self.err_at_key(key, format!("`{key}` must be a string"))),
        }
    }

    fn req_str(
        &self,
        map: &BTreeMap<String, JsonValue>,
        key: &str,
        what: &str,
    ) -> Result<String, ScenarioError> {
        self.str_field(map, key)?
            .ok_or_else(|| self.err(format!("{what} is missing required key `{key}`")))
    }

    fn f64_field(
        &self,
        map: &BTreeMap<String, JsonValue>,
        key: &str,
    ) -> Result<Option<f64>, ScenarioError> {
        match map.get(key) {
            None => Ok(None),
            Some(v) => v
                .as_f64()
                .map(Some)
                .ok_or_else(|| self.err_at_key(key, format!("`{key}` must be a number"))),
        }
    }

    fn f64_or(
        &self,
        map: &BTreeMap<String, JsonValue>,
        key: &str,
        default: f64,
    ) -> Result<f64, ScenarioError> {
        Ok(self.f64_field(map, key)?.unwrap_or(default))
    }

    fn u64_field(
        &self,
        map: &BTreeMap<String, JsonValue>,
        key: &str,
    ) -> Result<Option<u64>, ScenarioError> {
        match map.get(key) {
            None => Ok(None),
            Some(v) => v.as_u64().map(Some).ok_or_else(|| {
                self.err_at_key(key, format!("`{key}` must be a non-negative integer"))
            }),
        }
    }

    fn u64_or(
        &self,
        map: &BTreeMap<String, JsonValue>,
        key: &str,
        default: u64,
    ) -> Result<u64, ScenarioError> {
        Ok(self.u64_field(map, key)?.unwrap_or(default))
    }

    fn u32_or(
        &self,
        map: &BTreeMap<String, JsonValue>,
        key: &str,
        default: u32,
    ) -> Result<u32, ScenarioError> {
        let v = self.u64_or(map, key, u64::from(default))?;
        u32::try_from(v)
            .map_err(|_| self.err_at_key(key, format!("`{key}` = {v} does not fit in u32")))
    }

    fn req_f64(
        &self,
        map: &BTreeMap<String, JsonValue>,
        key: &str,
        what: &str,
    ) -> Result<f64, ScenarioError> {
        self.f64_field(map, key)?
            .ok_or_else(|| self.err(format!("{what} is missing required key `{key}`")))
    }

    fn xy_field(
        &self,
        map: &BTreeMap<String, JsonValue>,
        key: &str,
        what: &str,
    ) -> Result<(f64, f64), ScenarioError> {
        let v = map
            .get(key)
            .ok_or_else(|| self.err(format!("{what} is missing required key `{key}`")))?;
        let bad = || self.err_at_key(key, format!("`{key}` must be a [x, y] pair of numbers"));
        match v {
            JsonValue::Array(items) if items.len() == 2 => {
                let x = items[0].as_f64().ok_or_else(bad)?;
                let y = items[1].as_f64().ok_or_else(bad)?;
                Ok((x, y))
            }
            _ => Err(bad()),
        }
    }
}

fn parse_campus(ctx: &Ctx<'_>, v: &JsonValue) -> Result<CampusSpec, ScenarioError> {
    let map = ctx.obj(v, "`campus`", "campus")?;
    ctx.check_keys(
        map,
        &[
            "width_m",
            "height_m",
            "enb_sites",
            "gnb_sites",
            "concrete_fraction",
        ],
        "`campus`",
    )?;
    let d = CampusSpec::default();
    Ok(CampusSpec {
        width_m: ctx.f64_or(map, "width_m", d.width_m)?,
        height_m: ctx.f64_or(map, "height_m", d.height_m)?,
        enb_sites: ctx.u32_or(map, "enb_sites", d.enb_sites)?,
        gnb_sites: ctx.u32_or(map, "gnb_sites", d.gnb_sites)?,
        concrete_fraction: ctx.f64_or(map, "concrete_fraction", d.concrete_fraction)?,
    })
}

fn parse_city(ctx: &Ctx<'_>, v: &JsonValue) -> Result<CityDslSpec, ScenarioError> {
    let map = ctx.obj(v, "`city`", "city")?;
    ctx.check_keys(
        map,
        &[
            "preset",
            "tiles_x",
            "tiles_y",
            "enb_per_tile",
            "gnb_per_tile",
            "concrete_fraction",
        ],
        "`city`",
    )?;
    let preset = ctx.req_str(map, "preset", "`city`")?;
    let d = CityDslSpec::from_preset(&preset).ok_or_else(|| {
        ctx.err_at_key(
            "preset",
            format!(
                "unknown city preset `{preset}` (expected dense_urban, rural or indoor_hotspot)"
            ),
        )
    })?;
    Ok(CityDslSpec {
        preset,
        tiles_x: ctx.u32_or(map, "tiles_x", d.tiles_x)?,
        tiles_y: ctx.u32_or(map, "tiles_y", d.tiles_y)?,
        enb_per_tile: ctx.u32_or(map, "enb_per_tile", d.enb_per_tile)?,
        gnb_per_tile: ctx.u32_or(map, "gnb_per_tile", d.gnb_per_tile)?,
        concrete_fraction: ctx.f64_or(map, "concrete_fraction", d.concrete_fraction)?,
    })
}

fn parse_trace(ctx: &Ctx<'_>, v: &JsonValue) -> Result<TraceDslSpec, ScenarioError> {
    let map = ctx.obj(v, "`trace`", "trace")?;
    ctx.check_keys(map, &["sample", "ring", "categories"], "`trace`")?;
    let d = TraceDslSpec::default();
    let categories = match map.get("categories") {
        None => d.categories,
        Some(JsonValue::Array(items)) => {
            let mut cats = Vec::with_capacity(items.len());
            for item in items {
                match item.as_str() {
                    Some(s) => cats.push(s.to_string()),
                    None => {
                        return Err(ctx.err_at_key(
                            "categories",
                            "`trace.categories` must be an array of strings".to_string(),
                        ))
                    }
                }
            }
            cats
        }
        Some(_) => {
            return Err(ctx.err_at_key(
                "categories",
                "`trace.categories` must be an array of strings".to_string(),
            ))
        }
    };
    Ok(TraceDslSpec {
        sample: ctx.u32_or(map, "sample", d.sample)?,
        ring: ctx.u32_or(map, "ring", d.ring)?,
        categories,
    })
}

fn parse_loads(ctx: &Ctx<'_>, v: &JsonValue) -> Result<LoadSpec, ScenarioError> {
    let map = ctx.obj(v, "`loads`", "loads")?;
    ctx.check_keys(map, &["period", "lte", "nr"], "`loads`")?;
    let period = match self_or_default(ctx.str_field(map, "period")?, "day").as_str() {
        "day" => Period::Day,
        "night" => Period::Night,
        other => {
            return Err(ctx.err_at_key(
                "period",
                format!("unknown period `{other}` (expected `day` or `night`)"),
            ))
        }
    };
    Ok(LoadSpec {
        period,
        lte: ctx.f64_field(map, "lte")?,
        nr: ctx.f64_field(map, "nr")?,
    })
}

fn self_or_default(v: Option<String>, default: &str) -> String {
    v.unwrap_or_else(|| default.to_string())
}

fn parse_mobility(ctx: &Ctx<'_>, v: &JsonValue) -> Result<MobilitySpec, ScenarioError> {
    let map = ctx.obj(v, "`mobility`", "mobility")?;
    let model = ctx.req_str(map, "model", "`mobility`")?;
    match model.as_str() {
        "static" => {
            ctx.check_keys(map, &["model"], "`mobility` (static)")?;
            Ok(MobilitySpec::Static)
        }
        "waypoint" => {
            ctx.check_keys(
                map,
                &["model", "speed_min_kmh", "speed_max_kmh"],
                "`mobility` (waypoint)",
            )?;
            Ok(MobilitySpec::Waypoint {
                speed_min_kmh: ctx.f64_or(map, "speed_min_kmh", 3.0)?,
                speed_max_kmh: ctx.f64_or(map, "speed_max_kmh", 10.0)?,
            })
        }
        "transect" => {
            ctx.check_keys(
                map,
                &["model", "from", "to", "speed_kmh"],
                "`mobility` (transect)",
            )?;
            Ok(MobilitySpec::Transect {
                from: ctx.xy_field(map, "from", "`mobility` (transect)")?,
                to: ctx.xy_field(map, "to", "`mobility` (transect)")?,
                speed_kmh: ctx.f64_or(map, "speed_kmh", 4.5)?,
            })
        }
        other => Err(ctx.err_at_key(
            "model",
            format!("unknown mobility model `{other}` (expected static, waypoint or transect)"),
        )),
    }
}

fn parse_arrival(ctx: &Ctx<'_>, v: &JsonValue) -> Result<ArrivalSpec, ScenarioError> {
    let map = ctx.obj(v, "`arrival`", "arrival")?;
    let process = ctx.req_str(map, "process", "`arrival`")?;
    match process.as_str() {
        "steady" => {
            ctx.check_keys(map, &["process"], "`arrival` (steady)")?;
            Ok(ArrivalSpec::Steady)
        }
        "diurnal" => {
            ctx.check_keys(map, &["process", "peak_frac"], "`arrival` (diurnal)")?;
            Ok(ArrivalSpec::Diurnal {
                peak_frac: ctx.f64_or(map, "peak_frac", 0.5)?,
            })
        }
        "flash_crowd" => {
            ctx.check_keys(
                map,
                &["process", "at_s", "spread_s"],
                "`arrival` (flash_crowd)",
            )?;
            Ok(ArrivalSpec::FlashCrowd {
                at_s: ctx.req_f64(map, "at_s", "`arrival` (flash_crowd)")?,
                spread_s: ctx.f64_or(map, "spread_s", 5.0)?,
            })
        }
        other => Err(ctx.err_at_key(
            "process",
            format!("unknown arrival process `{other}` (expected steady, diurnal or flash_crowd)"),
        )),
    }
}

fn parse_app(ctx: &Ctx<'_>, v: &JsonValue) -> Result<AppSpec, ScenarioError> {
    let map = ctx.obj(v, "`app`", "app")?;
    let kind = ctx.req_str(map, "kind", "`app`")?;
    match kind.as_str() {
        "bulk" => {
            ctx.check_keys(map, &["kind"], "`app` (bulk)")?;
            Ok(AppSpec::Bulk)
        }
        "video" => {
            ctx.check_keys(map, &["kind", "resolution", "scene"], "`app` (video)")?;
            let resolution = match self_or_default(ctx.str_field(map, "resolution")?, "4k").as_str()
            {
                "720p" => VideoRes::P720,
                "1080p" => VideoRes::P1080,
                "4k" => VideoRes::K4,
                "5.7k" => VideoRes::K57,
                other => {
                    return Err(ctx.err_at_key(
                        "resolution",
                        format!("unknown resolution `{other}` (expected 720p, 1080p, 4k or 5.7k)"),
                    ))
                }
            };
            let scene = match self_or_default(ctx.str_field(map, "scene")?, "static").as_str() {
                "static" => SceneSpec::Static,
                "dynamic" => SceneSpec::Dynamic,
                other => {
                    return Err(ctx.err_at_key(
                        "scene",
                        format!("unknown scene `{other}` (expected static or dynamic)"),
                    ))
                }
            };
            Ok(AppSpec::Video { resolution, scene })
        }
        "web" => {
            ctx.check_keys(map, &["kind", "category", "think_s"], "`app` (web)")?;
            let category = match self_or_default(ctx.str_field(map, "category")?, "search").as_str()
            {
                "search" => WebCategory::Search,
                "image" => WebCategory::Image,
                "shopping" => WebCategory::Shopping,
                "map" => WebCategory::Map,
                "video" => WebCategory::Video,
                other => {
                    return Err(ctx.err_at_key(
                        "category",
                        format!(
                            "unknown category `{other}` (expected search, image, shopping, map or video)"
                        ),
                    ))
                }
            };
            Ok(AppSpec::Web {
                category,
                think_s: ctx.f64_or(map, "think_s", 5.0)?,
            })
        }
        other => Err(ctx.err_at_key(
            "kind",
            format!("unknown app kind `{other}` (expected bulk, video or web)"),
        )),
    }
}

fn parse_group(ctx: &Ctx<'_>, v: &JsonValue) -> Result<UeGroupSpec, ScenarioError> {
    let map = ctx.obj(v, "fleet group", "groups")?;
    ctx.check_keys(
        map,
        &["name", "count", "tech", "mobility", "arrival", "app"],
        "fleet group",
    )?;
    let name = ctx.req_str(map, "name", "fleet group")?;
    let tech = match self_or_default(ctx.str_field(map, "tech")?, "nr").as_str() {
        "lte" => TechSpec::Lte,
        "nr" => TechSpec::Nr,
        other => {
            return Err(ctx.err_at_key(
                "tech",
                format!("unknown tech `{other}` (expected lte or nr)"),
            ))
        }
    };
    let mobility = match map.get("mobility") {
        Some(v) => parse_mobility(ctx, v)?,
        None => MobilitySpec::Waypoint {
            speed_min_kmh: 3.0,
            speed_max_kmh: 10.0,
        },
    };
    let arrival = match map.get("arrival") {
        Some(v) => parse_arrival(ctx, v)?,
        None => ArrivalSpec::Steady,
    };
    let app = match map.get("app") {
        Some(v) => parse_app(ctx, v)?,
        None => AppSpec::Bulk,
    };
    Ok(UeGroupSpec {
        name,
        count: ctx.u32_or(map, "count", 1)?,
        tech,
        mobility,
        arrival,
        app,
    })
}

fn parse_workload(ctx: &Ctx<'_>, v: &JsonValue) -> Result<WorkloadSpec, ScenarioError> {
    let map = ctx.obj(v, "`workload`", "workload")?;
    let kind = ctx.req_str(map, "kind", "`workload`")?;
    match kind.as_str() {
        "survey" => {
            ctx.check_keys(
                map,
                &["kind", "speed_kmh", "interval_ms"],
                "`workload` (survey)",
            )?;
            let d = SurveySpec::default();
            Ok(WorkloadSpec::Survey(SurveySpec {
                speed_kmh: ctx.f64_or(map, "speed_kmh", d.speed_kmh)?,
                interval_ms: ctx.u64_or(map, "interval_ms", d.interval_ms)?,
            }))
        }
        "fleet" => {
            ctx.check_keys(
                map,
                &["kind", "duration_s", "tick_ms", "groups"],
                "`workload` (fleet)",
            )?;
            let groups_v = map.get("groups").ok_or_else(|| {
                ctx.err("`workload` (fleet) is missing required key `groups`".into())
            })?;
            let JsonValue::Array(items) = groups_v else {
                return Err(ctx.err_at_key("groups", "`groups` must be an array".to_string()));
            };
            let mut groups = Vec::with_capacity(items.len());
            for item in items {
                groups.push(parse_group(ctx, item)?);
            }
            Ok(WorkloadSpec::Fleet(FleetSpec {
                duration_s: ctx.u64_or(map, "duration_s", 120)?,
                tick_ms: ctx.u64_or(map, "tick_ms", 500)?,
                groups,
            }))
        }
        other => Err(ctx.err_at_key(
            "kind",
            format!("unknown workload kind `{other}` (expected survey or fleet)"),
        )),
    }
}

fn parse_fault(ctx: &Ctx<'_>, v: &JsonValue, idx: usize) -> Result<FaultSpec, ScenarioError> {
    let map = ctx.obj(v, "fault event", "faults")?;
    let what = format!("fault[{idx}]");
    let kind = ctx.req_str(map, "kind", &what)?;
    let start_s = ctx.req_f64(map, "start_s", &what)?;
    let end_s = ctx.req_f64(map, "end_s", &what)?;
    match kind.as_str() {
        "cell_outage" => {
            ctx.check_keys(map, &["kind", "start_s", "end_s", "pcis"], "fault (cell_outage)")?;
            let pcis_v = map
                .get("pcis")
                .ok_or_else(|| ctx.err(format!("{what} (cell_outage) is missing `pcis`")))?;
            let JsonValue::Array(items) = pcis_v else {
                return Err(ctx.err_at_key("pcis", "`pcis` must be an array".to_string()));
            };
            let mut pcis = Vec::with_capacity(items.len());
            for item in items {
                let v = item.as_u64().and_then(|v| u16::try_from(v).ok()).ok_or_else(
                    || ctx.err_at_key("pcis", "`pcis` entries must be PCIs (u16)".to_string()),
                )?;
                pcis.push(v);
            }
            Ok(FaultSpec::CellOutage {
                start_s,
                end_s,
                pcis,
            })
        }
        "backhaul_brownout" => {
            ctx.check_keys(
                map,
                &["kind", "start_s", "end_s", "capacity_mbps"],
                "fault (backhaul_brownout)",
            )?;
            Ok(FaultSpec::BackhaulBrownout {
                start_s,
                end_s,
                capacity_mbps: ctx.req_f64(map, "capacity_mbps", &what)?,
            })
        }
        "handoff_storm" => {
            ctx.check_keys(
                map,
                &["kind", "start_s", "end_s", "hysteresis_db"],
                "fault (handoff_storm)",
            )?;
            Ok(FaultSpec::HandoffStorm {
                start_s,
                end_s,
                hysteresis_db: ctx.f64_or(map, "hysteresis_db", 0.0)?,
            })
        }
        other => Err(ctx.err_at_key(
            "kind",
            format!(
                "unknown fault kind `{other}` (expected cell_outage, backhaul_brownout or handoff_storm)"
            ),
        )),
    }
}

/// Parses a scenario from an already-parsed JSON value. `src`/`file`
/// feed error locations.
pub fn scenario_from_value(
    v: &JsonValue,
    src: &str,
    file: &str,
) -> Result<ScenarioSpec, ScenarioError> {
    let ctx = Ctx { src, file };
    let map = v
        .as_object()
        .ok_or_else(|| ctx.err("scenario file must be a JSON object".into()))?;
    ctx.check_keys(
        map,
        &[
            "name",
            "description",
            "campus",
            "city",
            "trace",
            "loads",
            "workload",
            "faults",
        ],
        "scenario",
    )?;
    let name = ctx.req_str(map, "name", "scenario")?;
    let description = self_or_default(ctx.str_field(map, "description")?, "");
    let campus = match map.get("campus") {
        Some(v) => parse_campus(&ctx, v)?,
        None => CampusSpec::default(),
    };
    let city = match map.get("city") {
        Some(v) => Some(parse_city(&ctx, v)?),
        None => None,
    };
    let trace = match map.get("trace") {
        Some(v) => Some(parse_trace(&ctx, v)?),
        None => None,
    };
    let loads = match map.get("loads") {
        Some(v) => parse_loads(&ctx, v)?,
        None => LoadSpec::default(),
    };
    let workload_v = map
        .get("workload")
        .ok_or_else(|| ctx.err("scenario is missing required key `workload`".into()))?;
    let workload = parse_workload(&ctx, workload_v)?;
    let faults = match map.get("faults") {
        None => Vec::new(),
        Some(JsonValue::Array(items)) => {
            let mut faults = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                faults.push(parse_fault(&ctx, item, i)?);
            }
            faults
        }
        Some(_) => return Err(ctx.err_at_key("faults", "`faults` must be an array".to_string())),
    };
    let spec = ScenarioSpec {
        name,
        description,
        campus,
        city,
        trace,
        loads,
        workload,
        faults,
    };
    spec.validate()
        .map_err(|message| ctx.err(format!("invalid scenario: {message}")))?;
    Ok(spec)
}

/// Parses a scenario file's text. `file` is the display name used in
/// error locations (typically the path).
pub fn parse_scenario(src: &str, file: &str) -> Result<ScenarioSpec, ScenarioError> {
    let v = parse_json(src).map_err(|e| ScenarioError {
        file: file.to_string(),
        line: line_of_offset(src, e.offset),
        message: e.message,
    })?;
    scenario_from_value(&v, src, file)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"{
  "name": "smoke",
  "workload": { "kind": "survey" }
}"#;

    #[test]
    fn minimal_survey_parses_with_defaults() {
        let s = parse_scenario(MINIMAL, "mem").unwrap();
        assert_eq!(s.name, "smoke");
        assert_eq!(s.campus, CampusSpec::default());
        assert_eq!(s.loads.resolve(), (0.5, 0.05));
        assert_eq!(
            s.workload,
            WorkloadSpec::Survey(SurveySpec {
                speed_kmh: 4.5,
                interval_ms: 1000
            })
        );
    }

    #[test]
    fn unknown_key_is_rejected_with_file_and_line() {
        let src = "{\n  \"name\": \"x\",\n  \"workload\": { \"kind\": \"survey\" },\n  \"campus\": {\n    \"widht_m\": 400\n  }\n}";
        let e = parse_scenario(src, "bad.json").unwrap_err();
        assert_eq!(e.file, "bad.json");
        assert_eq!(e.line, 5, "{e}");
        assert!(e.message.contains("unknown key `widht_m`"), "{e}");
        assert!(e.message.contains("allowed:"), "{e}");
    }

    #[test]
    fn syntax_error_carries_line() {
        let e = parse_scenario("{\n  \"name\": \"x\",,\n}", "syntax.json").unwrap_err();
        assert_eq!(e.file, "syntax.json");
        assert_eq!(e.line, 2, "{e}");
    }

    #[test]
    fn unknown_enum_tags_are_rejected() {
        let src = r#"{"name":"x","workload":{"kind":"teleport"}}"#;
        let e = parse_scenario(src, "m").unwrap_err();
        assert!(
            e.message.contains("unknown workload kind `teleport`"),
            "{e}"
        );

        let src = r#"{"name":"x","workload":{"kind":"fleet","groups":[
            {"name":"g","count":1,"mobility":{"model":"hover"}}]}}"#;
        let e = parse_scenario(src, "m").unwrap_err();
        assert!(e.message.contains("unknown mobility model `hover`"), "{e}");
    }

    #[test]
    fn type_errors_name_the_key() {
        let src = r#"{"name":"x","workload":{"kind":"survey","speed_kmh":"fast"}}"#;
        let e = parse_scenario(src, "m").unwrap_err();
        assert!(e.message.contains("`speed_kmh` must be a number"), "{e}");

        let src =
            r#"{"name":"x","workload":{"kind":"fleet","duration_s":-3,"groups":[{"name":"g"}]}}"#;
        let e = parse_scenario(src, "m").unwrap_err();
        assert!(
            e.message
                .contains("`duration_s` must be a non-negative integer"),
            "{e}"
        );
    }

    #[test]
    fn fleet_with_all_features_parses() {
        let src = r#"{
  "name": "full",
  "description": "everything at once",
  "campus": { "gnb_sites": 4 },
  "loads": { "period": "night", "nr": 0.1 },
  "workload": {
    "kind": "fleet",
    "duration_s": 60,
    "tick_ms": 250,
    "groups": [
      { "name": "walkers", "count": 10, "tech": "nr",
        "mobility": { "model": "waypoint", "speed_min_kmh": 3, "speed_max_kmh": 10 },
        "arrival": { "process": "steady" },
        "app": { "kind": "bulk" } },
      { "name": "callers", "count": 5, "tech": "nr",
        "mobility": { "model": "static" },
        "arrival": { "process": "flash_crowd", "at_s": 10, "spread_s": 2 },
        "app": { "kind": "video", "resolution": "5.7k", "scene": "dynamic" } },
      { "name": "readers", "count": 8, "tech": "lte",
        "mobility": { "model": "transect", "from": [10, 10], "to": [400, 800], "speed_kmh": 5 },
        "arrival": { "process": "diurnal", "peak_frac": 0.4 },
        "app": { "kind": "web", "category": "news_is_wrong", "think_s": 4 } }
    ]
  }
}"#;
        // One deliberate error to prove deep group parsing runs:
        let e = parse_scenario(src, "m").unwrap_err();
        assert!(
            e.message.contains("unknown category `news_is_wrong`"),
            "{e}"
        );
        let fixed = src.replace("news_is_wrong", "shopping");
        let s = parse_scenario(&fixed, "m").unwrap();
        match &s.workload {
            WorkloadSpec::Fleet(f) => {
                assert_eq!(f.groups.len(), 3);
                assert_eq!(f.groups[1].app.kind(), "video");
                assert_eq!(f.groups[2].tech, TechSpec::Lte);
            }
            other => panic!("expected fleet, got {other:?}"),
        }
        assert_eq!(s.loads.resolve(), (0.2, 0.1));
    }

    #[test]
    fn fault_schedule_parses_and_validates() {
        let src = r#"{
  "name": "faulty",
  "workload": { "kind": "fleet", "groups": [ { "name": "g", "count": 2 } ] },
  "faults": [
    { "kind": "cell_outage", "start_s": 10, "end_s": 20, "pcis": [60, 61] },
    { "kind": "backhaul_brownout", "start_s": 30, "end_s": 40, "capacity_mbps": 200 },
    { "kind": "handoff_storm", "start_s": 50, "end_s": 60, "hysteresis_db": 0 }
  ]
}"#;
        let s = parse_scenario(src, "m").unwrap();
        assert_eq!(s.faults.len(), 3);
        assert_eq!(s.faults[0].kind(), "cell_outage");
        // Inverted window rejected by validation.
        let bad = src.replace("\"end_s\": 20", "\"end_s\": 5");
        let e = parse_scenario(&bad, "m").unwrap_err();
        assert!(e.message.contains("window"), "{e}");
    }

    #[test]
    fn line_of_key_skips_string_values() {
        // "survey" appears as a *value* before any key occurrence; the
        // locator must only match `"key":` shapes.
        let src = "{\n  \"a\": \"survey\",\n  \"survey\": 1\n}";
        assert_eq!(line_of_key(src, "survey"), 3);
        assert_eq!(line_of_key(src, "missing"), 0);
    }
}
