//! Property tests for the scenario DSL: round-trip byte stability of
//! the canonical emitter, unknown-key rejection, and fault-schedule
//! validation over adversarial windows.

use fiveg_scenario::{
    emit_scenario, parse_scenario, AppSpec, ArrivalSpec, CampusSpec, FaultSpec, FleetSpec,
    LoadSpec, MobilitySpec, Period, ScenarioSpec, SceneSpec, SurveySpec, TechSpec, TraceDslSpec,
    UeGroupSpec, VideoRes, WebCategory, WorkloadSpec, TRACE_CATEGORIES,
};
use proptest::prelude::*;

fn campus_strategy() -> impl Strategy<Value = CampusSpec> {
    (
        (100.0f64..2000.0),
        (100.0f64..2000.0),
        (1u32..20),
        (0.0f64..1.0),
    )
        .prop_map(
            |(width_m, height_m, enb_sites, concrete_fraction)| CampusSpec {
                width_m,
                height_m,
                enb_sites,
                // Valid by construction: gNBs co-sit with eNBs.
                gnb_sites: enb_sites.div_ceil(2),
                concrete_fraction,
            },
        )
}

fn loads_strategy() -> impl Strategy<Value = LoadSpec> {
    (
        prop::bool::ANY,
        prop::bool::ANY,
        (0.0f64..1.0),
        (0.0f64..1.0),
    )
        .prop_map(|(day, explicit, lte, nr)| LoadSpec {
            period: if day { Period::Day } else { Period::Night },
            lte: explicit.then_some(lte),
            nr: explicit.then_some(nr),
        })
}

fn mobility_strategy() -> impl Strategy<Value = MobilitySpec> {
    prop_oneof![
        Just(MobilitySpec::Static),
        ((0.5f64..5.0), (0.0f64..20.0)).prop_map(|(lo, extra)| MobilitySpec::Waypoint {
            speed_min_kmh: lo,
            speed_max_kmh: lo + extra,
        }),
        ((1.0f64..400.0), (1.0f64..800.0), (0.5f64..30.0)).prop_map(|(x, y, v)| {
            MobilitySpec::Transect {
                from: (x, y),
                to: (y, x),
                speed_kmh: v,
            }
        }),
    ]
}

fn arrival_strategy() -> impl Strategy<Value = ArrivalSpec> {
    prop_oneof![
        Just(ArrivalSpec::Steady),
        (0.0f64..1.0).prop_map(|peak_frac| ArrivalSpec::Diurnal { peak_frac }),
        ((0.0f64..100.0), (0.1f64..20.0))
            .prop_map(|(at_s, spread_s)| ArrivalSpec::FlashCrowd { at_s, spread_s }),
    ]
}

fn app_strategy() -> impl Strategy<Value = AppSpec> {
    prop_oneof![
        Just(AppSpec::Bulk),
        ((0u8..4), prop::bool::ANY).prop_map(|(r, dynamic)| AppSpec::Video {
            resolution: match r {
                0 => VideoRes::P720,
                1 => VideoRes::P1080,
                2 => VideoRes::K4,
                _ => VideoRes::K57,
            },
            scene: if dynamic {
                SceneSpec::Dynamic
            } else {
                SceneSpec::Static
            },
        }),
        ((0u8..5), (0.0f64..30.0)).prop_map(|(c, think_s)| AppSpec::Web {
            category: match c {
                0 => WebCategory::Search,
                1 => WebCategory::Image,
                2 => WebCategory::Shopping,
                3 => WebCategory::Map,
                _ => WebCategory::Video,
            },
            think_s,
        }),
    ]
}

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    let survey = ((0.5f64..30.0), (100u64..5000)).prop_map(|(speed_kmh, interval_ms)| {
        WorkloadSpec::Survey(SurveySpec {
            speed_kmh,
            interval_ms,
        })
    });
    let group = (
        "[a-z]{1,6}",
        (1u32..40),
        prop::bool::ANY,
        mobility_strategy(),
        arrival_strategy(),
        app_strategy(),
    )
        .prop_map(|(suffix, count, lte, mobility, arrival, app)| UeGroupSpec {
            name: suffix,
            count,
            tech: if lte { TechSpec::Lte } else { TechSpec::Nr },
            mobility,
            arrival,
            app,
        });
    let fleet = (
        (10u64..600),
        (100u64..2000),
        prop::collection::vec(group, 1..5),
    )
        .prop_map(|(duration_s, tick_ms, mut groups)| {
            // Group names must be unique: suffix with the index.
            for (i, g) in groups.iter_mut().enumerate() {
                g.name = format!("{}{i}", g.name);
            }
            WorkloadSpec::Fleet(FleetSpec {
                duration_s,
                tick_ms,
                groups,
            })
        });
    prop_oneof![survey, fleet]
}

fn fault_strategy() -> impl Strategy<Value = FaultSpec> {
    let window = || ((0.0f64..500.0), (0.1f64..100.0));
    prop_oneof![
        (window(), prop::collection::vec(0u16..600, 1..6)).prop_map(|((s, d), pcis)| {
            FaultSpec::CellOutage {
                start_s: s,
                end_s: s + d,
                pcis,
            }
        }),
        (window(), (1.0f64..1000.0)).prop_map(|((s, d), capacity_mbps)| {
            FaultSpec::BackhaulBrownout {
                start_s: s,
                end_s: s + d,
                capacity_mbps,
            }
        }),
        (window(), (0.0f64..10.0)).prop_map(|((s, d), hysteresis_db)| FaultSpec::HandoffStorm {
            start_s: s,
            end_s: s + d,
            hysteresis_db,
        }),
    ]
}

fn trace_strategy() -> impl Strategy<Value = Option<TraceDslSpec>> {
    prop_oneof![
        Just(None),
        ((1u32..100), (1u32..10_000), (0usize..5)).prop_map(|(sample, ring, drop)| {
            // Any non-empty prefix of the category list is valid and
            // duplicate-free.
            let mut categories: Vec<String> =
                TRACE_CATEGORIES.iter().map(ToString::to_string).collect();
            categories.truncate(categories.len() - drop.min(categories.len() - 1));
            Some(TraceDslSpec {
                sample,
                ring,
                categories,
            })
        }),
    ]
}

fn scenario_strategy() -> impl Strategy<Value = ScenarioSpec> {
    (
        "[a-z][a-z0-9_]{0,12}",
        campus_strategy(),
        trace_strategy(),
        loads_strategy(),
        workload_strategy(),
        prop::collection::vec(fault_strategy(), 0..4),
    )
        .prop_map(
            |(name, campus, trace, loads, workload, faults)| ScenarioSpec {
                name,
                description: String::new(),
                campus,
                city: None,
                trace,
                loads,
                workload,
                faults,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Valid-by-construction scenarios validate, and the canonical
    /// emitter round-trips them exactly: parse(emit(s)) == s and a
    /// second emit reproduces the same bytes.
    #[test]
    fn round_trip_is_byte_stable(spec in scenario_strategy()) {
        prop_assert_eq!(spec.validate(), Ok(()), "{spec:?}");
        let text = emit_scenario(&spec);
        let back = match parse_scenario(&text, "prop") {
            Ok(back) => back,
            Err(e) => panic!("canonical text failed to parse: {e}\n{text}"),
        };
        prop_assert_eq!(&back, &spec, "{}", text);
        prop_assert_eq!(emit_scenario(&back), text);
    }

    /// Any unknown top-level key is rejected, whatever it is called.
    #[test]
    fn unknown_keys_never_pass(key in "[a-z_]{3,12}", spec in scenario_strategy()) {
        prop_assume!(!matches!(
            key.as_str(),
            "name" | "description" | "campus" | "city" | "trace" | "loads" | "workload" | "faults"
        ));
        let text = emit_scenario(&spec);
        // Splice the stray key into the top-level object.
        let spliced = text.replacen('{', &format!("{{\n  \"{key}\": 1,"), 1);
        let e = parse_scenario(&spliced, "prop").expect_err("stray key must fail");
        prop_assert!(
            e.message.contains(&format!("unknown key `{key}`")),
            "{e}"
        );
    }

    /// Fault windows are validated exactly: accepted iff
    /// `0 <= start < end` (NaN anywhere rejects), and malformed
    /// schedules never panic the validator.
    #[test]
    fn fault_windows_validate_exactly(
        start in (-100.0f64..600.0),
        len in (-50.0f64..50.0),
        nan_start in prop::bool::ANY,
        nan_end in prop::bool::ANY,
        pick in (0u8..3),
    ) {
        let start_s = if nan_start { f64::NAN } else { start };
        let end_s = if nan_end { f64::NAN } else { start + len };
        let fault = match pick {
            0 => FaultSpec::CellOutage { start_s, end_s, pcis: vec![60] },
            1 => FaultSpec::BackhaulBrownout { start_s, end_s, capacity_mbps: 100.0 },
            _ => FaultSpec::HandoffStorm { start_s, end_s, hysteresis_db: 1.0 },
        };
        let spec = ScenarioSpec {
            name: "w".into(),
            description: String::new(),
            campus: CampusSpec::default(),
            city: None,
            trace: None,
            loads: LoadSpec::default(),
            workload: WorkloadSpec::Survey(SurveySpec::default()),
            faults: vec![fault],
        };
        let well_formed = start_s >= 0.0 && end_s > start_s; // false on NaN
        prop_assert_eq!(spec.validate().is_ok(), well_formed, "window [{start_s}, {end_s})");
    }

    /// Arbitrary byte mutations of a canonical file never panic the
    /// parser: it returns Ok or a located error.
    #[test]
    fn mutated_sources_never_panic(
        spec in scenario_strategy(),
        at_frac in (0.0f64..1.0),
        byte in (0u8..128),
    ) {
        let mut text = emit_scenario(&spec).into_bytes();
        let at = ((text.len() - 1) as f64 * at_frac) as usize;
        text[at] = byte;
        // Parsing may fail (usually does) but must not panic, and any
        // error must carry the display name we passed in.
        if let Err(e) = parse_scenario(&String::from_utf8_lossy(&text), "mut") {
            prop_assert_eq!(e.file.as_str(), "mut");
        }
    }
}
