//! A minimal JSON reader.
//!
//! The workspace's vendored `serde_json` subset is write-only, but the
//! benchmark-regression gate must *read* committed baselines
//! (`golden/bench-baseline.json`) back. This module parses the small,
//! machine-written JSON this workspace itself emits: objects, arrays,
//! strings, integers, floats, booleans and null. It is strict about
//! structure (trailing garbage is an error) and keeps object keys in a
//! sorted map, matching the writer's stable ordering.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number that is a lossless unsigned integer.
    UInt(u64),
    /// Any other number (negative, fractional, exponent).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; keys sorted (duplicate keys: last wins).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The object's map, if this is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Object(m) => Some(m),
            _ => None,
        }
    }

    /// The value as `u64`, if losslessly representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::UInt(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The string contents, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "json error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            map.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-ascii \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not produced by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe_free_utf8_prefix(rest);
                    if s.is_empty() {
                        // Invalid UTF-8 (unreachable for `&str` input):
                        // substitute and advance so the loop terminates.
                        out.push('\u{fffd}');
                        self.pos += 1;
                    } else {
                        out.push_str(s);
                        self.pos += s.len();
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        // The scanned bytes are all ASCII, so this cannot fail; the
        // error arm keeps the parser total instead of panicking.
        let Ok(text) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            return Err(self.err("invalid number"));
        };
        if let Ok(u) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(u));
        }
        text.parse::<f64>()
            .map(JsonValue::Float)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Longest prefix of `bytes` that contains no `"` or `\` — returned as
/// `&str`. The input comes from a `&str`, so the prefix is valid UTF-8;
/// should that invariant ever break, the valid prefix is returned and
/// the caller substitutes the offending byte.
fn unsafe_free_utf8_prefix(bytes: &[u8]) -> &str {
    let end = bytes
        .iter()
        .position(|&b| b == b'"' || b == b'\\')
        .unwrap_or(bytes.len());
    match std::str::from_utf8(&bytes[..end]) {
        Ok(s) => s,
        Err(e) => {
            // `valid_up_to` is a char boundary, so re-slicing succeeds.
            std::str::from_utf8(&bytes[..e.valid_up_to()]).unwrap_or("")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), JsonValue::UInt(42));
        assert_eq!(parse("-1.5").unwrap(), JsonValue::Float(-1.5));
        assert_eq!(parse("\"hi\"").unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn large_u64_counters_are_lossless() {
        let v = parse(&format!("{}", u64::MAX)).unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":{"b":[1,2,{"c":"d\n"}]},"e":null}"#).unwrap();
        let b = v.get("a").and_then(|a| a.get("b")).unwrap();
        match b {
            JsonValue::Array(items) => {
                assert_eq!(items.len(), 3);
                assert_eq!(items[2].get("c").and_then(JsonValue::as_str), Some("d\n"));
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn round_trips_the_snapshot_writer() {
        use crate::MetricsHandle;
        let m = MetricsHandle::new();
        m.counter("sim.events").add(123);
        m.gauge("depth").record(9);
        m.histogram("tries", &[1, 4]).observe(2);
        let json = m.snapshot().to_json();
        let v = parse(&json).unwrap();
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("sim.events"))
                .and_then(JsonValue::as_u64),
            Some(123)
        );
        assert_eq!(
            v.get("histograms")
                .and_then(|h| h.get("tries"))
                .and_then(|t| t.get("count"))
                .and_then(JsonValue::as_u64),
            Some(1)
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }
}
