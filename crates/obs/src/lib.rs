//! # fiveg-obs
//!
//! Zero-dependency observability for the `fiveg` workspace: a
//! thread-safe metrics registry ([`MetricsHandle`]) with monotonic
//! [`Counter`]s, high-watermark [`MaxGauge`]s, fixed-bucket
//! [`Histogram`]s and scoped [`SpanGuard`] timers, plus a deterministic
//! [`Snapshot`] that serializes to JSON with stable key order.
//!
//! The paper's methodology rests on continuous KPI logging (XCAL traces
//! of MCS/PRB, HARQ retransmissions, RRC dwell times); this crate is the
//! simulator-side equivalent: every hot layer records how much work a
//! run actually executed, so a calibration drift is distinguishable from
//! a performance regression.
//!
//! ## The current-handle scope
//!
//! Simulation layers (`simcore`, `net`, `transport`, `ran`, `energy`)
//! must not thread a metrics argument through every constructor, so the
//! active handle is ambient: the campaign executor installs a per-job
//! handle with [`scoped`], and instrumented code records through the
//! free functions ([`counter_add`], [`observe`], [`gauge_max`]), which
//! are no-ops when no handle is installed (unit tests, ad-hoc callers).
//! The scope is per-thread; a job unit runs entirely on one worker
//! thread, so per-job metrics depend only on the job's seed — never on
//! worker count or scheduling, extending the campaign determinism
//! guarantee to metrics.
//!
//! ## Determinism contract
//!
//! Counters, gauges and histograms count *simulation* work and are
//! bit-identical for a fixed seed. Span timers measure *host* wall time
//! and are advisory: [`Snapshot::deterministic`] excludes them, and CI
//! only warns (never fails) on timing changes.
//!
//! ```
//! use fiveg_obs::MetricsHandle;
//!
//! let m = MetricsHandle::new();
//! let n = fiveg_obs::scoped(&m, || {
//!     fiveg_obs::counter_add("demo.events", 3);
//!     fiveg_obs::observe("demo.tries", &[1, 2, 4], 2);
//!     42
//! });
//! assert_eq!(n, 42);
//! let snap = m.snapshot();
//! assert_eq!(snap.counters["demo.events"], 3);
//! assert_eq!(snap.deterministic()["demo.tries.le_2"], 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod metrics;
pub mod snapshot;

pub use json::{parse as parse_json, JsonError, JsonValue};
pub use metrics::{Counter, Histogram, MaxGauge, MetricsHandle, SpanGuard};
pub use snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};

use std::cell::RefCell;

thread_local! {
    /// Stack of installed handles; the innermost scope wins.
    static CURRENT: RefCell<Vec<MetricsHandle>> = const { RefCell::new(Vec::new()) };
}

/// Pops the scope on drop, so a panicking job never leaks its handle
/// onto the worker thread that `catch_unwind` will reuse.
struct ScopeGuard;

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Runs `f` with `handle` installed as the thread's current metrics
/// sink. Scopes nest; the innermost wins. The handle is uninstalled on
/// the way out even if `f` panics.
pub fn scoped<R>(handle: &MetricsHandle, f: impl FnOnce() -> R) -> R {
    CURRENT.with(|c| c.borrow_mut().push(handle.clone()));
    let _guard = ScopeGuard;
    f()
}

/// The thread's current metrics handle, if one is installed.
pub fn current() -> Option<MetricsHandle> {
    CURRENT.with(|c| c.borrow().last().cloned())
}

/// Adds `n` to counter `name` on the current handle; no-op when no
/// handle is installed.
pub fn counter_add(name: &'static str, n: u64) {
    if let Some(m) = current() {
        m.counter(name).add(n);
    }
}

/// Raises max-gauge `name` to `v` on the current handle; no-op when no
/// handle is installed.
pub fn gauge_max(name: &'static str, v: u64) {
    if let Some(m) = current() {
        m.gauge(name).record(v);
    }
}

/// Records `v` into histogram `name` (registered with `edges` on first
/// use) on the current handle; no-op when no handle is installed.
pub fn observe(name: &'static str, edges: &[u64], v: u64) {
    if let Some(m) = current() {
        m.histogram(name, edges).observe(v);
    }
}

/// Starts a span timer on the current handle, if one is installed.
/// Hold the returned guard for the duration of the timed scope.
pub fn span(name: &'static str) -> Option<SpanGuard> {
    current().map(|m| m.span(name))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_functions_are_noops_without_a_scope() {
        // Must not panic or allocate registries anywhere.
        counter_add("nope", 1);
        gauge_max("nope", 1);
        observe("nope", &[1], 1);
        assert!(span("nope").is_none());
        assert!(current().is_none());
    }

    #[test]
    fn scopes_nest_and_unwind() {
        let outer = MetricsHandle::new();
        let inner = MetricsHandle::new();
        scoped(&outer, || {
            counter_add("c", 1);
            scoped(&inner, || counter_add("c", 10));
            counter_add("c", 2);
        });
        assert_eq!(outer.snapshot().counters["c"], 3);
        assert_eq!(inner.snapshot().counters["c"], 10);
        assert!(current().is_none());
    }

    #[test]
    fn panicking_scope_is_popped() {
        let m = MetricsHandle::new();
        let r = std::panic::catch_unwind(|| {
            scoped(&m, || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(current().is_none(), "panic must not leak the scope");
    }

    #[test]
    fn scope_is_per_thread() {
        let m = MetricsHandle::new();
        scoped(&m, || {
            std::thread::spawn(|| assert!(current().is_none()))
                .join()
                .unwrap();
        });
    }
}
