//! The metrics registry: counters, max-gauges, fixed-bucket histograms
//! and span timers behind a cloneable [`MetricsHandle`].
//!
//! Everything is thread-safe (plain atomics behind `Arc`s); instruments
//! are resolved by `&'static str` name through a mutex-guarded map once
//! and then updated lock-free. Counter/gauge/histogram values are
//! **deterministic** — they count simulation work, which depends only on
//! the seed — while span timers measure host wall time and are advisory
//! (see `DESIGN.md §Observability`).

use crate::snapshot::{HistogramSnapshot, Snapshot, SpanSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A monotonic counter. Cloning shares the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increments by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A high-watermark gauge: `record` keeps the maximum ever seen.
#[derive(Debug, Clone, Default)]
pub struct MaxGauge(Arc<AtomicU64>);

impl MaxGauge {
    /// Raises the watermark to `v` if `v` exceeds it.
    pub fn record(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current watermark.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// Buckets have *less-than-or-equal* upper edges; one implicit overflow
/// bucket catches everything above the last edge. Edges are fixed at
/// first registration — re-registering the same name with different
/// edges panics, because merged snapshots would be meaningless.
#[derive(Debug)]
pub struct Histogram {
    edges: Box<[u64]>,
    /// One slot per edge plus the overflow slot.
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    fn new(edges: &[u64]) -> Histogram {
        assert!(!edges.is_empty(), "a histogram needs at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly increasing"
        );
        Histogram {
            edges: edges.into(),
            buckets: (0..edges.len() + 1).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: u64) {
        let idx = self.edges.partition_point(|&e| e < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// The configured bucket edges.
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            edges: self.edges.to_vec(),
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Aggregated wall-time statistics for one span name.
#[derive(Debug, Default)]
pub struct SpanStats {
    count: AtomicU64,
    total_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl SpanStats {
    fn record(&self, ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    fn snapshot(&self) -> SpanSnapshot {
        SpanSnapshot {
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
            max_ns: self.max_ns.load(Ordering::Relaxed),
        }
    }
}

/// A scoped wall-clock timer: created by [`MetricsHandle::span`], it
/// records its lifetime into the span's statistics on drop.
///
/// Recorded durations are clamped to ≥ 1 ns: host clocks can report a
/// zero elapsed time for very short scopes (coarse clock sources), and a
/// zero-width span is indistinguishable from "never ran" downstream.
#[derive(Debug)]
pub struct SpanGuard {
    stats: Arc<SpanStats>,
    started: Instant,
}

impl SpanGuard {
    /// Elapsed nanoseconds so far (clamped to ≥ 1).
    pub fn elapsed_ns(&self) -> u64 {
        clamp_span_ns(self.started.elapsed().as_nanos())
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.stats.record(self.elapsed_ns());
    }
}

/// Clamps a raw elapsed reading into the span invariant: strictly
/// positive, saturating at `u64::MAX` rather than wrapping.
pub(crate) fn clamp_span_ns(raw: u128) -> u64 {
    u64::try_from(raw).unwrap_or(u64::MAX).max(1)
}

#[derive(Debug, Default)]
struct Instruments {
    counters: BTreeMap<&'static str, Counter>,
    gauges: BTreeMap<&'static str, MaxGauge>,
    histograms: BTreeMap<&'static str, Arc<Histogram>>,
    spans: BTreeMap<&'static str, Arc<SpanStats>>,
}

/// A cloneable handle onto one metrics registry.
///
/// All clones share the same instruments; [`MetricsHandle::snapshot`]
/// freezes the registry into a [`Snapshot`] with stable (sorted) key
/// order. The campaign executor creates one handle per job attempt, so
/// per-job metrics never bleed across jobs or retries.
#[derive(Debug, Clone, Default)]
pub struct MetricsHandle {
    inner: Arc<Mutex<Instruments>>,
}

impl MetricsHandle {
    /// Creates an empty registry.
    pub fn new() -> MetricsHandle {
        MetricsHandle::default()
    }

    /// Resolves (registering on first use) the counter `name`.
    pub fn counter(&self, name: &'static str) -> Counter {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .counters
            .entry(name)
            .or_default()
            .clone()
    }

    /// Resolves (registering on first use) the max-gauge `name`.
    pub fn gauge(&self, name: &'static str) -> MaxGauge {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .gauges
            .entry(name)
            .or_default()
            .clone()
    }

    /// Resolves (registering on first use) the histogram `name` with the
    /// given bucket edges.
    ///
    /// # Panics
    /// If `name` is already registered with different edges.
    pub fn histogram(&self, name: &'static str, edges: &[u64]) -> Arc<Histogram> {
        let h = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .histograms
            .entry(name)
            .or_insert_with(|| Arc::new(Histogram::new(edges)))
            .clone();
        assert!(
            h.edges() == edges,
            "histogram `{name}` re-registered with different edges"
        );
        h
    }

    /// Starts a span timer; the elapsed wall time is recorded when the
    /// returned guard drops.
    pub fn span(&self, name: &'static str) -> SpanGuard {
        let stats = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .spans
            .entry(name)
            .or_default()
            .clone();
        SpanGuard {
            stats,
            started: Instant::now(),
        }
    }

    /// Freezes every instrument into a deterministic snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Snapshot {
            counters: inner
                .counters
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(&k, v)| (k.to_string(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(&k, v)| (k.to_string(), v.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let m = MetricsHandle::new();
        let a = m.counter("x");
        let b = m.counter("x");
        a.inc();
        b.add(4);
        assert_eq!(m.counter("x").get(), 5);
        assert_eq!(m.counter("y").get(), 0);
    }

    #[test]
    fn gauge_keeps_the_maximum() {
        let m = MetricsHandle::new();
        let g = m.gauge("depth");
        g.record(3);
        g.record(9);
        g.record(7);
        assert_eq!(g.get(), 9);
    }

    #[test]
    fn histogram_bucket_edges_are_le_semantics() {
        let m = MetricsHandle::new();
        let h = m.histogram("tries", &[1, 2, 4]);
        // One observation per interesting boundary: below/at each edge
        // lands in that edge's bucket, above the last edge overflows.
        for v in [0, 1, 2, 3, 4, 5, 100] {
            h.observe(v);
        }
        let snap = m.snapshot();
        let hs = &snap.histograms["tries"];
        assert_eq!(hs.edges, vec![1, 2, 4]);
        // le_1: {0,1}; le_2: {2}; le_4: {3,4}; overflow: {5,100}.
        assert_eq!(hs.buckets, vec![2, 1, 2, 2]);
        assert_eq!(hs.count, 7);
        assert_eq!(hs.sum, 115);
    }

    #[test]
    #[should_panic(expected = "different edges")]
    fn histogram_edge_mismatch_panics() {
        let m = MetricsHandle::new();
        m.histogram("h", &[1, 2]);
        m.histogram("h", &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_edges() {
        let m = MetricsHandle::new();
        m.histogram("h", &[2, 1]);
    }

    #[test]
    fn counters_merge_across_worker_threads() {
        let m = MetricsHandle::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    let c = m.counter("shared");
                    let h = m.histogram("obs", &[10, 100]);
                    for i in 0..1_000u64 {
                        c.inc();
                        h.observe(i % 150);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counters["shared"], 4_000);
        assert_eq!(snap.histograms["obs"].count, 4_000);
        let bucket_total: u64 = snap.histograms["obs"].buckets.iter().sum();
        assert_eq!(bucket_total, 4_000);
    }

    #[test]
    fn span_guard_records_positive_durations() {
        let m = MetricsHandle::new();
        {
            let _g = m.span("work");
        }
        {
            let _g = m.span("work");
        }
        let s = &m.snapshot().spans["work"];
        assert_eq!(s.count, 2);
        assert!(s.total_ns >= 2, "even empty scopes record ≥ 1 ns each");
        assert!(s.max_ns >= 1);
    }
}
