//! Frozen metrics: a deterministic, mergeable, JSON-serializable view
//! of a registry at one instant.
//!
//! Snapshots separate two trust classes:
//!
//! * **counters / gauges / histograms** count *simulation* work, so for
//!   a fixed seed they are bit-identical run to run — these feed golden
//!   checks and benchmark drift detection;
//! * **spans** measure *host* wall time — advisory only, never compared.
//!
//! [`Snapshot::to_json`] emits keys in sorted order with a fixed layout,
//! so equal snapshots produce equal bytes — the property the determinism
//! CI stage relies on.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Frozen state of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper edges (`observe(v)` lands in the first edge ≥ v).
    pub edges: Vec<u64>,
    /// Per-bucket counts; one slot per edge plus the overflow slot.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
}

/// Frozen state of one span timer (advisory wall time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanSnapshot {
    /// Completed spans.
    pub count: u64,
    /// Total wall time, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

/// A frozen, mergeable view of a whole metrics registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Monotonic counters, by name.
    pub counters: BTreeMap<String, u64>,
    /// High-watermark gauges, by name.
    pub gauges: BTreeMap<String, u64>,
    /// Histograms, by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Span timers, by name (advisory; excluded from determinism checks).
    pub spans: BTreeMap<String, SpanSnapshot>,
}

impl Snapshot {
    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
            && self.spans.is_empty()
    }

    /// Folds `other` into `self`: counters and histogram buckets add,
    /// gauges take the maximum, spans add. Histograms present on both
    /// sides must share edges.
    ///
    /// # Panics
    /// If a histogram name appears on both sides with different edges.
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            let slot = self.gauges.entry(k.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
        for (k, h) in &other.histograms {
            match self.histograms.get_mut(k) {
                None => {
                    self.histograms.insert(k.clone(), h.clone());
                }
                Some(mine) => {
                    assert!(
                        mine.edges == h.edges,
                        "merging histogram `{k}` with different edges"
                    );
                    for (b, o) in mine.buckets.iter_mut().zip(&h.buckets) {
                        *b += o;
                    }
                    mine.count += h.count;
                    mine.sum += h.sum;
                }
            }
        }
        for (k, s) in &other.spans {
            let slot = self.spans.entry(k.clone()).or_insert(SpanSnapshot {
                count: 0,
                total_ns: 0,
                max_ns: 0,
            });
            slot.count += s.count;
            slot.total_ns += s.total_ns;
            slot.max_ns = slot.max_ns.max(s.max_ns);
        }
    }

    /// Flattens every *deterministic* instrument into one sorted
    /// `name → value` map: counters and gauges as-is, histograms as
    /// `name.le_EDGE` / `name.overflow` buckets plus `name.count` and
    /// `name.sum`. Spans are deliberately absent — this map is what
    /// benchmark baselines and the determinism gate byte-compare.
    pub fn deterministic(&self) -> BTreeMap<String, u64> {
        let mut out = BTreeMap::new();
        for (k, &v) in &self.counters {
            out.insert(k.clone(), v);
        }
        for (k, &v) in &self.gauges {
            out.insert(k.clone(), v);
        }
        for (k, h) in &self.histograms {
            for (i, &b) in h.buckets.iter().enumerate() {
                let key = match h.edges.get(i) {
                    Some(e) => format!("{k}.le_{e}"),
                    None => format!("{k}.overflow"),
                };
                out.insert(key, b);
            }
            out.insert(format!("{k}.count"), h.count);
            out.insert(format!("{k}.sum"), h.sum);
        }
        out
    }

    /// Renders the snapshot as JSON with stable key order: top-level
    /// sections `counters`, `gauges`, `histograms`, `spans`, each sorted
    /// by name. Equal snapshots render to equal bytes.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push('{');
        write_u64_map(&mut s, "counters", &self.counters);
        s.push(',');
        write_u64_map(&mut s, "gauges", &self.gauges);
        s.push(',');
        write_key(&mut s, "histograms");
        s.push('{');
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_key(&mut s, k);
            s.push('{');
            write_key(&mut s, "edges");
            write_u64_array(&mut s, &h.edges);
            s.push(',');
            write_key(&mut s, "buckets");
            write_u64_array(&mut s, &h.buckets);
            let _ = write!(s, ",\"count\":{},\"sum\":{}", h.count, h.sum);
            s.push('}');
        }
        s.push('}');
        s.push(',');
        write_key(&mut s, "spans");
        s.push('{');
        for (i, (k, sp)) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_key(&mut s, k);
            let _ = write!(
                s,
                "{{\"count\":{},\"total_ns\":{},\"max_ns\":{}}}",
                sp.count, sp.total_ns, sp.max_ns
            );
        }
        s.push('}');
        s.push('}');
        s
    }
}

/// Writes `"key":` with JSON string escaping.
fn write_key(out: &mut String, key: &str) {
    out.push('"');
    escape_into(out, key);
    out.push_str("\":");
}

/// Escapes a string's characters into `out` (no surrounding quotes).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn write_u64_map(out: &mut String, section: &str, map: &BTreeMap<String, u64>) {
    write_key(out, section);
    out.push('{');
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_key(out, k);
        let _ = write!(out, "{v}");
    }
    out.push('}');
}

fn write_u64_array(out: &mut String, vals: &[u64]) {
    out.push('[');
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsHandle;

    fn sample() -> Snapshot {
        let m = MetricsHandle::new();
        m.counter("b.two").add(2);
        m.counter("a.one").inc();
        m.gauge("depth").record(7);
        m.histogram("h", &[1, 10]).observe(5);
        drop(m.span("t"));
        m.snapshot()
    }

    #[test]
    fn json_key_order_is_stable_and_sorted() {
        let j = sample().to_json();
        // Counters render sorted regardless of registration order.
        let a = j.find("a.one").unwrap();
        let b = j.find("b.two").unwrap();
        assert!(a < b, "{j}");
        // Rendering the same snapshot twice is byte-identical, and two
        // independently built registries agree on everything
        // deterministic (spans carry wall time, so only those differ).
        let snap = sample();
        assert_eq!(snap.to_json(), snap.to_json());
        assert_eq!(sample().deterministic(), sample().deterministic());
        // Sections appear in fixed order.
        let (c, g, h, s) = (
            j.find("\"counters\"").unwrap(),
            j.find("\"gauges\"").unwrap(),
            j.find("\"histograms\"").unwrap(),
            j.find("\"spans\"").unwrap(),
        );
        assert!(c < g && g < h && h < s);
    }

    #[test]
    fn merge_adds_counters_and_maxes_gauges() {
        let mut a = sample();
        let b = sample();
        a.merge(&b);
        assert_eq!(a.counters["a.one"], 2);
        assert_eq!(a.counters["b.two"], 4);
        assert_eq!(a.gauges["depth"], 7, "gauges take max, not sum");
        assert_eq!(a.histograms["h"].count, 2);
        assert_eq!(a.spans["t"].count, 2);
    }

    #[test]
    #[should_panic(expected = "different edges")]
    fn merge_rejects_mismatched_histograms() {
        let m1 = MetricsHandle::new();
        m1.histogram("h", &[1]).observe(1);
        let m2 = MetricsHandle::new();
        m2.histogram("h", &[2]).observe(1);
        let mut a = m1.snapshot();
        a.merge(&m2.snapshot());
    }

    #[test]
    fn deterministic_flattens_histograms_and_drops_spans() {
        let flat = sample().deterministic();
        assert_eq!(flat["a.one"], 1);
        assert_eq!(flat["depth"], 7);
        assert_eq!(flat["h.le_1"], 0);
        assert_eq!(flat["h.le_10"], 1);
        assert_eq!(flat["h.overflow"], 0);
        assert_eq!(flat["h.count"], 1);
        assert_eq!(flat["h.sum"], 5);
        assert!(
            !flat.keys().any(|k| k.starts_with('t')),
            "span timings must not leak into the deterministic view"
        );
    }

    #[test]
    fn keys_are_escaped() {
        let mut s = Snapshot::default();
        s.counters.insert("we\"ird\n".into(), 1);
        let j = s.to_json();
        assert!(j.contains("we\\\"ird\\n"));
    }
}
