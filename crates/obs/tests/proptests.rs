//! Property-based tests for the observability crate.

use fiveg_obs::{MetricsHandle, Snapshot};
use proptest::prelude::*;

proptest! {
    /// Span timers never report a negative or zero-width duration, no
    /// matter how short the timed scope is or how many spans run: every
    /// completed span contributes at least 1 ns, so `total_ns >= count`
    /// and `max_ns >= 1` whenever `count > 0`.
    #[test]
    fn span_timers_are_strictly_positive(spins in prop::collection::vec(0u32..200, 1..40)) {
        let m = MetricsHandle::new();
        for spin in &spins {
            let g = m.span("work");
            // Busy-loop a little (possibly zero iterations — the
            // degenerate scope a coarse clock would report as 0 ns).
            std::hint::black_box((0..*spin).sum::<u32>());
            prop_assert!(g.elapsed_ns() >= 1);
            drop(g);
        }
        let snap = m.snapshot();
        let s = &snap.spans["work"];
        prop_assert_eq!(s.count, spins.len() as u64);
        prop_assert!(s.total_ns >= s.count, "each span records >= 1 ns");
        prop_assert!(s.max_ns >= 1);
        prop_assert!(s.max_ns <= s.total_ns);
    }

    /// Histogram invariants hold for arbitrary observations: bucket
    /// counts sum to the observation count, and the sum matches.
    #[test]
    fn histogram_buckets_partition_observations(vals in prop::collection::vec(0u64..5_000, 0..300)) {
        let m = MetricsHandle::new();
        let h = m.histogram("h", &[10, 100, 1_000]);
        for &v in &vals {
            h.observe(v);
        }
        let snap = m.snapshot();
        let hs = &snap.histograms["h"];
        prop_assert_eq!(hs.buckets.iter().sum::<u64>(), vals.len() as u64);
        prop_assert_eq!(hs.count, vals.len() as u64);
        prop_assert_eq!(hs.sum, vals.iter().sum::<u64>());
    }

    /// Merging snapshots is equivalent to recording everything into one
    /// registry (for counters), and JSON rendering stays stable.
    #[test]
    fn merge_matches_combined_recording(a in 0u64..10_000, b in 0u64..10_000) {
        let m1 = MetricsHandle::new();
        m1.counter("c").add(a);
        let m2 = MetricsHandle::new();
        m2.counter("c").add(b);
        let mut merged = m1.snapshot();
        merged.merge(&m2.snapshot());

        let all = MetricsHandle::new();
        all.counter("c").add(a + b);
        let combined: Snapshot = all.snapshot();
        prop_assert_eq!(merged.counters["c"], combined.counters["c"]);
        prop_assert_eq!(merged.to_json(), combined.to_json());
    }
}
