//! Error-path coverage for the fiveg-obs JSON reader.
//!
//! This parser gates two committed golden formats — the bench baseline
//! (`golden/bench-baseline.json`) and the lint baseline
//! (`golden/lint-baseline.json`) — so a malformed or truncated file
//! must fail loudly with a byte offset, never mis-parse.

use fiveg_obs::{parse_json, JsonValue};

fn err_at(input: &str) -> usize {
    parse_json(input).expect_err("must fail").offset
}

#[test]
fn truncated_documents_fail_with_offsets() {
    // Truncation at every structural layer: object, key, colon, value,
    // array, string, and mid-escape.
    for input in [
        "{",
        "{\"a\"",
        "{\"a\":",
        "{\"a\":1",
        "{\"a\":1,",
        "[",
        "[1",
        "[1,",
        "\"abc",
        "\"abc\\",
        "\"abc\\u00",
        "tru",
        "-",
    ] {
        let e = parse_json(input).expect_err(input);
        assert!(
            e.offset <= input.len(),
            "offset {} beyond input for {input:?}",
            e.offset
        );
    }
}

#[test]
fn truncated_u_escape_is_reported_as_such() {
    let e = parse_json("\"a\\u12").expect_err("truncated escape");
    assert!(e.message.contains("truncated"), "{e}");
}

#[test]
fn duplicate_keys_last_wins() {
    // The writers never emit duplicates; if a hand-edited baseline
    // does, the documented contract is last-wins, deterministically.
    let v = parse_json(r#"{"a": 1, "b": 2, "a": 3}"#).expect("parses");
    assert_eq!(v.get("a").and_then(JsonValue::as_u64), Some(3));
    assert_eq!(v.get("b").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(v.as_object().map(std::collections::BTreeMap::len), Some(2));
}

#[test]
fn invalid_unicode_escapes() {
    // Non-hex digits in \u.
    assert!(parse_json("\"\\uzzzz\"").is_err());
    // Multi-byte UTF-8 inside a \u escape's hex window is non-ascii.
    assert!(parse_json("\"\\u12é4\"").is_err());
    // Unknown escape letter.
    assert!(parse_json("\"\\q\"").is_err());
}

#[test]
fn unpaired_surrogates_become_replacement_chars() {
    // The writer never emits surrogates; reading one back cannot panic
    // and maps to U+FFFD so downstream comparisons stay total.
    let v = parse_json("\"a\\ud800b\"").expect("parses");
    assert_eq!(v.as_str(), Some("a\u{fffd}b"));
}

#[test]
fn raw_multibyte_utf8_passes_through() {
    let v = parse_json("\"héllo — ok\"").expect("parses");
    assert_eq!(v.as_str(), Some("héllo — ok"));
}

#[test]
fn trailing_garbage_is_rejected_with_position() {
    assert_eq!(err_at("{} x"), 3);
    assert!(parse_json("1 2").is_err());
    assert!(parse_json("{\"a\":1} {\"b\":2}").is_err());
}

#[test]
fn malformed_numbers_are_rejected() {
    for input in ["1e", "1e+", "--5", "1.2.3", "0x10"] {
        assert!(parse_json(input).is_err(), "{input:?} must fail");
    }
}

#[test]
fn structural_errors_are_rejected() {
    for input in [
        "{\"a\" 1}",         // missing colon
        "{\"a\":1 \"b\":2}", // missing comma
        "[1 2]",
        "{1: 2}", // non-string key
        "[,]",
        "{,}",
    ] {
        assert!(parse_json(input).is_err(), "{input:?} must fail");
    }
}
