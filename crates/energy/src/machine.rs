//! The RRC + DRX radio state machine (paper Fig. 25), replayed over a
//! traffic trace.
//!
//! Given a sequence of [`Burst`]s (arrival time + bytes), the machine
//! walks the timeline: idle paging → promotion (single for LTE, triple
//! for NSA NR) → continuous reception while a backlog exists →
//! inactivity window → C-DRX tail → idle, re-entering continuous
//! reception directly if data arrives before the tail expires. The
//! output is a power time-series (the pwrStrip trace of Fig. 23) plus
//! integrated energy.

use crate::params::RadioModel;
use fiveg_simcore::{Energy, Power, SimDuration, SimTime, TimeSeries};
use serde::{Deserialize, Serialize};

/// One application traffic burst.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Burst {
    /// Arrival time of the data (request issued / frame captured).
    pub at: SimTime,
    /// Bytes to transfer.
    pub bytes: u64,
    /// Peak rate the burst demands, Mbps (drives the dynamic-switching
    /// decision in `sched`).
    pub peak_rate_mbps: f64,
}

/// Radio machine states (for the trace annotation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RadioState {
    /// RRC_IDLE with paging DRX.
    Idle,
    /// Connection establishment / promotion.
    Promotion,
    /// Continuous reception (data moving).
    Active,
    /// Inactivity window after the last data (full receive power).
    Inactive,
    /// C-DRX tail.
    Tail,
}

/// Result of a replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EnergyTrace {
    /// Power samples over time (100 ms grid, like pwrStrip).
    pub series: TimeSeries,
    /// Total radio energy.
    pub energy: Energy,
    /// Time spent in continuous reception.
    pub active_time: SimDuration,
    /// When the radio finally returned to RRC_IDLE.
    pub idle_at: SimTime,
    /// `(state, start, end)` intervals, for assertions and plots.
    pub intervals: Vec<(RadioState, SimTime, SimTime)>,
}

impl EnergyTrace {
    /// Mean power over `[0, until]`.
    pub fn mean_power_until(&self, until: SimTime) -> Power {
        let secs = until.as_secs_f64();
        if secs <= 0.0 {
            return Power::from_milliwatts(0.0);
        }
        Power::from_watts(self.energy.joules() / secs)
    }
}

/// Replays bursts through a radio model.
#[derive(Debug, Clone)]
pub struct RadioStateMachine {
    /// The radio being modelled.
    pub radio: RadioModel,
    /// Whether promotion/tail overheads apply (false = the paper's
    /// "Oracle" with perfect sleep/wake).
    pub overheads: bool,
}

impl RadioStateMachine {
    /// A realistic machine for the radio.
    pub fn new(radio: RadioModel) -> Self {
        RadioStateMachine {
            radio,
            overheads: true,
        }
    }

    /// The paper's Oracle variant: no promotion, no inactivity window,
    /// no tail — the radio is powered exactly while data moves.
    pub fn oracle(radio: RadioModel) -> Self {
        RadioStateMachine {
            radio,
            overheads: false,
        }
    }

    /// Replays `bursts` (must be sorted by arrival time). The trace runs
    /// until the radio returns to idle after the last burst.
    pub fn replay(&self, bursts: &[Burst]) -> EnergyTrace {
        assert!(
            bursts.windows(2).all(|w| w[0].at <= w[1].at),
            "bursts must be time-sorted"
        );
        let rate_bps = self.radio.rate_mbps * 1e6;
        let drx = &self.radio.drx;
        let pw = &self.radio.power;
        let mut intervals: Vec<(RadioState, SimTime, SimTime)> = Vec::new();

        // Phase 1: compute transfer (Active) intervals under the serial
        // backlog model: a burst starts when it arrives and the radio is
        // free (after promotion if the radio had gone idle).
        let mut connected_until = SimTime::ZERO; // end of tail coverage
        let mut busy_until = SimTime::ZERO;
        let mut first = true;
        for b in bursts {
            let arrival = b.at;
            let need_promotion = self.overheads
                && (first || {
                    // The radio fell back to idle if the tail expired before
                    // this arrival and no transfer is pending.
                    arrival > connected_until && arrival >= busy_until
                });
            let mut start = arrival.max(busy_until);
            if need_promotion {
                let promo = drx.total_promotion();
                intervals.push((RadioState::Promotion, start, start + promo));
                start += promo;
            }
            let dur = SimDuration::from_secs_f64(b.bytes as f64 * 8.0 / rate_bps);
            intervals.push((RadioState::Active, start, start + dur));
            busy_until = start + dur;
            connected_until = busy_until + drx.t_inactivity + drx.t_tail;
            first = false;
        }

        // Phase 2: fill gaps between transfers with inactivity/tail/idle.
        let mut enriched: Vec<(RadioState, SimTime, SimTime)> = Vec::new();
        let mut cursor = SimTime::ZERO;
        for &(state, s, e) in &intervals {
            if s > cursor {
                if self.overheads && !enriched.is_empty() {
                    // Post-transfer: inactivity, then tail, then idle.
                    let inact_end = (cursor + drx.t_inactivity).min(s);
                    if inact_end > cursor {
                        enriched.push((RadioState::Inactive, cursor, inact_end));
                    }
                    let tail_end = (inact_end + drx.t_tail).min(s);
                    if tail_end > inact_end {
                        enriched.push((RadioState::Tail, inact_end, tail_end));
                    }
                    if s > tail_end {
                        enriched.push((RadioState::Idle, tail_end, s));
                    }
                } else {
                    enriched.push((RadioState::Idle, cursor, s));
                }
            }
            enriched.push((state, s, e));
            cursor = cursor.max(e);
        }
        // Trailing inactivity + tail after the final transfer.
        if self.overheads && !enriched.is_empty() {
            let inact_end = cursor + drx.t_inactivity;
            enriched.push((RadioState::Inactive, cursor, inact_end));
            enriched.push((RadioState::Tail, inact_end, inact_end + drx.t_tail));
            cursor = inact_end + drx.t_tail;
        }

        // Phase 3: integrate power and build the 100 ms series.
        let power_of = |state: RadioState| -> Power {
            match state {
                RadioState::Idle => pw.idle,
                RadioState::Promotion => pw.promotion,
                RadioState::Active => pw.active,
                RadioState::Inactive => pw.cdrx_on,
                RadioState::Tail => pw.tail_average(drx),
            }
        };
        let mut energy = Energy::from_joules(0.0);
        let mut active_time = SimDuration::ZERO;
        for &(state, s, e) in &enriched {
            let dur = e.since(s).as_secs_f64();
            energy += power_of(state).over_seconds(dur);
            if state == RadioState::Active {
                active_time += e.since(s);
            }
            // Dwell times are virtual (simulation-clock) nanoseconds, so
            // they are deterministic per seed despite being "time".
            let label = match state {
                RadioState::Idle => "energy.dwell_ns.idle",
                RadioState::Promotion => "energy.dwell_ns.promotion",
                RadioState::Active => "energy.dwell_ns.active",
                RadioState::Inactive => "energy.dwell_ns.inactive",
                RadioState::Tail => "energy.dwell_ns.tail",
            };
            fiveg_obs::counter_add(label, e.since(s).as_nanos());
        }
        fiveg_obs::counter_add("energy.transitions", enriched.len() as u64);
        let mut series = TimeSeries::new();
        let step = SimDuration::from_millis(100);
        let mut t = SimTime::ZERO;
        let mut idx = 0usize;
        while t <= cursor {
            while idx < enriched.len() && enriched[idx].2 <= t {
                idx += 1;
            }
            let p = if idx < enriched.len() && enriched[idx].1 <= t {
                power_of(enriched[idx].0)
            } else {
                pw.idle
            };
            series.push(t, p.milliwatts());
            t += step;
        }

        EnergyTrace {
            series,
            energy,
            active_time,
            idle_at: cursor,
            intervals: enriched,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RadioModel;

    fn burst(at_ms: u64, bytes: u64) -> Burst {
        Burst {
            at: SimTime::from_millis(at_ms),
            bytes,
            peak_rate_mbps: 10.0,
        }
    }

    #[test]
    fn single_burst_walks_all_states() {
        let m = RadioStateMachine::new(RadioModel::nr_nsa_day());
        let tr = m.replay(&[burst(0, 10_000_000)]);
        let states: Vec<RadioState> = tr.intervals.iter().map(|&(s, ..)| s).collect();
        assert!(states.contains(&RadioState::Promotion));
        assert!(states.contains(&RadioState::Active));
        assert!(states.contains(&RadioState::Inactive));
        assert!(states.contains(&RadioState::Tail));
        // Promotion for NSA ≈ 3.5 s, transfer ≈ 91 ms, tail 21.4 s.
        assert!((tr.idle_at.as_secs_f64() - (3.542 + 0.0909 + 0.1 + 21.44)).abs() < 0.05);
    }

    #[test]
    fn nsa_tail_twice_the_lte_tail() {
        // Fig. 23: 4G returns to idle ≈10 s after the transfer, 5G ≈20 s.
        let lte = RadioStateMachine::new(RadioModel::lte_day()).replay(&[burst(0, 1_000_000)]);
        let nr = RadioStateMachine::new(RadioModel::nr_nsa_day()).replay(&[burst(0, 1_000_000)]);
        let lte_after = lte.idle_at.as_secs_f64();
        let nr_after = nr.idle_at.as_secs_f64();
        assert!((9.0..13.0).contains(&(lte_after - 0.7)), "lte {lte_after}");
        assert!(nr_after > lte_after + 9.0, "nr {nr_after} lte {lte_after}");
    }

    #[test]
    fn back_to_back_bursts_skip_promotion() {
        let m = RadioStateMachine::new(RadioModel::nr_nsa_day());
        let tr = m.replay(&[burst(0, 1_000_000), burst(4_500, 1_000_000)]);
        let promos = tr
            .intervals
            .iter()
            .filter(|&&(s, ..)| s == RadioState::Promotion)
            .count();
        assert_eq!(promos, 1, "second burst lands inside the tail");
    }

    #[test]
    fn long_idle_gap_repromotes() {
        let m = RadioStateMachine::new(RadioModel::nr_nsa_day());
        // Second burst 40 s later: tail (21.4 s + promo ≈3.5 + transfer)
        // has expired.
        let tr = m.replay(&[burst(0, 1_000_000), burst(40_000, 1_000_000)]);
        let promos = tr
            .intervals
            .iter()
            .filter(|&&(s, ..)| s == RadioState::Promotion)
            .count();
        assert_eq!(promos, 2);
    }

    #[test]
    fn oracle_has_no_overheads() {
        let real = RadioStateMachine::new(RadioModel::nr_nsa_day());
        let oracle = RadioStateMachine::oracle(RadioModel::nr_nsa_day());
        let bursts = [burst(0, 50_000_000)];
        let e_real = real.replay(&bursts).energy.joules();
        let e_oracle = oracle.replay(&bursts).energy.joules();
        assert!(e_oracle < e_real);
        // Oracle energy ≈ transfer time × active power.
        let expect = 50_000_000.0 * 8.0 / 880e6 * 2.9;
        assert!(
            (e_oracle - expect).abs() / expect < 0.05,
            "{e_oracle} vs {expect}"
        );
    }

    #[test]
    fn energy_positive_and_series_covers_timeline() {
        let m = RadioStateMachine::new(RadioModel::lte_day());
        let tr = m.replay(&[burst(0, 5_000_000), burst(3_000, 5_000_000)]);
        assert!(tr.energy.joules() > 0.0);
        assert!(!tr.series.is_empty());
        let last = tr.series.last().expect("non-empty").0;
        assert!(last + SimDuration::from_millis(200) >= tr.idle_at);
        assert!(tr.active_time > SimDuration::ZERO);
    }

    #[test]
    fn jagged_pattern_for_spaced_loads() {
        // Fig. 23: web loads every 3 s produce jagged power (active
        // spikes over a tail plateau).
        let m = RadioStateMachine::new(RadioModel::nr_nsa_day());
        let bursts: Vec<Burst> = (0..10)
            .map(|i| burst(10_000 + i * 3_000, 2_000_000))
            .collect();
        let tr = m.replay(&bursts);
        let v = tr.series.values();
        let max = v.iter().copied().fold(f64::MIN, f64::max);
        let min_mid: f64 = v
            .iter()
            .skip(150)
            .take(100)
            .copied()
            .fold(f64::MAX, f64::min);
        assert!(max >= 2_800.0, "active peaks {max}");
        assert!(min_mid < 1_000.0, "between loads drops to DRX {min_mid}");
    }

    #[test]
    #[should_panic(expected = "time-sorted")]
    fn rejects_unsorted_bursts() {
        let m = RadioStateMachine::new(RadioModel::lte_day());
        let _ = m.replay(&[burst(1_000, 1), burst(0, 1)]);
    }
}
