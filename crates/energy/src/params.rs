//! Energy-model parameters.
//!
//! DRX timers are the operator's values extracted via XCAL (paper
//! Tab. 7). Power draws are calibrated so the paper's headline ratios
//! emerge: the 5G module draws 2–3× the 4G module and ≈1.8× the screen,
//! accounts for ≈55 % of the phone's budget under load (Fig. 21), and
//! its energy-per-bit at saturation is ≈¼–⅓ of 4G's (Fig. 22).

use fiveg_simcore::{Power, SimDuration};
use serde::{Deserialize, Serialize};

/// DRX/RRC timer set (paper Tab. 7).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DrxParams {
    /// Paging DRX cycle in RRC_IDLE.
    pub t_idle_cycle: SimDuration,
    /// On-duration per DRX cycle.
    pub t_on: SimDuration,
    /// Promotion delay from idle to connected (LTE leg).
    pub t_lte_promotion: SimDuration,
    /// LTE→NR activation delay (NSA only).
    pub t_4r_5r: SimDuration,
    /// NR promotion delay (NSA only).
    pub t_nr_promotion: SimDuration,
    /// DRX inactivity timer after the last data.
    pub t_inactivity: SimDuration,
    /// Long C-DRX cycle during the tail.
    pub t_long_cycle: SimDuration,
    /// Connected-DRX tail before falling back to idle.
    pub t_tail: SimDuration,
}

impl DrxParams {
    /// The paper's LTE configuration (Tab. 7).
    pub fn paper_lte() -> Self {
        DrxParams {
            t_idle_cycle: SimDuration::from_millis(1280),
            t_on: SimDuration::from_millis(10),
            t_lte_promotion: SimDuration::from_millis(623),
            t_4r_5r: SimDuration::ZERO,
            t_nr_promotion: SimDuration::ZERO,
            t_inactivity: SimDuration::from_millis(80),
            t_long_cycle: SimDuration::from_millis(320),
            t_tail: SimDuration::from_millis(10_720),
        }
    }

    /// The paper's NSA NR configuration (Tab. 7): the radio must first
    /// promote through the LTE state machine (623 ms), activate the NR
    /// leg (1238 ms) and promote it (1681 ms); the tail is twice LTE's.
    pub fn paper_nr_nsa() -> Self {
        DrxParams {
            t_idle_cycle: SimDuration::from_millis(1280),
            t_on: SimDuration::from_millis(10),
            t_lte_promotion: SimDuration::from_millis(623),
            t_4r_5r: SimDuration::from_millis(1238),
            t_nr_promotion: SimDuration::from_millis(1681),
            t_inactivity: SimDuration::from_millis(100),
            t_long_cycle: SimDuration::from_millis(320),
            t_tail: SimDuration::from_millis(21_440),
        }
    }

    /// Total promotion latency from idle to data transfer.
    pub fn total_promotion(&self) -> SimDuration {
        self.t_lte_promotion + self.t_4r_5r + self.t_nr_promotion
    }
}

/// Radio power draws per state, mW.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioPower {
    /// RRC_IDLE average (paging duty cycle folded in).
    pub idle: Power,
    /// During promotion signalling.
    pub promotion: Power,
    /// Continuous reception (active transfer).
    pub active: Power,
    /// C-DRX on-duration during the tail.
    pub cdrx_on: Power,
    /// C-DRX sleep during the tail.
    pub cdrx_sleep: Power,
}

impl RadioPower {
    /// Calibrated 4G module.
    pub fn paper_lte() -> Self {
        RadioPower {
            idle: Power::from_milliwatts(15.0),
            promotion: Power::from_milliwatts(1_100.0),
            active: Power::from_milliwatts(1_350.0),
            cdrx_on: Power::from_milliwatts(1_100.0),
            cdrx_sleep: Power::from_milliwatts(210.0),
        }
    }

    /// Calibrated 5G NSA module (includes the LTE anchor's share; the
    /// separate-modem + 4G SoC packaging of early 5G phones is what
    /// makes it so hungry — Sec. 6.1).
    pub fn paper_nr_nsa() -> Self {
        RadioPower {
            idle: Power::from_milliwatts(25.0),
            promotion: Power::from_milliwatts(2_300.0),
            active: Power::from_milliwatts(2_900.0),
            cdrx_on: Power::from_milliwatts(2_300.0),
            // The early separate-modem 5G packaging sleeps badly — ≈1.4×
            // the 4G module's C-DRX floor, and the tail lasts twice as
            // long (Tab. 7), so the Fig. 23 showcase lands at ≈2.3× the
            // 4G energy.
            cdrx_sleep: Power::from_milliwatts(300.0),
        }
    }

    /// Average power over one C-DRX tail cycle.
    pub fn tail_average(&self, drx: &DrxParams) -> Power {
        let on = drx.t_on.as_secs_f64();
        let cycle = drx.t_long_cycle.as_secs_f64();
        let duty = (on / cycle).clamp(0.0, 1.0);
        self.cdrx_on * duty + self.cdrx_sleep * (1.0 - duty)
    }
}

/// A radio model: timers + powers + achievable downlink rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RadioModel {
    /// Human-readable name ("LTE", "NR NSA", ...).
    pub name: &'static str,
    /// DRX timers.
    pub drx: DrxParams,
    /// Power draws.
    pub power: RadioPower,
    /// Effective transfer rate for trace replay, Mbps.
    pub rate_mbps: f64,
}

impl RadioModel {
    /// The 4G module at the daytime downlink baseline.
    pub fn lte_day() -> Self {
        RadioModel {
            name: "LTE",
            drx: DrxParams::paper_lte(),
            power: RadioPower::paper_lte(),
            rate_mbps: 130.0,
        }
    }

    /// The 5G NSA module at the daytime downlink baseline.
    pub fn nr_nsa_day() -> Self {
        RadioModel {
            name: "NR NSA",
            drx: DrxParams::paper_nr_nsa(),
            power: RadioPower::paper_nr_nsa(),
            rate_mbps: 880.0,
        }
    }
}

/// Non-radio component power draws (Fig. 21's other bars), mW.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentPower {
    /// Android system baseline (airplane mode, screen off).
    pub system: Power,
    /// Screen at maximum brightness.
    pub screen: Power,
    /// Application CPU/GPU (depends on the app).
    pub app: Power,
}

impl ComponentPower {
    /// Calibrated phone: 0.5 W system, 1.6 W screen (the pre-5G king of
    /// the power budget) plus the given app draw.
    pub fn paper(app_mw: f64) -> Self {
        ComponentPower {
            system: Power::from_milliwatts(500.0),
            screen: Power::from_milliwatts(1_600.0),
            app: Power::from_milliwatts(app_mw),
        }
    }

    /// Sum of the non-radio components.
    pub fn total(&self) -> Power {
        self.system + self.screen + self.app
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_values() {
        let nr = DrxParams::paper_nr_nsa();
        assert_eq!(nr.t_idle_cycle, SimDuration::from_millis(1280));
        assert_eq!(nr.t_on, SimDuration::from_millis(10));
        assert_eq!(nr.t_lte_promotion, SimDuration::from_millis(623));
        assert_eq!(nr.t_4r_5r, SimDuration::from_millis(1238));
        assert_eq!(nr.t_nr_promotion, SimDuration::from_millis(1681));
        assert_eq!(nr.t_long_cycle, SimDuration::from_millis(320));
        assert_eq!(nr.t_tail, SimDuration::from_millis(21_440));
        let lte = DrxParams::paper_lte();
        assert_eq!(lte.t_tail, SimDuration::from_millis(10_720));
    }

    #[test]
    fn nr_promotion_is_much_longer() {
        // NSA must pass through the LTE machine first (Fig. 25).
        let nr = DrxParams::paper_nr_nsa().total_promotion();
        let lte = DrxParams::paper_lte().total_promotion();
        assert!(nr.as_millis_f64() > 3.5 * lte.as_millis_f64());
    }

    #[test]
    fn nr_active_power_is_2_to_3x_lte() {
        let r = RadioPower::paper_nr_nsa().active.milliwatts()
            / RadioPower::paper_lte().active.milliwatts();
        assert!((2.0..3.0).contains(&r), "ratio {r}");
    }

    #[test]
    fn nr_power_exceeds_screen_by_about_1_8x() {
        let nr = RadioPower::paper_nr_nsa().active.milliwatts();
        let screen = ComponentPower::paper(0.0).screen.milliwatts();
        let r = nr / screen;
        assert!((1.5..2.2).contains(&r), "ratio {r}");
    }

    #[test]
    fn energy_per_bit_ratio_about_a_quarter() {
        // Fig. 22: at saturation 5G spends ≈¼–⅓ of 4G's energy per bit.
        let nr = RadioPower::paper_nr_nsa().active.watts() / 880e6;
        let lte = RadioPower::paper_lte().active.watts() / 130e6;
        let ratio = nr / lte;
        assert!((0.2..0.4).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn tail_average_between_sleep_and_on() {
        let p = RadioPower::paper_nr_nsa();
        let d = DrxParams::paper_nr_nsa();
        let avg = p.tail_average(&d).milliwatts();
        assert!(avg > p.cdrx_sleep.milliwatts());
        assert!(avg < p.cdrx_on.milliwatts());
        // ~3 % duty on a 320 ms cycle: close to the sleep floor.
        assert!(avg < 1_100.0, "{avg}");
    }
}
