//! # fiveg-energy
//!
//! Smartphone energy model — the pwrStrip analogue (paper Sec. 6).
//!
//! * [`params`] — the operator's RRC/DRX timer values (paper Tab. 7),
//!   per-state radio power draws and non-radio component powers,
//!   calibrated to the paper's Fig. 21 breakdown (5G radio ≈55 % of the
//!   budget, 2–3× the 4G radio, 1.8× the screen).
//! * [`machine`] — the RRC + DRX radio state machine (paper Fig. 25):
//!   idle paging, promotion (with the NSA double-promotion through LTE),
//!   continuous reception, inactivity window, C-DRX tail, release.
//!   Replays a traffic trace into a power time-series and total energy.
//! * [`profile`] — application-session power breakdowns (Fig. 21) and
//!   the energy-per-bit sweep (Fig. 22).
//! * [`sched`] — the Tab. 4 power-management strategies: LTE-only,
//!   NR NSA, NR Oracle (perfect sleep) and the paper's dynamic 4G/5G
//!   switching heuristic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod machine;
pub mod params;
pub mod profile;
pub mod sched;

pub use machine::{Burst, EnergyTrace, RadioStateMachine};
pub use params::{ComponentPower, DrxParams, RadioModel, RadioPower};
pub use profile::{app_session_breakdown, energy_per_bit, AppKind, PowerBreakdown};
pub use sched::{replay_energy, Strategy, TrafficTrace};
