//! Power-management strategies (paper Tab. 4 and Sec. 6.3).
//!
//! Four models replay the same traffic trace, as in the paper's
//! trace-driven simulator:
//!
//! * **LTE-only** — the whole trace rides the 4G module.
//! * **NR NSA** — the 5G module with the real (promotion + tail) state
//!   machine.
//! * **NR Oracle** — the 5G module with perfect sleep/wake: active power
//!   exactly while data moves, C-DRX sleep otherwise, no promotions and
//!   no tails. The paper's point: even this ideal scheduler saves only
//!   ≈13 % — the drain is intrinsic to the hardware.
//! * **Dynamic switching** — the paper's pragmatic heuristic: bursts
//!   whose demand approaches 4G capacity (≥100 Mbps) ride 5G; everything
//!   else stays on 4G. Saves ≈25 % on web-style traffic.

use crate::machine::{Burst, RadioStateMachine};
use crate::params::RadioModel;
use fiveg_simcore::{Energy, SimTime};
use serde::{Deserialize, Serialize};

/// The threshold of the dynamic heuristic: "if the instantaneous traffic
/// intensity ... is approaching 4G's capacity, i.e., 100 Mbps, we switch
/// the radio into the 5G NR module" (Sec. 6.3).
pub const DYNAMIC_SWITCH_THRESHOLD_MBPS: f64 = 100.0;

/// A power-management strategy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Everything on the 4G module.
    LteOnly,
    /// Everything on the 5G NSA module (the phone's actual behaviour).
    NrNsa,
    /// 5G with perfect sleep scheduling.
    NrOracle,
    /// The paper's dynamic 4G/5G switching heuristic.
    DynamicSwitch,
}

impl Strategy {
    /// All strategies in the paper's Tab. 4 row order.
    pub const ALL: [Strategy; 4] = [
        Strategy::LteOnly,
        Strategy::NrNsa,
        Strategy::NrOracle,
        Strategy::DynamicSwitch,
    ];

    /// Row label as in Tab. 4.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::LteOnly => "LTE",
            Strategy::NrNsa => "NR NSA",
            Strategy::NrOracle => "NR Oracle",
            Strategy::DynamicSwitch => "Dyn. switch",
        }
    }
}

/// A named traffic trace with per-radio effective rates.
///
/// The rates differ per radio because the trace was captured from real
/// flows: bulk transfers ride each radio at its capacity, while the
/// congested 4G uplink collapses under UHD video (Sec. 5.2's frame
/// losses), stretching the replay.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrafficTrace {
    /// Trace name (Tab. 4 column).
    pub name: &'static str,
    /// The bursts.
    pub bursts: Vec<Burst>,
    /// Effective 4G transfer rate for this workload, Mbps.
    pub lte_rate_mbps: f64,
    /// Effective 5G transfer rate for this workload, Mbps.
    pub nr_rate_mbps: f64,
}

impl TrafficTrace {
    /// Short web browsing: ten 2 MB page loads, 3 s apart.
    pub fn web() -> Self {
        let bursts = (0..10)
            .map(|i| Burst {
                at: SimTime::from_millis(i * 3_000),
                bytes: 2_000_000,
                peak_rate_mbps: 20.0,
            })
            .collect();
        TrafficTrace {
            name: "Web",
            bursts,
            lte_rate_mbps: 130.0,
            nr_rate_mbps: 880.0,
        }
    }

    /// Frame-by-frame UHD video telephony: 30 s of 5.7K at 68 Mbps in
    /// 30 fps frames. The 4G effective rate reflects the congestion
    /// collapse the paper observed (Sec. 5.2: the congested 4G uplink
    /// delivers far below the offered UHD rate, with frame losses).
    pub fn video_telephony() -> Self {
        let frame_bytes = (68.0e6 / 8.0 / 30.0) as u64;
        let bursts = (0..(30 * 30))
            .map(|i| Burst {
                at: SimTime::from_millis(i * 33),
                bytes: frame_bytes,
                peak_rate_mbps: 120.0,
            })
            .collect();
        TrafficTrace {
            name: "Video",
            bursts,
            lte_rate_mbps: 12.0,
            nr_rate_mbps: 130.0,
        }
    }

    /// Saturated bulk file transfer: 8 GB downlink (long enough that the
    /// promotion/tail overheads amortise, as in the paper's saturated
    /// replay where the Oracle only saves ≈11 %).
    pub fn file_transfer() -> Self {
        TrafficTrace {
            name: "File",
            bursts: vec![Burst {
                at: SimTime::ZERO,
                bytes: 8_000_000_000,
                peak_rate_mbps: 880.0,
            }],
            lte_rate_mbps: 200.0,
            nr_rate_mbps: 880.0,
        }
    }

    /// The paper's three Tab. 4 workloads.
    pub fn paper_all() -> [TrafficTrace; 3] {
        [Self::web(), Self::video_telephony(), Self::file_transfer()]
    }
}

/// Replays `trace` under `strategy` and returns the radio energy spent
/// to finish the whole transfer (the paper's Tab. 4 metric: every model
/// completes all flows; completion times differ).
pub fn replay_energy(trace: &TrafficTrace, strategy: Strategy) -> Energy {
    let lte = RadioModel {
        rate_mbps: trace.lte_rate_mbps,
        ..RadioModel::lte_day()
    };
    let nr = RadioModel {
        rate_mbps: trace.nr_rate_mbps,
        ..RadioModel::nr_nsa_day()
    };
    match strategy {
        Strategy::LteOnly => RadioStateMachine::new(lte).replay(&trace.bursts).energy,
        Strategy::NrNsa => RadioStateMachine::new(nr).replay(&trace.bursts).energy,
        Strategy::NrOracle => {
            let t = RadioStateMachine::oracle(nr).replay(&trace.bursts);
            // Perfect sleep: C-DRX sleep power between transfers instead
            // of free idle (the radio stays registered).
            let sleeping = t.idle_at.as_secs_f64() - t.active_time.as_secs_f64();
            t.energy + nr.power.cdrx_sleep.over_seconds(sleeping.max(0.0))
        }
        Strategy::DynamicSwitch => {
            let (hi, lo): (Vec<Burst>, Vec<Burst>) = trace
                .bursts
                .iter()
                .partition(|b| b.peak_rate_mbps >= DYNAMIC_SWITCH_THRESHOLD_MBPS);
            let mut total = Energy::from_joules(0.0);
            if !lo.is_empty() {
                total += RadioStateMachine::new(lte).replay(&lo).energy;
            }
            if !hi.is_empty() {
                total += RadioStateMachine::new(nr).replay(&hi).energy;
            }
            total
        }
    }
}

/// Runs the full Tab. 4 matrix: `result[trace][strategy]` in joules.
pub fn table4_matrix() -> Vec<(&'static str, Vec<(&'static str, f64)>)> {
    TrafficTrace::paper_all()
        .iter()
        .map(|tr| {
            let row = Strategy::ALL
                .iter()
                .map(|&s| (s.label(), replay_energy(tr, s).joules()))
                .collect();
            (tr.name, row)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn energy(trace: &TrafficTrace, s: Strategy) -> f64 {
        replay_energy(trace, s).joules()
    }

    #[test]
    fn web_dynamic_equals_lte_and_beats_nsa() {
        // Tab. 4: Dyn. switch 85.41 J ≈ LTE 85.44 J, saving ~25 % vs
        // NR NSA 113.94 J.
        let tr = TrafficTrace::web();
        let lte = energy(&tr, Strategy::LteOnly);
        let nsa = energy(&tr, Strategy::NrNsa);
        let dyn_ = energy(&tr, Strategy::DynamicSwitch);
        assert!((dyn_ - lte).abs() / lte < 0.01, "dyn {dyn_} vs lte {lte}");
        let saving = 1.0 - dyn_ / nsa;
        assert!(saving > 0.20, "dynamic web saving {saving}");
    }

    #[test]
    fn heavy_workloads_favor_5g_over_lte() {
        // Tab. 4: for video and file the LTE row is the *most*
        // expensive — 5G's energy-per-bit advantage wins at scale.
        for tr in [
            TrafficTrace::video_telephony(),
            TrafficTrace::file_transfer(),
        ] {
            let lte = energy(&tr, Strategy::LteOnly);
            let nsa = energy(&tr, Strategy::NrNsa);
            assert!(lte > nsa, "{}: LTE {lte} vs NSA {nsa}", tr.name);
        }
    }

    #[test]
    fn oracle_saves_modestly_on_saturated_transfers() {
        // Tab. 4 file: oracle 139.72 vs NSA 157.29 (−11 %): with the
        // radio busy most of the time, trimming promotions and tails
        // buys little — the drain is the hardware's active draw.
        let tr = TrafficTrace::file_transfer();
        let nsa = energy(&tr, Strategy::NrNsa);
        let oracle = energy(&tr, Strategy::NrOracle);
        let saving = 1.0 - oracle / nsa;
        assert!(
            (0.03..0.30).contains(&saving),
            "file oracle saving {saving}"
        );
    }

    #[test]
    fn oracle_never_worse_than_nsa() {
        for tr in TrafficTrace::paper_all() {
            let nsa = energy(&tr, Strategy::NrNsa);
            let oracle = energy(&tr, Strategy::NrOracle);
            assert!(oracle < nsa, "{}: oracle {oracle} vs nsa {nsa}", tr.name);
        }
    }

    #[test]
    fn video_dynamic_rides_5g() {
        // UHD frames demand >100 Mbps peaks → the heuristic keeps them
        // on NR, so dynamic ≈ NSA for video (Tab. 4: 133.66 vs 140.19).
        let tr = TrafficTrace::video_telephony();
        let nsa = energy(&tr, Strategy::NrNsa);
        let dyn_ = energy(&tr, Strategy::DynamicSwitch);
        assert!((dyn_ - nsa).abs() / nsa < 0.05, "dyn {dyn_} nsa {nsa}");
    }

    #[test]
    fn matrix_has_all_cells() {
        let m = table4_matrix();
        assert_eq!(m.len(), 3);
        for (_, row) in &m {
            assert_eq!(row.len(), 4);
            for &(_, j) in row {
                assert!(j > 0.0);
            }
        }
    }
}
