//! Application power breakdowns (Fig. 21) and energy-per-bit (Fig. 22).

use crate::machine::{Burst, RadioStateMachine};
use crate::params::{ComponentPower, RadioModel};
use fiveg_simcore::{Power, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The four daily applications of Fig. 21.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppKind {
    /// Google-Chrome-style browser.
    Browser,
    /// Streaming video player.
    Player,
    /// Cloud game (Arrow.io).
    Game,
    /// Bulk file downloader.
    Download,
}

impl AppKind {
    /// All apps in the figure's order.
    pub const ALL: [AppKind; 4] = [
        AppKind::Browser,
        AppKind::Player,
        AppKind::Game,
        AppKind::Download,
    ];

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AppKind::Browser => "Browser",
            AppKind::Player => "Player",
            AppKind::Game => "Game",
            AppKind::Download => "Download",
        }
    }

    /// Application compute power (CPU/GPU), mW.
    pub fn app_power_mw(self) -> f64 {
        match self {
            AppKind::Browser => 600.0,
            AppKind::Player => 900.0,
            AppKind::Game => 1_500.0,
            AppKind::Download => 250.0,
        }
    }

    /// Traffic trace over a session of `secs` seconds: bursts whose
    /// spacing and size reflect the app's intensity.
    pub fn bursts(self, secs: u64, radio_rate_mbps: f64) -> Vec<Burst> {
        let mut out = Vec::new();
        match self {
            // A page load every 3 s.
            AppKind::Browser => {
                let mut t = 0;
                while t < secs * 1000 {
                    out.push(Burst {
                        at: SimTime::from_millis(t),
                        bytes: 2_000_000,
                        peak_rate_mbps: 20.0,
                    });
                    t += 3_000;
                }
            }
            // Streaming: a 4 s chunk of a 8 Mbps stream every 4 s.
            AppKind::Player => {
                let mut t = 0;
                while t < secs * 1000 {
                    out.push(Burst {
                        at: SimTime::from_millis(t),
                        bytes: 4_000_000,
                        peak_rate_mbps: 30.0,
                    });
                    t += 4_000;
                }
            }
            // Cloud game: continuous small exchanges every 100 ms.
            AppKind::Game => {
                let mut t = 0;
                while t < secs * 1000 {
                    out.push(Burst {
                        at: SimTime::from_millis(t),
                        bytes: 60_000,
                        peak_rate_mbps: 8.0,
                    });
                    t += 100;
                }
            }
            // Saturated download: one burst sized to keep the radio busy
            // for the whole session.
            AppKind::Download => {
                out.push(Burst {
                    at: SimTime::ZERO,
                    bytes: (radio_rate_mbps * 1e6 / 8.0 * secs as f64) as u64,
                    peak_rate_mbps: radio_rate_mbps,
                });
            }
        }
        out
    }
}

/// Fig. 21-style session power breakdown, mW averages over the session.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Android system baseline.
    pub system: Power,
    /// Screen at full brightness.
    pub screen: Power,
    /// Application compute.
    pub app: Power,
    /// Radio module (4G or 5G), averaged over the session.
    pub radio: Power,
}

impl PowerBreakdown {
    /// Total phone power.
    pub fn total(&self) -> Power {
        self.system + self.screen + self.app + self.radio
    }

    /// The radio's share of the total.
    pub fn radio_share(&self) -> f64 {
        self.radio.milliwatts() / self.total().milliwatts()
    }
}

/// Computes the Fig. 21 breakdown: mean power by component while running
/// `app` for `secs` seconds on `radio`.
pub fn app_session_breakdown(app: AppKind, radio: &RadioModel, secs: u64) -> PowerBreakdown {
    let comps = ComponentPower::paper(app.app_power_mw());
    let bursts = app.bursts(secs, radio.rate_mbps);
    let trace = RadioStateMachine::new(*radio).replay(&bursts);
    // Average the radio over the nominal session length (all apps run
    // for the same wall time in Fig. 21).
    let session = SimTime::from_secs(secs);
    let radio_avg = trace.mean_power_until(session.max(trace.idle_at));
    PowerBreakdown {
        system: comps.system,
        screen: comps.screen,
        app: comps.app,
        radio: radio_avg,
    }
}

/// Fig. 22: energy per bit for a saturated transfer of `secs` seconds —
/// fixed promotion/tail overheads amortise as the transfer grows.
pub fn energy_per_bit(radio: &RadioModel, secs: f64) -> f64 {
    let bytes = (radio.rate_mbps * 1e6 / 8.0 * secs) as u64;
    let trace = RadioStateMachine::new(*radio).replay(&[Burst {
        at: SimTime::ZERO,
        bytes,
        peak_rate_mbps: radio.rate_mbps,
    }]);
    let bits = bytes as f64 * 8.0;
    trace.energy.micro_joules_per_bit(bits)
}

/// Convenience: run the transfer-duration sweep of Fig. 22.
pub fn energy_per_bit_sweep(radio: &RadioModel, secs: &[f64]) -> Vec<(f64, f64)> {
    secs.iter()
        .map(|&s| (s, energy_per_bit(radio, s)))
        .collect()
}

/// Unused placeholder to keep the duration import exercised in docs.
#[doc(hidden)]
pub fn _doc(_: SimDuration) {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiveg_radio_dominates_the_budget() {
        // Fig. 21: the 5G module ≈55 % of the budget on average across
        // the four apps, exceeding the screen.
        let mut shares = Vec::new();
        for app in AppKind::ALL {
            let b = app_session_breakdown(app, &RadioModel::nr_nsa_day(), 60);
            shares.push(b.radio_share());
        }
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        assert!((0.25..0.65).contains(&mean), "mean 5G radio share {mean}");
        // Download (saturated) must exceed the screen's draw.
        let dl = app_session_breakdown(AppKind::Download, &RadioModel::nr_nsa_day(), 60);
        assert!(dl.radio.milliwatts() > dl.screen.milliwatts());
    }

    #[test]
    fn fourg_radio_share_is_smaller() {
        // Fig. 21: 4G accounts for 24–50 %.
        for app in AppKind::ALL {
            let b5 = app_session_breakdown(app, &RadioModel::nr_nsa_day(), 60);
            let b4 = app_session_breakdown(app, &RadioModel::lte_day(), 60);
            assert!(
                b4.radio.milliwatts() < b5.radio.milliwatts(),
                "{app:?}: 4G {} vs 5G {}",
                b4.radio,
                b5.radio
            );
            assert!((0.05..0.52).contains(&b4.radio_share()), "{app:?}");
        }
    }

    #[test]
    fn total_power_rises_with_traffic_intensity() {
        let radio = RadioModel::nr_nsa_day();
        let browser = app_session_breakdown(AppKind::Browser, &radio, 60);
        let download = app_session_breakdown(AppKind::Download, &radio, 60);
        assert!(download.radio.milliwatts() > browser.radio.milliwatts());
    }

    #[test]
    fn energy_per_bit_decays_with_duration() {
        let radio = RadioModel::nr_nsa_day();
        let sweep = energy_per_bit_sweep(&radio, &[5.0, 10.0, 20.0, 50.0]);
        for w in sweep.windows(2) {
            assert!(w[1].1 < w[0].1, "not decaying: {sweep:?}");
        }
    }

    #[test]
    fn fiveg_energy_per_bit_is_fraction_of_4g() {
        // Fig. 22: ≈¼–⅓ at long transfers.
        let nr = energy_per_bit(&RadioModel::nr_nsa_day(), 50.0);
        let lte = energy_per_bit(&RadioModel::lte_day(), 50.0);
        let ratio = nr / lte;
        assert!((0.2..0.45).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn breakdown_components_sum() {
        let b = app_session_breakdown(AppKind::Game, &RadioModel::lte_day(), 30);
        let sum = b.system.milliwatts()
            + b.screen.milliwatts()
            + b.app.milliwatts()
            + b.radio.milliwatts();
        assert!((b.total().milliwatts() - sum).abs() < 1e-9);
        assert!(b.radio_share() > 0.0 && b.radio_share() < 1.0);
    }
}
