//! Property-based tests for the energy state machine.

use fiveg_energy::machine::{Burst, RadioStateMachine};
use fiveg_energy::params::RadioModel;
use fiveg_energy::sched::{replay_energy, Strategy as SchedStrategy, TrafficTrace};
use fiveg_simcore::SimTime;
use proptest::prelude::*;

fn bursts_strategy() -> impl Strategy<Value = Vec<Burst>> {
    prop::collection::vec((0u64..60_000, 1_000u64..20_000_000, 1.0f64..900.0), 1..30).prop_map(
        |mut v| {
            v.sort_by_key(|&(t, ..)| t);
            v.into_iter()
                .map(|(t, bytes, peak)| Burst {
                    at: SimTime::from_millis(t),
                    bytes,
                    peak_rate_mbps: peak,
                })
                .collect()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The replay timeline is contiguous, ordered, and ends at idle.
    #[test]
    fn intervals_are_a_partition(bursts in bursts_strategy()) {
        for radio in [RadioModel::lte_day(), RadioModel::nr_nsa_day()] {
            let tr = RadioStateMachine::new(radio).replay(&bursts);
            let mut cursor = SimTime::ZERO;
            for &(_, s, e) in &tr.intervals {
                prop_assert!(s >= cursor, "overlap at {s}");
                prop_assert!(e >= s);
                cursor = e;
            }
            prop_assert_eq!(cursor, tr.idle_at);
            prop_assert!(tr.energy.joules() > 0.0);
            prop_assert!(tr.energy.joules().is_finite());
        }
    }

    /// Active time equals the total serialisation time of the data.
    #[test]
    fn active_time_matches_bytes(bursts in bursts_strategy()) {
        let radio = RadioModel::nr_nsa_day();
        let tr = RadioStateMachine::new(radio).replay(&bursts);
        let bytes: u64 = bursts.iter().map(|b| b.bytes).sum();
        let expect = bytes as f64 * 8.0 / (radio.rate_mbps * 1e6);
        prop_assert!((tr.active_time.as_secs_f64() - expect).abs() < 1e-6);
    }

    /// The Oracle never spends more than the real state machine.
    #[test]
    fn oracle_is_a_lower_bound(bursts in bursts_strategy()) {
        let radio = RadioModel::nr_nsa_day();
        let real = RadioStateMachine::new(radio).replay(&bursts).energy.joules();
        let oracle = RadioStateMachine::oracle(radio).replay(&bursts).energy.joules();
        prop_assert!(oracle <= real + 1e-9, "oracle {oracle} > real {real}");
    }

    /// More data never costs less energy (same arrival times).
    #[test]
    fn energy_monotone_in_bytes(bursts in bursts_strategy(), extra in 1_000u64..10_000_000) {
        let radio = RadioModel::lte_day();
        let base = RadioStateMachine::new(radio).replay(&bursts).energy.joules();
        let mut bigger = bursts.clone();
        bigger[0].bytes += extra;
        let more = RadioStateMachine::new(radio).replay(&bigger).energy.joules();
        prop_assert!(more >= base - 1e-9);
    }

    /// Strategy replays are always positive and the oracle beats NSA on
    /// every workload.
    #[test]
    fn strategies_positive(idx in 0usize..3) {
        let trace = &TrafficTrace::paper_all()[idx];
        for s in SchedStrategy::ALL {
            prop_assert!(replay_energy(trace, s).joules() > 0.0);
        }
        prop_assert!(
            replay_energy(trace, SchedStrategy::NrOracle).joules()
                <= replay_energy(trace, SchedStrategy::NrNsa).joules()
        );
    }
}
