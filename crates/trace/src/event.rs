//! Typed trace events and their normalized columnar row shape.
//!
//! Every event lowers to the same 9-column row so one columnar file
//! holds the whole trace and readers can filter without per-kind
//! schemas. The columns:
//!
//! | column  | type | meaning                                          |
//! |---------|------|--------------------------------------------------|
//! | `t_ns`  | u64  | simulation time, nanoseconds                     |
//! | `origin`| u32  | logical origin stream (see below)                |
//! | `seq`   | u32  | per-origin monotone sequence number              |
//! | `kind`  | u8   | event kind code ([`TraceEvent::kind`])           |
//! | `ue`    | u32  | UE / flow index, or [`NO_UE`] when not applicable|
//! | `a`     | u32  | kind-specific (PCI, source shard, state code, …) |
//! | `b`     | u32  | kind-specific (target PCI, dest shard, …)        |
//! | `v0`    | f64  | kind-specific (RSRP dBm, margin dB, Mbit/s, …)   |
//! | `v1`    | f64  | kind-specific (hysteresis dB, RSRP dBm, …)       |
//!
//! **Logical origins.** `origin` is a *logical* stream id, not a
//! physical shard id: UE events use the UE's chunk index, router-hub
//! events use [`ROUTER_ORIGIN`], and serial experiment code uses 0.
//! Logical origins are invariant under `FIVEG_SHARDS`, which is what
//! makes the merged `(t_ns, origin, seq)` order — and therefore the
//! trace bytes — shard-count invariant. The one exception is the
//! `shard` category (message send/recv), whose events are keyed by
//! *physical* shard ids and therefore vary with the shard count; it is
//! excluded from the default category set and from the cross-shard
//! byte-identity contract.

/// `ue` column value for events not tied to a UE.
pub const NO_UE: u32 = u32::MAX;

/// Logical origin used by the router-hub / aggregation stream.
pub const ROUTER_ORIGIN: u32 = u32::MAX;

/// Event category, used for filtering and ring-buffer bounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Category {
    /// Attach decisions and handoffs (paper Fig. 8 territory).
    Radio,
    /// Fault-schedule transitions: outages, restores, brownout caps.
    Fault,
    /// Per-tick per-UE KPI rows.
    Kpi,
    /// Transport congestion-control state transitions.
    Cc,
    /// Physical shard-kernel message send/recv. Keyed by physical
    /// shard ids: NOT shard-count invariant, opt-in only.
    Shard,
}

impl Category {
    /// All categories, in stable order.
    pub const ALL: [Category; 5] = [
        Category::Radio,
        Category::Fault,
        Category::Kpi,
        Category::Cc,
        Category::Shard,
    ];

    /// Stable lowercase name (DSL / sidecar spelling).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Category::Radio => "radio",
            Category::Fault => "fault",
            Category::Kpi => "kpi",
            Category::Cc => "cc",
            Category::Shard => "shard",
        }
    }

    /// Inverse of [`Category::name`].
    #[must_use]
    pub fn from_name(s: &str) -> Option<Category> {
        Category::ALL.into_iter().find(|c| c.name() == s)
    }

    /// Bit in the category mask.
    #[must_use]
    pub fn bit(self) -> u8 {
        match self {
            Category::Radio => 1,
            Category::Fault => 2,
            Category::Kpi => 4,
            Category::Cc => 8,
            Category::Shard => 16,
        }
    }

    /// Default mask: everything whose bytes are shard-count invariant.
    #[must_use]
    pub fn default_mask() -> u8 {
        Category::Radio.bit() | Category::Fault.bit() | Category::Kpi.bit() | Category::Cc.bit()
    }
}

/// A typed trace event. Times are simulation nanoseconds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum TraceEvent {
    /// UE attached to a cell (first attach or re-attach from outage).
    Attach {
        /// Simulation time, nanoseconds.
        t_ns: u64,
        /// UE id.
        ue: u32,
        /// Physical cell id attached to.
        pci: u32,
        /// RSRP at attach, dBm.
        rsrp_dbm: f64,
    },
    /// Handoff decision, with the hysteresis inputs that triggered it.
    Handoff {
        /// Simulation time, nanoseconds.
        t_ns: u64,
        /// UE id.
        ue: u32,
        /// Serving cell before the handoff.
        from_pci: u32,
        /// Serving cell after the handoff.
        to_pci: u32,
        /// RSRP margin of the target over the source, dB.
        margin_db: f64,
        /// Hysteresis threshold the margin had to clear, dB.
        hysteresis_db: f64,
    },
    /// Cell went down (fault schedule).
    CellOutage {
        /// Simulation time, nanoseconds.
        t_ns: u64,
        /// Physical cell id that failed.
        pci: u32,
    },
    /// Cell came back.
    CellRestore {
        /// Simulation time, nanoseconds.
        t_ns: u64,
        /// Physical cell id restored.
        pci: u32,
    },
    /// Backhaul brownout cap changed; `cap_mbps < 0` means lifted.
    BrownoutCap {
        /// Simulation time, nanoseconds.
        t_ns: u64,
        /// New backhaul cap, Mbit/s (negative = cap removed).
        cap_mbps: f64,
    },
    /// Shard kernel cross-shard message enqueued (physical ids).
    ShardMsgSend {
        /// Simulation time, nanoseconds.
        t_ns: u64,
        /// Sending shard-local node id.
        src: u32,
        /// Receiving shard-local node id.
        dst: u32,
    },
    /// Shard kernel cross-shard message executed (physical ids).
    ShardMsgRecv {
        /// Simulation time, nanoseconds.
        t_ns: u64,
        /// Sending shard-local node id.
        src: u32,
        /// Receiving shard-local node id.
        dst: u32,
    },
    /// Congestion-control state change: 0 open, 1 recovery, 2 loss/RTO.
    CcState {
        /// Simulation time, nanoseconds.
        t_ns: u64,
        /// Flow id.
        flow: u32,
        /// New state code (0 open, 1 recovery, 2 loss/RTO).
        state: u32,
        /// Congestion-control algorithm code.
        alg: u32,
    },
    /// Per-tick UE KPI row (subject to the sampling rate).
    Kpi {
        /// Simulation time, nanoseconds.
        t_ns: u64,
        /// UE id.
        ue: u32,
        /// Serving physical cell id.
        pci: u32,
        /// Whether the UE was in service this tick.
        in_service: bool,
        /// Delivered application bitrate, Mbit/s.
        bitrate_mbps: f64,
        /// Serving-cell RSRP, dBm.
        rsrp_dbm: f64,
    },
}

/// Kind code names, indexed by kind code.
pub const KIND_NAMES: [&str; 9] = [
    "attach",
    "handoff",
    "cell_outage",
    "cell_restore",
    "brownout_cap",
    "shard_msg_send",
    "shard_msg_recv",
    "cc_state",
    "kpi",
];

impl TraceEvent {
    /// Stable kind code (the `kind` column).
    #[must_use]
    pub fn kind(&self) -> u8 {
        match self {
            TraceEvent::Attach { .. } => 0,
            TraceEvent::Handoff { .. } => 1,
            TraceEvent::CellOutage { .. } => 2,
            TraceEvent::CellRestore { .. } => 3,
            TraceEvent::BrownoutCap { .. } => 4,
            TraceEvent::ShardMsgSend { .. } => 5,
            TraceEvent::ShardMsgRecv { .. } => 6,
            TraceEvent::CcState { .. } => 7,
            TraceEvent::Kpi { .. } => 8,
        }
    }

    /// Category this event belongs to.
    #[must_use]
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::Attach { .. } | TraceEvent::Handoff { .. } => Category::Radio,
            TraceEvent::CellOutage { .. }
            | TraceEvent::CellRestore { .. }
            | TraceEvent::BrownoutCap { .. } => Category::Fault,
            TraceEvent::ShardMsgSend { .. } | TraceEvent::ShardMsgRecv { .. } => Category::Shard,
            TraceEvent::CcState { .. } => Category::Cc,
            TraceEvent::Kpi { .. } => Category::Kpi,
        }
    }

    /// Simulation timestamp.
    #[must_use]
    pub fn t_ns(&self) -> u64 {
        match *self {
            TraceEvent::Attach { t_ns, .. }
            | TraceEvent::Handoff { t_ns, .. }
            | TraceEvent::CellOutage { t_ns, .. }
            | TraceEvent::CellRestore { t_ns, .. }
            | TraceEvent::BrownoutCap { t_ns, .. }
            | TraceEvent::ShardMsgSend { t_ns, .. }
            | TraceEvent::ShardMsgRecv { t_ns, .. }
            | TraceEvent::CcState { t_ns, .. }
            | TraceEvent::Kpi { t_ns, .. } => t_ns,
        }
    }

    /// Lowers to the kind-specific payload columns `(ue, a, b, v0, v1)`.
    #[must_use]
    pub fn payload(&self) -> (u32, u32, u32, f64, f64) {
        match *self {
            TraceEvent::Attach {
                ue, pci, rsrp_dbm, ..
            } => (ue, pci, 0, rsrp_dbm, 0.0),
            TraceEvent::Handoff {
                ue,
                from_pci,
                to_pci,
                margin_db,
                hysteresis_db,
                ..
            } => (ue, from_pci, to_pci, margin_db, hysteresis_db),
            TraceEvent::CellOutage { pci, .. } => (NO_UE, pci, 0, 0.0, 0.0),
            TraceEvent::CellRestore { pci, .. } => (NO_UE, pci, 0, 0.0, 0.0),
            TraceEvent::BrownoutCap { cap_mbps, .. } => (NO_UE, 0, 0, cap_mbps, 0.0),
            TraceEvent::ShardMsgSend { src, dst, .. } => (NO_UE, src, dst, 0.0, 0.0),
            TraceEvent::ShardMsgRecv { src, dst, .. } => (NO_UE, src, dst, 0.0, 0.0),
            TraceEvent::CcState {
                flow, state, alg, ..
            } => (flow, state, alg, 0.0, 0.0),
            TraceEvent::Kpi {
                ue,
                pci,
                in_service,
                bitrate_mbps,
                rsrp_dbm,
                ..
            } => (ue, pci, u32::from(in_service), bitrate_mbps, rsrp_dbm),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_cover_all_kinds() {
        let evs = [
            TraceEvent::Attach {
                t_ns: 1,
                ue: 2,
                pci: 3,
                rsrp_dbm: -80.0,
            },
            TraceEvent::Handoff {
                t_ns: 1,
                ue: 2,
                from_pci: 3,
                to_pci: 4,
                margin_db: 3.0,
                hysteresis_db: 3.0,
            },
            TraceEvent::CellOutage { t_ns: 1, pci: 3 },
            TraceEvent::CellRestore { t_ns: 1, pci: 3 },
            TraceEvent::BrownoutCap {
                t_ns: 1,
                cap_mbps: 50.0,
            },
            TraceEvent::ShardMsgSend {
                t_ns: 1,
                src: 0,
                dst: 1,
            },
            TraceEvent::ShardMsgRecv {
                t_ns: 1,
                src: 0,
                dst: 1,
            },
            TraceEvent::CcState {
                t_ns: 1,
                flow: 0,
                state: 1,
                alg: 0,
            },
            TraceEvent::Kpi {
                t_ns: 1,
                ue: 2,
                pci: 3,
                in_service: true,
                bitrate_mbps: 10.0,
                rsrp_dbm: -80.0,
            },
        ];
        let mut kinds: Vec<u8> = evs.iter().map(TraceEvent::kind).collect();
        kinds.sort_unstable();
        assert_eq!(kinds, (0..9).collect::<Vec<u8>>());
        assert_eq!(KIND_NAMES.len(), 9);
    }

    #[test]
    fn category_round_trips_names() {
        for c in Category::ALL {
            assert_eq!(Category::from_name(c.name()), Some(c));
        }
        assert_eq!(Category::from_name("nope"), None);
        assert_eq!(Category::default_mask() & Category::Shard.bit(), 0);
    }
}
