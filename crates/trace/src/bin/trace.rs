//! `trace` — read-side CLI for fiveg-trace columnar artifacts.
//!
//! ```text
//! trace dump  <stem>[.trace.bin] [--kind NAME] [--ue N] [--group NAME]
//!                               [--from SEC] [--to SEC] [--limit N]
//! trace stats <stem>[.trace.bin]
//! trace chrome <spans.json>
//! ```
//!
//! `<stem>` names a campaign artifact pair `{stem}.trace.bin` +
//! `{stem}.trace.json` as written by `repro --trace`. `stats` prints
//! per-kind counts and reconstructs per-UE handoff timelines with
//! sojourn times (the paper's Fig. 8-style analysis). `chrome`
//! converts a span-timer self-profile (`{stem}.trace.spans.json`)
//! into chrome://tracing trace-event JSON.

use std::process::ExitCode;

use fiveg_obs::JsonValue;
use fiveg_trace::{decode, ColType, Column, Group, Row, KIND_NAMES, NO_UE};

const USAGE: &str = "usage:
  trace dump  <stem>[.trace.bin] [--kind NAME] [--ue N] [--group NAME] [--from SEC] [--to SEC] [--limit N]
  trace stats <stem>[.trace.bin]
  trace chrome <spans.json>

kinds: attach handoff cell_outage cell_restore brownout_cap shard_msg_send shard_msg_recv cc_state kpi";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => return usage_err("missing subcommand"),
    };
    let res = match cmd {
        "dump" => cmd_dump(rest),
        "stats" => cmd_stats(rest),
        "chrome" => cmd_chrome(rest),
        _ => return usage_err(&format!("unknown subcommand `{cmd}`")),
    };
    match res {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("trace: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage_err(msg: &str) -> ExitCode {
    eprintln!("trace: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// A loaded trace: merged rows + sidecar metadata.
struct Loaded {
    rows: Vec<Row>,
    groups: Vec<Group>,
    mode: String,
    sample: u64,
}

fn stem_paths(arg: &str) -> (String, String) {
    let stem = arg.strip_suffix(".trace.bin").unwrap_or(arg);
    (format!("{stem}.trace.bin"), format!("{stem}.trace.json"))
}

fn load(arg: &str) -> Result<Loaded, String> {
    let (bin_path, side_path) = stem_paths(arg);
    let bin = std::fs::read(&bin_path).map_err(|e| format!("{bin_path}: {e}"))?;
    let side_text = std::fs::read_to_string(&side_path).map_err(|e| format!("{side_path}: {e}"))?;
    let side = fiveg_obs::parse_json(&side_text).map_err(|e| format!("{side_path}: {e}"))?;
    let columns = sidecar_columns(&side).ok_or_else(|| format!("{side_path}: bad `columns`"))?;
    let table = decode(&bin, &columns).map_err(|e| format!("{bin_path}: {e}"))?;
    let rows = table
        .rows
        .iter()
        .map(|r| Row {
            t_ns: r[0],
            origin: r[1] as u32,
            seq: r[2] as u32,
            kind: r[3] as u8,
            ue: r[4] as u32,
            a: r[5] as u32,
            b: r[6] as u32,
            v0: f64::from_bits(r[7]),
            v1: f64::from_bits(r[8]),
        })
        .collect();
    let groups = side
        .get("groups")
        .and_then(|g| match g {
            JsonValue::Array(items) => Some(items),
            _ => None,
        })
        .map(|items| {
            items
                .iter()
                .filter_map(|it| {
                    Some(Group {
                        name: it.get("name")?.as_str()?.to_string(),
                        start: it.get("start")?.as_u64()? as u32,
                        end: it.get("end")?.as_u64()? as u32,
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    Ok(Loaded {
        rows,
        groups,
        mode: side
            .get("mode")
            .and_then(|v| v.as_str())
            .unwrap_or("?")
            .to_string(),
        sample: side.get("sample").and_then(JsonValue::as_u64).unwrap_or(1),
    })
}

fn sidecar_columns(side: &JsonValue) -> Option<Vec<Column>> {
    let JsonValue::Array(cols) = side.get("columns")? else {
        return None;
    };
    cols.iter()
        .map(|c| {
            Some(Column {
                name: c.get("name")?.as_str()?.to_string(),
                ty: ColType::from_name(c.get("ty")?.as_str()?)?,
            })
        })
        .collect()
}

fn kind_name(kind: u8) -> &'static str {
    KIND_NAMES.get(kind as usize).copied().unwrap_or("?")
}

fn secs(t_ns: u64) -> f64 {
    t_ns as f64 / 1e9
}

fn group_of(groups: &[Group], ue: u32) -> Option<&str> {
    groups
        .iter()
        .find(|g| ue >= g.start && ue < g.end)
        .map(|g| g.name.as_str())
}

// -------------------------------------------------------------- dump

struct DumpFilter {
    kind: Option<u8>,
    ue: Option<u32>,
    group: Option<String>,
    from_s: f64,
    to_s: f64,
    limit: usize,
}

fn cmd_dump(rest: &[String]) -> Result<(), String> {
    let (target, mut it) = match rest.split_first() {
        Some((t, r)) => (t, r.iter()),
        None => return Err(format!("dump: missing <stem>\n{USAGE}")),
    };
    let mut f = DumpFilter {
        kind: None,
        ue: None,
        group: None,
        from_s: f64::NEG_INFINITY,
        to_s: f64::INFINITY,
        limit: usize::MAX,
    };
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("dump: {name} needs a value"))
        };
        match flag.as_str() {
            "--kind" => {
                let v = val("--kind")?;
                let k = KIND_NAMES.iter().position(|n| *n == v);
                f.kind = Some(k.ok_or_else(|| format!("dump: unknown kind `{v}`"))? as u8);
            }
            "--ue" => f.ue = Some(parse_num(&val("--ue")?, "--ue")?),
            "--group" => f.group = Some(val("--group")?),
            "--from" => f.from_s = parse_f64(&val("--from")?, "--from")?,
            "--to" => f.to_s = parse_f64(&val("--to")?, "--to")?,
            "--limit" => f.limit = parse_num::<usize>(&val("--limit")?, "--limit")?,
            other => return Err(format!("dump: unknown flag `{other}`\n{USAGE}")),
        }
    }
    let loaded = load(target)?;
    let mut shown = 0usize;
    for r in &loaded.rows {
        if shown >= f.limit {
            println!("... (limit {} reached)", f.limit);
            break;
        }
        if f.kind.is_some_and(|k| k != r.kind) || f.ue.is_some_and(|u| u != r.ue) {
            continue;
        }
        let t = secs(r.t_ns);
        if t < f.from_s || t > f.to_s {
            continue;
        }
        if let Some(ref want) = f.group {
            if group_of(&loaded.groups, r.ue) != Some(want.as_str()) {
                continue;
            }
        }
        println!("{}", render(r, &loaded.groups));
        shown += 1;
    }
    Ok(())
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("dump: bad {flag} `{s}`"))
}

fn parse_f64(s: &str, flag: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("dump: bad {flag} `{s}`"))
}

fn render(r: &Row, groups: &[Group]) -> String {
    let t = secs(r.t_ns);
    let who = if r.ue == NO_UE {
        String::new()
    } else {
        match group_of(groups, r.ue) {
            Some(g) => format!(" ue {} ({g})", r.ue),
            None => format!(" ue {}", r.ue),
        }
    };
    let detail = match r.kind {
        0 => format!("pci {} rsrp {:.1} dBm", r.a, r.v0),
        1 => format!(
            "pci {} -> {} margin {:.2} dB (hysteresis {:.2} dB)",
            r.a, r.b, r.v0, r.v1
        ),
        2 | 3 => format!("pci {}", r.a),
        4 => {
            if r.v0 < 0.0 {
                "lifted".to_string()
            } else {
                format!("cap {:.1} Mbit/s", r.v0)
            }
        }
        5 | 6 => format!("shard {} -> {}", r.a, r.b),
        7 => format!(
            "flow {} state {} alg {}",
            r.ue,
            ["open", "recovery", "loss"]
                .get(r.a as usize)
                .unwrap_or(&"?"),
            r.b
        ),
        _ => format!(
            "pci {} in_service {} bitrate {:.2} Mbit/s rsrp {:.1} dBm",
            r.a, r.b, r.v0, r.v1
        ),
    };
    format!("{t:>10.3}s [{:>14}]{} {}", kind_name(r.kind), who, detail)
}

// ------------------------------------------------------------- stats

fn cmd_stats(rest: &[String]) -> Result<(), String> {
    let target = rest
        .first()
        .ok_or_else(|| format!("stats: missing <stem>\n{USAGE}"))?;
    let loaded = load(target)?;
    println!(
        "mode {}  sample 1/{}  rows {}",
        loaded.mode,
        loaded.sample,
        loaded.rows.len()
    );
    let mut counts = [0u64; 9];
    let (mut t_min, mut t_max) = (u64::MAX, 0u64);
    for r in &loaded.rows {
        if let Some(c) = counts.get_mut(r.kind as usize) {
            *c += 1;
        }
        t_min = t_min.min(r.t_ns);
        t_max = t_max.max(r.t_ns);
    }
    if !loaded.rows.is_empty() {
        println!("window {:.3}s .. {:.3}s", secs(t_min), secs(t_max));
    }
    for (k, name) in KIND_NAMES.iter().enumerate() {
        if counts[k] > 0 {
            println!("  {name:<16} {}", counts[k]);
        }
    }
    timelines(&loaded);
    Ok(())
}

/// Per-UE serving-cell timeline with sojourn times (Fig. 8 style).
/// A timeline is *complete* when the UE's first radio event is an
/// attach, so every sojourn has a defined start.
fn timelines(loaded: &Loaded) {
    use std::collections::BTreeMap;
    let mut per_ue: BTreeMap<u32, Vec<&Row>> = BTreeMap::new();
    for r in &loaded.rows {
        if (r.kind == 0 || r.kind == 1) && r.ue != NO_UE {
            per_ue.entry(r.ue).or_default().push(r);
        }
    }
    let with_handoffs = per_ue
        .iter()
        .filter(|(_, evs)| evs.iter().any(|r| r.kind == 1))
        .count();
    println!(
        "handoff timelines: {} UEs with radio events, {} with handoffs",
        per_ue.len(),
        with_handoffs
    );
    let mut shown = 0;
    for (ue, evs) in &per_ue {
        if !evs.iter().any(|r| r.kind == 1) {
            continue;
        }
        if shown == 8 {
            println!("  ... ({} more)", with_handoffs - shown);
            break;
        }
        shown += 1;
        let complete = evs.first().is_some_and(|r| r.kind == 0);
        let who = match group_of(&loaded.groups, *ue) {
            Some(g) => format!("ue {ue} ({g})"),
            None => format!("ue {ue}"),
        };
        let tag = if complete { "complete" } else { "partial" };
        let mut line = format!("  {who} [{tag}]: ");
        let mut prev_t: Option<u64> = None;
        for r in evs {
            match r.kind {
                0 => {
                    line.push_str(&format!("attach pci {} @{:.1}s", r.a, secs(r.t_ns)));
                    prev_t = Some(r.t_ns);
                }
                _ => {
                    let sojourn = prev_t
                        .map(|p| format!(" (sojourn {:.1}s)", secs(r.t_ns.saturating_sub(p))))
                        .unwrap_or_default();
                    line.push_str(&format!(
                        " | {} -> {} @{:.1}s{sojourn}",
                        r.a,
                        r.b,
                        secs(r.t_ns)
                    ));
                    prev_t = Some(r.t_ns);
                }
            }
        }
        println!("{line}");
    }
}

// ------------------------------------------------------------ chrome

/// Converts an obs span self-profile (the `{stem}.trace.spans.json`
/// artifact, or any obs snapshot JSON with a `spans` section) into
/// chrome://tracing trace-event JSON on stdout.
fn cmd_chrome(rest: &[String]) -> Result<(), String> {
    let path = rest
        .first()
        .ok_or_else(|| format!("chrome: missing <spans.json>\n{USAGE}"))?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    let snap = fiveg_obs::parse_json(&text).map_err(|e| format!("{path}: {e}"))?;
    let spans = snap
        .get("spans")
        .and_then(JsonValue::as_object)
        .ok_or_else(|| format!("{path}: no `spans` section"))?;
    // The vendored serde_json has no `json!` macro; the document is
    // simple enough to assemble by hand (names only need basic
    // string escaping).
    let mut out = String::from("{\"traceEvents\":[");
    let mut ts = 0.0f64;
    for (i, (name, sp)) in spans.iter().enumerate() {
        let total_ns = sp.get("total_ns").and_then(JsonValue::as_u64).unwrap_or(0);
        let count = sp.get("count").and_then(JsonValue::as_u64).unwrap_or(0);
        let max_ns = sp.get("max_ns").and_then(JsonValue::as_u64).unwrap_or(0);
        let dur_us = total_ns as f64 / 1e3;
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n  {{\"name\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":0,\"ts\":{ts:.3},\"dur\":{dur_us:.3},\"args\":{{\"count\":{count},\"max_ns\":{max_ns}}}}}",
            escape_json(name)
        ));
        ts += dur_us;
    }
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}");
    println!("{out}");
    Ok(())
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}
