//! Generic fixed-width columnar codec.
//!
//! A [`Table`] is a list of typed columns plus rows whose cells are
//! carried as **raw little-endian bit patterns** widened to `u64`.
//! Keeping cells as bits (rather than an `enum Cell`) makes the codec
//! trivially deterministic: encoding is a `memcpy`-shaped loop, floats
//! round-trip exactly (including `-0.0` and NaN payloads), and the
//! byte-identity contract reduces to integer equality.
//!
//! On-disk layout (all integers little-endian):
//!
//! ```text
//! magic    b"FVTR0001"                      8 bytes
//! ncols    u32
//! nrows    u64
//! columns  column-major: for each column, nrows cells at the
//!          column's fixed width (1/2/4/8 bytes)
//! ```
//!
//! Column names and types live in the JSON sidecar, not in the binary:
//! the binary stays a pure cell dump and the sidecar stays the single
//! self-describing entry point for readers.

use std::fmt;

/// Cell type of one column. Width is fixed per type.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ColType {
    /// 1-byte unsigned cell.
    U8,
    /// 2-byte unsigned cell.
    U16,
    /// 4-byte unsigned cell.
    U32,
    /// 8-byte unsigned cell.
    U64,
    /// 8-byte signed cell (stored as its two's-complement bits).
    I64,
    /// 8-byte float cell (stored as its IEEE-754 bits).
    F64,
}

impl ColType {
    /// Encoded width in bytes.
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            ColType::U8 => 1,
            ColType::U16 => 2,
            ColType::U32 | ColType::U64 | ColType::I64 | ColType::F64 => match self {
                ColType::U32 => 4,
                _ => 8,
            },
        }
    }

    /// Mask a raw cell down to the bits this type actually stores.
    /// Encoding then decoding always yields the masked value.
    #[must_use]
    pub fn mask(self, raw: u64) -> u64 {
        match self.width() {
            1 => raw & 0xff,
            2 => raw & 0xffff,
            4 => raw & 0xffff_ffff,
            _ => raw,
        }
    }

    /// Stable lowercase name used in the JSON sidecar.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            ColType::U8 => "u8",
            ColType::U16 => "u16",
            ColType::U32 => "u32",
            ColType::U64 => "u64",
            ColType::I64 => "i64",
            ColType::F64 => "f64",
        }
    }

    /// Inverse of [`ColType::name`].
    #[must_use]
    pub fn from_name(s: &str) -> Option<ColType> {
        Some(match s {
            "u8" => ColType::U8,
            "u16" => ColType::U16,
            "u32" => ColType::U32,
            "u64" => ColType::U64,
            "i64" => ColType::I64,
            "f64" => ColType::F64,
            _ => return None,
        })
    }
}

/// Schema of one column.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Column {
    /// Column name as written to the JSON sidecar.
    pub name: String,
    /// Cell type (fixes the encoded width).
    pub ty: ColType,
}

/// An in-memory columnar table. `rows[r][c]` is the raw bit pattern of
/// row `r`, column `c` (use `f64::to_bits` / `from_bits` for floats).
#[derive(Clone, Debug, PartialEq)]
pub struct Table {
    /// Column schema, in encoded order.
    pub columns: Vec<Column>,
    /// Row-major cells; each cell is the raw bit pattern for its column.
    pub rows: Vec<Vec<u64>>,
}

/// Decode failure with enough context to name the corrupt offset.
#[derive(Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer does not start with the `FVTR0001` magic.
    BadMagic,
    /// The buffer ends before the declared cells do.
    Truncated {
        /// Bytes the header claims.
        need: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// Header column count disagrees with the sidecar schema.
    ColumnCountMismatch {
        /// Count stored in the binary header.
        header: u32,
        /// Count in the schema used to decode.
        schema: usize,
    },
    /// Bytes remain after the last declared cell.
    TrailingBytes {
        /// How many bytes are left over.
        extra: usize,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadMagic => write!(f, "bad magic (not a FVTR0001 trace)"),
            DecodeError::Truncated { need, have } => {
                write!(f, "truncated: need {need} bytes, have {have}")
            }
            DecodeError::ColumnCountMismatch { header, schema } => {
                write!(
                    f,
                    "header says {header} columns, sidecar schema has {schema}"
                )
            }
            DecodeError::TrailingBytes { extra } => write!(f, "{extra} trailing bytes"),
        }
    }
}

const MAGIC: &[u8; 8] = b"FVTR0001";

/// Serialises a table to the columnar binary format. Cells are masked
/// to their column width, so `encode(decode(encode(t))) == encode(t)`.
#[must_use]
pub fn encode(table: &Table) -> Vec<u8> {
    let ncols = table.columns.len();
    let nrows = table.rows.len();
    let body: usize = table.columns.iter().map(|c| c.ty.width() * nrows).sum();
    let mut out = Vec::with_capacity(8 + 4 + 8 + body);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&u32::try_from(ncols).unwrap_or(u32::MAX).to_le_bytes());
    out.extend_from_slice(&(nrows as u64).to_le_bytes());
    for (ci, col) in table.columns.iter().enumerate() {
        let w = col.ty.width();
        for row in &table.rows {
            let bits = col.ty.mask(row.get(ci).copied().unwrap_or(0));
            out.extend_from_slice(&bits.to_le_bytes()[..w]);
        }
    }
    out
}

fn read_u64(bytes: &[u8], at: usize, w: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf[..w].copy_from_slice(&bytes[at..at + w]);
    u64::from_le_bytes(buf)
}

/// Decodes a columnar binary against a sidecar-provided schema.
pub fn decode(bytes: &[u8], columns: &[Column]) -> Result<Table, DecodeError> {
    let header = 8 + 4 + 8;
    if bytes.len() < header {
        return Err(DecodeError::Truncated {
            need: header,
            have: bytes.len(),
        });
    }
    if &bytes[..8] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let ncols = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if ncols as usize != columns.len() {
        return Err(DecodeError::ColumnCountMismatch {
            header: ncols,
            schema: columns.len(),
        });
    }
    let nrows = read_u64(bytes, 12, 8) as usize;
    let body: usize = columns.iter().map(|c| c.ty.width() * nrows).sum();
    let need = header + body;
    if bytes.len() < need {
        return Err(DecodeError::Truncated {
            need,
            have: bytes.len(),
        });
    }
    if bytes.len() > need {
        return Err(DecodeError::TrailingBytes {
            extra: bytes.len() - need,
        });
    }
    let mut rows = vec![vec![0u64; columns.len()]; nrows];
    let mut at = header;
    for (ci, col) in columns.iter().enumerate() {
        let w = col.ty.width();
        for row in &mut rows {
            row[ci] = read_u64(bytes, at, w);
            at += w;
        }
    }
    Ok(Table {
        columns: columns.to_vec(),
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn any_coltype() -> impl Strategy<Value = ColType> {
        prop_oneof![
            Just(ColType::U8),
            Just(ColType::U16),
            Just(ColType::U32),
            Just(ColType::U64),
            Just(ColType::I64),
            Just(ColType::F64),
        ]
    }

    fn any_table() -> impl Strategy<Value = Table> {
        // The vendored proptest subset has no `prop_flat_map`, so rows
        // are generated at the maximum width and truncated to the
        // schema's column count inside `prop_map`.
        (
            prop::collection::vec(any_coltype(), 1..6),
            prop::collection::vec(prop::collection::vec(any::<u64>(), 6..7), 0..40),
        )
            .prop_map(|(tys, wide_rows)| {
                let ncols = tys.len();
                Table {
                    columns: tys
                        .iter()
                        .enumerate()
                        .map(|(i, ty)| Column {
                            name: format!("c{i}"),
                            ty: *ty,
                        })
                        .collect(),
                    rows: wide_rows
                        .into_iter()
                        .map(|mut r| {
                            r.truncate(ncols);
                            r
                        })
                        .collect(),
                }
            })
    }

    proptest! {
        /// Random schema + rows: encode -> decode -> re-encode is
        /// byte-identical, and decoded cells equal the masked input.
        #[test]
        fn round_trip_is_byte_identical(t in any_table()) {
            let bytes = encode(&t);
            let back = decode(&bytes, &t.columns).expect("decode");
            prop_assert_eq!(&encode(&back), &bytes);
            for (r, row) in t.rows.iter().enumerate() {
                for (c, col) in t.columns.iter().enumerate() {
                    prop_assert_eq!(back.rows[r][c], col.ty.mask(row[c]));
                }
            }
        }
    }

    #[test]
    fn errors_name_the_problem() {
        let t = Table {
            columns: vec![Column {
                name: "x".into(),
                ty: ColType::U32,
            }],
            rows: vec![vec![7]],
        };
        let bytes = encode(&t);
        assert_eq!(
            decode(&bytes[..3], &t.columns),
            Err(DecodeError::Truncated { need: 20, have: 3 })
        );
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(decode(&bad, &t.columns), Err(DecodeError::BadMagic));
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            decode(&long, &t.columns),
            Err(DecodeError::TrailingBytes { extra: 1 })
        );
        assert_eq!(
            decode(&bytes, &[]),
            Err(DecodeError::ColumnCountMismatch {
                header: 1,
                schema: 0
            })
        );
    }

    #[test]
    fn float_bit_patterns_survive() {
        let t = Table {
            columns: vec![Column {
                name: "v".into(),
                ty: ColType::F64,
            }],
            rows: vec![
                vec![(-0.0f64).to_bits()],
                vec![f64::NAN.to_bits()],
                vec![f64::INFINITY.to_bits()],
            ],
        };
        let back = decode(&encode(&t), &t.columns).expect("decode");
        assert_eq!(back.rows, t.rows);
    }
}
