//! # fiveg-trace — deterministic flight recorder + columnar KPI store
//!
//! Structured event tracing for the simulator: typed [`TraceEvent`]s
//! are emitted from the radio / fault / KPI / CC / shard layers into an
//! ambient per-run sink, then merged in global `(t_ns, origin, seq)`
//! order and serialised as a fixed-width columnar binary plus a JSON
//! sidecar schema. The merged order is keyed by **logical** origins
//! (UE chunk, router hub, serial code), so for the default category
//! set the trace bytes are invariant under `FIVEG_SHARDS`, `--jobs`
//! and `FIVEG_SWEEP_THREADS` — the same contract every other artifact
//! obeys (see DESIGN.md §11).
//!
//! Like `fiveg-obs`, the API is ambient: instrumented code calls
//! [`emit`] unconditionally and pays one thread-local read when no
//! trace scope is installed. The campaign executor installs a scope
//! per job when `repro --trace` is passed; the shard kernel re-installs
//! it inside its worker threads.
//!
//! Two capture modes:
//!
//! * **full** — every accepted event is kept.
//! * **ring** (flight recorder, the default) — each `(origin,
//!   category)` stream keeps a bounded deque of its most recent
//!   events, and after the global merge each *category* is truncated
//!   to its last `ring` events. Because the per-stream deques retain a
//!   superset of any global suffix, the truncated result equals what a
//!   single global ring would have kept — for any shard partition.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

pub mod columnar;
pub mod event;

pub use columnar::{decode, encode, ColType, Column, DecodeError, Table};
pub use event::{Category, TraceEvent, KIND_NAMES, NO_UE, ROUTER_ORIGIN};

/// Capture mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// Keep everything.
    Full,
    /// Flight recorder: last `ring` events per category.
    Ring,
}

impl TraceMode {
    /// Stable name used in the sidecar and CLI flags.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            TraceMode::Full => "full",
            TraceMode::Ring => "ring",
        }
    }
}

/// Sink configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceConfig {
    /// Capture mode (full or flight-recorder ring).
    pub mode: TraceMode,
    /// Ring capacity per category (ring mode only).
    pub ring: usize,
    /// KPI sampling: record every `sample`-th tick (1 = every tick).
    pub sample: u32,
    /// Category bitmask ([`Category::bit`]).
    pub mask: u8,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            mode: TraceMode::Ring,
            ring: 1024,
            sample: 1,
            mask: Category::default_mask(),
        }
    }
}

/// One merged trace row; field order mirrors the columnar schema.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Row {
    /// Simulation time, nanoseconds.
    pub t_ns: u64,
    /// Logical origin (UE/flow/cell id) that emitted the event.
    pub origin: u32,
    /// Per-origin monotone sequence number (the total-order tiebreak).
    pub seq: u32,
    /// Event kind code (index into [`event::KIND_NAMES`]).
    pub kind: u8,
    /// UE id column (kind-specific; 0 when unused).
    pub ue: u32,
    /// First kind-specific integer column.
    pub a: u32,
    /// Second kind-specific integer column.
    pub b: u32,
    /// First kind-specific float column.
    pub v0: f64,
    /// Second kind-specific float column.
    pub v1: f64,
}

/// A named UE-index range annotation (fleet groups).
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize)]
pub struct Group {
    /// Group name as written to the sidecar.
    pub name: String,
    /// First UE index (inclusive).
    pub start: u32,
    /// Last UE index (exclusive).
    pub end: u32,
}

#[derive(Default)]
struct Inner {
    cfg: TraceConfig,
    /// Per-origin monotone sequence counters.
    seqs: BTreeMap<u32, u32>,
    /// Full-mode buffer.
    full: Vec<Row>,
    /// Ring-mode per-(origin, category) bounded deques.
    rings: BTreeMap<(u32, u8), VecDeque<Row>>,
    /// Accepted events per kind (before any ring truncation).
    counts: [u64; 9],
    groups: Vec<Group>,
}

/// The per-run trace sink. Shared across threads behind one mutex;
/// determinism comes from per-origin sequencing plus the final sort,
/// not from lock-acquisition order.
pub struct TraceSink {
    inner: Mutex<Inner>,
    /// Lock-free mirror of `cfg.mask` so hot emitters (the shard
    /// kernel's per-message send/recv) skip the mutex entirely when
    /// their category is filtered out.
    mask: AtomicU8,
}

/// Cloneable handle to a [`TraceSink`].
#[derive(Clone)]
pub struct TraceHandle(Arc<TraceSink>);

/// Finished trace: the columnar binary plus its JSON sidecar.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceOutput {
    /// Columnar binary (`FVTR0001` format).
    pub bin: Vec<u8>,
    /// JSON sidecar describing schema, counts and groups.
    pub sidecar: String,
    /// Rows present in `bin` (post-truncation).
    pub rows: u64,
    /// Events accepted by the mask (pre-truncation).
    pub events: u64,
}

impl Default for TraceHandle {
    fn default() -> Self {
        TraceHandle::new(TraceConfig::default())
    }
}

impl TraceHandle {
    /// Creates a fresh sink with the given configuration.
    #[must_use]
    pub fn new(cfg: TraceConfig) -> TraceHandle {
        let mask = cfg.mask;
        TraceHandle(Arc::new(TraceSink {
            inner: Mutex::new(Inner {
                cfg,
                ..Inner::default()
            }),
            mask: AtomicU8::new(mask),
        }))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A panicking emitter cannot leave partial state worth
        // protecting: rows are appended whole.
        self.0.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Records one event (applies the category mask, assigns the
    /// per-origin sequence number, honours ring bounds).
    pub fn emit(&self, origin: u32, ev: &TraceEvent) {
        let cat = ev.category();
        if self.0.mask.load(Ordering::Relaxed) & cat.bit() == 0 {
            return;
        }
        let mut g = self.lock();
        if g.cfg.mask & cat.bit() == 0 {
            return;
        }
        let seq = g.seqs.entry(origin).or_insert(0);
        let s = *seq;
        *seq += 1;
        let (ue, a, b, v0, v1) = ev.payload();
        let row = Row {
            t_ns: ev.t_ns(),
            origin,
            seq: s,
            kind: ev.kind(),
            ue,
            a,
            b,
            v0,
            v1,
        };
        g.counts[row.kind as usize] += 1;
        match g.cfg.mode {
            TraceMode::Full => g.full.push(row),
            TraceMode::Ring => {
                let cap = g.cfg.ring.max(1);
                let dq = g.rings.entry((origin, cat.bit())).or_default();
                if dq.len() == cap {
                    dq.pop_front();
                }
                dq.push_back(row);
            }
        }
    }

    /// Current KPI sampling rate (>= 1).
    #[must_use]
    pub fn sample(&self) -> u32 {
        self.lock().cfg.sample.max(1)
    }

    /// Adjusts the configuration in place. Intended for the scenario
    /// DSL `trace` block, which refines sampling / categories / ring
    /// size before any event is emitted; reconfiguring mid-run only
    /// affects subsequent events.
    pub fn configure(&self, f: impl FnOnce(&mut TraceConfig)) {
        let mut g = self.lock();
        f(&mut g.cfg);
        self.0.mask.store(g.cfg.mask, Ordering::Relaxed);
    }

    /// Installs the fleet-group UE-range annotations for the sidecar.
    pub fn set_groups(&self, groups: Vec<Group>) {
        self.lock().groups = groups;
    }

    /// Drains the sink into the merged columnar artifact. Also bumps
    /// the `trace.events` / `trace.bytes` obs counters (under the
    /// ambient obs scope, if any) so tracing cost is visible in perf
    /// blocks and the bench gate.
    #[must_use]
    pub fn finish(&self) -> TraceOutput {
        let inner = {
            let mut g = self.lock();
            std::mem::take(&mut *g)
        };
        let mut rows: Vec<Row> = match inner.cfg.mode {
            TraceMode::Full => inner.full,
            TraceMode::Ring => inner.rings.into_values().flatten().collect(),
        };
        rows.sort_by_key(|r| (r.t_ns, r.origin, r.seq));
        if inner.cfg.mode == TraceMode::Ring {
            rows = truncate_per_category(rows, inner.cfg.ring.max(1));
        }
        let events: u64 = inner.counts.iter().sum();
        let table = Table {
            columns: schema(),
            rows: rows
                .iter()
                .map(|r| {
                    vec![
                        r.t_ns,
                        u64::from(r.origin),
                        u64::from(r.seq),
                        u64::from(r.kind),
                        u64::from(r.ue),
                        u64::from(r.a),
                        u64::from(r.b),
                        r.v0.to_bits(),
                        r.v1.to_bits(),
                    ]
                })
                .collect(),
        };
        let bin = encode(&table);
        let sidecar = sidecar_json(&inner.cfg, &inner.counts, &inner.groups, &bin, rows.len());
        fiveg_obs::counter_add("trace.events", events);
        fiveg_obs::counter_add("trace.bytes", bin.len() as u64);
        TraceOutput {
            bin,
            sidecar,
            rows: rows.len() as u64,
            events,
        }
    }
}

/// Keeps the last `cap` rows of each category, preserving order.
fn truncate_per_category(rows: Vec<Row>, cap: usize) -> Vec<Row> {
    let mut budget: BTreeMap<u8, usize> = BTreeMap::new();
    let mut keep = vec![false; rows.len()];
    for (i, r) in rows.iter().enumerate().rev() {
        let cat_bit = kind_category_bit(r.kind);
        let used = budget.entry(cat_bit).or_insert(0);
        if *used < cap {
            *used += 1;
            keep[i] = true;
        }
    }
    rows.into_iter()
        .zip(keep)
        .filter_map(|(r, k)| k.then_some(r))
        .collect()
}

fn kind_category_bit(kind: u8) -> u8 {
    match kind {
        0 | 1 => Category::Radio.bit(),
        2..=4 => Category::Fault.bit(),
        5 | 6 => Category::Shard.bit(),
        7 => Category::Cc.bit(),
        _ => Category::Kpi.bit(),
    }
}

/// The fixed 9-column trace schema.
#[must_use]
pub fn schema() -> Vec<Column> {
    [
        ("t_ns", ColType::U64),
        ("origin", ColType::U32),
        ("seq", ColType::U32),
        ("kind", ColType::U8),
        ("ue", ColType::U32),
        ("a", ColType::U32),
        ("b", ColType::U32),
        ("v0", ColType::F64),
        ("v1", ColType::F64),
    ]
    .into_iter()
    .map(|(name, ty)| Column {
        name: name.to_string(),
        ty,
    })
    .collect()
}

/// FNV-1a 64-bit (same constants as the campaign manifest hashes).
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Lower-hex rendering of a 64-bit hash.
#[must_use]
pub fn hex64(h: u64) -> String {
    format!("{h:016x}")
}

#[derive(serde::Serialize)]
struct SidecarColumn {
    name: String,
    ty: &'static str,
}

#[derive(serde::Serialize)]
struct Sidecar {
    schema: u32,
    mode: &'static str,
    ring: u64,
    sample: u32,
    categories: Vec<&'static str>,
    columns: Vec<SidecarColumn>,
    rows: u64,
    counts: BTreeMap<String, u64>,
    bin_hash: String,
    groups: Vec<Group>,
}

fn sidecar_json(
    cfg: &TraceConfig,
    counts: &[u64; 9],
    groups: &[Group],
    bin: &[u8],
    rows: usize,
) -> String {
    let side = Sidecar {
        schema: 1,
        mode: cfg.mode.name(),
        ring: cfg.ring as u64,
        sample: cfg.sample,
        categories: Category::ALL
            .into_iter()
            .filter(|c| cfg.mask & c.bit() != 0)
            .map(Category::name)
            .collect(),
        columns: schema()
            .into_iter()
            .map(|c| SidecarColumn {
                name: c.name,
                ty: c.ty.name(),
            })
            .collect(),
        rows: rows as u64,
        counts: KIND_NAMES
            .iter()
            .enumerate()
            .filter(|&(k, _)| counts[k] > 0)
            .map(|(k, name)| ((*name).to_string(), counts[k]))
            .collect(),
        bin_hash: hex64(fnv1a64(bin)),
        groups: groups.to_vec(),
    };
    // Serialisation of a struct of plain fields cannot fail; fall back
    // to an empty object rather than poisoning the artifact path.
    serde_json::to_string_pretty(&side).unwrap_or_else(|_| "{}".to_string())
}

// ---------------------------------------------------------------------
// Ambient scope (mirrors fiveg-obs).

thread_local! {
    static SCOPE: std::cell::RefCell<Vec<TraceHandle>> = const { std::cell::RefCell::new(Vec::new()) };
}

/// Runs `f` with `handle` installed as the ambient trace sink.
pub fn scoped<R>(handle: &TraceHandle, f: impl FnOnce() -> R) -> R {
    SCOPE.with(|s| s.borrow_mut().push(handle.clone()));
    struct Pop;
    impl Drop for Pop {
        fn drop(&mut self) {
            SCOPE.with(|s| {
                s.borrow_mut().pop();
            });
        }
    }
    let _pop = Pop;
    f()
}

/// The innermost ambient handle, if any. Worker threads use this to
/// re-install the scope across thread boundaries.
#[must_use]
pub fn current() -> Option<TraceHandle> {
    SCOPE.with(|s| s.borrow().last().cloned())
}

/// Whether a trace scope is installed (cheap pre-check for emitters
/// that would otherwise compute payload fields).
#[must_use]
pub fn is_active() -> bool {
    SCOPE.with(|s| !s.borrow().is_empty())
}

/// Emits an event into the ambient sink; no-op without a scope.
pub fn emit(origin: u32, ev: &TraceEvent) {
    SCOPE.with(|s| {
        if let Some(h) = s.borrow().last() {
            h.emit(origin, ev);
        }
    });
}

/// Ambient KPI sampling rate; 1 when no scope is installed.
#[must_use]
pub fn sample_rate() -> u32 {
    current().map_or(1, |h| h.sample())
}

/// Adjusts the ambient sink's configuration; no-op without a scope.
pub fn configure(f: impl FnOnce(&mut TraceConfig)) {
    if let Some(h) = current() {
        h.configure(f);
    }
}

/// Installs group annotations on the ambient sink; no-op without one.
pub fn set_groups(groups: Vec<Group>) {
    if let Some(h) = current() {
        h.set_groups(groups);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, ue: u32) -> TraceEvent {
        TraceEvent::Attach {
            t_ns: t,
            ue,
            pci: 60,
            rsrp_dbm: -80.0,
        }
    }

    /// Split the same logical event streams across different "shard"
    /// interleavings: the finished bytes must be identical, because
    /// ordering comes from (t, origin, seq), not arrival order.
    #[test]
    fn merge_order_is_arrival_invariant() {
        let mk = |interleave: bool| {
            let h = TraceHandle::new(TraceConfig {
                mode: TraceMode::Full,
                ..TraceConfig::default()
            });
            let stream_a: Vec<TraceEvent> = (0..10).map(|i| ev(i * 100, 1)).collect();
            let stream_b: Vec<TraceEvent> = (0..10).map(|i| ev(i * 100 + 50, 2)).collect();
            if interleave {
                for (a, b) in stream_a.iter().zip(&stream_b) {
                    h.emit(7, a);
                    h.emit(9, b);
                }
            } else {
                for b in &stream_b {
                    h.emit(9, b);
                }
                for a in &stream_a {
                    h.emit(7, a);
                }
            }
            h.finish()
        };
        let x = mk(true);
        let y = mk(false);
        assert_eq!(x.bin, y.bin);
        assert_eq!(x.sidecar, y.sidecar);
    }

    /// Ring mode equals a single global per-category ring regardless
    /// of how origins were partitioned into per-stream deques.
    #[test]
    fn ring_truncation_matches_global_ring() {
        let cfg = TraceConfig {
            mode: TraceMode::Ring,
            ring: 5,
            ..TraceConfig::default()
        };
        let h = TraceHandle::new(cfg.clone());
        // 3 origins x 20 events, timestamps interleaved across origins.
        for i in 0..20u64 {
            for origin in 0..3u32 {
                h.emit(origin, &ev(i * 10 + u64::from(origin), origin));
            }
        }
        let out = h.finish();
        let table = decode(&out.bin, &schema()).expect("decode");
        assert_eq!(table.rows.len(), 5);
        // The last 5 events globally: t = 192, 180, 181, 182 ... sorted
        // ascending the kept suffix is t in {181, 182, 190, 191, 192}.
        let ts: Vec<u64> = table.rows.iter().map(|r| r[0]).collect();
        assert_eq!(ts, vec![181, 182, 190, 191, 192]);
        assert_eq!(out.rows, 5);
        assert_eq!(out.events, 60);
    }

    /// Category mask drops events entirely (no seq consumed, so masked
    /// categories cannot perturb the bytes of unmasked ones).
    #[test]
    fn masked_categories_do_not_consume_sequence_numbers() {
        let mk = |with_shard_events: bool| {
            let h = TraceHandle::new(TraceConfig {
                mode: TraceMode::Full,
                ..TraceConfig::default()
            });
            h.emit(0, &ev(5, 1));
            if with_shard_events {
                h.emit(
                    0,
                    &TraceEvent::ShardMsgSend {
                        t_ns: 6,
                        src: 0,
                        dst: 1,
                    },
                );
            }
            h.emit(0, &ev(7, 1));
            h.finish()
        };
        assert_eq!(mk(true).bin, mk(false).bin);
    }

    #[test]
    fn scope_is_ambient_and_nested() {
        assert!(!is_active());
        assert_eq!(sample_rate(), 1);
        emit(0, &ev(1, 1)); // no-op without scope
        let h = TraceHandle::new(TraceConfig {
            mode: TraceMode::Full,
            sample: 4,
            ..TraceConfig::default()
        });
        let out = scoped(&h, || {
            assert!(is_active());
            assert_eq!(sample_rate(), 4);
            emit(3, &ev(2, 9));
            h.finish()
        });
        assert!(!is_active());
        assert_eq!(out.rows, 1);
    }

    #[test]
    fn sidecar_reports_counts_and_hash() {
        let h = TraceHandle::new(TraceConfig {
            mode: TraceMode::Full,
            ..TraceConfig::default()
        });
        h.set_groups(vec![Group {
            name: "walkers".into(),
            start: 0,
            end: 24,
        }]);
        h.emit(0, &ev(1, 0));
        let out = h.finish();
        let side = fiveg_obs::parse_json(&out.sidecar).expect("sidecar parses");
        assert_eq!(
            side.get("bin_hash").and_then(|v| v.as_str()),
            Some(hex64(fnv1a64(&out.bin)).as_str())
        );
        assert_eq!(
            side.get("counts")
                .and_then(|c| c.get("attach"))
                .and_then(|v| v.as_u64()),
            Some(1)
        );
        assert_eq!(side.get("mode").and_then(|v| v.as_str()), Some("full"));
    }
}
