//! Property-based tests for the packet-level network simulator.

use fiveg_net::hop::HopConfig;
use fiveg_net::ratemodel::RateModel;
use fiveg_net::sim::{AckInfo, Ctx, Endpoint, TimerKind};
use fiveg_net::{NetSim, PathConfig, MSS_BYTES};
use fiveg_simcore::{BitRate, SimDuration, SimTime};
use proptest::prelude::*;

/// Sends `n` back-to-back packets on start.
struct Blaster {
    n: u64,
}

impl Endpoint for Blaster {
    fn on_start(&mut self, ctx: &mut Ctx) {
        for i in 0..self.n {
            ctx.send_packet(i * MSS_BYTES as u64, MSS_BYTES, false);
        }
    }
    fn on_ack(&mut self, _: AckInfo, _: &mut Ctx) {}
    fn on_timer(&mut self, _: TimerKind, _: u64, _: &mut Ctx) {}
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Packet conservation: received + dropped = sent, and the receiver
    /// never invents data.
    #[test]
    fn conservation(
        n in 1u64..400,
        rate in 1.0f64..200.0,
        cap in 1usize..200,
        drop_prob in 0.0f64..0.5,
    ) {
        let mut hop = HopConfig::wired("h", rate, SimDuration::from_millis(1), cap);
        hop.drop_prob = drop_prob;
        let path = PathConfig { hops: vec![hop], reverse_delay: SimDuration::from_millis(1) };
        let mut sim = NetSim::new(path, 42);
        let flow = sim.add_flow(Box::new(Blaster { n }), false, false);
        sim.run_until(SimTime::from_secs(600));
        let st = sim.flow_stats(flow);
        let hs = sim.hop_stats(0);
        prop_assert_eq!(st.packets_received + hs.dropped(), n);
        prop_assert_eq!(hs.forwarded, st.packets_received);
        prop_assert!(st.bytes_in_order <= n * MSS_BYTES as u64);
    }

    /// The drop-tail queue never exceeds its capacity.
    #[test]
    fn queue_bounded(n in 1u64..500, cap in 1usize..100) {
        let path = PathConfig {
            hops: vec![HopConfig::wired("h", 5.0, SimDuration::from_millis(1), cap)],
            reverse_delay: SimDuration::from_millis(1),
        };
        let mut sim = NetSim::new(path, 7);
        sim.add_flow(Box::new(Blaster { n }), false, false);
        sim.run_until(SimTime::from_secs(600));
        prop_assert!(sim.hop_stats(0).max_queue_pkts <= cap);
    }

    /// Store-and-forward latency over a clean multi-hop path is at least
    /// the sum of propagation delays plus one serialisation.
    #[test]
    fn latency_lower_bound(hops in 1usize..5, prop_ms in 1u64..20) {
        let path = PathConfig {
            hops: (0..hops)
                .map(|i| HopConfig::wired(&format!("h{i}"), 100.0, SimDuration::from_millis(prop_ms), 100))
                .collect(),
            reverse_delay: SimDuration::from_millis(1),
        };
        let mut sim = NetSim::new(path, 9);
        let flow = sim.add_flow(Box::new(Blaster { n: 1 }), false, false);
        let t = sim
            .run_until_delivered(flow, MSS_BYTES as u64, SimTime::from_secs(10))
            .expect("clean path delivers");
        let floor = hops as f64 * (prop_ms as f64 / 1e3) + MSS_BYTES as f64 * 8.0 / 100e6;
        prop_assert!(t.as_secs_f64() >= floor - 1e-9, "{} < {}", t.as_secs_f64(), floor);
    }

    /// Piecewise rate lookup matches its defining segments.
    #[test]
    fn rate_model_consistent(points in prop::collection::vec((0u64..10_000, 0.0f64..1000.0), 1..20), q in 0u64..12_000) {
        let mut pts: Vec<(SimTime, BitRate)> = points
            .into_iter()
            .map(|(t, r)| (SimTime::from_millis(t), BitRate::from_mbps(r)))
            .collect();
        pts.sort_by_key(|&(t, _)| t);
        let model = RateModel::piecewise(pts.clone());
        let t = SimTime::from_millis(q);
        let expect = pts
            .iter()
            .rev()
            .find(|&&(pt, _)| pt <= t)
            .map_or(pts[0].1, |&(_, r)| r);
        prop_assert_eq!(model.rate_at(t).bps(), expect.bps());
        if let Some(nc) = model.next_change_after(t) {
            prop_assert!(nc > t);
        }
    }

    /// An outage inserted into any rate model yields zero rate inside
    /// the window and restores afterwards.
    #[test]
    fn outage_window(start in 0u64..5_000, dur in 1u64..2_000, rate in 1.0f64..500.0) {
        let m = RateModel::Fixed(BitRate::from_mbps(rate))
            .with_outage(SimTime::from_millis(start), SimDuration::from_millis(dur));
        prop_assert_eq!(m.rate_at(SimTime::from_millis(start)).bps(), 0.0);
        let inside = start + dur / 2;
        prop_assert_eq!(m.rate_at(SimTime::from_millis(inside)).bps(), 0.0);
        let after = start + dur;
        prop_assert!((m.rate_at(SimTime::from_millis(after)).mbps() - rate).abs() < 1e-9);
    }
}
