//! Bursty background cross-traffic.
//!
//! The paper's in-network loss anomaly (Sec. 4.2) is bursty (Fig. 11) and
//! grows steeply with offered load (Fig. 9) — the signature of a shared
//! bottleneck router whose spare capacity transiently vanishes under
//! bursts of other customers' traffic while its buffer is too shallow for
//! the 5G-era rate. We model that with an on/off CBR source injected at
//! the bottleneck hop: during ON periods it emits MSS-sized packets at
//! `rate`; OFF periods are idle. Durations are drawn from configurable
//! distributions.

use fiveg_simcore::dist::Dist;
use fiveg_simcore::BitRate;
use serde::{Deserialize, Serialize};

/// Cross-traffic configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CrossTraffic {
    /// Index of the hop the traffic is injected at.
    pub hop: usize,
    /// Emission rate during ON periods.
    pub rate: BitRate,
    /// ON-period duration, milliseconds.
    pub on_ms: Dist,
    /// OFF-period duration, milliseconds.
    pub off_ms: Dist,
}

impl CrossTraffic {
    /// The calibrated metro-router background load: ~620 Mbps bursts of
    /// ≈25 ms mean every ≈115 ms (≈22 % duty, ≈135 Mbps average). On a
    /// 1 Gbps router this leaves the 4G downlink (≤200 Mbps) unharmed
    /// but collides with 5G-scale flows, reproducing the paper's Fig. 9
    /// loss-vs-load curve.
    pub fn paper_metro(hop: usize) -> CrossTraffic {
        CrossTraffic {
            hop,
            rate: BitRate::from_mbps(620.0),
            on_ms: Dist::Exponential { mean: 25.0 },
            off_ms: Dist::Exponential { mean: 90.0 },
        }
    }

    /// Long-run average rate of the source.
    pub fn average_rate(&self) -> BitRate {
        let on = self.on_ms.mean();
        let off = self.off_ms.mean();
        BitRate::from_bps(self.rate.bps() * on / (on + off))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duty_cycle_average() {
        let ct = CrossTraffic::paper_metro(2);
        let avg = ct.average_rate().mbps();
        assert!((130.0..140.0).contains(&avg), "avg {avg}");
    }
}
