//! A network hop: serialising link + finite drop-tail queue.

use crate::packet::Packet;
use crate::ratemodel::RateModel;
use fiveg_simcore::dist::Dist;
use fiveg_simcore::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Static configuration of one hop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HopConfig {
    /// Human-readable name ("radio", "core", "metro", ...).
    pub name: String,
    /// Link rate model.
    pub rate: RateModel,
    /// One-way propagation delay to the next hop.
    pub prop_delay: SimDuration,
    /// Queue capacity in packets (drop-tail beyond this).
    pub capacity_pkts: usize,
    /// Extra per-packet *latency* jitter in milliseconds, applied after
    /// serialisation (e.g. HARQ retransmission rounds on the radio hop,
    /// re-ordered back into sequence by RLC). Does not consume link
    /// capacity — the configured rate already accounts for the ~10 %
    /// HARQ airtime overhead. `None` = no jitter.
    pub extra_delay_ms: Option<Dist>,
    /// Random early packet drop probability (fault injection).
    pub drop_prob: f64,
}

impl HopConfig {
    /// The conservative-PDES lookahead this hop contributes when it
    /// crosses a shard boundary: its one-way propagation delay. Any
    /// event a neighbouring shard sends across this hop arrives at
    /// least this far in the future, which is what lets the shard
    /// synchronizer release a safe window of that width (see
    /// `fiveg_simcore::shard`).
    pub fn lookahead(&self) -> SimDuration {
        self.prop_delay
    }

    /// A plain wired hop.
    pub fn wired(name: &str, rate_mbps: f64, prop: SimDuration, capacity_pkts: usize) -> Self {
        HopConfig {
            name: name.to_owned(),
            rate: RateModel::Fixed(fiveg_simcore::BitRate::from_mbps(rate_mbps)),
            prop_delay: prop,
            capacity_pkts,
            extra_delay_ms: None,
            drop_prob: 0.0,
        }
    }
}

/// Runtime statistics of one hop.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct HopStats {
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped by queue overflow.
    pub dropped_overflow: u64,
    /// Packets dropped by fault injection.
    pub dropped_random: u64,
    /// Largest queue occupancy seen, packets.
    pub max_queue_pkts: usize,
    /// Largest queueing delay experienced by a forwarded packet.
    pub max_queue_delay: SimDuration,
}

impl HopStats {
    /// Total drops.
    pub fn dropped(&self) -> u64 {
        self.dropped_overflow + self.dropped_random
    }

    /// Loss ratio among packets that arrived at this hop.
    pub fn loss_ratio(&self) -> f64 {
        let total = self.forwarded + self.dropped();
        if total == 0 {
            0.0
        } else {
            self.dropped() as f64 / total as f64
        }
    }
}

/// A queued packet with its arrival time (for queue-delay accounting).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Queued {
    pub pkt: Packet,
    pub arrived: SimTime,
}

/// Runtime state of one hop.
#[derive(Debug)]
pub struct Hop {
    /// Configuration.
    pub config: HopConfig,
    /// FIFO queue.
    pub(crate) queue: VecDeque<Queued>,
    /// Whether the link is currently serialising a packet.
    pub(crate) busy: bool,
    /// Exit timestamp of the last packet forwarded — jittered exits are
    /// clamped to this so delivery order is preserved (RLC in-order
    /// delivery).
    pub(crate) last_exit: SimTime,
    /// Statistics.
    pub stats: HopStats,
}

impl Hop {
    /// Creates an idle hop.
    pub fn new(config: HopConfig) -> Self {
        Hop {
            config,
            queue: VecDeque::new(),
            busy: false,
            last_exit: SimTime::ZERO,
            stats: HopStats::default(),
        }
    }

    /// Current queue occupancy, packets.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Serialisation time of `pkt` at the rate in force at `t`, or `None`
    /// during an outage (rate 0).
    pub fn serialisation_time(&self, pkt: &Packet, t: SimTime) -> Option<SimDuration> {
        let rate = self.config.rate.rate_at(t);
        if rate.bps() <= 0.0 {
            None
        } else {
            Some(SimDuration::from_secs_f64(rate.secs_for_bits(pkt.bits())))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{FlowId, MSS_BYTES};
    use fiveg_simcore::BitRate;

    fn pkt() -> Packet {
        Packet {
            flow: FlowId(0),
            seq: 0,
            size: MSS_BYTES,
            sent_at: SimTime::ZERO,
            retx: false,
        }
    }

    #[test]
    fn serialisation_time_follows_rate() {
        let mut cfg = HopConfig::wired("w", 100.0, SimDuration::from_millis(1), 100);
        let hop = Hop::new(cfg.clone());
        let t = hop.serialisation_time(&pkt(), SimTime::ZERO).unwrap();
        // 1448 B at 100 Mbps ≈ 115.84 us.
        assert!((t.as_secs_f64() - 1448.0 * 8.0 / 100e6).abs() < 1e-12);

        cfg.rate = RateModel::Fixed(BitRate::ZERO);
        let outage = Hop::new(cfg);
        assert!(outage.serialisation_time(&pkt(), SimTime::ZERO).is_none());
    }

    #[test]
    fn stats_loss_ratio() {
        let mut s = HopStats::default();
        assert_eq!(s.loss_ratio(), 0.0);
        s.forwarded = 90;
        s.dropped_overflow = 8;
        s.dropped_random = 2;
        assert!((s.loss_ratio() - 0.1).abs() < 1e-12);
        assert_eq!(s.dropped(), 10);
    }
}
