//! Per-hop RTT decomposition and RTT-vs-distance models (Figs. 13–15).
//!
//! The paper's traceroute study found:
//!
//! * hop 1 (RAN): 2.19 ± 0.36 ms for 5G vs 2.6 ± 0.24 ms for 4G — the NR
//!   air interface saves *less than 1 ms*;
//! * hop 2 (to the cellular core): the flat 5G architecture and 25 Gbps
//!   fronthaul save ≈20 ms — essentially all of 5G's latency advantage;
//! * beyond the core, RTT grows with geographic distance identically for
//!   both technologies, so the relative advantage shrinks with path
//!   length (Fig. 15), reaching 82.35 ms average 5G RTT at 2500 km.

use crate::servers::Server;
use fiveg_simcore::dist::normal;
use fiveg_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// Technology selector mirroring `fiveg_phy::Tech` without the
/// dependency (the latency model is analytic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RatTech {
    /// 4G LTE.
    Lte,
    /// 5G NR (NSA).
    Nr,
}

/// RTT contribution parameters, calibrated to Figs. 13–15.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Mean hop-1 (RAN) RTT, ms.
    pub ran_rtt_ms: f64,
    /// Std-dev of hop-1 RTT, ms.
    pub ran_rtt_std_ms: f64,
    /// RTT from the RAN edge through the cellular core, ms.
    pub core_rtt_ms: f64,
    /// Fixed wireline base beyond the core (peering, city egress), ms.
    pub wireline_base_ms: f64,
    /// Wireline RTT per km of great-circle distance, ms (fibre at
    /// ~200 km/ms, doubled for RTT, ×~1.35 route inflation).
    pub per_km_ms: f64,
}

impl LatencyModel {
    /// Calibrated parameters per technology.
    pub fn paper(tech: RatTech) -> Self {
        match tech {
            RatTech::Nr => LatencyModel {
                ran_rtt_ms: 2.19,
                ran_rtt_std_ms: 0.36,
                core_rtt_ms: 5.0,
                wireline_base_ms: 7.0,
                per_km_ms: 0.0273,
            },
            RatTech::Lte => LatencyModel {
                ran_rtt_ms: 2.6,
                ran_rtt_std_ms: 0.24,
                core_rtt_ms: 25.0,
                wireline_base_ms: 7.0,
                per_km_ms: 0.0273,
            },
        }
    }

    /// Mean end-to-end RTT to a server at `distance_km`, ms.
    pub fn mean_rtt_ms(&self, distance_km: f64) -> f64 {
        self.ran_rtt_ms + self.core_rtt_ms + self.wireline_base_ms + self.per_km_ms * distance_km
    }

    /// Number of traceroute hops to a server at `distance_km` (the paper's
    /// example path has 8; long paths have a few more).
    pub fn hop_count(&self, distance_km: f64) -> usize {
        (6.0 + (distance_km / 600.0)).round().clamp(6.0, 14.0) as usize
    }

    /// Samples one traceroute: cumulative RTT per hop, ms.
    ///
    /// Hop 1 is the RAN; hop 2 the cellular core; the remaining hops
    /// split the wireline distance with a front-loaded profile (the city
    /// egress hops are close together, the long-haul hop dominates).
    pub fn sample_traceroute(&self, distance_km: f64, rng: &mut SimRng) -> Vec<f64> {
        let n = self.hop_count(distance_km);
        let mut cum = Vec::with_capacity(n);
        let ran = normal(rng, self.ran_rtt_ms, self.ran_rtt_std_ms).max(0.5);
        cum.push(ran);
        let core = ran + normal(rng, self.core_rtt_ms, self.core_rtt_ms * 0.12).max(0.5);
        cum.push(core);
        let wire_total = (self.wireline_base_ms + self.per_km_ms * distance_km)
            * normal(rng, 1.0, 0.08).max(0.7);
        let wire_hops = n - 2;
        // Front-load fractions: hop i of the wireline carries weight
        // proportional to i^2 so the final long-haul hops dominate.
        let weights: Vec<f64> = (1..=wire_hops).map(|i| (i * i) as f64).collect();
        let wsum: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in weights {
            acc += wire_total * w / wsum;
            cum.push(core + acc * normal(rng, 1.0, 0.03).max(0.9));
        }
        // Cumulative RTTs must be non-decreasing despite jitter.
        for i in 1..cum.len() {
            if cum[i] < cum[i - 1] {
                cum[i] = cum[i - 1];
            }
        }
        cum
    }

    /// Samples the end-to-end RTT to a server, ms, with per-measurement
    /// jitter and a deterministic per-server residual (peering quality).
    pub fn sample_rtt_ms(&self, server: &Server, rng: &mut SimRng) -> f64 {
        let residual = {
            // Hash the server id into ±12 % multiplicative residual.
            let h = (server.id as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 40;
            1.0 + ((h % 2400) as f64 / 10_000.0) - 0.12
        };
        let mean = self.mean_rtt_ms(server.distance_km) * residual;
        normal(rng, mean, mean * 0.06).max(2.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::servers::PAPER_SERVERS;
    use fiveg_simcore::OnlineStats;

    #[test]
    fn ran_hop_saves_less_than_a_millisecond() {
        let nr = LatencyModel::paper(RatTech::Nr);
        let lte = LatencyModel::paper(RatTech::Lte);
        let gap = lte.ran_rtt_ms - nr.ran_rtt_ms;
        assert!(gap > 0.0 && gap < 1.0, "RAN gap {gap} ms");
    }

    #[test]
    fn core_hop_saves_about_twenty_ms() {
        let nr = LatencyModel::paper(RatTech::Nr);
        let lte = LatencyModel::paper(RatTech::Lte);
        let gap = lte.core_rtt_ms - nr.core_rtt_ms;
        assert!((18.0..22.0).contains(&gap), "core gap {gap} ms");
    }

    #[test]
    fn fleet_average_matches_fig13() {
        // Paper: one-way 5G latency 21.8 ms on average over 80 paths →
        // RTT ≈ 43.6 ms; 4G ≈ 22.3 ms more.
        let mut rng = SimRng::new(1);
        let mut nr = OnlineStats::new();
        let mut lte = OnlineStats::new();
        for s in &PAPER_SERVERS {
            for _ in 0..30 {
                nr.push(LatencyModel::paper(RatTech::Nr).sample_rtt_ms(s, &mut rng));
                lte.push(LatencyModel::paper(RatTech::Lte).sample_rtt_ms(s, &mut rng));
            }
        }
        assert!(
            (35.0..52.0).contains(&nr.mean()),
            "5G mean RTT {}",
            nr.mean()
        );
        let gap = lte.mean() - nr.mean();
        assert!((18.0..26.0).contains(&gap), "gap {gap}");
    }

    #[test]
    fn rtt_grows_about_five_x_from_100_to_2500_km() {
        let m = LatencyModel::paper(RatTech::Nr);
        let near = m.mean_rtt_ms(100.0);
        let far = m.mean_rtt_ms(2500.0);
        let ratio = far / near;
        assert!((4.0..6.0).contains(&ratio), "ratio {ratio}");
        assert!((75.0..90.0).contains(&far), "2500 km RTT {far}");
    }

    #[test]
    fn traceroute_cumulative_and_calibrated() {
        let mut rng = SimRng::new(2);
        let m = LatencyModel::paper(RatTech::Nr);
        for _ in 0..100 {
            let tr = m.sample_traceroute(30.0, &mut rng);
            assert!(tr.len() >= 6);
            assert!(
                tr.windows(2).all(|w| w[0] <= w[1]),
                "not cumulative: {tr:?}"
            );
        }
        // Hop-1 statistics.
        let mut s = OnlineStats::new();
        for _ in 0..2_000 {
            s.push(m.sample_traceroute(30.0, &mut rng)[0]);
        }
        assert!((s.mean() - 2.19).abs() < 0.1, "hop1 mean {}", s.mean());
    }

    #[test]
    fn relative_gap_shrinks_with_distance() {
        let nr = LatencyModel::paper(RatTech::Nr);
        let lte = LatencyModel::paper(RatTech::Lte);
        let rel = |d: f64| (lte.mean_rtt_ms(d) - nr.mean_rtt_ms(d)) / lte.mean_rtt_ms(d);
        assert!(
            rel(100.0) > 2.0 * rel(2500.0),
            "{} vs {}",
            rel(100.0),
            rel(2500.0)
        );
    }
}
