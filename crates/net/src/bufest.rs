//! In-network buffer estimation — the paper's Tab. 3 methodology.
//!
//! The classical "max-min delay" estimator (Chan et al., also Appenzeller
//! et al. for sizing): the buffer at the bottleneck of a path segment is
//!
//! ```text
//! B = (RTT_max − RTT_min) · C / packet_size
//! ```
//!
//! where `C` is the assumed capacity. The paper probes with traceroute,
//! assumes `C = 1 Gbps` and 60-byte probe packets, and reports buffer
//! sizes in packets for the RAN segment, the wired segment and the whole
//! path.

use fiveg_simcore::{BitRate, SimDuration};
use serde::{Deserialize, Serialize};

/// The probe packet size the paper assumes, bytes.
pub const PAPER_PROBE_BYTES: f64 = 60.0;

/// The path capacity the paper assumes for the estimate.
pub fn paper_capacity() -> BitRate {
    BitRate::from_gbps(1.0)
}

/// Max-min delay buffer estimate, in probe packets.
pub fn estimate_buffer_pkts(
    rtt_min: SimDuration,
    rtt_max: SimDuration,
    capacity: BitRate,
    probe_bytes: f64,
) -> f64 {
    let dq = rtt_max.as_secs_f64() - rtt_min.as_secs_f64();
    (dq.max(0.0) * capacity.bps() / (8.0 * probe_bytes)).round()
}

/// Tab. 3-shaped result: per-segment estimates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BufferEstimate {
    /// RAN-segment buffer, probe packets.
    pub ran_pkts: f64,
    /// Wired-segment buffer, probe packets.
    pub wired_pkts: f64,
    /// Whole-path buffer, probe packets.
    pub whole_path_pkts: f64,
}

impl BufferEstimate {
    /// Builds the estimate from per-segment min/max RTT observations
    /// using the paper's assumptions (1 Gbps, 60 B probes).
    pub fn from_rtt_spreads(
        ran: (SimDuration, SimDuration),
        wired: (SimDuration, SimDuration),
    ) -> Self {
        let c = paper_capacity();
        let ran_pkts = estimate_buffer_pkts(ran.0, ran.1, c, PAPER_PROBE_BYTES);
        let wired_pkts = estimate_buffer_pkts(wired.0, wired.1, c, PAPER_PROBE_BYTES);
        BufferEstimate {
            ran_pkts,
            wired_pkts,
            whole_path_pkts: ran_pkts + wired_pkts,
        }
    }

    /// The paper's published Tab. 3 values for reference.
    pub fn paper_table3(tech_is_nr: bool) -> BufferEstimate {
        if tech_is_nr {
            BufferEstimate {
                ran_pkts: 2586.0,
                wired_pkts: 26724.0,
                whole_path_pkts: 29310.0,
            }
        } else {
            BufferEstimate {
                ran_pkts: 468.0,
                wired_pkts: 10539.0,
                whole_path_pkts: 11007.0,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_formula() {
        // 10 ms of queueing at 1 Gbps over 60 B packets ≈ 20 833 pkts.
        let b = estimate_buffer_pkts(
            SimDuration::from_millis(20),
            SimDuration::from_millis(30),
            paper_capacity(),
            PAPER_PROBE_BYTES,
        );
        assert!((b - 20_833.0).abs() < 1.0, "{b}");
    }

    #[test]
    fn negative_spread_clamps_to_zero() {
        let b = estimate_buffer_pkts(
            SimDuration::from_millis(30),
            SimDuration::from_millis(20),
            paper_capacity(),
            PAPER_PROBE_BYTES,
        );
        assert_eq!(b, 0.0);
    }

    #[test]
    fn paper_values_have_the_key_ratios() {
        let nr = BufferEstimate::paper_table3(true);
        let lte = BufferEstimate::paper_table3(false);
        // RAN ≈ 5.5×, wired ≈ 2.5×, whole path ≈ 2.66×.
        assert!((nr.ran_pkts / lte.ran_pkts - 5.53).abs() < 0.1);
        assert!((nr.wired_pkts / lte.wired_pkts - 2.54).abs() < 0.1);
        assert!((nr.whole_path_pkts / lte.whole_path_pkts - 2.66).abs() < 0.1);
    }

    #[test]
    fn segments_sum_to_whole_path() {
        let e = BufferEstimate::from_rtt_spreads(
            (SimDuration::from_millis(2), SimDuration::from_millis(4)),
            (SimDuration::from_millis(10), SimDuration::from_millis(18)),
        );
        assert!((e.ran_pkts + e.wired_pkts - e.whole_path_pkts).abs() < 1e-9);
    }
}
