//! Canonical end-to-end path configurations, calibrated to the paper.
//!
//! The measured path (UE ↔ cloud server in the same city) decomposes
//! into four segments the paper probes separately (Sec. 4.2, 4.4):
//!
//! 1. **radio** — the RAN air interface. Rate = the UDP baseline the
//!    paper measured (Fig. 7); deep RLC buffer (bufferbloat); HARQ delay
//!    jitter; ≈2 ms one-way latency (Fig. 14 hop 1).
//! 2. **core** — gNB/eNB to the cellular core. The 5G "flat"
//!    architecture + 25 Gbps fronthaul cuts ≈10 ms one-way versus the
//!    LTE EPC detour (Fig. 14 hop 2).
//! 3. **metro** — the legacy 1 Gbps metro/ISP router where the loss
//!    anomaly lives: finite drop-tail buffer sized from the paper's
//!    Tab. 3 estimates (5G path ≈2.5× the 4G path's — *not* the 5× the
//!    capacity grew), shared with bursty cross-traffic.
//! 4. **server** — the cloud ingress (never the bottleneck).

use crate::crosstraffic::CrossTraffic;
use crate::hop::HopConfig;
use crate::ratemodel::RateModel;
use fiveg_simcore::dist::Dist;
use fiveg_simcore::{BitRate, SimDuration};
use serde::{Deserialize, Serialize};

/// Which direction the data path carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Server → UE.
    Downlink,
    /// UE → server.
    Uplink,
}

/// A forward data path plus the reverse-channel delay for ACKs.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PathConfig {
    /// The hops, in forward order.
    pub hops: Vec<HopConfig>,
    /// Fixed delay of the ACK return channel (sum of reverse propagation;
    /// the reverse direction is never congested in these experiments).
    pub reverse_delay: SimDuration,
}

/// Knobs of the canonical paper path.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PaperPathParams {
    /// Radio-link rate (the UDP baseline), Mbps.
    pub radio_rate_mbps: f64,
    /// Radio (RLC) buffer, packets.
    pub radio_buffer_pkts: usize,
    /// One-way radio latency.
    pub radio_prop: SimDuration,
    /// One-way core-segment latency (5G flat ≈2.5 ms; 4G EPC ≈12.5 ms).
    pub core_prop: SimDuration,
    /// Metro bottleneck rate, Mbps (1 Gbps legacy router).
    pub metro_rate_mbps: f64,
    /// Metro router buffer, packets — the Tab. 3 lever.
    pub metro_buffer_pkts: usize,
    /// Residual random loss on the metro segment.
    pub metro_drop_prob: f64,
}

impl PaperPathParams {
    /// The 5G NSA downlink to the paper's cloud server (daytime UDP
    /// baseline 880 Mbps; metro buffer ≈1.6 MB per Tab. 3).
    pub fn nr_day() -> Self {
        PaperPathParams {
            radio_rate_mbps: 880.0,
            radio_buffer_pkts: 3000,
            radio_prop: SimDuration::from_millis(2),
            core_prop: SimDuration::from_micros(2_500),
            metro_rate_mbps: 1000.0,
            metro_buffer_pkts: 1100,
            metro_drop_prob: 2e-5,
        }
    }

    /// 5G at night (900 Mbps baseline).
    pub fn nr_night() -> Self {
        PaperPathParams {
            radio_rate_mbps: 900.0,
            ..Self::nr_day()
        }
    }

    /// The 4G LTE downlink (daytime 130 Mbps; EPC detour; metro buffer
    /// ≈0.64 MB per Tab. 3).
    pub fn lte_day() -> Self {
        PaperPathParams {
            radio_rate_mbps: 130.0,
            radio_buffer_pkts: 300,
            radio_prop: SimDuration::from_millis(3),
            core_prop: SimDuration::from_micros(12_500),
            metro_rate_mbps: 1000.0,
            metro_buffer_pkts: 440,
            metro_drop_prob: 2e-5,
        }
    }

    /// 4G at night (200 Mbps baseline).
    pub fn lte_night() -> Self {
        PaperPathParams {
            radio_rate_mbps: 200.0,
            ..Self::lte_day()
        }
    }

    /// Uplink variants: the paper's UL baselines (Sec. 4.1): 5G 130 Mbps
    /// day and night; 4G 50 Mbps day, 100 Mbps night.
    pub fn nr_ul() -> Self {
        PaperPathParams {
            radio_rate_mbps: 130.0,
            ..Self::nr_day()
        }
    }

    /// 4G uplink, daytime.
    pub fn lte_ul_day() -> Self {
        PaperPathParams {
            radio_rate_mbps: 50.0,
            ..Self::lte_day()
        }
    }
}

impl PathConfig {
    /// Builds the canonical four-hop paper path.
    ///
    /// For the downlink the order is server→…→radio→UE reversed into
    /// forward order radio-last; we model the *forward* direction as the
    /// data direction, so hop 0 carries data first. Downlink: the server
    /// injects, so hops run server→metro→core→radio. Uplink: the UE
    /// injects, so hops run radio→core→metro→server.
    pub fn paper(params: &PaperPathParams, dir: Direction) -> PathConfig {
        let radio = HopConfig {
            name: "radio".into(),
            rate: RateModel::Fixed(BitRate::from_mbps(params.radio_rate_mbps)),
            prop_delay: params.radio_prop,
            capacity_pkts: params.radio_buffer_pkts,
            // HARQ retransmission rounds: ≈10 % of transport blocks pay
            // one ~4 ms round, ~1 % two — an exponential with 0.5 ms mean
            // reproduces the delay jitter envelope.
            extra_delay_ms: Some(Dist::Exponential { mean: 0.5 }),
            drop_prob: 0.0,
        };
        let core = HopConfig {
            name: "core".into(),
            rate: RateModel::Fixed(BitRate::from_mbps(2.0 * params.metro_rate_mbps)),
            prop_delay: params.core_prop,
            capacity_pkts: 20_000,
            extra_delay_ms: None,
            drop_prob: 0.0,
        };
        let metro = HopConfig {
            name: "metro".into(),
            rate: RateModel::Fixed(BitRate::from_mbps(params.metro_rate_mbps)),
            prop_delay: SimDuration::from_millis(4),
            capacity_pkts: params.metro_buffer_pkts,
            extra_delay_ms: None,
            drop_prob: params.metro_drop_prob,
        };
        let server = HopConfig {
            name: "server".into(),
            rate: RateModel::Fixed(BitRate::from_mbps(10_000.0)),
            prop_delay: SimDuration::from_millis(4),
            capacity_pkts: 20_000,
            extra_delay_ms: None,
            drop_prob: 0.0,
        };
        let hops = match dir {
            Direction::Downlink => vec![server, metro, core, radio],
            Direction::Uplink => vec![radio, core, metro, server],
        };
        let reverse_delay: SimDuration =
            hops.iter().map(|h| h.prop_delay).sum::<SimDuration>() + SimDuration::from_micros(500);
        PathConfig {
            hops,
            reverse_delay,
        }
    }

    /// The conservative-PDES lookahead this path declares when its
    /// endpoints live on different shards: the smallest one-way hop
    /// latency ([`HopConfig::lookahead`]), i.e. the tightest bound on
    /// how soon a message injected at one end can influence the other.
    /// [`SimDuration::ZERO`] for an empty path (no lookahead claim —
    /// callers must not use such a path as a shard boundary).
    pub fn min_lookahead(&self) -> SimDuration {
        self.hops
            .iter()
            .map(HopConfig::lookahead)
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Index of the metro (bottleneck) hop in a paper path. Paths from
    /// [`PathConfig::paper`] always carry one; a hand-built path
    /// without a hop named `metro` falls back to its first hop rather
    /// than aborting the campaign.
    pub fn metro_hop_index(&self) -> usize {
        self.hops
            .iter()
            .position(|h| h.name == "metro")
            .unwrap_or_default()
    }

    /// Index of the radio hop in a paper path, with the same first-hop
    /// fallback as [`PathConfig::metro_hop_index`].
    pub fn radio_hop_index(&self) -> usize {
        self.hops
            .iter()
            .position(|h| h.name == "radio")
            .unwrap_or_default()
    }

    /// The calibrated cross-traffic for this path's metro hop: ≈700 Mbps
    /// bursts of ≈30 ms every ≈150 ms (≈140 Mbps average). Heavy enough
    /// that a 5G-scale flow overflows the 1.6 MB metro buffer on most
    /// bursts (frequent loss events, small per-event volume — exactly
    /// the regime that collapses loss-based TCP while barely denting
    /// BBR), yet light enough to leave ≤200 Mbps 4G flows unharmed
    /// (Fig. 9).
    pub fn paper_cross_traffic(&self) -> CrossTraffic {
        CrossTraffic {
            hop: self.metro_hop_index(),
            rate: BitRate::from_mbps(700.0),
            on_ms: Dist::Exponential { mean: 30.0 },
            off_ms: Dist::Exponential { mean: 120.0 },
        }
    }

    /// Base (unloaded) round-trip time of the path for an MSS packet,
    /// ignoring queueing: forward props + serialisation + reverse delay.
    pub fn base_rtt(&self) -> SimDuration {
        let fwd: SimDuration = self.hops.iter().map(|h| h.prop_delay).sum();
        let ser: f64 = self
            .hops
            .iter()
            .map(|h| {
                let r = h.rate.rate_at(fiveg_simcore::SimTime::ZERO);
                r.secs_for_bits(crate::packet::MSS_BYTES as f64 * 8.0)
            })
            .sum();
        fwd + SimDuration::from_secs_f64(ser) + self.reverse_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_paths_have_expected_shape() {
        let dl = PathConfig::paper(&PaperPathParams::nr_day(), Direction::Downlink);
        assert_eq!(dl.hops.len(), 4);
        assert_eq!(dl.hops[3].name, "radio");
        assert_eq!(dl.metro_hop_index(), 1);
        let ul = PathConfig::paper(&PaperPathParams::nr_ul(), Direction::Uplink);
        assert_eq!(ul.hops[0].name, "radio");
        assert_eq!(ul.metro_hop_index(), 2);
    }

    #[test]
    fn lookahead_is_the_smallest_one_way_hop_latency() {
        let dl = PathConfig::paper(&PaperPathParams::nr_day(), Direction::Downlink);
        // The 5G flat core's 2.5 ms is beaten by the 2 ms radio hop.
        assert_eq!(dl.min_lookahead(), SimDuration::from_millis(2));
        assert_eq!(dl.hops[3].lookahead(), dl.hops[3].prop_delay);
        let empty = PathConfig {
            hops: vec![],
            reverse_delay: SimDuration::ZERO,
        };
        assert_eq!(empty.min_lookahead(), SimDuration::ZERO);
    }

    #[test]
    fn rtt_gap_between_4g_and_5g_matches_paper() {
        // The flat 5G core saves ≈20 ms of RTT (Fig. 14).
        let nr = PathConfig::paper(&PaperPathParams::nr_day(), Direction::Downlink).base_rtt();
        let lte = PathConfig::paper(&PaperPathParams::lte_day(), Direction::Downlink).base_rtt();
        let gap = lte.as_millis_f64() - nr.as_millis_f64();
        assert!((18.0..26.0).contains(&gap), "gap {gap} ms");
        // 5G base RTT in the low tens of ms for the same-city server.
        let nr_ms = nr.as_millis_f64();
        assert!((20.0..32.0).contains(&nr_ms), "5G base RTT {nr_ms} ms");
    }

    #[test]
    fn buffer_ratio_is_the_paper_imbalance() {
        // Capacity grew ~5–6.8× (880/130) but the metro buffer only
        // ~2.5× — the root of the TCP anomaly (Sec. 4.2).
        let nr = PaperPathParams::nr_day();
        let lte = PaperPathParams::lte_day();
        let cap_ratio = nr.radio_rate_mbps / lte.radio_rate_mbps;
        let buf_ratio = nr.metro_buffer_pkts as f64 / lte.metro_buffer_pkts as f64;
        assert!(cap_ratio > 5.0);
        assert!((2.0..3.0).contains(&buf_ratio), "buffer ratio {buf_ratio}");
    }

    #[test]
    fn cross_traffic_spares_4g_rates() {
        let p = PathConfig::paper(&PaperPathParams::lte_day(), Direction::Downlink);
        let ct = p.paper_cross_traffic();
        // 4G peak (200 Mbps) + burst rate must fit in the metro link.
        assert!(200.0 + ct.rate.mbps() <= 1000.0 * 0.95);
        // 5G day rate + burst rate must overload it.
        assert!(880.0 + ct.rate.mbps() > 1000.0 * 1.3);
    }

    #[test]
    fn night_paths_only_change_radio_rate() {
        let d = PaperPathParams::nr_day();
        let n = PaperPathParams::nr_night();
        assert_eq!(d.metro_buffer_pkts, n.metro_buffer_pkts);
        assert!(n.radio_rate_mbps > d.radio_rate_mbps);
    }
}
