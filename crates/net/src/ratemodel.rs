//! Link-rate models.
//!
//! Wired links have a fixed rate; the radio access link's rate follows
//! the channel (PRB share × MCS) and drops to zero during hand-off
//! interruptions, which [`RateModel::Piecewise`] captures as a step
//! function over time.

use fiveg_simcore::{BitRate, SimTime};
use serde::{Deserialize, Serialize};

/// A (possibly time-varying) link rate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RateModel {
    /// Constant rate.
    Fixed(BitRate),
    /// Piecewise-constant rate: `points[i] = (t_i, rate)` applies from
    /// `t_i` (inclusive) until the next point. Before the first point the
    /// first rate applies. Points must be in ascending time order.
    Piecewise(Vec<(SimTime, BitRate)>),
}

impl RateModel {
    /// Builds a piecewise model, validating ordering.
    pub fn piecewise(points: Vec<(SimTime, BitRate)>) -> RateModel {
        assert!(!points.is_empty(), "need at least one point");
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "piecewise points must be time-ordered"
        );
        RateModel::Piecewise(points)
    }

    /// The rate in force at time `t`.
    pub fn rate_at(&self, t: SimTime) -> BitRate {
        match self {
            RateModel::Fixed(r) => *r,
            RateModel::Piecewise(points) => {
                let idx = points.partition_point(|&(pt, _)| pt <= t);
                if idx == 0 {
                    points[0].1
                } else {
                    points[idx - 1].1
                }
            }
        }
    }

    /// The next instant strictly after `t` at which the rate changes,
    /// if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        match self {
            RateModel::Fixed(_) => None,
            RateModel::Piecewise(points) => points.iter().map(|&(pt, _)| pt).find(|&pt| pt > t),
        }
    }

    /// Inserts an outage (rate 0) of `duration` starting at `start` into
    /// a copy of this model — used to model hand-off interruptions.
    pub fn with_outage(&self, start: SimTime, duration: fiveg_simcore::SimDuration) -> RateModel {
        let resume = start + duration;
        let resume_rate = self.rate_at(resume);
        let mut points: Vec<(SimTime, BitRate)> = match self {
            RateModel::Fixed(r) => vec![(SimTime::ZERO, *r)],
            RateModel::Piecewise(p) => p.clone(),
        };
        points.retain(|&(t, _)| t < start || t >= resume);
        points.push((start, BitRate::ZERO));
        points.push((resume, resume_rate));
        points.sort_by_key(|&(t, _)| t);
        RateModel::Piecewise(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::SimDuration;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn fixed_rate() {
        let m = RateModel::Fixed(BitRate::from_mbps(100.0));
        assert_eq!(m.rate_at(ms(5)).mbps(), 100.0);
        assert_eq!(m.next_change_after(ms(5)), None);
    }

    #[test]
    fn piecewise_lookup() {
        let m = RateModel::piecewise(vec![
            (ms(0), BitRate::from_mbps(100.0)),
            (ms(10), BitRate::from_mbps(50.0)),
            (ms(20), BitRate::from_mbps(200.0)),
        ]);
        assert_eq!(m.rate_at(ms(0)).mbps(), 100.0);
        assert_eq!(m.rate_at(ms(9)).mbps(), 100.0);
        assert_eq!(m.rate_at(ms(10)).mbps(), 50.0);
        assert_eq!(m.rate_at(ms(25)).mbps(), 200.0);
        assert_eq!(m.next_change_after(ms(0)), Some(ms(10)));
        assert_eq!(m.next_change_after(ms(10)), Some(ms(20)));
        assert_eq!(m.next_change_after(ms(20)), None);
    }

    #[test]
    fn outage_inserts_zero_window() {
        let m = RateModel::Fixed(BitRate::from_mbps(100.0))
            .with_outage(ms(50), SimDuration::from_millis(108));
        assert_eq!(m.rate_at(ms(49)).mbps(), 100.0);
        assert_eq!(m.rate_at(ms(50)).mbps(), 0.0);
        assert_eq!(m.rate_at(ms(150)).mbps(), 0.0);
        assert_eq!(m.rate_at(ms(158)).mbps(), 100.0);
        assert_eq!(m.next_change_after(ms(60)), Some(ms(158)));
    }

    #[test]
    fn outage_on_piecewise_preserves_other_steps() {
        let m = RateModel::piecewise(vec![
            (ms(0), BitRate::from_mbps(100.0)),
            (ms(200), BitRate::from_mbps(50.0)),
        ])
        .with_outage(ms(100), SimDuration::from_millis(30));
        assert_eq!(m.rate_at(ms(110)).mbps(), 0.0);
        assert_eq!(m.rate_at(ms(140)).mbps(), 100.0);
        assert_eq!(m.rate_at(ms(250)).mbps(), 50.0);
    }

    #[test]
    #[should_panic(expected = "time-ordered")]
    fn rejects_unordered_points() {
        let _ = RateModel::piecewise(vec![
            (ms(10), BitRate::from_mbps(1.0)),
            (ms(5), BitRate::from_mbps(2.0)),
        ]);
    }
}
