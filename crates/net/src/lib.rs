//! # fiveg-net
//!
//! Packet-level discrete-event network simulator: the end-to-end path
//! substrate under the paper's transport experiments (Sec. 4).
//!
//! A simulation is a single forward path — a chain of [`hop::Hop`]s, each
//! a serialising link plus a finite drop-tail queue — with a fixed-delay
//! reverse channel for ACKs. The first hop usually models the radio
//! access link (time-varying rate, HARQ delay jitter, hand-off outages);
//! one wired hop models the metro bottleneck router where the paper's
//! packet-loss anomaly lives, complete with bursty cross-traffic.
//!
//! * [`packet`] — packets and flow identifiers.
//! * [`ratemodel`] — fixed and piecewise link-rate models (rate 0 =
//!   outage, e.g. during a hand-off).
//! * [`hop`] — a link + drop-tail queue with loss/latency statistics and
//!   smoltcp-style fault injection (random drop, extra-delay jitter).
//! * [`sim`] — the event loop and the [`sim::Endpoint`] trait transport
//!   protocols implement.
//! * [`crosstraffic`] — on/off CBR background load injected at a chosen
//!   hop (the mechanism behind the paper's bursty in-network loss,
//!   Fig. 11).
//! * [`path`] — canonical path configurations calibrated to the paper's
//!   4G/5G measurements (capacities, buffers, base RTTs; Tab. 3).
//! * [`servers`] — the paper's 20 SPEEDTEST servers (Tab. 6) used by the
//!   latency study.
//! * [`traceroute`] — per-hop RTT decomposition and RTT-vs-distance
//!   models (Figs. 13–15).
//! * [`bufest`] — the classical max-min-delay in-network buffer
//!   estimator the paper uses for Tab. 3.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bufest;
pub mod crosstraffic;
pub mod hop;
pub mod packet;
pub mod path;
pub mod ratemodel;
pub mod servers;
pub mod sim;
pub mod traceroute;

pub use hop::{Hop, HopConfig, HopStats};
pub use packet::{FlowId, Packet, MSS_BYTES};
pub use path::PathConfig;
pub use ratemodel::RateModel;
pub use sim::{AckInfo, Ctx, Endpoint, FlowStats, NetSim, TimerKind};
