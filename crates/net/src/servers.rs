//! The paper's 20 nationwide SPEEDTEST servers (Tab. 6 / Appendix C),
//! used as the workload for the end-to-end latency study (Sec. 4.4).

use serde::{Deserialize, Serialize};

/// One remote measurement server.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Server {
    /// SPEEDTEST server id.
    pub id: u32,
    /// Server name.
    pub name: &'static str,
    /// Host city.
    pub city: &'static str,
    /// Latitude, degrees.
    pub lat: f64,
    /// Longitude, degrees.
    pub lon: f64,
    /// Great-circle distance from the measurement campus, km.
    pub distance_km: f64,
}

/// The paper's Tab. 6, verbatim.
pub const PAPER_SERVERS: [Server; 20] = [
    Server {
        id: 5145,
        name: "Beijing Unicom",
        city: "Beijing",
        lat: 39.9289,
        lon: 116.3883,
        distance_km: 1.67,
    },
    Server {
        id: 27154,
        name: "China Unicom 5G",
        city: "Tianjin",
        lat: 39.1422,
        lon: 117.1767,
        distance_km: 111.65,
    },
    Server {
        id: 5039,
        name: "China Unicom Jinan Branch",
        city: "Jinan",
        lat: 36.6683,
        lon: 116.9972,
        distance_km: 366.42,
    },
    Server {
        id: 25728,
        name: "China Mobile Liaoning Branch Dalian",
        city: "Dalian",
        lat: 38.9128,
        lon: 121.4989,
        distance_km: 462.77,
    },
    Server {
        id: 27100,
        name: "Shandong CMCC 5G",
        city: "Qingdao",
        lat: 36.1748,
        lon: 120.4284,
        distance_km: 553.80,
    },
    Server {
        id: 5396,
        name: "China Telecom Jiangsu 5G",
        city: "Suzhou",
        lat: 31.3566,
        lon: 120.4682,
        distance_km: 638.00,
    },
    Server {
        id: 16375,
        name: "China Mobile Jilin",
        city: "Changchun",
        lat: 43.7914,
        lon: 125.4784,
        distance_km: 859.32,
    },
    Server {
        id: 5724,
        name: "China Unicom",
        city: "Hefei",
        lat: 31.8639,
        lon: 117.2808,
        distance_km: 900.06,
    },
    Server {
        id: 5485,
        name: "China Unicom Hubei Branch",
        city: "Wuhan",
        lat: 30.5801,
        lon: 114.2734,
        distance_km: 1056.52,
    },
    Server {
        id: 4690,
        name: "China Unicom Lanzhou Branch Co.Ltd",
        city: "Lanzhou",
        lat: 36.0564,
        lon: 103.7922,
        distance_km: 1183.99,
    },
    Server {
        id: 6715,
        name: "China Mobile Zhejiang 5G",
        city: "Ningbo",
        lat: 29.8573,
        lon: 121.6323,
        distance_km: 1213.23,
    },
    Server {
        id: 4870,
        name: "Changsha Hunan Unicom Server1",
        city: "Changsha",
        lat: 28.1792,
        lon: 113.1136,
        distance_km: 1341.73,
    },
    Server {
        id: 5530,
        name: "CCN",
        city: "Chongqing",
        lat: 29.5628,
        lon: 106.5528,
        distance_km: 1459.16,
    },
    Server {
        id: 4884,
        name: "China Unicom Fujian",
        city: "Fuzhou",
        lat: 26.0614,
        lon: 119.3061,
        distance_km: 1563.93,
    },
    Server {
        id: 16398,
        name: "China Mobile Guizhou",
        city: "Guiyang",
        lat: 26.6639,
        lon: 106.6779,
        distance_km: 1730.12,
    },
    Server {
        id: 26678,
        name: "Guangzhou Unicom 5G",
        city: "Guangzhou",
        lat: 23.1167,
        lon: 113.25,
        distance_km: 1890.52,
    },
    Server {
        id: 5674,
        name: "GX Unicom",
        city: "Nanning",
        lat: 22.8167,
        lon: 108.3167,
        distance_km: 2048.98,
    },
    Server {
        id: 16503,
        name: "China Mobile Hainan",
        city: "Haikou",
        lat: 19.9111,
        lon: 110.3301,
        distance_km: 2285.12,
    },
    Server {
        id: 27575,
        name: "Xinjiang Telecom Cloud",
        city: "Urumqi",
        lat: 43.801,
        lon: 87.6005,
        distance_km: 2404.01,
    },
    Server {
        id: 17245,
        name: "China Mobile Group Xinjiang",
        city: "Kashi",
        lat: 39.4694,
        lon: 76.0739,
        distance_km: 3426.37,
    },
];

/// Great-circle distance between two (lat, lon) points, km (haversine).
pub fn haversine_km(lat1: f64, lon1: f64, lat2: f64, lon2: f64) -> f64 {
    let r = 6371.0;
    let (p1, p2) = (lat1.to_radians(), lat2.to_radians());
    let dp = (lat2 - lat1).to_radians();
    let dl = (lon2 - lon1).to_radians();
    let a = (dp / 2.0).sin().powi(2) + p1.cos() * p2.cos() * (dl / 2.0).sin().powi(2);
    2.0 * r * a.sqrt().atan2((1.0 - a).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's campus is at BUPT, Beijing (≈39.96 N, 116.35 E).
    const CAMPUS: (f64, f64) = (39.9608, 116.3526);

    #[test]
    fn twenty_servers_sorted_by_distance() {
        assert_eq!(PAPER_SERVERS.len(), 20);
        assert!(PAPER_SERVERS
            .windows(2)
            .all(|w| w[0].distance_km <= w[1].distance_km));
    }

    #[test]
    fn distances_consistent_with_coordinates() {
        // The tabulated distances should roughly match haversine from
        // the campus. The paper's own table carries a couple of
        // inconsistent rows (e.g. Suzhou is listed at 638 km but its
        // coordinates put it ≈1030 km away), so require 85 % agreement
        // rather than all rows.
        let consistent = PAPER_SERVERS
            .iter()
            .filter(|s| {
                let d = haversine_km(CAMPUS.0, CAMPUS.1, s.lat, s.lon);
                (d - s.distance_km).abs() / s.distance_km.max(30.0) < 0.35
            })
            .count();
        assert!(consistent >= 17, "only {consistent}/20 rows consistent");
    }

    #[test]
    fn distance_span_matches_paper_claims() {
        // Paper: servers located 1 km to 3400 km away.
        assert!(PAPER_SERVERS[0].distance_km < 5.0);
        assert!(PAPER_SERVERS[19].distance_km > 3400.0);
    }

    #[test]
    fn haversine_sanity() {
        // Beijing to Shanghai ≈ 1070 km.
        let d = haversine_km(39.9042, 116.4074, 31.2304, 121.4737);
        assert!((d - 1067.0).abs() < 30.0, "{d}");
        assert_eq!(haversine_km(10.0, 20.0, 10.0, 20.0), 0.0);
    }
}
