//! Packets and flow identity.

use fiveg_simcore::SimTime;
use serde::{Deserialize, Serialize};

/// Maximum segment size used by the data sources, bytes. 1448 = 1500-byte
/// Ethernet MTU minus IP/TCP headers with timestamps.
pub const MSS_BYTES: u32 = 1448;

/// Flow identifier. Flow 0xFFFF_FFFF is reserved for cross-traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FlowId(pub u32);

impl FlowId {
    /// The background cross-traffic pseudo-flow.
    pub const CROSS: FlowId = FlowId(u32::MAX);

    /// Whether this is the cross-traffic pseudo-flow.
    pub fn is_cross(self) -> bool {
        self == FlowId::CROSS
    }
}

/// A simulated packet (data segment or probe).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Packet {
    /// Owning flow.
    pub flow: FlowId,
    /// First payload byte's sequence number.
    pub seq: u64,
    /// Payload size, bytes.
    pub size: u32,
    /// Time the sender injected it.
    pub sent_at: SimTime,
    /// Whether this is a retransmission.
    pub retx: bool,
}

impl Packet {
    /// Sequence number one past the last payload byte.
    pub fn seq_end(&self) -> u64 {
        self.seq + self.size as u64
    }

    /// Size on the wire in bits.
    pub fn bits(&self) -> f64 {
        self.size as f64 * 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seq_arithmetic() {
        let p = Packet {
            flow: FlowId(1),
            seq: 1000,
            size: 1448,
            sent_at: SimTime::ZERO,
            retx: false,
        };
        assert_eq!(p.seq_end(), 2448);
        assert_eq!(p.bits(), 1448.0 * 8.0);
    }

    #[test]
    fn cross_flow_is_reserved() {
        assert!(FlowId::CROSS.is_cross());
        assert!(!FlowId(7).is_cross());
    }
}
