//! The packet-level event loop.
//!
//! A [`NetSim`] owns a forward path (chain of [`Hop`]s), a set of flows
//! (each a sender [`Endpoint`] plus a built-in receiver that generates
//! cumulative ACKs over a fixed-delay reverse channel), and optional
//! cross-traffic. Transport protocols live in `fiveg-transport` and plug
//! in through the [`Endpoint`] trait.
//!
//! Design notes (smoltcp school): the world owns all state; events carry
//! only ids and plain packets; handlers never hold references across
//! scheduling calls, so the borrow checker stays out of the way and the
//! execution order is exactly the event order.

use crate::crosstraffic::CrossTraffic;
use crate::hop::{Hop, HopStats, Queued};
use crate::packet::{FlowId, Packet, MSS_BYTES};
use crate::path::PathConfig;
use fiveg_simcore::{EventQueue, SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Classes of transport timers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimerKind {
    /// Retransmission timeout.
    Rto,
    /// Pacing release.
    Pace,
    /// Protocol-defined auxiliary timer (probe cycles, app think time...).
    Aux(u32),
}

/// Information carried by a (delayed, cumulative) acknowledgement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AckInfo {
    /// Next in-order byte expected by the receiver (cumulative ACK).
    pub cum_ack: u64,
    /// Highest sequence end received so far (SACK-style hint).
    pub highest_seq: u64,
    /// Send timestamp echoed from the packet that triggered this ACK.
    pub echo_sent_at: SimTime,
    /// Whether the triggering packet was a retransmission (Karn's rule:
    /// no RTT sample from it).
    pub echo_retx: bool,
    /// Total in-order bytes delivered at the receiver when this ACK left.
    pub delivered_bytes: u64,
    /// Up to three SACK blocks: out-of-order `(start, end)` ranges above
    /// `cum_ack`, ascending (Linux TCP advertises SACK; the paper's
    /// measurements are SACK TCP throughout).
    pub sack: [(u64, u64); 3],
    /// Number of valid entries in `sack`.
    pub sack_len: u8,
    /// Exact total of out-of-order bytes held by the receiver (beyond
    /// the three advertised blocks) — the sender's delivery-rate
    /// estimator needs the true delivered count, as real TCP gets from
    /// per-packet send/ack bookkeeping.
    pub ooo_bytes: u64,
}

impl AckInfo {
    /// The valid SACK blocks.
    pub fn sack_blocks(&self) -> &[(u64, u64)] {
        &self.sack[..self.sack_len as usize]
    }
}

/// A transport sender: the protocol half that lives in `fiveg-transport`.
pub trait Endpoint {
    /// Called once when the simulation starts.
    fn on_start(&mut self, ctx: &mut Ctx);
    /// An ACK arrived on the reverse channel.
    fn on_ack(&mut self, ack: AckInfo, ctx: &mut Ctx);
    /// A timer set through [`Ctx::set_timer`] fired.
    fn on_timer(&mut self, kind: TimerKind, id: u64, ctx: &mut Ctx);
}

/// Facilities an [`Endpoint`] may use during a callback.
pub struct Ctx<'a> {
    now: SimTime,
    flow: FlowId,
    q: &'a mut EventQueue<Ev>,
    rng: &'a mut SimRng,
    next_timer_id: &'a mut u64,
}

impl Ctx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The flow this callback belongs to. Endpoints use it to label
    /// trace events (e.g. CC state changes) with a stable flow index.
    pub fn flow_index(&self) -> u32 {
        self.flow.0
    }

    /// Injects a data packet onto the forward path.
    pub fn send_packet(&mut self, seq: u64, size: u32, retx: bool) {
        let pkt = Packet {
            flow: self.flow,
            seq,
            size,
            sent_at: self.now,
            retx,
        };
        self.q.schedule_at(self.now, Ev::Arrive { hop: 0, pkt });
    }

    /// Arms a timer; returns its id (delivered back in `on_timer`).
    pub fn set_timer(&mut self, kind: TimerKind, delay: SimDuration) -> u64 {
        let id = *self.next_timer_id;
        *self.next_timer_id += 1;
        self.q.schedule_at(
            self.now + delay,
            Ev::Timer {
                flow: self.flow,
                kind,
                id,
            },
        );
        id
    }

    /// Deterministic randomness for the protocol.
    pub fn rng(&mut self) -> &mut SimRng {
        self.rng
    }
}

/// Receiver-side accounting for one flow.
#[derive(Debug)]
struct Receiver {
    /// Next in-order byte expected.
    expected: u64,
    /// Out-of-order ranges received: start → end. Kept merged (disjoint,
    /// all strictly above `expected`) so per-packet work is O(log n) —
    /// during a large loss episode this map holds thousands of ranges
    /// and any full scan per packet turns the simulation quadratic.
    ooo: BTreeMap<u64, u64>,
    /// Total bytes covered by `ooo`, maintained incrementally.
    ooo_total: u64,
    /// Highest seq end seen.
    highest_seq: u64,
    /// Whether the flow wants cumulative ACKs (TCP yes, UDP no).
    wants_acks: bool,
    /// Whether to log every received sequence number (Fig. 11).
    record_seqs: bool,
    /// Rotation cursor (a range-start key) over out-of-order ranges for
    /// SACK advertisement.
    sack_cursor: u64,
    stats: FlowStats,
}

/// Per-flow delivery statistics.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlowStats {
    /// In-order bytes delivered.
    pub bytes_in_order: u64,
    /// Total payload bytes received (including out-of-order duplicates).
    pub bytes_received: u64,
    /// Packets received.
    pub packets_received: u64,
    /// Received sequence numbers in arrival order (only when recording).
    pub seq_log: Vec<u64>,
    /// Delivered bytes per 10 ms window (index = window number).
    pub window_bytes: Vec<f64>,
}

/// Width of the throughput trace windows.
pub const THROUGHPUT_WINDOW: SimDuration = SimDuration::from_millis(10);

impl FlowStats {
    /// Mean goodput over `[0, until]`.
    pub fn mean_goodput_until(&self, until: SimTime) -> fiveg_simcore::BitRate {
        let secs = until.as_secs_f64();
        if secs <= 0.0 {
            return fiveg_simcore::BitRate::ZERO;
        }
        fiveg_simcore::BitRate::from_bps(self.bytes_in_order as f64 * 8.0 / secs)
    }

    /// Throughput series in Mbps per window, as `(window start, mbps)`.
    pub fn throughput_series(&self) -> Vec<(SimTime, f64)> {
        let w = THROUGHPUT_WINDOW.as_secs_f64();
        self.window_bytes
            .iter()
            .enumerate()
            .map(|(i, &b)| (SimTime::from_secs_f64(i as f64 * w), b * 8.0 / w / 1e6))
            .collect()
    }
}

struct Flow {
    sender: Box<dyn Endpoint>,
    receiver: Receiver,
    started: bool,
}

/// Internal events.
enum Ev {
    Arrive {
        hop: usize,
        pkt: Packet,
    },
    TxDone {
        hop: usize,
    },
    RateResume {
        hop: usize,
    },
    AckArrive {
        flow: FlowId,
        ack: AckInfo,
    },
    Timer {
        flow: FlowId,
        kind: TimerKind,
        id: u64,
    },
    CrossToggle {
        idx: usize,
        on: bool,
    },
    CrossEmit {
        idx: usize,
    },
}

/// The network simulator.
pub struct NetSim {
    q: EventQueue<Ev>,
    hops: Vec<Hop>,
    reverse_delay: SimDuration,
    flows: Vec<Flow>,
    cross: Vec<(CrossTraffic, bool)>,
    rng: SimRng,
    next_timer_id: u64,
    /// Packets currently being serialised per hop.
    in_service: Vec<Option<Queued>>,
    /// Whether a RateResume probe is pending per hop.
    resume_pending: Vec<bool>,
    /// Deepest reassembly (out-of-order) map seen across all flows.
    max_reassembly: usize,
}

impl Drop for NetSim {
    /// Flushes per-run totals into the ambient metrics scope (see
    /// `fiveg-obs`): packets forwarded/dropped across all hops, packets
    /// delivered to receivers, and the reassembly high-watermark. All
    /// are deterministic functions of the simulation seed.
    fn drop(&mut self) {
        let forwarded: u64 = self.hops.iter().map(|h| h.stats.forwarded).sum();
        let dropped: u64 = self.hops.iter().map(|h| h.stats.dropped()).sum();
        let delivered: u64 = self
            .flows
            .iter()
            .map(|f| f.receiver.stats.packets_received)
            .sum();
        if forwarded + dropped + delivered > 0 {
            fiveg_obs::counter_add("net.packets.forwarded", forwarded);
            fiveg_obs::counter_add("net.packets.dropped", dropped);
            fiveg_obs::counter_add("net.packets.delivered", delivered);
            fiveg_obs::gauge_max("net.reassembly.max_depth", self.max_reassembly as u64);
        }
    }
}

impl NetSim {
    /// Builds a simulator over a path.
    pub fn new(path: PathConfig, seed: u64) -> Self {
        let hops: Vec<Hop> = path.hops.into_iter().map(Hop::new).collect();
        let n = hops.len();
        assert!(n > 0, "a path needs at least one hop");
        NetSim {
            q: EventQueue::new(),
            hops,
            reverse_delay: path.reverse_delay,
            flows: Vec::new(),
            cross: Vec::new(),
            rng: SimRng::new(seed),
            next_timer_id: 0,
            in_service: (0..n).map(|_| None).collect(),
            resume_pending: vec![false; n],
            max_reassembly: 0,
        }
    }

    /// Registers a flow with the given sender; returns its id.
    ///
    /// `wants_acks` enables the receiver's cumulative-ACK generation
    /// (true for TCP-like senders, false for UDP). `record_seqs` logs
    /// every received sequence number (memory-heavy; used for the
    /// loss-pattern figure).
    pub fn add_flow(
        &mut self,
        sender: Box<dyn Endpoint>,
        wants_acks: bool,
        record_seqs: bool,
    ) -> FlowId {
        let id = FlowId(self.flows.len() as u32);
        self.flows.push(Flow {
            sender,
            receiver: Receiver {
                expected: 0,
                ooo: BTreeMap::new(),
                ooo_total: 0,
                highest_seq: 0,
                wants_acks,
                record_seqs,
                sack_cursor: 0,
                stats: FlowStats::default(),
            },
            started: false,
        });
        id
    }

    /// Attaches a cross-traffic source.
    pub fn add_cross_traffic(&mut self, ct: CrossTraffic) {
        assert!(ct.hop < self.hops.len(), "cross-traffic hop out of range");
        let idx = self.cross.len();
        self.cross.push((ct, false));
        // First burst begins after one OFF period.
        let off = {
            let (ct, _) = &self.cross[idx];
            ct.off_ms.sample(&mut self.rng).max(0.0)
        };
        self.q.schedule_at(
            SimTime::ZERO + SimDuration::from_millis_f64(off),
            Ev::CrossToggle { idx, on: true },
        );
    }

    /// Current time.
    pub fn now(&self) -> SimTime {
        self.q.now()
    }

    /// Read-only access to a hop's statistics.
    pub fn hop_stats(&self, idx: usize) -> &HopStats {
        &self.hops[idx].stats
    }

    /// Read-only access to all hops.
    pub fn hops(&self) -> &[Hop] {
        &self.hops
    }

    /// Read-only access to a flow's delivery statistics.
    pub fn flow_stats(&self, flow: FlowId) -> &FlowStats {
        &self.flows[flow.0 as usize].receiver.stats
    }

    /// Runs until `deadline` (inclusive of events at the deadline).
    pub fn run_until(&mut self, deadline: SimTime) {
        self.start_pending_flows();
        while let Some(ev) = self.q.pop_until(deadline) {
            self.dispatch(ev.payload);
        }
        self.q.advance_to(deadline);
    }

    /// Runs until `flow` has `bytes` delivered in order, or `deadline`
    /// passes. Returns the delivery time if reached.
    pub fn run_until_delivered(
        &mut self,
        flow: FlowId,
        bytes: u64,
        deadline: SimTime,
    ) -> Option<SimTime> {
        self.start_pending_flows();
        while self.flows[flow.0 as usize].receiver.stats.bytes_in_order < bytes {
            let ev = self.q.pop_until(deadline)?;
            self.dispatch(ev.payload);
        }
        Some(self.q.now())
    }

    fn start_pending_flows(&mut self) {
        for i in 0..self.flows.len() {
            if !self.flows[i].started {
                self.flows[i].started = true;
                self.with_sender(FlowId(i as u32), |s, ctx| s.on_start(ctx));
            }
        }
    }

    /// Runs a sender callback with a context assembled from the world.
    fn with_sender<F: FnOnce(&mut dyn Endpoint, &mut Ctx)>(&mut self, flow: FlowId, f: F) {
        let mut sender = std::mem::replace(
            &mut self.flows[flow.0 as usize].sender,
            Box::new(NullEndpoint),
        );
        {
            let mut ctx = Ctx {
                now: self.q.now(),
                flow,
                q: &mut self.q,
                rng: &mut self.rng,
                next_timer_id: &mut self.next_timer_id,
            };
            f(sender.as_mut(), &mut ctx);
        }
        self.flows[flow.0 as usize].sender = sender;
    }

    fn dispatch(&mut self, ev: Ev) {
        match ev {
            Ev::Arrive { hop, pkt } => self.on_arrive(hop, pkt),
            Ev::TxDone { hop } => self.on_tx_done(hop),
            Ev::RateResume { hop } => {
                self.resume_pending[hop] = false;
                self.try_start_service(hop);
            }
            Ev::AckArrive { flow, ack } => {
                self.with_sender(flow, |s, ctx| s.on_ack(ack, ctx));
            }
            Ev::Timer { flow, kind, id } => {
                self.with_sender(flow, |s, ctx| s.on_timer(kind, id, ctx));
            }
            Ev::CrossToggle { idx, on } => self.on_cross_toggle(idx, on),
            Ev::CrossEmit { idx } => self.on_cross_emit(idx),
        }
    }

    fn on_arrive(&mut self, hop_idx: usize, pkt: Packet) {
        if hop_idx >= self.hops.len() {
            self.deliver(pkt);
            return;
        }
        let now = self.q.now();
        // Fault injection: random early drop.
        let drop_prob = self.hops[hop_idx].config.drop_prob;
        if drop_prob > 0.0 && self.rng.chance(drop_prob) {
            self.hops[hop_idx].stats.dropped_random += 1;
            return;
        }
        let hop = &mut self.hops[hop_idx];
        if hop.busy {
            if hop.queue.len() < hop.config.capacity_pkts {
                hop.queue.push_back(Queued { pkt, arrived: now });
                let len = hop.queue.len();
                hop.stats.max_queue_pkts = hop.stats.max_queue_pkts.max(len);
            } else {
                hop.stats.dropped_overflow += 1;
            }
        } else {
            hop.queue.push_back(Queued { pkt, arrived: now });
            self.try_start_service(hop_idx);
        }
    }

    /// If the hop is idle and has queued packets, begin serialising the
    /// head-of-line packet (or arm a resume probe during an outage).
    fn try_start_service(&mut self, hop_idx: usize) {
        let now = self.q.now();
        let hop = &mut self.hops[hop_idx];
        if hop.busy {
            return;
        }
        let Some(&head) = hop.queue.front() else {
            return;
        };
        match hop.serialisation_time(&head.pkt, now) {
            Some(ser) => {
                hop.busy = true;
                hop.queue.pop_front();
                // Queueing-delay accounting happens at service start.
                let qd = now.since(head.arrived);
                if qd > hop.stats.max_queue_delay {
                    hop.stats.max_queue_delay = qd;
                }
                self.in_service[hop_idx] = Some(head);
                self.q.schedule_at(now + ser, Ev::TxDone { hop: hop_idx });
            }
            None => {
                // Outage: wait for the rate to come back.
                if !self.resume_pending[hop_idx] {
                    if let Some(t) = hop.config.rate.next_change_after(now) {
                        self.resume_pending[hop_idx] = true;
                        self.q.schedule_at(t, Ev::RateResume { hop: hop_idx });
                    }
                    // A permanent outage simply strands the queue.
                }
            }
        }
    }

    fn on_tx_done(&mut self, hop_idx: usize) {
        let now = self.q.now();
        let Some(served) = self.in_service[hop_idx].take() else {
            debug_assert!(false, "TxDone without a packet in service");
            return;
        };
        // Per-packet latency jitter (HARQ rounds) is applied after
        // serialisation so it does not consume link capacity. Exits are
        // clamped to in-order delivery at no faster than the link rate
        // (RLC reordering delays the stream but cannot burst it out
        // beyond what the air interface carries — without the spacing
        // clamp, a jitter stall would release a same-instant burst that
        // looks like super-link-rate delivery to rate estimators).
        let jitter = match &self.hops[hop_idx].config.extra_delay_ms {
            Some(d) => SimDuration::from_millis_f64(d.sample(&mut self.rng).max(0.0)),
            None => SimDuration::ZERO,
        };
        let exit_at = {
            let ser = self.hops[hop_idx]
                .serialisation_time(&served.pkt, now)
                .unwrap_or(SimDuration::ZERO);
            let hop = &mut self.hops[hop_idx];
            hop.busy = false;
            hop.stats.forwarded += 1;
            let t = (now + hop.config.prop_delay + jitter).max(hop.last_exit + ser);
            hop.last_exit = t;
            t
        };
        // Cross-traffic is sunk after crossing its hop; data moves on.
        if !served.pkt.flow.is_cross() {
            self.q.schedule_at(
                exit_at,
                Ev::Arrive {
                    hop: hop_idx + 1,
                    pkt: served.pkt,
                },
            );
        }
        self.try_start_service(hop_idx);
    }

    /// Receiver-side processing at the end of the path.
    fn deliver(&mut self, pkt: Packet) {
        let now = self.q.now();
        let flow_idx = pkt.flow.0 as usize;
        let rx = &mut self.flows[flow_idx].receiver;
        rx.stats.packets_received += 1;
        rx.stats.bytes_received += pkt.size as u64;
        if rx.record_seqs {
            rx.stats.seq_log.push(pkt.seq);
        }
        // Throughput windows.
        let w = (now.as_nanos() / THROUGHPUT_WINDOW.as_nanos()) as usize;
        if rx.stats.window_bytes.len() <= w {
            rx.stats.window_bytes.resize(w + 1, 0.0);
        }
        rx.stats.window_bytes[w] += pkt.size as f64;

        rx.highest_seq = rx.highest_seq.max(pkt.seq_end());
        // Reassembly: merge into the out-of-order map, advance expected.
        if pkt.seq_end() > rx.expected {
            let mut new_s = pkt.seq.max(rx.expected);
            let mut new_e = pkt.seq_end();
            // Absorb overlapping/adjacent ranges (contiguous in key
            // order around the new one, since the map stays disjoint).
            while let Some((&s, &e)) = rx.ooo.range(..=new_e).next_back() {
                if e < new_s {
                    break;
                }
                rx.ooo.remove(&s);
                rx.ooo_total -= e - s;
                new_s = new_s.min(s);
                new_e = new_e.max(e);
            }
            rx.ooo.insert(new_s, new_e);
            rx.ooo_total += new_e - new_s;
            self.max_reassembly = self.max_reassembly.max(rx.ooo.len());
        }
        // Pop ranges that begin at or before `expected`.
        while let Some((&s, &e)) = rx.ooo.range(..=rx.expected).next_back() {
            rx.ooo.remove(&s);
            rx.ooo_total -= e - s;
            if e > rx.expected {
                rx.expected = e;
            }
        }
        rx.stats.bytes_in_order = rx.expected;

        if rx.wants_acks {
            let mut sack = [(0u64, 0u64); 3];
            let mut sack_len = 0u8;
            // The map is disjoint and above `expected`, so the exact
            // out-of-order byte count is just the maintained total.
            let ooo_bytes = rx.ooo_total;
            if !rx.ooo.is_empty() {
                // Real TCP advertises the block containing the packet
                // that triggered this ACK first, then rotates through
                // older blocks — over a train of ACKs the sender learns
                // the whole scoreboard even when holes outnumber the
                // three advertised blocks.
                if let Some((&s, &e)) = rx.ooo.range(..=pkt.seq).next_back() {
                    if pkt.seq < e {
                        sack[0] = (s, e);
                        sack_len = 1;
                    }
                }
                let n = rx.ooo.len();
                let mut cursor = rx.sack_cursor;
                let mut scanned = 0;
                while (sack_len as usize) < sack.len() && scanned < n {
                    let Some(cand) = rx
                        .ooo
                        .range(cursor..)
                        .next()
                        .or_else(|| rx.ooo.iter().next())
                        .map(|(&s, &e)| (s, e))
                    else {
                        break;
                    };
                    cursor = cand.0 + 1;
                    scanned += 1;
                    if !sack[..sack_len as usize].contains(&cand) {
                        sack[sack_len as usize] = cand;
                        sack_len += 1;
                    }
                }
                rx.sack_cursor = cursor;
            }
            let ack = AckInfo {
                cum_ack: rx.expected,
                highest_seq: rx.highest_seq,
                echo_sent_at: pkt.sent_at,
                echo_retx: pkt.retx,
                delivered_bytes: rx.expected,
                sack,
                sack_len,
                ooo_bytes,
            };
            self.q.schedule_at(
                now + self.reverse_delay,
                Ev::AckArrive {
                    flow: pkt.flow,
                    ack,
                },
            );
        }
    }

    fn on_cross_toggle(&mut self, idx: usize, on: bool) {
        let now = self.q.now();
        self.cross[idx].1 = on;
        let (dur_ms, next_on) = {
            let ct = &self.cross[idx].0;
            if on {
                (ct.on_ms.sample(&mut self.rng).max(0.1), false)
            } else {
                (ct.off_ms.sample(&mut self.rng).max(0.1), true)
            }
        };
        self.q.schedule_at(
            now + SimDuration::from_millis_f64(dur_ms),
            Ev::CrossToggle { idx, on: next_on },
        );
        if on {
            self.q.schedule_at(now, Ev::CrossEmit { idx });
        }
    }

    fn on_cross_emit(&mut self, idx: usize) {
        if !self.cross[idx].1 {
            return; // burst ended
        }
        let now = self.q.now();
        let (hop, gap) = {
            let ct = &self.cross[idx].0;
            let gap = SimDuration::from_secs_f64(ct.rate.secs_for_bits(MSS_BYTES as f64 * 8.0));
            (ct.hop, gap)
        };
        let pkt = Packet {
            flow: FlowId::CROSS,
            seq: 0,
            size: MSS_BYTES,
            sent_at: now,
            retx: false,
        };
        self.on_arrive(hop, pkt);
        self.q.schedule_at(now + gap, Ev::CrossEmit { idx });
    }
}

/// Placeholder endpoint used while a real sender is checked out during a
/// callback; never invoked.
struct NullEndpoint;

impl Endpoint for NullEndpoint {
    fn on_start(&mut self, _: &mut Ctx) {
        unreachable!("null endpoint invoked")
    }
    fn on_ack(&mut self, _: AckInfo, _: &mut Ctx) {
        unreachable!("null endpoint invoked")
    }
    fn on_timer(&mut self, _: TimerKind, _: u64, _: &mut Ctx) {
        unreachable!("null endpoint invoked")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hop::HopConfig;

    /// A sender that blasts `n` back-to-back packets at start.
    struct Blaster {
        n: u64,
        acks_seen: u64,
        last_cum: u64,
    }

    impl Endpoint for Blaster {
        fn on_start(&mut self, ctx: &mut Ctx) {
            for i in 0..self.n {
                ctx.send_packet(i * MSS_BYTES as u64, MSS_BYTES, false);
            }
        }
        fn on_ack(&mut self, ack: AckInfo, _: &mut Ctx) {
            self.acks_seen += 1;
            assert!(ack.cum_ack >= self.last_cum, "cumulative ACK regressed");
            self.last_cum = ack.cum_ack;
        }
        fn on_timer(&mut self, _: TimerKind, _: u64, _: &mut Ctx) {}
    }

    fn one_hop_path(rate_mbps: f64, cap: usize) -> PathConfig {
        PathConfig {
            hops: vec![HopConfig::wired(
                "only",
                rate_mbps,
                SimDuration::from_millis(1),
                cap,
            )],
            reverse_delay: SimDuration::from_millis(2),
        }
    }

    #[test]
    fn packets_flow_end_to_end() {
        let mut sim = NetSim::new(one_hop_path(100.0, 1000), 1);
        let flow = sim.add_flow(
            Box::new(Blaster {
                n: 100,
                acks_seen: 0,
                last_cum: 0,
            }),
            true,
            false,
        );
        sim.run_until(SimTime::from_secs(1));
        let st = sim.flow_stats(flow);
        assert_eq!(st.packets_received, 100);
        assert_eq!(st.bytes_in_order, 100 * MSS_BYTES as u64);
        assert_eq!(sim.hop_stats(0).forwarded, 100);
        assert_eq!(sim.hop_stats(0).dropped(), 0);
    }

    #[test]
    fn droptail_overflows_at_capacity() {
        // 100 packets blasted into a 10-packet queue on a slow link:
        // 1 in service + 10 queued survive the initial burst.
        let mut sim = NetSim::new(one_hop_path(1.0, 10), 2);
        let flow = sim.add_flow(
            Box::new(Blaster {
                n: 100,
                acks_seen: 0,
                last_cum: 0,
            }),
            true,
            false,
        );
        sim.run_until(SimTime::from_secs(30));
        let st = sim.flow_stats(flow);
        assert_eq!(st.packets_received, 11);
        assert_eq!(sim.hop_stats(0).dropped_overflow, 89);
        assert_eq!(sim.hop_stats(0).max_queue_pkts, 10);
    }

    #[test]
    fn delivery_time_matches_store_and_forward() {
        // One 1448 B packet at 100 Mbps + 1 ms prop: delivery at
        // ser (115.84 us) + 1 ms.
        let mut sim = NetSim::new(one_hop_path(100.0, 10), 3);
        let flow = sim.add_flow(
            Box::new(Blaster {
                n: 1,
                acks_seen: 0,
                last_cum: 0,
            }),
            true,
            false,
        );
        let t = sim
            .run_until_delivered(flow, MSS_BYTES as u64, SimTime::from_secs(1))
            .expect("delivered");
        let expect = 1448.0 * 8.0 / 100e6 + 1e-3;
        assert!((t.as_secs_f64() - expect).abs() < 1e-9, "{t}");
    }

    #[test]
    fn out_of_order_reassembly() {
        /// Sends segment 1 then segment 0.
        struct Reorder;
        impl Endpoint for Reorder {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.send_packet(MSS_BYTES as u64, MSS_BYTES, false);
                ctx.send_packet(0, MSS_BYTES, false);
            }
            fn on_ack(&mut self, _: AckInfo, _: &mut Ctx) {}
            fn on_timer(&mut self, _: TimerKind, _: u64, _: &mut Ctx) {}
        }
        let mut sim = NetSim::new(one_hop_path(100.0, 10), 4);
        let flow = sim.add_flow(Box::new(Reorder), true, false);
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(sim.flow_stats(flow).bytes_in_order, 2 * MSS_BYTES as u64);
    }

    #[test]
    fn outage_stalls_then_resumes() {
        use crate::ratemodel::RateModel;
        use fiveg_simcore::BitRate;
        let mut path = one_hop_path(100.0, 1000);
        path.hops[0].rate = RateModel::piecewise(vec![
            (SimTime::ZERO, BitRate::from_mbps(100.0)),
            (SimTime::from_millis(0), BitRate::ZERO),
            (SimTime::from_millis(100), BitRate::from_mbps(100.0)),
        ]);
        let mut sim = NetSim::new(path, 5);
        let flow = sim.add_flow(
            Box::new(Blaster {
                n: 5,
                acks_seen: 0,
                last_cum: 0,
            }),
            true,
            false,
        );
        let t = sim
            .run_until_delivered(flow, 5 * MSS_BYTES as u64, SimTime::from_secs(1))
            .expect("delivered after outage");
        assert!(
            t >= SimTime::from_millis(100),
            "delivered during outage: {t}"
        );
        assert!(t < SimTime::from_millis(110));
    }

    #[test]
    fn cross_traffic_congests_shared_hop() {
        use crate::crosstraffic::CrossTraffic;
        use fiveg_simcore::dist::Dist;
        // A 10 Mbps hop with 8 Mbps cross traffic always on: our CBR-ish
        // blast must see queueing and drops.
        let mut sim = NetSim::new(one_hop_path(10.0, 50), 6);
        sim.add_cross_traffic(CrossTraffic {
            hop: 0,
            rate: fiveg_simcore::BitRate::from_mbps(8.0),
            on_ms: Dist::Constant(10_000.0),
            off_ms: Dist::Constant(0.1),
        });
        let flow = sim.add_flow(
            Box::new(Blaster {
                n: 2_000,
                acks_seen: 0,
                last_cum: 0,
            }),
            true,
            false,
        );
        sim.run_until(SimTime::from_secs(5));
        assert!(sim.hop_stats(0).dropped_overflow > 0);
        assert!(sim.flow_stats(flow).packets_received < 2_000);
    }

    #[test]
    fn random_drop_fault_injection() {
        let mut path = one_hop_path(100.0, 10_000);
        path.hops[0].drop_prob = 0.5;
        let mut sim = NetSim::new(path, 7);
        let flow = sim.add_flow(
            Box::new(Blaster {
                n: 1_000,
                acks_seen: 0,
                last_cum: 0,
            }),
            true,
            false,
        );
        sim.run_until(SimTime::from_secs(5));
        let received = sim.flow_stats(flow).packets_received;
        assert!((300..700).contains(&(received as i64)), "{received}");
        assert!(sim.hop_stats(0).dropped_random > 0);
    }

    #[test]
    fn timers_fire_in_order() {
        struct TimerUser {
            fired: Vec<u64>,
        }
        impl Endpoint for TimerUser {
            fn on_start(&mut self, ctx: &mut Ctx) {
                ctx.set_timer(TimerKind::Aux(0), SimDuration::from_millis(20));
                ctx.set_timer(TimerKind::Aux(1), SimDuration::from_millis(10));
            }
            fn on_ack(&mut self, _: AckInfo, _: &mut Ctx) {}
            fn on_timer(&mut self, kind: TimerKind, _: u64, _: &mut Ctx) {
                if let TimerKind::Aux(n) = kind {
                    self.fired.push(n as u64);
                }
            }
        }
        let mut sim = NetSim::new(one_hop_path(100.0, 10), 8);
        sim.add_flow(Box::new(TimerUser { fired: vec![] }), true, false);
        sim.run_until(SimTime::from_secs(1));
        // Inspect by re-borrowing the sender box — easiest is indirect:
        // the ordering property is already exercised by the event queue
        // tests; here we just ensure timers do not panic.
    }

    #[test]
    fn seq_log_records_arrival_order() {
        let mut sim = NetSim::new(one_hop_path(100.0, 100), 9);
        let flow = sim.add_flow(
            Box::new(Blaster {
                n: 5,
                acks_seen: 0,
                last_cum: 0,
            }),
            false,
            true,
        );
        sim.run_until(SimTime::from_secs(1));
        let log = &sim.flow_stats(flow).seq_log;
        assert_eq!(log.len(), 5);
        assert!(log.windows(2).all(|w| w[0] < w[1]));
    }
}
