//! Property-based tests for the geometry substrate.

use fiveg_geo::building::{trace_ray, Building, Material};
use fiveg_geo::mobility::{LinearTransect, RandomWaypoint};
use fiveg_geo::{CampusMap, Point, Rect, Segment};
use fiveg_simcore::{SimDuration, SimRng};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-500f64..1500.0, -500f64..1500.0).prop_map(|(x, y)| Point::new(x, y))
}

proptest! {
    /// Segment intersection is symmetric.
    #[test]
    fn intersection_symmetric(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(s2), s2.intersects(s1));
    }

    /// A segment between two points outside a rectangle crosses its
    /// boundary an even number of times (corner grazing may add one).
    #[test]
    fn outside_to_outside_crossings(a in pt(), b in pt()) {
        let r = Rect::from_origin_size(Point::new(100.0, 100.0), 300.0, 300.0);
        prop_assume!(!r.contains(a) && !r.contains(b));
        let n = r.crossings(Segment::new(a, b));
        prop_assert!(n <= 4);
        // 1 or 3 can only occur by grazing a corner/edge exactly.
        if n % 2 == 1 {
            let hits_edge = a.x == r.min.x || a.x == r.max.x || a.y == r.min.y || a.y == r.max.y
                || b.x == r.min.x || b.x == r.max.x || b.y == r.min.y || b.y == r.max.y;
            let _ = hits_edge; // degenerate tangency; allowed
        }
    }

    /// An outside→inside ray crosses at least one wall.
    #[test]
    fn entering_crosses_a_wall(a in pt()) {
        let r = Rect::from_origin_size(Point::new(100.0, 100.0), 300.0, 300.0);
        prop_assume!(!r.contains(a));
        let n = r.crossings(Segment::new(a, r.center()));
        prop_assert!(n >= 1);
    }

    /// Ray tracing through buildings reports LoS iff nothing blocks.
    #[test]
    fn trace_consistent_with_blocks(a in pt(), b in pt()) {
        let buildings = vec![
            Building::new(Rect::from_origin_size(Point::new(0.0, 0.0), 200.0, 200.0), Material::Brick, 10.0),
            Building::new(Rect::from_origin_size(Point::new(400.0, 400.0), 200.0, 200.0), Material::Concrete, 10.0),
        ];
        let seg = Segment::new(a, b);
        let obs = trace_ray(&buildings, seg);
        let any_block = buildings.iter().any(|bl| bl.blocks(seg));
        if obs.is_los() {
            prop_assert!(!any_block || !(buildings.iter().any(|bl| bl.wall_crossings(seg) > 0 || (bl.contains(a) && bl.contains(b)))));
        } else {
            prop_assert!(any_block);
        }
    }

    /// Transects start and end exactly at their endpoints and move at
    /// bounded speed.
    #[test]
    fn transect_endpoints_and_speed(a in pt(), b in pt(), kmh in 1.0f64..30.0) {
        let tr = LinearTransect {
            from: a,
            to: b,
            speed_kmh: kmh,
            interval: SimDuration::from_millis(500),
        }.generate();
        let first = tr.points.first().unwrap();
        let last = tr.points.last().unwrap();
        prop_assert!(first.pos.distance(a) < 1e-9);
        prop_assert!(last.pos.distance(b) < 1e-9);
        let step = kmh / 3.6 * 0.5;
        for w in tr.points.windows(2) {
            prop_assert!(w[0].pos.distance(w[1].pos) <= step + 1e-6);
            prop_assert!(w[1].t > w[0].t);
        }
    }

    /// Random-waypoint traces stay in bounds and keep monotone time.
    #[test]
    fn rwp_stays_in_bounds(seed in any::<u64>()) {
        let map = CampusMap::new(
            Rect::from_origin_size(Point::new(0.0, 0.0), 400.0, 400.0),
            vec![],
            vec![fiveg_geo::map::Road::new(vec![Point::new(0.0, 0.0), Point::new(400.0, 0.0)])],
        );
        let mut rng = SimRng::new(seed);
        let tr = RandomWaypoint {
            speed_min_kmh: 2.0,
            speed_max_kmh: 12.0,
            duration: SimDuration::from_secs(60),
            interval: SimDuration::from_millis(500),
        }.generate(&map, &mut rng);
        for w in tr.points.windows(2) {
            prop_assert!(w[1].t > w[0].t);
        }
        for p in tr.iter() {
            prop_assert!(map.bounds.contains(p.pos));
        }
    }

    /// Campus generation is deterministic in the seed and matches the
    /// paper's cell counts for any seed.
    #[test]
    fn campus_invariants(seed in any::<u64>()) {
        use fiveg_geo::{Campus, CampusConfig};
        let c = Campus::generate(&CampusConfig::default(), &mut SimRng::new(seed));
        prop_assert_eq!(c.plan.num_enb_cells(), 34);
        prop_assert_eq!(c.plan.num_gnb_cells(), 13);
        for (g, &e) in c.plan.gnb_sites.iter().zip(&c.plan.gnb_cosite) {
            prop_assert!(g.pos.distance(c.plan.enb_sites[e].pos) < 1e-9);
        }
        for b in &c.map.buildings {
            prop_assert!(c.map.bounds.contains(b.footprint.min));
            prop_assert!(c.map.bounds.contains(b.footprint.max));
        }
    }
}
