//! Uniform-grid spatial index over building footprints.
//!
//! Every propagation query ([`CampusMap::is_indoor`], `has_los`, `trace`
//! and the per-cell wall-crossing loop in `fiveg-phy`) needs the set of
//! buildings a point or ray can possibly touch. The naive answer — scan
//! all of them — made each radio sample O(buildings) segment tests. The
//! index buckets building indices into a uniform grid of
//! [`CELL_M`]-metre cells, so a query only visits the buildings
//! registered in the grid cells its point (or the slab-clipped ray)
//! overlaps.
//!
//! The candidate set is **conservative**: it may contain buildings the
//! ray misses (the caller re-tests each candidate exactly), but it never
//! omits one it hits — grid cell ranges are computed from bounding boxes
//! inflated by [`EPS`] so boundary-grazing rays cannot fall through a
//! seam. Candidates are always produced in ascending building-index
//! order, which keeps every scan-order-dependent caller (e.g. the
//! "last containing building wins" rule in `fiveg-phy`) bit-identical to
//! the full scan.
//!
//! [`CampusMap::is_indoor`]: crate::map::CampusMap::is_indoor

use crate::building::Building;
use crate::point::{Point, Rect, Segment};

/// Grid cell edge length, metres. Campus buildings are ~30–80 m on a
/// side, so one building spans a handful of cells and a typical cell
/// holds at most a few buildings.
pub const CELL_M: f64 = 40.0;

/// Inflation margin applied to footprints and query ranges, metres.
/// Large enough to absorb the 1e-12 epsilons of the exact segment
/// tests, small relative to any feature of the map.
pub const EPS: f64 = 1e-6;

/// A uniform grid over the campus bounding box with per-cell lists of
/// building indices (each list ascending), plus an equivalent bitmap
/// form (`words_per_cell` `u64`s per grid cell) for the hot ray path:
/// a segment query ORs one word run per visited grid cell instead of
/// extending, sorting and deduplicating an index list.
#[derive(Debug, Clone)]
pub struct SpatialIndex {
    bounds: Rect,
    cell_m: f64,
    nx: usize,
    ny: usize,
    cells: Vec<Vec<u32>>,
    /// Flat bitmap: grid cell `c`'s words at
    /// `[c * words_per_cell .. (c + 1) * words_per_cell]`, bit `b` of
    /// word `w` set iff building `w * 64 + b` is registered in the cell.
    masks: Vec<u64>,
    words_per_cell: usize,
    n_buildings: usize,
}

const NO_CANDIDATES: &[u32] = &[];

impl SpatialIndex {
    /// Builds the index over `buildings`. `bounds` is a hint; the grid
    /// is extended to cover any footprint that sticks out of it, so the
    /// index is correct for arbitrary maps.
    pub fn build(bounds: Rect, buildings: &[Building]) -> SpatialIndex {
        let mut cover = bounds;
        for b in buildings {
            cover = Rect::new(
                Point::new(
                    cover.min.x.min(b.footprint.min.x),
                    cover.min.y.min(b.footprint.min.y),
                ),
                Point::new(
                    cover.max.x.max(b.footprint.max.x),
                    cover.max.y.max(b.footprint.max.y),
                ),
            );
        }
        let cover = cover.inflate(EPS);
        let cell_m = CELL_M;
        let nx = ((cover.width() / cell_m).ceil() as usize).max(1);
        let ny = ((cover.height() / cell_m).ceil() as usize).max(1);
        let mut cells = vec![Vec::new(); nx * ny];
        let words_per_cell = buildings.len().div_ceil(64).max(1);
        let mut masks = vec![0u64; nx * ny * words_per_cell];
        let mut idx = SpatialIndex {
            bounds: cover,
            cell_m,
            nx,
            ny,
            cells: Vec::new(),
            masks: Vec::new(),
            words_per_cell,
            n_buildings: buildings.len(),
        };
        for (bi, b) in buildings.iter().enumerate() {
            let fp = b.footprint.inflate(EPS);
            let (ix0, iy0) = idx.cell_floor(fp.min);
            let (ix1, iy1) = idx.cell_floor(fp.max);
            for iy in iy0..=iy1 {
                for ix in ix0..=ix1 {
                    cells[iy * nx + ix].push(bi as u32);
                    masks[(iy * nx + ix) * words_per_cell + bi / 64] |= 1u64 << (bi % 64);
                }
            }
        }
        idx.cells = cells;
        idx.masks = masks;
        idx
    }

    /// Number of `u64` words in a candidate bitmap
    /// ([`SpatialIndex::candidates_segment_mask`]).
    pub fn mask_words(&self) -> usize {
        self.words_per_cell
    }

    /// Number of indexed buildings.
    pub fn num_buildings(&self) -> usize {
        self.n_buildings
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn grid_dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Grid coordinates of `p`, clamped into the grid.
    fn cell_floor(&self, p: Point) -> (usize, usize) {
        let ix = ((p.x - self.bounds.min.x) / self.cell_m).floor();
        let iy = ((p.y - self.bounds.min.y) / self.cell_m).floor();
        let ix = (ix.max(0.0) as usize).min(self.nx - 1);
        let iy = (iy.max(0.0) as usize).min(self.ny - 1);
        (ix, iy)
    }

    /// Building indices whose footprint may contain `p` (ascending).
    /// Points outside the grid return the empty slice.
    pub fn candidates_point(&self, p: Point) -> &[u32] {
        if !self.bounds.contains(p) {
            return NO_CANDIDATES;
        }
        let (ix, iy) = self.cell_floor(p);
        &self.cells[iy * self.nx + ix]
    }

    /// Visits the index of every grid cell the slab-clipped `seg`
    /// overlaps, stopping early when `visit` returns `true`. All
    /// segment-candidate forms below share this walk, so their candidate
    /// sets are identical by construction.
    #[inline]
    fn for_cells_on_segment(&self, seg: Segment, mut visit: impl FnMut(usize) -> bool) {
        let min_x = seg.a.x.min(seg.b.x) - EPS;
        let max_x = seg.a.x.max(seg.b.x) + EPS;
        let min_y = seg.a.y.min(seg.b.y) - EPS;
        let max_y = seg.a.y.max(seg.b.y) + EPS;
        // A segment whose bounding box misses the grid cannot touch any
        // indexed footprint.
        if max_x < self.bounds.min.x
            || min_x > self.bounds.max.x
            || max_y < self.bounds.min.y
            || min_y > self.bounds.max.y
        {
            return;
        }
        let (ix0, _) = self.cell_floor(Point::new(min_x, min_y));
        let (ix1, _) = self.cell_floor(Point::new(max_x, max_y));
        let dx = seg.b.x - seg.a.x;
        for ix in ix0..=ix1 {
            // Clip the segment's parameter range to this column's x-slab
            // and bound the y-range of the clipped piece; any
            // intersection point in this column lies inside that range.
            let slab_lo = self.bounds.min.x + ix as f64 * self.cell_m - EPS;
            let slab_hi = slab_lo + self.cell_m + 2.0 * EPS;
            let (t0, t1) = if dx.abs() > 1e-12 {
                let ta = (slab_lo - seg.a.x) / dx;
                let tb = (slab_hi - seg.a.x) / dx;
                (ta.min(tb).max(0.0), ta.max(tb).min(1.0))
            } else {
                (0.0, 1.0)
            };
            if t0 > t1 {
                continue;
            }
            let ya = seg.a.y + (seg.b.y - seg.a.y) * t0;
            let yb = seg.a.y + (seg.b.y - seg.a.y) * t1;
            let y_lo = ya.min(yb).max(min_y);
            let y_hi = ya.max(yb).min(max_y);
            let (_, iy0) = self.cell_floor(Point::new(0.0, y_lo - EPS));
            let (_, iy1) = self.cell_floor(Point::new(0.0, y_hi + EPS));
            for iy in iy0..=iy1 {
                if visit(iy * self.nx + ix) {
                    return;
                }
            }
        }
    }

    /// Collects into `out` the building indices whose footprint may
    /// touch `seg`, sorted ascending and deduplicated. The set is
    /// conservative (false positives possible, false negatives not).
    pub fn candidates_segment(&self, seg: Segment, out: &mut Vec<u32>) {
        out.clear();
        self.for_cells_on_segment(seg, |c| {
            out.extend_from_slice(&self.cells[c]);
            false
        });
        out.sort_unstable();
        out.dedup();
    }

    /// Bitmap form of [`SpatialIndex::candidates_segment`]: resizes
    /// `words` to [`SpatialIndex::mask_words`] and fills it with the
    /// same candidate set (bit `w * 64 + b` ⇔ index `w * 64 + b` in the
    /// list form). ORing one word run per visited grid cell replaces the
    /// extend/sort/dedup of the list form, which dominated ray cost.
    pub fn candidates_segment_mask(&self, seg: Segment, words: &mut Vec<u64>) {
        words.clear();
        words.resize(self.words_per_cell, 0);
        let wpc = self.words_per_cell;
        self.for_cells_on_segment(seg, |c| {
            let run = &self.masks[c * wpc..(c + 1) * wpc];
            for (acc, &m) in words.iter_mut().zip(run) {
                *acc |= m;
            }
            false
        });
    }

    /// Existence scan: streams candidate building indices to `test` in
    /// grid-walk order (duplicates possible — a footprint spans several
    /// cells; the caller deduplicates if it cares) and stops the walk as
    /// soon as `test` returns `true`. Returns whether it did.
    ///
    /// This is the cheapest form when the caller only needs "does any
    /// candidate satisfy X": a blocked ray stops at its first crossing
    /// after visiting one or two grid cells, skipping the rest of the
    /// walk entirely.
    pub fn scan_segment_until(&self, seg: Segment, mut test: impl FnMut(u32) -> bool) -> bool {
        let mut hit = false;
        self.for_cells_on_segment(seg, |c| {
            for &bi in &self.cells[c] {
                if test(bi) {
                    hit = true;
                    return true;
                }
            }
            false
        });
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::Material;

    fn building(x: f64, y: f64, w: f64, h: f64) -> Building {
        Building::new(
            Rect::from_origin_size(Point::new(x, y), w, h),
            Material::Brick,
            15.0,
        )
    }

    fn grid_of_buildings() -> (Rect, Vec<Building>) {
        let bounds = Rect::from_origin_size(Point::new(0.0, 0.0), 500.0, 920.0);
        let mut bs = Vec::new();
        for j in 0..8 {
            for i in 0..5 {
                bs.push(building(
                    20.0 + i as f64 * 95.0,
                    30.0 + j as f64 * 110.0,
                    50.0,
                    60.0,
                ));
            }
        }
        (bounds, bs)
    }

    #[test]
    fn point_candidates_cover_containment() {
        let (bounds, bs) = grid_of_buildings();
        let idx = SpatialIndex::build(bounds, &bs);
        for (bi, b) in bs.iter().enumerate() {
            let c = b.footprint.center();
            assert!(
                idx.candidates_point(c).contains(&(bi as u32)),
                "building {bi} missing at its own centre"
            );
        }
        assert!(idx.candidates_point(Point::new(-50.0, -50.0)).is_empty());
    }

    #[test]
    fn segment_candidates_have_no_false_negatives() {
        let (bounds, bs) = grid_of_buildings();
        let idx = SpatialIndex::build(bounds, &bs);
        let mut cand = Vec::new();
        // A deterministic fan of rays across the whole map.
        for k in 0..200u32 {
            let a = Point::new((k as f64 * 37.0) % 500.0, (k as f64 * 91.0) % 920.0);
            let b = Point::new(
                ((k as f64 * 53.0) + 17.0) % 500.0,
                ((k as f64 * 29.0) + 311.0) % 920.0,
            );
            let seg = Segment::new(a, b);
            idx.candidates_segment(seg, &mut cand);
            for (bi, bld) in bs.iter().enumerate() {
                if bld.blocks(seg) {
                    assert!(
                        cand.contains(&(bi as u32)),
                        "ray {k}: building {bi} intersects but was pruned"
                    );
                }
            }
            // Sorted ascending, no duplicates.
            assert!(cand.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn candidates_prune_most_buildings() {
        let (bounds, bs) = grid_of_buildings();
        let idx = SpatialIndex::build(bounds, &bs);
        let mut cand = Vec::new();
        // A short ray should touch far fewer cells than the whole map.
        idx.candidates_segment(
            Segment::new(Point::new(10.0, 10.0), Point::new(80.0, 80.0)),
            &mut cand,
        );
        assert!(
            cand.len() < bs.len() / 4,
            "short ray kept {} of {} buildings",
            cand.len(),
            bs.len()
        );
    }

    #[test]
    fn buildings_outside_hint_bounds_are_indexed() {
        let bounds = Rect::from_origin_size(Point::new(0.0, 0.0), 100.0, 100.0);
        let stray = building(150.0, 150.0, 20.0, 20.0);
        let idx = SpatialIndex::build(bounds, &[stray]);
        assert!(idx
            .candidates_point(Point::new(160.0, 160.0))
            .contains(&0u32));
        let mut cand = Vec::new();
        idx.candidates_segment(
            Segment::new(Point::new(0.0, 0.0), Point::new(200.0, 200.0)),
            &mut cand,
        );
        assert_eq!(cand, vec![0]);
    }

    /// The bitmap candidate form must encode exactly the same set as
    /// the list form for any ray.
    #[test]
    fn mask_candidates_match_list_candidates() {
        let (bounds, bs) = grid_of_buildings();
        let idx = SpatialIndex::build(bounds, &bs);
        let mut cand = Vec::new();
        let mut words = Vec::new();
        for k in 0..200u32 {
            let a = Point::new((k as f64 * 37.0) % 500.0, (k as f64 * 91.0) % 920.0);
            let b = Point::new(
                ((k as f64 * 53.0) + 17.0) % 500.0,
                ((k as f64 * 29.0) + 311.0) % 920.0,
            );
            let seg = Segment::new(a, b);
            idx.candidates_segment(seg, &mut cand);
            idx.candidates_segment_mask(seg, &mut words);
            let mut from_mask = Vec::new();
            for (w, &word) in words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    from_mask.push((w * 64) as u32 + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
            assert_eq!(cand, from_mask, "ray {k}");
        }
    }

    #[test]
    fn vertical_and_degenerate_segments() {
        let (bounds, bs) = grid_of_buildings();
        let idx = SpatialIndex::build(bounds, &bs);
        let mut cand = Vec::new();
        // Perfectly vertical ray through a column of buildings.
        let seg = Segment::new(Point::new(45.0, 0.0), Point::new(45.0, 920.0));
        idx.candidates_segment(seg, &mut cand);
        for (bi, bld) in bs.iter().enumerate() {
            if bld.blocks(seg) {
                assert!(cand.contains(&(bi as u32)));
            }
        }
        // Zero-length segment inside a building.
        let p = bs[0].footprint.center();
        idx.candidates_segment(Segment::new(p, p), &mut cand);
        assert!(cand.contains(&0u32));
    }
}
