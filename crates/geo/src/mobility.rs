//! Mobility models producing timestamped position traces.
//!
//! Three models cover the paper's measurement procedures:
//!
//! * [`RoadSurvey`] — the Sec. 3.1 blanket survey: traverse every road
//!   segment at walking speed (4–5 km/h) while sampling KPIs.
//! * [`LinearTransect`] — the Sec. 3.2 line-of-sight walks away from a
//!   cell, and the Fig. 4 hand-off transects between two cells.
//! * [`RandomWaypoint`] — the Sec. 3.4 hand-off campaign: 80 minutes of
//!   walking/bicycling at 3–10 km/h around campus.

use crate::map::CampusMap;
use crate::point::Point;
use fiveg_simcore::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// One sample of a mobility trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Sample time.
    pub t: SimTime,
    /// Position at that time.
    pub pos: Point,
}

/// A timestamped sequence of positions at a fixed sampling interval.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MobilityTrace {
    /// The samples, in time order.
    pub points: Vec<TracePoint>,
}

impl MobilityTrace {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total duration from first to last sample.
    pub fn duration(&self) -> SimDuration {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.t - a.t,
            _ => SimDuration::ZERO,
        }
    }

    /// Total path length, metres.
    pub fn path_length(&self) -> f64 {
        self.points
            .windows(2)
            .map(|w| w[0].pos.distance(w[1].pos))
            .sum()
    }

    /// Iterator over the samples.
    pub fn iter(&self) -> impl Iterator<Item = TracePoint> + '_ {
        self.points.iter().copied()
    }
}

/// Converts a speed in km/h to m/s.
pub fn kmh_to_ms(kmh: f64) -> f64 {
    kmh / 3.6
}

/// Blanket road survey: walks every road of the map end-to-end at a
/// constant speed, sampling at `interval`.
#[derive(Debug, Clone)]
pub struct RoadSurvey {
    /// Walking speed, km/h (the paper walked at 4–5 km/h).
    pub speed_kmh: f64,
    /// Sampling interval.
    pub interval: SimDuration,
}

impl RoadSurvey {
    /// Creates a survey at the paper's walking speed (4.5 km/h) sampling
    /// once per second.
    pub fn paper_default() -> Self {
        RoadSurvey {
            speed_kmh: 4.5,
            interval: SimDuration::from_secs(1),
        }
    }

    /// Generates the survey trace over all roads of `map`.
    pub fn generate(&self, map: &CampusMap) -> MobilityTrace {
        assert!(self.speed_kmh > 0.0, "survey speed must be positive");
        let speed = kmh_to_ms(self.speed_kmh);
        let dt = self.interval.as_secs_f64();
        let step = speed * dt;
        let mut points = Vec::new();
        let mut t = SimTime::ZERO;
        for road in &map.roads {
            let len = road.length();
            let mut s = 0.0;
            while s <= len {
                points.push(TracePoint {
                    t,
                    pos: road.at_distance(s),
                });
                s += step;
                t += self.interval;
            }
        }
        MobilityTrace { points }
    }
}

/// A straight walk from `from` to `to` at constant speed.
#[derive(Debug, Clone)]
pub struct LinearTransect {
    /// Start point.
    pub from: Point,
    /// End point.
    pub to: Point,
    /// Speed, km/h.
    pub speed_kmh: f64,
    /// Sampling interval.
    pub interval: SimDuration,
}

impl LinearTransect {
    /// Generates the transect trace.
    pub fn generate(&self) -> MobilityTrace {
        assert!(self.speed_kmh > 0.0, "transect speed must be positive");
        let speed = kmh_to_ms(self.speed_kmh);
        let total = self.from.distance(self.to);
        let dt = self.interval.as_secs_f64();
        let step = speed * dt;
        let mut points = Vec::new();
        let mut s = 0.0;
        let mut t = SimTime::ZERO;
        loop {
            let frac = if total > 0.0 {
                (s / total).min(1.0)
            } else {
                1.0
            };
            points.push(TracePoint {
                t,
                pos: self.from.lerp(self.to, frac),
            });
            if s >= total {
                break;
            }
            s += step;
            t += self.interval;
        }
        MobilityTrace { points }
    }
}

/// Random-waypoint mobility within the campus bounds, avoiding building
/// interiors, with per-leg speed drawn uniformly from a range.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    /// Minimum leg speed, km/h.
    pub speed_min_kmh: f64,
    /// Maximum leg speed, km/h.
    pub speed_max_kmh: f64,
    /// Total trace duration.
    pub duration: SimDuration,
    /// Sampling interval.
    pub interval: SimDuration,
}

impl RandomWaypoint {
    /// The paper's hand-off campaign profile: 3–10 km/h for 80 minutes.
    pub fn paper_handoff_campaign() -> Self {
        RandomWaypoint {
            speed_min_kmh: 3.0,
            speed_max_kmh: 10.0,
            duration: SimDuration::from_secs(80 * 60),
            interval: SimDuration::from_millis(500),
        }
    }

    fn random_outdoor_point(map: &CampusMap, rng: &mut SimRng) -> Point {
        // Rejection-sample an outdoor point; the campus is mostly outdoor
        // so this terminates fast. Cap iterations for pathological maps.
        for _ in 0..10_000 {
            let p = Point::new(
                rng.range_f64(map.bounds.min.x, map.bounds.max.x),
                rng.range_f64(map.bounds.min.y, map.bounds.max.y),
            );
            if !map.is_indoor(p) {
                return p;
            }
        }
        map.bounds.center()
    }

    /// Generates a trace over `map` using `rng`.
    pub fn generate(&self, map: &CampusMap, rng: &mut SimRng) -> MobilityTrace {
        assert!(
            self.speed_min_kmh > 0.0 && self.speed_max_kmh >= self.speed_min_kmh,
            "invalid speed range"
        );
        let mut points = Vec::new();
        let mut t = SimTime::ZERO;
        let end = SimTime::ZERO + self.duration;
        let mut pos = Self::random_outdoor_point(map, rng);
        let dt = self.interval.as_secs_f64();
        'outer: while t <= end {
            let target = Self::random_outdoor_point(map, rng);
            let speed = kmh_to_ms(rng.range_f64(self.speed_min_kmh, self.speed_max_kmh));
            let leg_len = pos.distance(target);
            let steps = (leg_len / (speed * dt)).ceil().max(1.0) as usize;
            for i in 0..=steps {
                if t > end {
                    break 'outer;
                }
                let frac = i as f64 / steps as f64;
                points.push(TracePoint {
                    t,
                    pos: pos.lerp(target, frac),
                });
                t += self.interval;
            }
            pos = target;
        }
        MobilityTrace { points }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::{Building, Material};
    use crate::map::Road;
    use crate::point::Rect;

    fn map() -> CampusMap {
        CampusMap::new(
            Rect::from_origin_size(Point::new(0.0, 0.0), 500.0, 920.0),
            vec![Building::new(
                Rect::from_origin_size(Point::new(100.0, 100.0), 50.0, 50.0),
                Material::Brick,
                15.0,
            )],
            vec![Road::new(vec![
                Point::new(0.0, 0.0),
                Point::new(500.0, 0.0),
            ])],
        )
    }

    #[test]
    fn kmh_conversion() {
        assert!((kmh_to_ms(3.6) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn road_survey_covers_road() {
        let m = map();
        let trace = RoadSurvey::paper_default().generate(&m);
        assert!(!trace.is_empty());
        // Path covers essentially the whole 500 m road.
        assert!(trace.path_length() > 495.0, "len {}", trace.path_length());
        // Walking 500 m at 4.5 km/h takes 400 s.
        assert!((trace.duration().as_secs_f64() - 400.0).abs() < 2.0);
    }

    #[test]
    fn transect_endpoints() {
        let tr = LinearTransect {
            from: Point::new(0.0, 0.0),
            to: Point::new(100.0, 0.0),
            speed_kmh: 3.6, // 1 m/s
            interval: SimDuration::from_secs(1),
        }
        .generate();
        assert_eq!(tr.points.first().unwrap().pos, Point::new(0.0, 0.0));
        assert_eq!(tr.points.last().unwrap().pos, Point::new(100.0, 0.0));
        assert_eq!(tr.len(), 101);
    }

    #[test]
    fn random_waypoint_stays_outdoor_and_in_bounds() {
        let m = map();
        let mut rng = SimRng::new(1);
        let rwp = RandomWaypoint {
            speed_min_kmh: 3.0,
            speed_max_kmh: 10.0,
            duration: SimDuration::from_secs(120),
            interval: SimDuration::from_millis(500),
        };
        let trace = rwp.generate(&m, &mut rng);
        assert!(!trace.is_empty());
        for p in trace.iter() {
            assert!(m.bounds.contains(p.pos), "escaped bounds at {}", p.pos);
        }
        // Waypoints themselves are outdoor; intermediate samples on a leg
        // may clip a building corner, but the vast majority are outdoor.
        let indoor = trace.iter().filter(|p| m.is_indoor(p.pos)).count();
        assert!(indoor * 10 < trace.len(), "{indoor}/{}", trace.len());
    }

    #[test]
    fn random_waypoint_deterministic() {
        let m = map();
        let rwp = RandomWaypoint::paper_handoff_campaign();
        let a = rwp.generate(&m, &mut SimRng::new(7));
        let b = rwp.generate(&m, &mut SimRng::new(7));
        assert_eq!(a.len(), b.len());
        assert_eq!(
            a.points.first().map(|p| p.pos),
            b.points.first().map(|p| p.pos)
        );
        assert_eq!(
            a.points.last().map(|p| p.pos),
            b.points.last().map(|p| p.pos)
        );
    }

    #[test]
    fn trace_duration_and_length_empty() {
        let t = MobilityTrace::default();
        assert_eq!(t.duration(), SimDuration::ZERO);
        assert_eq!(t.path_length(), 0.0);
    }
}
