//! Hierarchical (tiled) spatial index for city-scale maps.
//!
//! The flat [`SpatialIndex`](crate::index::SpatialIndex) keeps a bitmap
//! word run per grid cell sized by the *total* building count, so its
//! memory is O(cells × buildings / 64) — fine for a 48-building campus,
//! quadratic-ish for a metro with tens of thousands of buildings. This
//! index keeps a coarse **tile directory** (tiles of
//! [`TILE_CELLS`] × [`TILE_CELLS`] grid cells) where each occupied tile
//! owns a local uniform grid of per-cell candidate lists and empty
//! tiles cost nothing. There are no per-cell global bitmaps at all:
//! memory is O(footprint registrations), and a ray query walks only the
//! tiles its slab touches, so query cost stays local instead of
//! O(city).
//!
//! The query contract is identical to the flat index — candidate sets
//! are **conservative** (false positives possible, never false
//! negatives; ranges inflated by [`EPS`]) and list-form candidates come
//! out in ascending building-index order, which the "last containing
//! building wins" rule in `fiveg-phy` relies on. Property tests in
//! this module pin tiled candidates ⊇ flat candidates and identical
//! hit results on generated cities.

use crate::building::Building;
use crate::index::{CELL_M, EPS};
use crate::point::{Point, Rect, Segment};

/// Grid cells per tile edge: tiles are `TILE_CELLS × CELL_M` = 320 m
/// square, a few city blocks — big enough that a short site→UE ray
/// usually stays inside one or two tiles, small enough that an empty
/// park or river tile stays `None`.
pub const TILE_CELLS: usize = 8;

/// One occupied tile: a local `TILE_CELLS`² uniform grid of per-cell
/// candidate lists holding **global** building indices (ascending by
/// construction — buildings register in index order).
#[derive(Debug, Clone)]
struct Tile {
    cells: Vec<Vec<u32>>,
}

impl Tile {
    fn empty() -> Tile {
        Tile {
            cells: vec![Vec::new(); TILE_CELLS * TILE_CELLS],
        }
    }
}

/// A two-level spatial index: a `tx × ty` directory of optional tiles
/// over a conceptual uniform grid of [`CELL_M`]-metre cells (the same
/// geometry as the flat index, so the slab walk is shared logic).
#[derive(Debug, Clone)]
pub struct TiledSpatialIndex {
    bounds: Rect,
    cell_m: f64,
    tx: usize,
    ty: usize,
    /// Global cell-grid dimensions: `tx * TILE_CELLS` × `ty * TILE_CELLS`.
    gnx: usize,
    gny: usize,
    tiles: Vec<Option<Box<Tile>>>,
    n_buildings: usize,
}

const NO_CANDIDATES: &[u32] = &[];

impl TiledSpatialIndex {
    /// Builds the index over `buildings`. `bounds` is a hint; the grid
    /// is extended to cover any footprint that sticks out of it.
    pub fn build(bounds: Rect, buildings: &[Building]) -> TiledSpatialIndex {
        let mut cover = bounds;
        for b in buildings {
            cover = Rect::new(
                Point::new(
                    cover.min.x.min(b.footprint.min.x),
                    cover.min.y.min(b.footprint.min.y),
                ),
                Point::new(
                    cover.max.x.max(b.footprint.max.x),
                    cover.max.y.max(b.footprint.max.y),
                ),
            );
        }
        let cover = cover.inflate(EPS);
        let cell_m = CELL_M;
        let tile_m = cell_m * TILE_CELLS as f64;
        let tx = ((cover.width() / tile_m).ceil() as usize).max(1);
        let ty = ((cover.height() / tile_m).ceil() as usize).max(1);
        let mut idx = TiledSpatialIndex {
            bounds: cover,
            cell_m,
            tx,
            ty,
            gnx: tx * TILE_CELLS,
            gny: ty * TILE_CELLS,
            tiles: (0..tx * ty).map(|_| None).collect(),
            n_buildings: buildings.len(),
        };
        for (bi, b) in buildings.iter().enumerate() {
            let fp = b.footprint.inflate(EPS);
            let (ix0, iy0) = idx.cell_floor(fp.min);
            let (ix1, iy1) = idx.cell_floor(fp.max);
            for iy in iy0..=iy1 {
                for ix in ix0..=ix1 {
                    let t = (iy / TILE_CELLS) * idx.tx + ix / TILE_CELLS;
                    let tile = idx.tiles[t].get_or_insert_with(|| Box::new(Tile::empty()));
                    tile.cells[(iy % TILE_CELLS) * TILE_CELLS + ix % TILE_CELLS].push(bi as u32);
                }
            }
        }
        idx
    }

    /// Number of `u64` words in a candidate bitmap
    /// ([`TiledSpatialIndex::candidates_segment_mask`]): sized by the
    /// global building count, like the flat index's.
    pub fn mask_words(&self) -> usize {
        self.n_buildings.div_ceil(64).max(1)
    }

    /// Number of indexed buildings.
    pub fn num_buildings(&self) -> usize {
        self.n_buildings
    }

    /// Tile-directory dimensions `(tx, ty)` and occupied-tile count.
    pub fn tile_stats(&self) -> (usize, usize, usize) {
        let occupied = self.tiles.iter().filter(|t| t.is_some()).count();
        (self.tx, self.ty, occupied)
    }

    /// Grid coordinates of `p` on the global cell grid, clamped in.
    fn cell_floor(&self, p: Point) -> (usize, usize) {
        let ix = ((p.x - self.bounds.min.x) / self.cell_m).floor();
        let iy = ((p.y - self.bounds.min.y) / self.cell_m).floor();
        let ix = (ix.max(0.0) as usize).min(self.gnx - 1);
        let iy = (iy.max(0.0) as usize).min(self.gny - 1);
        (ix, iy)
    }

    /// The candidate list of global cell `(ix, iy)` — empty for cells
    /// in unoccupied tiles.
    #[inline]
    fn cell(&self, ix: usize, iy: usize) -> &[u32] {
        match &self.tiles[(iy / TILE_CELLS) * self.tx + ix / TILE_CELLS] {
            Some(t) => &t.cells[(iy % TILE_CELLS) * TILE_CELLS + ix % TILE_CELLS],
            None => NO_CANDIDATES,
        }
    }

    /// Building indices whose footprint may contain `p` (ascending).
    /// Points outside the grid return the empty slice.
    pub fn candidates_point(&self, p: Point) -> &[u32] {
        if !self.bounds.contains(p) {
            return NO_CANDIDATES;
        }
        let (ix, iy) = self.cell_floor(p);
        self.cell(ix, iy)
    }

    /// Visits every global cell the slab-clipped `seg` overlaps — the
    /// same column walk as the flat index, but cell lookups resolve
    /// through the tile directory, and a whole run of cells inside an
    /// unoccupied tile is skipped at tile granularity. Stops early when
    /// `visit` returns `true`.
    #[inline]
    fn for_cells_on_segment(&self, seg: Segment, mut visit: impl FnMut(usize, usize) -> bool) {
        let min_x = seg.a.x.min(seg.b.x) - EPS;
        let max_x = seg.a.x.max(seg.b.x) + EPS;
        let min_y = seg.a.y.min(seg.b.y) - EPS;
        let max_y = seg.a.y.max(seg.b.y) + EPS;
        if max_x < self.bounds.min.x
            || min_x > self.bounds.max.x
            || max_y < self.bounds.min.y
            || min_y > self.bounds.max.y
        {
            return;
        }
        let (ix0, _) = self.cell_floor(Point::new(min_x, min_y));
        let (ix1, _) = self.cell_floor(Point::new(max_x, max_y));
        let dx = seg.b.x - seg.a.x;
        for ix in ix0..=ix1 {
            let slab_lo = self.bounds.min.x + ix as f64 * self.cell_m - EPS;
            let slab_hi = slab_lo + self.cell_m + 2.0 * EPS;
            let (t0, t1) = if dx.abs() > 1e-12 {
                let ta = (slab_lo - seg.a.x) / dx;
                let tb = (slab_hi - seg.a.x) / dx;
                (ta.min(tb).max(0.0), ta.max(tb).min(1.0))
            } else {
                (0.0, 1.0)
            };
            if t0 > t1 {
                continue;
            }
            let ya = seg.a.y + (seg.b.y - seg.a.y) * t0;
            let yb = seg.a.y + (seg.b.y - seg.a.y) * t1;
            let y_lo = ya.min(yb).max(min_y);
            let y_hi = ya.max(yb).min(max_y);
            let (_, iy0) = self.cell_floor(Point::new(0.0, y_lo - EPS));
            let (_, iy1) = self.cell_floor(Point::new(0.0, y_hi + EPS));
            let tcol = ix / TILE_CELLS;
            let mut iy = iy0;
            while iy <= iy1 {
                // Empty tile: hop straight past its remaining cell rows.
                if self.tiles[(iy / TILE_CELLS) * self.tx + tcol].is_none() {
                    iy = (iy / TILE_CELLS + 1) * TILE_CELLS;
                    continue;
                }
                if visit(ix, iy) {
                    return;
                }
                iy += 1;
            }
        }
    }

    /// Collects into `out` the building indices whose footprint may
    /// touch `seg`, sorted ascending and deduplicated. Conservative —
    /// same contract as [`crate::index::SpatialIndex::candidates_segment`].
    pub fn candidates_segment(&self, seg: Segment, out: &mut Vec<u32>) {
        out.clear();
        self.for_cells_on_segment(seg, |ix, iy| {
            out.extend_from_slice(self.cell(ix, iy));
            false
        });
        out.sort_unstable();
        out.dedup();
    }

    /// Bitmap form of [`TiledSpatialIndex::candidates_segment`]:
    /// resizes `words` to [`TiledSpatialIndex::mask_words`] and sets
    /// one bit per candidate. Unlike the flat index there is no
    /// precomputed word run per cell — bits are set from the candidate
    /// lists — so this form is only worthwhile when the caller needs a
    /// bitmap anyway.
    pub fn candidates_segment_mask(&self, seg: Segment, words: &mut Vec<u64>) {
        words.clear();
        words.resize(self.mask_words(), 0);
        self.for_cells_on_segment(seg, |ix, iy| {
            for &bi in self.cell(ix, iy) {
                words[bi as usize / 64] |= 1u64 << (bi % 64);
            }
            false
        });
    }

    /// Existence scan: streams candidate building indices to `test` in
    /// grid-walk order (duplicates possible) and stops the walk as soon
    /// as `test` returns `true`. Returns whether it did — same contract
    /// as [`crate::index::SpatialIndex::scan_segment_until`].
    pub fn scan_segment_until(&self, seg: Segment, mut test: impl FnMut(u32) -> bool) -> bool {
        let mut hit = false;
        self.for_cells_on_segment(seg, |ix, iy| {
            for &bi in self.cell(ix, iy) {
                if test(bi) {
                    hit = true;
                    return true;
                }
            }
            false
        });
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::Material;
    use crate::index::SpatialIndex;
    use fiveg_simcore::SimRng;

    /// A random city-block layout spanning several tiles, with gaps so
    /// some tiles stay unoccupied.
    fn random_city(seed: u64, span_m: f64, n: usize) -> (Rect, Vec<Building>) {
        let mut rng = SimRng::new(seed);
        let bounds = Rect::from_origin_size(Point::new(0.0, 0.0), span_m, span_m);
        let mut bs = Vec::new();
        for _ in 0..n {
            // Cluster buildings in the lower-left 60% so upper tiles
            // stay empty and the tile-skip path is exercised.
            let x = rng.range_f64(0.0, span_m * 0.6);
            let y = rng.range_f64(0.0, span_m * 0.6);
            let w = rng.range_f64(12.0, 70.0);
            let h = rng.range_f64(12.0, 70.0);
            let mat = if rng.chance(0.4) {
                Material::Concrete
            } else {
                Material::Brick
            };
            bs.push(Building::new(
                Rect::from_origin_size(Point::new(x, y), w, h),
                mat,
                rng.range_f64(10.0, 40.0),
            ));
        }
        (bounds, bs)
    }

    fn ray(rng: &mut SimRng, span: f64) -> Segment {
        Segment::new(
            Point::new(
                rng.range_f64(-50.0, span + 50.0),
                rng.range_f64(-50.0, span + 50.0),
            ),
            Point::new(
                rng.range_f64(-50.0, span + 50.0),
                rng.range_f64(-50.0, span + 50.0),
            ),
        )
    }

    /// Property: tiled candidate sets contain every flat-grid candidate
    /// (and therefore every true hit), and exact hit results computed
    /// from them are identical, on random cities and random rays.
    #[test]
    fn tiled_candidates_superset_of_flat_and_hits_identical() {
        for seed in [1u64, 7, 42] {
            let (bounds, bs) = random_city(seed, 1600.0, 120);
            let flat = SpatialIndex::build(bounds, &bs);
            let tiled = TiledSpatialIndex::build(bounds, &bs);
            assert_eq!(tiled.mask_words(), flat.mask_words());
            let mut rng = SimRng::new(seed ^ 0xbeef);
            let (mut fc, mut tc) = (Vec::new(), Vec::new());
            for _ in 0..300 {
                let seg = ray(&mut rng, 1600.0);
                flat.candidates_segment(seg, &mut fc);
                tiled.candidates_segment(seg, &mut tc);
                for bi in &fc {
                    assert!(tc.contains(bi), "seed {seed}: flat candidate {bi} missing");
                }
                // Exact hits agree (the caller always re-tests).
                let hits = |cand: &[u32]| -> Vec<u32> {
                    cand.iter()
                        .copied()
                        .filter(|&bi| bs[bi as usize].blocks(seg))
                        .collect()
                };
                assert_eq!(hits(&fc), hits(&tc), "seed {seed}");
                assert!(tc.windows(2).all(|w| w[0] < w[1]), "ascending, deduped");
            }
        }
    }

    #[test]
    fn point_candidates_cover_containment() {
        let (bounds, bs) = random_city(3, 1600.0, 120);
        let tiled = TiledSpatialIndex::build(bounds, &bs);
        for (bi, b) in bs.iter().enumerate() {
            assert!(tiled
                .candidates_point(b.footprint.center())
                .contains(&(bi as u32)));
        }
        assert!(tiled
            .candidates_point(Point::new(-100.0, -100.0))
            .is_empty());
        // A point in an empty tile region returns the empty slice.
        assert!(tiled
            .candidates_point(Point::new(1590.0, 1590.0))
            .is_empty());
    }

    #[test]
    fn mask_and_scan_forms_match_list_form() {
        let (bounds, bs) = random_city(11, 1600.0, 120);
        let tiled = TiledSpatialIndex::build(bounds, &bs);
        let mut rng = SimRng::new(0xabcd);
        let (mut cand, mut words) = (Vec::new(), Vec::new());
        for _ in 0..200 {
            let seg = ray(&mut rng, 1600.0);
            tiled.candidates_segment(seg, &mut cand);
            tiled.candidates_segment_mask(seg, &mut words);
            let mut from_mask = Vec::new();
            for (w, &word) in words.iter().enumerate() {
                let mut bits = word;
                while bits != 0 {
                    from_mask.push((w * 64) as u32 + bits.trailing_zeros());
                    bits &= bits - 1;
                }
            }
            assert_eq!(cand, from_mask);
            // The streaming scan visits exactly the candidate set (after
            // dedup) when the test never fires.
            let mut seen = Vec::new();
            assert!(!tiled.scan_segment_until(seg, |bi| {
                seen.push(bi);
                false
            }));
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(cand, seen);
        }
    }

    #[test]
    fn empty_tiles_cost_nothing_and_strays_are_indexed() {
        let bounds = Rect::from_origin_size(Point::new(0.0, 0.0), 3200.0, 3200.0);
        // Fully inside one 320 m tile (no boundary straddle), outside
        // the hint bounds.
        let stray = Building::new(
            Rect::from_origin_size(Point::new(3300.0, 3300.0), 12.0, 12.0),
            Material::Brick,
            12.0,
        );
        let tiled = TiledSpatialIndex::build(bounds, &[stray]);
        let (_, _, occupied) = tiled.tile_stats();
        assert_eq!(occupied, 1, "one stray building occupies one tile");
        assert!(tiled
            .candidates_point(Point::new(3306.0, 3306.0))
            .contains(&0u32));
        let mut cand = Vec::new();
        tiled.candidates_segment(
            Segment::new(Point::new(0.0, 0.0), Point::new(3600.0, 3600.0)),
            &mut cand,
        );
        assert_eq!(cand, vec![0]);
    }
}
