//! Deterministic procedural city generator.
//!
//! The paper's campus is one 0.46 km² block ([`crate::campus`]); the
//! city generator tiles that block grammar over an arbitrary
//! `tiles_x × tiles_y` footprint so the same calibrated radio models
//! can run at metro scale (the ROADMAP's "millions of users" item).
//! Every tile draws its buildings and sites from its own
//! [`SimRng::substream_idx`] substream keyed by tile index, so a tile's
//! content is independent of generation order *and* of the city
//! dimensions — growing a 2×2 city to 4×4 leaves the original four
//! tiles byte-identical.
//!
//! Three presets approximate the 3GPP reference scenarios the 5G-LENA
//! calibration paper instantiates (38.913 §6): Dense Urban, Rural and
//! Indoor Hotspot. They differ in tile size, site density, building
//! fill and height profile; all stay NSA (every gNB co-sited with an
//! eNB) to match the paper's deployment.

use crate::building::{Building, Material};
use crate::campus::{Campus, Site, SitePlan};
use crate::map::{CampusMap, Road};
use crate::point::{Point, Rect};
use fiveg_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// Parameters for the city generator: a rectangular grid of square
/// tiles, each carrying the same block grammar and site lattice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CitySpec {
    /// Tiles east-west.
    pub tiles_x: usize,
    /// Tiles north-south.
    pub tiles_y: usize,
    /// Square tile edge, metres.
    pub tile_m: f64,
    /// LTE eNB sites per tile (3-sector macros).
    pub enb_per_tile: usize,
    /// NR gNB sites per tile (≤ `enb_per_tile`; NSA co-sited).
    pub gnb_per_tile: usize,
    /// Building blocks per tile edge (a `blocks × blocks` lattice).
    pub blocks_per_tile: usize,
    /// Fraction of concrete (vs brick) buildings.
    pub concrete_fraction: f64,
    /// Building height range, metres.
    pub height_min_m: f64,
    /// See `height_min_m`.
    pub height_max_m: f64,
}

impl CitySpec {
    /// 3GPP Dense Urban-ish preset: 400 m tiles at roughly the paper
    /// campus's site density (≈28 eNB / 13 gNB per km²), tall blocks.
    pub fn dense_urban() -> CitySpec {
        CitySpec {
            tiles_x: 2,
            tiles_y: 2,
            tile_m: 400.0,
            enb_per_tile: 4,
            gnb_per_tile: 2,
            blocks_per_tile: 3,
            concrete_fraction: 0.5,
            height_min_m: 12.0,
            height_max_m: 45.0,
        }
    }

    /// 3GPP Rural-ish preset: 1 km tiles, one co-sited macro per tile
    /// (≈1.7 km ISD), sparse low buildings.
    pub fn rural() -> CitySpec {
        CitySpec {
            tiles_x: 2,
            tiles_y: 2,
            tile_m: 1000.0,
            enb_per_tile: 1,
            gnb_per_tile: 1,
            blocks_per_tile: 2,
            concrete_fraction: 0.1,
            height_min_m: 5.0,
            height_max_m: 10.0,
        }
    }

    /// 3GPP Indoor Hotspot-ish preset: one 120 m office tile packed
    /// with low concrete structures and dense co-sited small cells.
    pub fn indoor_hotspot() -> CitySpec {
        CitySpec {
            tiles_x: 1,
            tiles_y: 1,
            tile_m: 120.0,
            enb_per_tile: 4,
            gnb_per_tile: 4,
            blocks_per_tile: 2,
            concrete_fraction: 0.9,
            height_min_m: 4.0,
            height_max_m: 8.0,
        }
    }

    /// The preset named `name` (`dense_urban` / `rural` /
    /// `indoor_hotspot`), if known.
    pub fn preset(name: &str) -> Option<CitySpec> {
        match name {
            "dense_urban" => Some(CitySpec::dense_urban()),
            "rural" => Some(CitySpec::rural()),
            "indoor_hotspot" => Some(CitySpec::indoor_hotspot()),
            _ => None,
        }
    }

    /// City width / height, metres.
    pub fn dims(&self) -> (f64, f64) {
        (
            self.tiles_x as f64 * self.tile_m,
            self.tiles_y as f64 * self.tile_m,
        )
    }

    /// Total site counts `(enb, gnb)`.
    pub fn site_counts(&self) -> (usize, usize) {
        let tiles = self.tiles_x * self.tiles_y;
        (self.enb_per_tile * tiles, self.gnb_per_tile * tiles)
    }

    /// First violated invariant, if any (mirrors
    /// `CampusConfig`'s implicit asserts, but recoverable).
    pub fn validate(&self) -> Result<(), String> {
        if self.tiles_x == 0 || self.tiles_y == 0 {
            return Err("city needs at least one tile per axis".into());
        }
        if self.tile_m < 50.0 {
            return Err(format!("tile_m {} too small (min 50 m)", self.tile_m));
        }
        if self.gnb_per_tile > self.enb_per_tile {
            return Err(format!(
                "gnb_per_tile {} exceeds enb_per_tile {} (every gNB co-sits with an eNB)",
                self.gnb_per_tile, self.enb_per_tile
            ));
        }
        if self.enb_per_tile == 0 {
            return Err("enb_per_tile must be at least 1".into());
        }
        if self.blocks_per_tile == 0 {
            return Err("blocks_per_tile must be at least 1".into());
        }
        if !(0.0..=1.0).contains(&self.concrete_fraction) {
            return Err(format!(
                "concrete_fraction {} outside [0, 1]",
                self.concrete_fraction
            ));
        }
        if !(self.height_min_m > 0.0 && self.height_max_m >= self.height_min_m) {
            return Err(format!(
                "height range [{}, {}] invalid",
                self.height_min_m, self.height_max_m
            ));
        }
        Ok(())
    }
}

/// Generates a city deterministically from `rng`'s seed. Returns a
/// [`Campus`] (map + site plan), so the whole radio stack — including
/// [`CampusMap`]'s automatic flat/tiled index selection — works on a
/// city exactly as on the paper campus.
///
/// # Panics
/// On an invalid spec; call [`CitySpec::validate`] first for a
/// recoverable error.
pub fn generate_city(spec: &CitySpec, rng: &SimRng) -> Campus {
    if let Err(e) = spec.validate() {
        panic!("invalid CitySpec: {e}");
    }
    let (w, h) = spec.dims();
    let bounds = Rect::from_origin_size(Point::new(0.0, 0.0), w, h);
    let mut buildings = Vec::new();
    let mut roads = Vec::new();
    let mut enb_sites = Vec::new();
    let mut gnb_sites = Vec::new();
    let mut gnb_cosite = Vec::new();
    for tj in 0..spec.tiles_y {
        for ti in 0..spec.tiles_x {
            let idx = (tj * spec.tiles_x + ti) as u64;
            let origin = Point::new(ti as f64 * spec.tile_m, tj as f64 * spec.tile_m);
            let mut trng = rng.substream_idx("city-tile", idx);
            tile_buildings(spec, origin, &mut trng, &mut buildings);
            // Each tile's eNB lattice; the first `gnb_per_tile` are the
            // NSA co-sites, like the campus generator.
            let enb_base = enb_sites.len();
            let mut srng = rng.substream_idx("city-sites", idx);
            tile_sites(spec, origin, &mut srng, &mut enb_sites);
            for g in 0..spec.gnb_per_tile {
                let host = enb_base + g;
                gnb_sites.push(Site {
                    pos: enb_sites[host].pos,
                    sector_azimuths: enb_sites[host].sector_azimuths.clone(),
                });
                gnb_cosite.push(host);
            }
        }
    }
    // One boundary road per tile seam plus the outer ring: enough for
    // road-survey mobility without modelling every street.
    for ti in 0..=spec.tiles_x {
        let x = (ti as f64 * spec.tile_m).clamp(2.0, w - 2.0);
        roads.push(Road::new(vec![Point::new(x, 2.0), Point::new(x, h - 2.0)]));
    }
    for tj in 0..=spec.tiles_y {
        let y = (tj as f64 * spec.tile_m).clamp(2.0, h - 2.0);
        roads.push(Road::new(vec![Point::new(2.0, y), Point::new(w - 2.0, y)]));
    }
    Campus {
        map: CampusMap::new(bounds, buildings, roads),
        plan: SitePlan {
            enb_sites,
            gnb_sites,
            gnb_cosite,
        },
    }
}

/// Fills one tile with the campus block grammar: a
/// `blocks × blocks` lattice of blocks, each holding up to 2×2
/// jittered buildings with street margins kept clear.
fn tile_buildings(spec: &CitySpec, origin: Point, rng: &mut SimRng, out: &mut Vec<Building>) {
    let n = spec.blocks_per_tile;
    let block_m = spec.tile_m / n as f64;
    let margin = (block_m * 0.06).clamp(4.0, 12.0);
    let gap = (block_m * 0.04).clamp(3.0, 8.0);
    for col in 0..n {
        for row in 0..n {
            let block = Rect::new(
                Point::new(
                    origin.x + col as f64 * block_m + margin,
                    origin.y + row as f64 * block_m + margin,
                ),
                Point::new(
                    origin.x + (col + 1) as f64 * block_m - margin,
                    origin.y + (row + 1) as f64 * block_m - margin,
                ),
            );
            for bi in 0..2 {
                for bj in 0..2 {
                    let cell_w = block.width() / 2.0;
                    let cell_h = block.height() / 2.0;
                    let bw = (cell_w - 2.0 * gap) * rng.range_f64(0.55, 0.9);
                    let bh = (cell_h - 2.0 * gap) * rng.range_f64(0.55, 0.9);
                    if bw < 8.0 || bh < 8.0 {
                        continue;
                    }
                    let ox = block.min.x + bi as f64 * cell_w + gap;
                    let oy = block.min.y + bj as f64 * cell_h + gap;
                    let material = if rng.chance(spec.concrete_fraction) {
                        Material::Concrete
                    } else {
                        Material::Brick
                    };
                    let height = rng.range_f64(spec.height_min_m, spec.height_max_m);
                    out.push(Building::new(
                        Rect::from_origin_size(Point::new(ox, oy), bw, bh),
                        material,
                        height,
                    ));
                }
            }
        }
    }
}

/// Places one tile's eNB sites on a jittered lattice (3-sector macros,
/// rooftop masts like the campus generator).
fn tile_sites(spec: &CitySpec, origin: Point, rng: &mut SimRng, out: &mut Vec<Site>) {
    let n = spec.enb_per_tile;
    // Near-square lattice: columns × rows ≥ n, walked row-major.
    let cols = (n as f64).sqrt().ceil() as usize;
    let rows = n.div_ceil(cols);
    let t = spec.tile_m;
    let mut placed = 0;
    for r in 0..rows {
        for c in 0..cols {
            if placed == n {
                return;
            }
            let fx = (c as f64 + 0.5) / cols as f64;
            let fy = (r as f64 + 0.5) / rows as f64;
            let x = origin.x + fx * t + rng.range_f64(-0.05, 0.05) * t;
            let y = origin.y + fy * t + rng.range_f64(-0.05, 0.05) * t;
            let rot = rng.range_f64(0.0, 120.0);
            out.push(Site {
                pos: Point::new(
                    x.clamp(origin.x + 5.0, origin.x + t - 5.0),
                    y.clamp(origin.y + 5.0, origin.y + t - 5.0),
                ),
                sector_azimuths: vec![rot, (rot + 120.0) % 360.0, (rot + 240.0) % 360.0],
            });
            placed += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_generate() {
        for name in ["dense_urban", "rural", "indoor_hotspot"] {
            let spec = CitySpec::preset(name).unwrap_or_else(|| panic!("preset {name}"));
            spec.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            let city = generate_city(&spec, &SimRng::new(2020));
            let (enb, gnb) = spec.site_counts();
            assert_eq!(city.plan.enb_sites.len(), enb, "{name}");
            assert_eq!(city.plan.gnb_sites.len(), gnb, "{name}");
            assert!(!city.map.buildings.is_empty(), "{name}");
            for (g, &e) in city.plan.gnb_sites.iter().zip(&city.plan.gnb_cosite) {
                assert_eq!(g.pos, city.plan.enb_sites[e].pos, "{name}: NSA co-siting");
            }
        }
    }

    #[test]
    fn unknown_preset_is_none() {
        assert!(CitySpec::preset("urban_macro").is_none());
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = CitySpec::dense_urban();
        let a = generate_city(&spec, &SimRng::new(7));
        let b = generate_city(&spec, &SimRng::new(7));
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.map.buildings, b.map.buildings);
    }

    /// Growing the city keeps the original tiles byte-identical: tile
    /// content depends only on (seed, tile index), not city dims.
    #[test]
    fn tiles_are_stable_under_growth() {
        let small = CitySpec {
            tiles_x: 2,
            tiles_y: 1,
            ..CitySpec::dense_urban()
        };
        let big = CitySpec {
            tiles_x: 2,
            tiles_y: 2,
            ..CitySpec::dense_urban()
        };
        let rng = SimRng::new(2020);
        let a = generate_city(&small, &rng);
        let b = generate_city(&big, &rng);
        // The small city's tiles are indices 0..2, which are also the
        // first row of the big city.
        let in_row0 = |bld: &Building| bld.footprint.max.y <= small.tile_m + 1.0;
        let row0_a: Vec<_> = a.map.buildings.iter().filter(|b| in_row0(b)).collect();
        let row0_b: Vec<_> = b.map.buildings.iter().filter(|b| in_row0(b)).collect();
        assert_eq!(row0_a, row0_b);
        assert_eq!(
            &a.plan.enb_sites[..],
            &b.plan.enb_sites[..a.plan.enb_sites.len()]
        );
    }

    #[test]
    fn density_scales_with_spec() {
        let spec = CitySpec {
            tiles_x: 3,
            tiles_y: 3,
            ..CitySpec::dense_urban()
        };
        let city = generate_city(&spec, &SimRng::new(2020));
        let area = city.map.area_km2();
        let enb_density = city.plan.enb_sites.len() as f64 / area;
        // dense_urban: 4 eNB per 0.16 km² tile = 25 /km².
        assert!((enb_density - 25.0).abs() < 1e-9, "enb {enb_density}");
        // Big enough to trip the tiled index auto-selection.
        assert!(city.map.buildings.len() > crate::map::TILED_INDEX_THRESHOLD);
        assert!(city
            .map
            .spatial_index()
            .is_some_and(crate::map::MapIndex::is_tiled));
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut s = CitySpec::dense_urban();
        s.gnb_per_tile = s.enb_per_tile + 1;
        assert!(s.validate().is_err());
        let mut s = CitySpec::dense_urban();
        s.tiles_x = 0;
        assert!(s.validate().is_err());
        let mut s = CitySpec::dense_urban();
        s.concrete_fraction = 1.5;
        assert!(s.validate().is_err());
    }

    #[test]
    fn roads_stay_outdoor() {
        let city = generate_city(&CitySpec::dense_urban(), &SimRng::new(2020));
        for road in &city.map.roads {
            let len = road.length();
            let mut s = 0.0;
            while s < len {
                assert!(!city.map.is_indoor(road.at_distance(s)));
                s += 15.0;
            }
        }
    }
}
