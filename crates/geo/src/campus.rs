//! Deterministic synthetic campus generator.
//!
//! Reproduces the measurement environment of the paper's Sec. 2–3:
//! a 0.5 km × 0.92 km dense urban campus with brick/concrete buildings
//! and a ~6 km road network, covered by 13 LTE eNB sites (34 cells,
//! 28.14 sites/km²) of which 6 also host NSA gNBs (13 NR cells,
//! 12.99 sites/km²). Building layout and site jitter are seeded, so a
//! given seed always yields the identical campus.

use crate::building::{Building, Material};
use crate::map::{CampusMap, Road};
use crate::point::{Point, Rect};
use fiveg_simcore::SimRng;
use serde::{Deserialize, Serialize};

/// A base-station site: a position plus the boresight azimuth of each
/// sector (cell) it hosts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Site {
    /// Site position (antenna mast), metres.
    pub pos: Point,
    /// One boresight azimuth per sector, degrees CCW from east.
    pub sector_azimuths: Vec<f64>,
}

impl Site {
    /// Number of sectors (cells) at the site.
    pub fn num_sectors(&self) -> usize {
        self.sector_azimuths.len()
    }
}

/// The deployment plan: all 4G sites plus the subset that also hosts 5G.
///
/// Under NSA every gNB co-sits with an eNB (paper Sec. 3.1), but not every
/// eNB has a 5G companion.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SitePlan {
    /// All LTE eNB sites.
    pub enb_sites: Vec<Site>,
    /// NR gNB sites; `gnb_cosite[i]` gives the index of the eNB each
    /// co-sits with.
    pub gnb_sites: Vec<Site>,
    /// For each gNB, the index into `enb_sites` it shares a mast with.
    pub gnb_cosite: Vec<usize>,
}

impl SitePlan {
    /// Total number of 4G cells.
    pub fn num_enb_cells(&self) -> usize {
        self.enb_sites.iter().map(Site::num_sectors).sum()
    }

    /// Total number of 5G cells.
    pub fn num_gnb_cells(&self) -> usize {
        self.gnb_sites.iter().map(Site::num_sectors).sum()
    }
}

/// Parameters for the campus generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampusConfig {
    /// Campus width (east-west), metres. Paper: 500.
    pub width: f64,
    /// Campus height (north-south), metres. Paper: 920.
    pub height: f64,
    /// Number of eNB sites. Paper: 13.
    pub num_enb_sites: usize,
    /// Number of gNB sites (must be ≤ eNB sites). Paper: 6.
    pub num_gnb_sites: usize,
    /// Fraction of concrete (vs brick) buildings.
    pub concrete_fraction: f64,
}

impl Default for CampusConfig {
    fn default() -> Self {
        CampusConfig {
            width: 500.0,
            height: 920.0,
            num_enb_sites: 13,
            num_gnb_sites: 6,
            concrete_fraction: 0.35,
        }
    }
}

/// A generated campus: the map plus the site plan.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campus {
    /// The geometric map.
    pub map: CampusMap,
    /// Base-station deployment.
    pub plan: SitePlan,
}

impl Campus {
    /// Generates the campus deterministically from `rng`.
    pub fn generate(cfg: &CampusConfig, rng: &mut SimRng) -> Campus {
        assert!(
            cfg.num_gnb_sites <= cfg.num_enb_sites,
            "every gNB must co-sit with an eNB (NSA)"
        );
        let bounds = Rect::from_origin_size(Point::new(0.0, 0.0), cfg.width, cfg.height);
        let roads = Self::road_grid(cfg);
        let buildings = Self::buildings(cfg, rng);
        let plan = Self::site_plan(cfg, &buildings, rng);
        Campus {
            map: CampusMap::new(bounds, buildings, roads),
            plan,
        }
    }

    /// Generates the paper's campus with the default configuration.
    pub fn paper_campus(rng: &mut SimRng) -> Campus {
        Campus::generate(&CampusConfig::default(), rng)
    }

    /// Road grid: 4 north-south avenues + 5 east-west streets, matching
    /// the paper's 6.019 km total road length to within a few percent.
    fn road_grid(cfg: &CampusConfig) -> Vec<Road> {
        let w = cfg.width;
        let h = cfg.height;
        let mut roads = Vec::new();
        let vx = [0.02 * w, 0.34 * w, 0.66 * w, 0.98 * w];
        for &x in &vx {
            roads.push(Road::new(vec![
                Point::new(x, 0.01 * h),
                Point::new(x, 0.99 * h),
            ]));
        }
        let hy = [0.01 * h, 0.255 * h, 0.50 * h, 0.745 * h, 0.99 * h];
        for &y in &hy {
            roads.push(Road::new(vec![
                Point::new(0.02 * w, y),
                Point::new(0.98 * w, y),
            ]));
        }
        roads
    }

    /// Fills the blocks between roads with buildings, leaving street
    /// margins so roads stay outdoor.
    fn buildings(cfg: &CampusConfig, rng: &mut SimRng) -> Vec<Building> {
        let w = cfg.width;
        let h = cfg.height;
        let mut out = Vec::new();
        // Blocks are the cells of the road grid (3 columns × 4 rows).
        let xs = [0.02 * w, 0.34 * w, 0.66 * w, 0.98 * w];
        let ys = [0.01 * h, 0.255 * h, 0.50 * h, 0.745 * h, 0.99 * h];
        for col in 0..xs.len() - 1 {
            for row in 0..ys.len() - 1 {
                let margin = 12.0;
                let block = Rect::new(
                    Point::new(xs[col] + margin, ys[row] + margin),
                    Point::new(xs[col + 1] - margin, ys[row + 1] - margin),
                );
                // 2×2 buildings per block with jittered footprints.
                for bi in 0..2 {
                    for bj in 0..2 {
                        let cell_w = block.width() / 2.0;
                        let cell_h = block.height() / 2.0;
                        let gap = 8.0;
                        let bw = (cell_w - 2.0 * gap) * rng.range_f64(0.55, 0.9);
                        let bh = (cell_h - 2.0 * gap) * rng.range_f64(0.55, 0.9);
                        if bw < 10.0 || bh < 10.0 {
                            continue;
                        }
                        let ox = block.min.x + bi as f64 * cell_w + gap;
                        let oy = block.min.y + bj as f64 * cell_h + gap;
                        let material = if rng.chance(cfg.concrete_fraction) {
                            Material::Concrete
                        } else {
                            Material::Brick
                        };
                        let height = rng.range_f64(12.0, 45.0); // "tall buildings"
                        out.push(Building::new(
                            Rect::from_origin_size(Point::new(ox, oy), bw, bh),
                            material,
                            height,
                        ));
                    }
                }
            }
        }
        out
    }

    /// Places eNB sites on a jittered lattice (rooftop masts, so the mast
    /// point may fall on a building; propagation treats the site as
    /// elevated and only obstructs rays by *other* buildings). Sector
    /// counts are chosen so totals match the paper: 34 LTE cells over 13
    /// sites, 13 NR cells over 6 sites.
    fn site_plan(cfg: &CampusConfig, _buildings: &[Building], rng: &mut SimRng) -> SitePlan {
        let w = cfg.width;
        let h = cfg.height;
        let n = cfg.num_enb_sites;
        // The first `num_gnb_sites` eNB positions are the NSA co-sites.
        // The operator chooses them to tile the campus with the ≈230 m
        // NR cells (a jittered 2×3 lattice keeps every point within
        // ≈200 m of a gNB); the remaining eNBs fill interstitial spots —
        // 4G's ≈520 m radius covers the campus from anywhere.
        let mut positions = Vec::with_capacity(n);
        let gnb_frac: &[(f64, f64)] = &[
            (0.25, 0.17),
            (0.75, 0.17),
            (0.25, 0.50),
            (0.75, 0.50),
            (0.25, 0.83),
            (0.75, 0.83),
        ];
        let extra_frac: &[(f64, f64)] = &[
            (0.50, 0.06),
            (0.06, 0.33),
            (0.94, 0.33),
            (0.50, 0.60),
            (0.06, 0.72),
            (0.94, 0.72),
            (0.50, 0.94),
        ];
        for &(fx, fy) in gnb_frac.iter().take(cfg.num_gnb_sites) {
            let x = fx * w + rng.range_f64(-0.04, 0.04) * w;
            let y = fy * h + rng.range_f64(-0.03, 0.03) * h;
            positions.push(Point::new(x.clamp(10.0, w - 10.0), y.clamp(10.0, h - 10.0)));
        }
        let mut k = 0usize;
        while positions.len() < n {
            let (fx, fy) = extra_frac[k % extra_frac.len()];
            let x = fx * w + rng.range_f64(-0.06, 0.06) * w;
            let y = fy * h + rng.range_f64(-0.04, 0.04) * h;
            positions.push(Point::new(x.clamp(10.0, w - 10.0), y.clamp(10.0, h - 10.0)));
            k += 1;
        }
        // Sector layout for eNBs: enough 3-sector sites to reach 34 cells
        // when the remainder have 2 (13 sites: 8×3 + 5×2 = 34).
        let three_sector_enbs = (34usize).saturating_sub(2 * n);
        let enb_sites: Vec<Site> = positions
            .iter()
            .enumerate()
            .map(|(i, &pos)| {
                let rot = rng.range_f64(0.0, 120.0);
                let azimuths = if i < three_sector_enbs {
                    vec![rot, rot + 120.0, rot + 240.0]
                } else {
                    vec![rot, rot + 180.0]
                };
                Site {
                    pos,
                    sector_azimuths: azimuths.into_iter().map(|a| a % 360.0).collect(),
                }
            })
            .collect();
        // gNBs co-sit with the first `num_gnb_sites` eNBs (the coverage
        // lattice above); one gets 3 sectors so totals match the paper
        // (6 sites: 1×3 + 5×2 = 13 NR cells).
        let chosen: Vec<usize> = (0..cfg.num_gnb_sites).collect();
        let mut gnb_sites = Vec::new();
        let mut gnb_cosite = Vec::new();
        for (g, &idx) in chosen.iter().enumerate() {
            let rot = rng.range_f64(0.0, 120.0);
            let azimuths = if g == 0 {
                vec![rot, rot + 120.0, rot + 240.0]
            } else {
                vec![rot, rot + 180.0]
            };
            gnb_sites.push(Site {
                pos: enb_sites[idx].pos,
                sector_azimuths: azimuths.into_iter().map(|a| a % 360.0).collect(),
            });
            gnb_cosite.push(idx);
        }
        SitePlan {
            enb_sites,
            gnb_sites,
            gnb_cosite,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn campus() -> Campus {
        Campus::paper_campus(&mut SimRng::new(2020))
    }

    #[test]
    fn dimensions_match_paper() {
        let c = campus();
        assert_eq!(c.map.bounds.width(), 500.0);
        assert_eq!(c.map.bounds.height(), 920.0);
        assert!((c.map.area_km2() - 0.46).abs() < 1e-9);
    }

    #[test]
    fn road_length_close_to_paper() {
        let c = campus();
        let len = c.map.total_road_length();
        // Paper: 6.019 km of roads.
        assert!((5_400.0..6_700.0).contains(&len), "road length {len}");
    }

    #[test]
    fn cell_counts_match_table1() {
        let c = campus();
        assert_eq!(c.plan.enb_sites.len(), 13);
        assert_eq!(c.plan.gnb_sites.len(), 6);
        assert_eq!(c.plan.num_enb_cells(), 34);
        assert_eq!(c.plan.num_gnb_cells(), 13);
    }

    #[test]
    fn gnbs_cosit_with_enbs() {
        let c = campus();
        for (g, &e) in c.plan.gnb_sites.iter().zip(&c.plan.gnb_cosite) {
            assert_eq!(g.pos, c.plan.enb_sites[e].pos);
        }
        // gNBs co-sit with *distinct* eNBs.
        let mut idx = c.plan.gnb_cosite.clone();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 6);
    }

    #[test]
    fn densities_match_paper_scale() {
        let c = campus();
        let gnb_density = c.plan.gnb_sites.len() as f64 / c.map.area_km2();
        let enb_density = c.plan.enb_sites.len() as f64 / c.map.area_km2();
        // Paper: 12.99 gNBs/km^2 and 28.14 eNBs/km^2.
        assert!((gnb_density - 13.04).abs() < 0.2, "gnb {gnb_density}");
        assert!((enb_density - 28.26).abs() < 0.3, "enb {enb_density}");
    }

    #[test]
    fn buildings_present_and_inside_bounds() {
        let c = campus();
        assert!(c.plan.enb_sites.len() < c.map.buildings.len());
        for b in &c.map.buildings {
            assert!(c.map.bounds.contains(b.footprint.min));
            assert!(c.map.bounds.contains(b.footprint.max));
            assert!(b.height >= 12.0 && b.height <= 45.0);
        }
        // Reasonable built-up fraction (dense urban campus).
        let built: f64 = c.map.buildings.iter().map(|b| b.footprint.area()).sum();
        let frac = built / c.map.bounds.area();
        assert!((0.1..0.6).contains(&frac), "built fraction {frac}");
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Campus::paper_campus(&mut SimRng::new(99));
        let b = Campus::paper_campus(&mut SimRng::new(99));
        assert_eq!(a.plan, b.plan);
        assert_eq!(a.map.buildings, b.map.buildings);
    }

    #[test]
    fn roads_are_outdoor() {
        let c = campus();
        for road in &c.map.roads {
            let len = road.length();
            let mut s = 0.0;
            let mut indoor = 0;
            let mut total = 0;
            while s < len {
                if c.map.is_indoor(road.at_distance(s)) {
                    indoor += 1;
                }
                total += 1;
                s += 10.0;
            }
            assert_eq!(indoor, 0, "road has {indoor}/{total} indoor samples");
        }
    }
}
