//! Building footprints and wall materials.
//!
//! The paper ascribes the 5G indoor bit-rate collapse (Fig. 3) to
//! penetration loss through brick-and-concrete walls, and notes that
//! drywall/wood construction would fare better (citing channel-sounding
//! work at 2.4 GHz). We model each building as an axis-aligned footprint
//! with a single wall material; the per-wall, per-frequency loss table
//! lives in `fiveg-phy`, this module only reports *what* a ray crosses.

use crate::point::{Point, Rect, Segment};
use serde::{Deserialize, Serialize};

/// Exterior wall construction material.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Material {
    /// Brick walls — the dominant campus material in the paper.
    Brick,
    /// Reinforced concrete — heaviest loss.
    Concrete,
    /// Drywall / plasterboard — light loss.
    Drywall,
    /// Wood construction — light loss.
    Wood,
    /// Glass curtain wall.
    Glass,
}

impl Material {
    /// All materials, for sweeps and property tests.
    pub const ALL: [Material; 5] = [
        Material::Brick,
        Material::Concrete,
        Material::Drywall,
        Material::Wood,
        Material::Glass,
    ];
}

/// A building with a rectangular footprint.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Building {
    /// Footprint rectangle.
    pub footprint: Rect,
    /// Exterior wall material.
    pub material: Material,
    /// Roof height in metres (used for documentation/3-D extensions; the
    /// 2-D propagation model treats any crossing as blocked).
    pub height: f64,
}

impl Building {
    /// Constructs a building.
    pub fn new(footprint: Rect, material: Material, height: f64) -> Self {
        Building {
            footprint,
            material,
            height,
        }
    }

    /// Whether `p` is indoors (inside or on the footprint boundary).
    pub fn contains(&self, p: Point) -> bool {
        self.footprint.contains(p)
    }

    /// Number of exterior walls the ray `seg` crosses.
    pub fn wall_crossings(&self, seg: Segment) -> usize {
        self.footprint.crossings(seg)
    }

    /// Whether the ray touches the building at all (blocks line of sight).
    pub fn blocks(&self, seg: Segment) -> bool {
        self.footprint.intersects_segment(seg)
    }
}

/// Result of tracing a ray through a set of buildings.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RayObstruction {
    /// `(material, walls crossed)` per obstructing building.
    pub crossings: Vec<(Material, usize)>,
}

impl RayObstruction {
    /// Whether the ray is completely unobstructed.
    pub fn is_los(&self) -> bool {
        self.crossings.is_empty()
    }

    /// Total number of walls crossed, across all buildings.
    pub fn total_walls(&self) -> usize {
        self.crossings.iter().map(|&(_, n)| n).sum()
    }
}

/// Traces `seg` through `buildings`, collecting the walls it crosses.
///
/// A building that contains an endpoint contributes its crossings too —
/// e.g. a receiver indoors behind one exterior wall yields one crossing.
pub fn trace_ray(buildings: &[Building], seg: Segment) -> RayObstruction {
    let mut out = RayObstruction::default();
    for b in buildings {
        let n = b.wall_crossings(seg);
        if n > 0 {
            out.crossings.push((b.material, n));
        } else if b.contains(seg.a) && b.contains(seg.b) {
            // Entirely indoors within one building: no exterior wall, but
            // record the building so LoS is correctly reported false.
            out.crossings.push((b.material, 0));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn building(x: f64, y: f64, w: f64, h: f64) -> Building {
        Building::new(
            Rect::from_origin_size(Point::new(x, y), w, h),
            Material::Brick,
            15.0,
        )
    }

    #[test]
    fn ray_through_building_crosses_two_walls() {
        let b = building(10.0, 10.0, 10.0, 10.0);
        let ray = Segment::new(Point::new(0.0, 15.0), Point::new(40.0, 15.0));
        let obs = trace_ray(&[b], ray);
        assert!(!obs.is_los());
        assert_eq!(obs.total_walls(), 2);
    }

    #[test]
    fn ray_into_building_crosses_one_wall() {
        let b = building(10.0, 10.0, 10.0, 10.0);
        let ray = Segment::new(Point::new(0.0, 15.0), Point::new(15.0, 15.0));
        let obs = trace_ray(&[b], ray);
        assert_eq!(obs.total_walls(), 1);
        assert_eq!(obs.crossings[0].0, Material::Brick);
    }

    #[test]
    fn clear_ray_is_los() {
        let b = building(10.0, 10.0, 10.0, 10.0);
        let ray = Segment::new(Point::new(0.0, 0.0), Point::new(40.0, 0.0));
        assert!(trace_ray(&[b], ray).is_los());
    }

    #[test]
    fn fully_indoor_ray_not_los_but_no_walls() {
        let b = building(0.0, 0.0, 20.0, 20.0);
        let ray = Segment::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        let obs = trace_ray(&[b], ray);
        assert!(!obs.is_los());
        assert_eq!(obs.total_walls(), 0);
    }

    #[test]
    fn multiple_buildings_accumulate() {
        let b1 = building(10.0, 0.0, 5.0, 30.0);
        let b2 = building(30.0, 0.0, 5.0, 30.0);
        let ray = Segment::new(Point::new(0.0, 15.0), Point::new(50.0, 15.0));
        let obs = trace_ray(&[b1, b2], ray);
        assert_eq!(obs.crossings.len(), 2);
        assert_eq!(obs.total_walls(), 4);
    }
}
