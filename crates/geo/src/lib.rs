//! # fiveg-geo
//!
//! Geometry and mobility substrate for the fiveg workspace.
//!
//! The paper's coverage study (Sec. 3) was conducted on a 0.5 km × 0.92 km
//! university campus with brick/concrete buildings, a road network walked
//! at 4–5 km/h, 6 NSA gNB sites and 13 LTE eNB sites. This crate provides
//! the synthetic equivalent:
//!
//! * [`point`] — 2-D points, segments, rectangles (metres).
//! * [`building`] — building footprints with wall materials and
//!   segment/footprint intersection tests (wall-crossing counts drive the
//!   penetration-loss model in `fiveg-phy`).
//! * [`map`] — the campus map: bounds, buildings, roads, line-of-sight and
//!   indoor queries.
//! * [`index`] — uniform-grid spatial index that prefilters the buildings
//!   a point or ray can touch, keeping the hot propagation queries
//!   O(candidates) instead of O(buildings).
//! * [`tiled`] — hierarchical tile-directory index for city-scale maps
//!   (same conservative query contract, O(footprint) memory).
//! * [`campus`] — deterministic synthetic campus generator matched to the
//!   paper's dimensions and site densities.
//! * [`city`] — procedural metro generator tiling the campus grammar
//!   over `CitySpec` footprints (3GPP-style dense-urban / rural /
//!   indoor-hotspot presets), seeded per tile from `SimRng` substreams.
//! * [`mobility`] — walk/bike mobility models producing timestamped
//!   position traces (road survey, random waypoint, linear transects).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod building;
pub mod campus;
pub mod city;
pub mod index;
pub mod map;
pub mod mobility;
pub mod point;
pub mod tiled;

pub use building::{Building, Material};
pub use campus::{Campus, CampusConfig, SitePlan};
pub use city::{generate_city, CitySpec};
pub use index::SpatialIndex;
pub use map::{CampusMap, MapIndex};
pub use mobility::{LinearTransect, MobilityTrace, RandomWaypoint, RoadSurvey, TracePoint};
pub use point::{Point, Rect, Segment};
pub use tiled::TiledSpatialIndex;
