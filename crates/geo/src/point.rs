//! Planar geometry primitives, in metres.
//!
//! The campus is small enough (≤1 km) that a flat local tangent plane is
//! exact for our purposes; positions are metres east/north of the campus
//! south-west corner.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A point (or vector) in the campus plane, metres.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Metres east of the origin.
    pub x: f64,
    /// Metres north of the origin.
    pub y: f64,
}

impl Point {
    /// Constructs a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to `other`, metres.
    pub fn distance(self, other: Point) -> f64 {
        (self - other).norm()
    }

    /// Vector length.
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Azimuth of the vector from `self` to `other`, in degrees
    /// counter-clockwise from east, normalised to `[0, 360)`.
    pub fn azimuth_to(self, other: Point) -> f64 {
        let d = other - self;
        let deg = d.y.atan2(d.x).to_degrees();
        (deg + 360.0) % 360.0
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        self + (other - self) * t
    }
}

impl Add for Point {
    type Output = Point;
    fn add(self, rhs: Point) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}
impl Sub for Point {
    type Output = Point;
    fn sub(self, rhs: Point) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}
impl Mul<f64> for Point {
    type Output = Point;
    fn mul(self, rhs: f64) -> Point {
        Point::new(self.x * rhs, self.y * rhs)
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.1}, {:.1})", self.x, self.y)
    }
}

/// A directed line segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Constructs a segment from `a` to `b`.
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Segment length, metres.
    pub fn length(self) -> f64 {
        self.a.distance(self.b)
    }

    /// Point at parameter `t ∈ [0, 1]` along the segment.
    pub fn at(self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Whether this segment properly or improperly intersects `other`.
    pub fn intersects(self, other: Segment) -> bool {
        // Orientation-based test with collinear handling.
        fn orient(p: Point, q: Point, r: Point) -> f64 {
            (q.x - p.x) * (r.y - p.y) - (q.y - p.y) * (r.x - p.x)
        }
        fn on_segment(p: Point, q: Point, r: Point) -> bool {
            q.x <= p.x.max(r.x) + 1e-12
                && q.x + 1e-12 >= p.x.min(r.x)
                && q.y <= p.y.max(r.y) + 1e-12
                && q.y + 1e-12 >= p.y.min(r.y)
        }
        let (p1, q1, p2, q2) = (self.a, self.b, other.a, other.b);
        let d1 = orient(p1, q1, p2);
        let d2 = orient(p1, q1, q2);
        let d3 = orient(p2, q2, p1);
        let d4 = orient(p2, q2, q1);
        if ((d1 > 0.0 && d2 < 0.0) || (d1 < 0.0 && d2 > 0.0))
            && ((d3 > 0.0 && d4 < 0.0) || (d3 < 0.0 && d4 > 0.0))
        {
            return true;
        }
        (d1.abs() < 1e-12 && on_segment(p1, p2, q1))
            || (d2.abs() < 1e-12 && on_segment(p1, q2, q1))
            || (d3.abs() < 1e-12 && on_segment(p2, p1, q2))
            || (d4.abs() < 1e-12 && on_segment(p2, q1, q2))
    }
}

/// An axis-aligned rectangle, used for campus bounds and building
/// footprints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum (south-west) corner.
    pub min: Point,
    /// Maximum (north-east) corner.
    pub max: Point,
}

impl Rect {
    /// Constructs a rectangle from two opposite corners (any order).
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Constructs from the SW corner plus width/height.
    pub fn from_origin_size(origin: Point, width: f64, height: f64) -> Self {
        Rect::new(origin, origin + Point::new(width, height))
    }

    /// Width (east-west extent), metres.
    pub fn width(self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height (north-south extent), metres.
    pub fn height(self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area in square metres.
    pub fn area(self) -> f64 {
        self.width() * self.height()
    }

    /// Centre point.
    pub fn center(self) -> Point {
        Point::new(
            0.5 * (self.min.x + self.max.x),
            0.5 * (self.min.y + self.max.y),
        )
    }

    /// Whether `p` lies inside or on the boundary.
    pub fn contains(self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `p` lies strictly inside.
    pub fn contains_strict(self, p: Point) -> bool {
        p.x > self.min.x && p.x < self.max.x && p.y > self.min.y && p.y < self.max.y
    }

    /// The four edges, counter-clockwise from the bottom edge.
    pub fn edges(self) -> [Segment; 4] {
        let bl = self.min;
        let br = Point::new(self.max.x, self.min.y);
        let tr = self.max;
        let tl = Point::new(self.min.x, self.max.y);
        [
            Segment::new(bl, br),
            Segment::new(br, tr),
            Segment::new(tr, tl),
            Segment::new(tl, bl),
        ]
    }

    /// Number of rectangle edges crossed by `seg` (0, 1 or 2 for a convex
    /// footprint; crossing through a corner may count both edges, which
    /// overestimates walls by at most one — acceptable for loss modelling).
    pub fn crossings(self, seg: Segment) -> usize {
        // Fast reject: both endpoints on the same outside half-plane.
        if (seg.a.x < self.min.x && seg.b.x < self.min.x)
            || (seg.a.x > self.max.x && seg.b.x > self.max.x)
            || (seg.a.y < self.min.y && seg.b.y < self.min.y)
            || (seg.a.y > self.max.y && seg.b.y > self.max.y)
        {
            return 0;
        }
        self.edges().iter().filter(|e| e.intersects(seg)).count()
    }

    /// Whether the segment passes through (or touches) the rectangle.
    pub fn intersects_segment(self, seg: Segment) -> bool {
        self.contains(seg.a) || self.contains(seg.b) || self.crossings(seg) > 0
    }

    /// Expands the rectangle outward by `margin` metres on all sides.
    pub fn inflate(self, margin: f64) -> Rect {
        Rect::new(
            self.min - Point::new(margin, margin),
            self.max + Point::new(margin, margin),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_and_norm() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!((b - a).norm(), 5.0);
    }

    #[test]
    fn azimuth_quadrants() {
        let o = Point::new(0.0, 0.0);
        assert_eq!(o.azimuth_to(Point::new(1.0, 0.0)), 0.0);
        assert_eq!(o.azimuth_to(Point::new(0.0, 1.0)), 90.0);
        assert_eq!(o.azimuth_to(Point::new(-1.0, 0.0)), 180.0);
        assert_eq!(o.azimuth_to(Point::new(0.0, -1.0)), 270.0);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(5.0, 10.0));
    }

    #[test]
    fn segment_intersection_crossing() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0));
        let s2 = Segment::new(Point::new(0.0, 10.0), Point::new(10.0, 0.0));
        assert!(s1.intersects(s2));
    }

    #[test]
    fn segment_intersection_disjoint() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(1.0, 0.0));
        let s2 = Segment::new(Point::new(0.0, 1.0), Point::new(1.0, 1.0));
        assert!(!s1.intersects(s2));
    }

    #[test]
    fn segment_intersection_touching() {
        let s1 = Segment::new(Point::new(0.0, 0.0), Point::new(5.0, 0.0));
        let s2 = Segment::new(Point::new(5.0, 0.0), Point::new(5.0, 5.0));
        assert!(s1.intersects(s2));
    }

    #[test]
    fn rect_contains() {
        let r = Rect::from_origin_size(Point::new(0.0, 0.0), 10.0, 20.0);
        assert!(r.contains(Point::new(5.0, 5.0)));
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(!r.contains_strict(Point::new(0.0, 0.0)));
        assert!(!r.contains(Point::new(11.0, 5.0)));
        assert_eq!(r.area(), 200.0);
        assert_eq!(r.center(), Point::new(5.0, 10.0));
    }

    #[test]
    fn rect_crossings_through() {
        let r = Rect::from_origin_size(Point::new(10.0, 10.0), 10.0, 10.0);
        // Straight through: crosses two walls.
        let through = Segment::new(Point::new(0.0, 15.0), Point::new(30.0, 15.0));
        assert_eq!(r.crossings(through), 2);
        // Ends inside: crosses one wall.
        let into = Segment::new(Point::new(0.0, 15.0), Point::new(15.0, 15.0));
        assert_eq!(r.crossings(into), 1);
        // Entirely outside.
        let out = Segment::new(Point::new(0.0, 0.0), Point::new(5.0, 5.0));
        assert_eq!(r.crossings(out), 0);
        // Entirely inside: no wall crossed.
        let inside = Segment::new(Point::new(12.0, 12.0), Point::new(18.0, 18.0));
        assert_eq!(r.crossings(inside), 0);
    }

    #[test]
    fn rect_intersects_segment_inside_case() {
        let r = Rect::from_origin_size(Point::new(0.0, 0.0), 10.0, 10.0);
        let inside = Segment::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0));
        assert!(r.intersects_segment(inside));
    }

    #[test]
    fn inflate_grows() {
        let r = Rect::from_origin_size(Point::new(5.0, 5.0), 10.0, 10.0).inflate(2.0);
        assert_eq!(r.min, Point::new(3.0, 3.0));
        assert_eq!(r.max, Point::new(17.0, 17.0));
    }
}
