//! The campus map: bounds, buildings and roads, with the spatial queries
//! the propagation model needs (line of sight, indoor test, ray tracing).

use crate::building::{trace_ray, Building, RayObstruction};
use crate::point::{Point, Rect, Segment};
use serde::{Deserialize, Serialize};

/// A road represented as a polyline of waypoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    /// Waypoints along the road centreline, in walk order.
    pub waypoints: Vec<Point>,
}

impl Road {
    /// Constructs a road; needs at least two waypoints.
    pub fn new(waypoints: Vec<Point>) -> Self {
        assert!(waypoints.len() >= 2, "a road needs at least two waypoints");
        Road { waypoints }
    }

    /// Total centreline length, metres.
    pub fn length(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Position at arc-length `s` from the start (clamped to the ends).
    pub fn at_distance(&self, s: f64) -> Point {
        if s <= 0.0 {
            return self.waypoints[0];
        }
        let mut remaining = s;
        for w in self.waypoints.windows(2) {
            let seg_len = w[0].distance(w[1]);
            if remaining <= seg_len {
                let t = if seg_len > 0.0 {
                    remaining / seg_len
                } else {
                    0.0
                };
                return w[0].lerp(w[1], t);
            }
            remaining -= seg_len;
        }
        *self.waypoints.last().expect("non-empty road")
    }
}

/// The full campus map.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CampusMap {
    /// Campus bounding rectangle.
    pub bounds: Rect,
    /// Building footprints.
    pub buildings: Vec<Building>,
    /// Road network.
    pub roads: Vec<Road>,
}

impl CampusMap {
    /// Constructs a map.
    pub fn new(bounds: Rect, buildings: Vec<Building>, roads: Vec<Road>) -> Self {
        CampusMap {
            bounds,
            buildings,
            roads,
        }
    }

    /// Whether `p` is indoors (inside any building footprint).
    pub fn is_indoor(&self, p: Point) -> bool {
        self.buildings.iter().any(|b| b.contains(p))
    }

    /// Whether a straight ray from `a` to `b` is line-of-sight (touches no
    /// building).
    pub fn has_los(&self, a: Point, b: Point) -> bool {
        let seg = Segment::new(a, b);
        !self.buildings.iter().any(|bl| bl.blocks(seg))
    }

    /// Traces the ray from `a` to `b`, reporting every wall crossed with
    /// its material. Drives the penetration/diffraction loss model.
    pub fn trace(&self, a: Point, b: Point) -> RayObstruction {
        trace_ray(&self.buildings, Segment::new(a, b))
    }

    /// Total road length, metres.
    pub fn total_road_length(&self) -> f64 {
        self.roads.iter().map(Road::length).sum()
    }

    /// Uniform grid of sample points over the bounds with spacing `step`,
    /// optionally restricted to outdoor locations.
    pub fn grid_samples(&self, step: f64, outdoor_only: bool) -> Vec<Point> {
        assert!(step > 0.0, "grid step must be positive");
        let mut out = Vec::new();
        let mut y = self.bounds.min.y + step / 2.0;
        while y < self.bounds.max.y {
            let mut x = self.bounds.min.x + step / 2.0;
            while x < self.bounds.max.x {
                let p = Point::new(x, y);
                if !outdoor_only || !self.is_indoor(p) {
                    out.push(p);
                }
                x += step;
            }
            y += step;
        }
        out
    }

    /// Campus area, square kilometres.
    pub fn area_km2(&self) -> f64 {
        self.bounds.area() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::Material;

    fn simple_map() -> CampusMap {
        let bounds = Rect::from_origin_size(Point::new(0.0, 0.0), 100.0, 100.0);
        let b = Building::new(
            Rect::from_origin_size(Point::new(40.0, 40.0), 20.0, 20.0),
            Material::Concrete,
            20.0,
        );
        let road = Road::new(vec![
            Point::new(0.0, 10.0),
            Point::new(100.0, 10.0),
            Point::new(100.0, 90.0),
        ]);
        CampusMap::new(bounds, vec![b], vec![road])
    }

    #[test]
    fn indoor_detection() {
        let m = simple_map();
        assert!(m.is_indoor(Point::new(50.0, 50.0)));
        assert!(!m.is_indoor(Point::new(10.0, 10.0)));
    }

    #[test]
    fn los_blocked_by_building() {
        let m = simple_map();
        assert!(!m.has_los(Point::new(30.0, 50.0), Point::new(70.0, 50.0)));
        assert!(m.has_los(Point::new(0.0, 0.0), Point::new(100.0, 0.0)));
    }

    #[test]
    fn trace_reports_material() {
        let m = simple_map();
        let obs = m.trace(Point::new(30.0, 50.0), Point::new(70.0, 50.0));
        assert_eq!(obs.total_walls(), 2);
        assert_eq!(obs.crossings[0].0, Material::Concrete);
    }

    #[test]
    fn road_geometry() {
        let m = simple_map();
        assert!((m.total_road_length() - 180.0).abs() < 1e-9);
        let r = &m.roads[0];
        assert_eq!(r.at_distance(0.0), Point::new(0.0, 10.0));
        assert_eq!(r.at_distance(50.0), Point::new(50.0, 10.0));
        assert_eq!(r.at_distance(150.0), Point::new(100.0, 60.0));
        assert_eq!(r.at_distance(1e9), Point::new(100.0, 90.0));
    }

    #[test]
    fn grid_sampling_excludes_indoor() {
        let m = simple_map();
        let all = m.grid_samples(10.0, false);
        let outdoor = m.grid_samples(10.0, true);
        assert_eq!(all.len(), 100);
        assert!(outdoor.len() < all.len());
        assert!(outdoor.iter().all(|&p| !m.is_indoor(p)));
    }

    #[test]
    fn area() {
        let m = simple_map();
        assert!((m.area_km2() - 0.01).abs() < 1e-12);
    }
}
