//! The campus map: bounds, buildings and roads, with the spatial queries
//! the propagation model needs (line of sight, indoor test, ray tracing).

use crate::building::{trace_ray, Building, RayObstruction};
use crate::index::SpatialIndex;
use crate::point::{Point, Rect, Segment};
use crate::tiled::TiledSpatialIndex;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Building count at which [`MapIndex::build`] switches from the flat
/// uniform grid to the tiled index. The paper campus (≤48 buildings)
/// always stays flat — so every committed golden keeps its exact
/// index — while generated cities go tiled and avoid the flat form's
/// O(cells × buildings) bitmap memory.
pub const TILED_INDEX_THRESHOLD: usize = 256;

/// The spatial acceleration structure behind a [`CampusMap`]: the flat
/// uniform grid for campus-sized maps, the hierarchical tiled index
/// for city-sized ones. Both forms share the conservative,
/// ascending-candidate query contract, so callers never branch on the
/// variant.
#[derive(Debug, Clone)]
pub enum MapIndex {
    /// Flat uniform grid with per-cell candidate bitmaps
    /// ([`SpatialIndex`]).
    Flat(SpatialIndex),
    /// Tile directory over per-tile grids ([`TiledSpatialIndex`]).
    Tiled(TiledSpatialIndex),
}

impl MapIndex {
    /// Builds the right index form for `buildings` (see
    /// [`TILED_INDEX_THRESHOLD`]). Selection is a pure function of the
    /// building count, so a given map always gets the same index.
    pub fn build(bounds: Rect, buildings: &[Building]) -> MapIndex {
        if buildings.len() >= TILED_INDEX_THRESHOLD {
            MapIndex::Tiled(TiledSpatialIndex::build(bounds, buildings))
        } else {
            MapIndex::Flat(SpatialIndex::build(bounds, buildings))
        }
    }

    /// Whether this is the tiled form.
    pub fn is_tiled(&self) -> bool {
        matches!(self, MapIndex::Tiled(_))
    }

    /// Number of `u64` words in a candidate bitmap.
    pub fn mask_words(&self) -> usize {
        match self {
            MapIndex::Flat(i) => i.mask_words(),
            MapIndex::Tiled(i) => i.mask_words(),
        }
    }

    /// Building indices whose footprint may contain `p` (ascending).
    pub fn candidates_point(&self, p: Point) -> &[u32] {
        match self {
            MapIndex::Flat(i) => i.candidates_point(p),
            MapIndex::Tiled(i) => i.candidates_point(p),
        }
    }

    /// Conservative segment candidates, ascending and deduplicated.
    pub fn candidates_segment(&self, seg: Segment, out: &mut Vec<u32>) {
        match self {
            MapIndex::Flat(i) => i.candidates_segment(seg, out),
            MapIndex::Tiled(i) => i.candidates_segment(seg, out),
        }
    }

    /// Bitmap form of [`MapIndex::candidates_segment`].
    pub fn candidates_segment_mask(&self, seg: Segment, words: &mut Vec<u64>) {
        match self {
            MapIndex::Flat(i) => i.candidates_segment_mask(seg, words),
            MapIndex::Tiled(i) => i.candidates_segment_mask(seg, words),
        }
    }

    /// Existence scan along `seg` (duplicates possible); stops when
    /// `test` returns `true` and returns whether it did.
    pub fn scan_segment_until(&self, seg: Segment, test: impl FnMut(u32) -> bool) -> bool {
        match self {
            MapIndex::Flat(i) => i.scan_segment_until(seg, test),
            MapIndex::Tiled(i) => i.scan_segment_until(seg, test),
        }
    }
}

/// A road represented as a polyline of waypoints.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    /// Waypoints along the road centreline, in walk order.
    pub waypoints: Vec<Point>,
}

impl Road {
    /// Constructs a road; needs at least two waypoints.
    pub fn new(waypoints: Vec<Point>) -> Self {
        assert!(waypoints.len() >= 2, "a road needs at least two waypoints");
        Road { waypoints }
    }

    /// Total centreline length, metres.
    pub fn length(&self) -> f64 {
        self.waypoints.windows(2).map(|w| w[0].distance(w[1])).sum()
    }

    /// Position at arc-length `s` from the start (clamped to the ends).
    pub fn at_distance(&self, s: f64) -> Point {
        if s <= 0.0 {
            return self.waypoints[0];
        }
        let mut remaining = s;
        let mut last = self.waypoints[0];
        for w in self.waypoints.windows(2) {
            let seg_len = w[0].distance(w[1]);
            if remaining <= seg_len {
                let t = if seg_len > 0.0 {
                    remaining / seg_len
                } else {
                    0.0
                };
                return w[0].lerp(w[1], t);
            }
            remaining -= seg_len;
            last = w[1];
        }
        last
    }
}

/// The full campus map.
#[derive(Debug, Clone)]
pub struct CampusMap {
    /// Campus bounding rectangle.
    pub bounds: Rect,
    /// Building footprints.
    pub buildings: Vec<Building>,
    /// Road network.
    pub roads: Vec<Road>,
    /// Spatial acceleration structure over `buildings` (flat or tiled,
    /// auto-selected by [`MapIndex::build`]). Derived data, excluded
    /// from serialization (the manual [`Serialize`] impl below writes
    /// only the three geometry fields); a map without an index answers
    /// every query by full scan until [`CampusMap::ensure_index`]
    /// rebuilds it.
    index: Option<Arc<MapIndex>>,
}

/// Manual impl (instead of derive) so the derived-data `index` field
/// stays out of the artifact bytes — the vendored serde derive has no
/// `#[serde(skip)]`.
impl Serialize for CampusMap {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("bounds".to_string(), self.bounds.to_value()),
            ("buildings".to_string(), self.buildings.to_value()),
            ("roads".to_string(), self.roads.to_value()),
        ])
    }
}

impl<'de> Deserialize<'de> for CampusMap {}

impl CampusMap {
    /// Constructs a map (and its spatial index).
    pub fn new(bounds: Rect, buildings: Vec<Building>, roads: Vec<Road>) -> Self {
        let index = Some(Arc::new(MapIndex::build(bounds, &buildings)));
        CampusMap {
            bounds,
            buildings,
            roads,
            index,
        }
    }

    /// The spatial index, if built. `None` only for maps freshly
    /// deserialized (the index is derived data and not serialized).
    pub fn spatial_index(&self) -> Option<&MapIndex> {
        self.index.as_deref()
    }

    /// Rebuilds the spatial index if absent (after deserialization).
    pub fn ensure_index(&mut self) {
        if self.index.is_none() {
            self.index = Some(Arc::new(MapIndex::build(self.bounds, &self.buildings)));
        }
    }

    /// Number of `u64` words in a candidate bitmap for this map; the
    /// full-scan fallback value when no index is built.
    pub fn mask_words(&self) -> usize {
        self.index.as_ref().map_or_else(
            || self.buildings.len().div_ceil(64).max(1),
            |i| i.mask_words(),
        )
    }

    /// Whether `p` is indoors (inside any building footprint).
    pub fn is_indoor(&self, p: Point) -> bool {
        match &self.index {
            Some(idx) => idx
                .candidates_point(p)
                .iter()
                .any(|&bi| self.buildings[bi as usize].contains(p)),
            None => self.buildings.iter().any(|b| b.contains(p)),
        }
    }

    /// Whether a straight ray from `a` to `b` is line-of-sight (touches no
    /// building).
    pub fn has_los(&self, a: Point, b: Point) -> bool {
        let seg = Segment::new(a, b);
        match &self.index {
            Some(idx) => {
                // Existence query: the scan stops at the first
                // obstruction instead of collecting all candidates.
                !idx.scan_segment_until(seg, |bi| self.buildings[bi as usize].blocks(seg))
            }
            None => !self.buildings.iter().any(|bl| bl.blocks(seg)),
        }
    }

    /// Traces the ray from `a` to `b`, reporting every wall crossed with
    /// its material. Drives the penetration/diffraction loss model.
    pub fn trace(&self, a: Point, b: Point) -> RayObstruction {
        let seg = Segment::new(a, b);
        match &self.index {
            Some(idx) => {
                let mut cand = Vec::new();
                idx.candidates_segment(seg, &mut cand);
                let mut out = RayObstruction::default();
                // Candidates come out ascending, so the report is in the
                // same building order as the full scan.
                for &bi in &cand {
                    let b = &self.buildings[bi as usize];
                    let n = b.wall_crossings(seg);
                    if n > 0 {
                        out.crossings.push((b.material, n));
                    } else if b.contains(seg.a) && b.contains(seg.b) {
                        out.crossings.push((b.material, 0));
                    }
                }
                out
            }
            None => trace_ray(&self.buildings, seg),
        }
    }

    /// Visits every building that might touch `seg`, in ascending
    /// building-index order, reusing `cand` as candidate scratch so the
    /// query allocates nothing at steady state. Returns the number of
    /// buildings visited (callers derive "pruned" from the total).
    ///
    /// The candidate set is conservative: visited buildings may miss the
    /// segment (re-test in `f`), but no intersecting building is skipped.
    pub fn for_buildings_near_segment(
        &self,
        seg: Segment,
        cand: &mut Vec<u32>,
        mut f: impl FnMut(&Building),
    ) -> usize {
        match &self.index {
            Some(idx) => {
                idx.candidates_segment(seg, cand);
                for &bi in cand.iter() {
                    f(&self.buildings[bi as usize]);
                }
                cand.len()
            }
            None => {
                for b in &self.buildings {
                    f(b);
                }
                self.buildings.len()
            }
        }
    }

    /// Bitmap form of the segment-candidate query: fills `words` with
    /// the conservative candidate set for `seg` (bit `w * 64 + b` ⇔
    /// building index, ascending by construction). Returns `false` when
    /// no spatial index is built — the caller must fall back to a full
    /// scan. This is the cheapest candidate form and what the radio
    /// fast path iterates directly.
    pub fn ray_candidates_mask(&self, seg: Segment, words: &mut Vec<u64>) -> bool {
        match &self.index {
            Some(idx) => {
                idx.candidates_segment_mask(seg, words);
                true
            }
            None => false,
        }
    }

    /// Existence scan along `seg` (see
    /// [`SpatialIndex::scan_segment_until`]): streams candidate indices
    /// to `test` (duplicates possible) until it returns `true`; the
    /// return value says whether it did. `None` when no spatial index is
    /// built — the caller must fall back to a full scan.
    pub fn ray_scan_until(&self, seg: Segment, test: impl FnMut(u32) -> bool) -> Option<bool> {
        self.index
            .as_ref()
            .map(|idx| idx.scan_segment_until(seg, test))
    }

    /// Collects (ascending) the indices of every building containing
    /// `p` into `out`, reusing it as scratch.
    pub fn buildings_containing_into(&self, p: Point, out: &mut Vec<u32>) {
        out.clear();
        match &self.index {
            Some(idx) => {
                for &bi in idx.candidates_point(p) {
                    if self.buildings[bi as usize].contains(p) {
                        out.push(bi);
                    }
                }
            }
            None => {
                for (bi, b) in self.buildings.iter().enumerate() {
                    if b.contains(p) {
                        out.push(bi as u32);
                    }
                }
            }
        }
    }

    /// Total road length, metres.
    pub fn total_road_length(&self) -> f64 {
        self.roads.iter().map(Road::length).sum()
    }

    /// Uniform grid of sample points over the bounds with spacing `step`,
    /// optionally restricted to outdoor locations.
    pub fn grid_samples(&self, step: f64, outdoor_only: bool) -> Vec<Point> {
        assert!(step > 0.0, "grid step must be positive");
        let mut out = Vec::new();
        let mut y = self.bounds.min.y + step / 2.0;
        while y < self.bounds.max.y {
            let mut x = self.bounds.min.x + step / 2.0;
            while x < self.bounds.max.x {
                let p = Point::new(x, y);
                if !outdoor_only || !self.is_indoor(p) {
                    out.push(p);
                }
                x += step;
            }
            y += step;
        }
        out
    }

    /// Campus area, square kilometres.
    pub fn area_km2(&self) -> f64 {
        self.bounds.area() / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::building::Material;

    fn simple_map() -> CampusMap {
        let bounds = Rect::from_origin_size(Point::new(0.0, 0.0), 100.0, 100.0);
        let b = Building::new(
            Rect::from_origin_size(Point::new(40.0, 40.0), 20.0, 20.0),
            Material::Concrete,
            20.0,
        );
        let road = Road::new(vec![
            Point::new(0.0, 10.0),
            Point::new(100.0, 10.0),
            Point::new(100.0, 90.0),
        ]);
        CampusMap::new(bounds, vec![b], vec![road])
    }

    #[test]
    fn indoor_detection() {
        let m = simple_map();
        assert!(m.is_indoor(Point::new(50.0, 50.0)));
        assert!(!m.is_indoor(Point::new(10.0, 10.0)));
    }

    #[test]
    fn los_blocked_by_building() {
        let m = simple_map();
        assert!(!m.has_los(Point::new(30.0, 50.0), Point::new(70.0, 50.0)));
        assert!(m.has_los(Point::new(0.0, 0.0), Point::new(100.0, 0.0)));
    }

    #[test]
    fn trace_reports_material() {
        let m = simple_map();
        let obs = m.trace(Point::new(30.0, 50.0), Point::new(70.0, 50.0));
        assert_eq!(obs.total_walls(), 2);
        assert_eq!(obs.crossings[0].0, Material::Concrete);
    }

    #[test]
    fn road_geometry() {
        let m = simple_map();
        assert!((m.total_road_length() - 180.0).abs() < 1e-9);
        let r = &m.roads[0];
        assert_eq!(r.at_distance(0.0), Point::new(0.0, 10.0));
        assert_eq!(r.at_distance(50.0), Point::new(50.0, 10.0));
        assert_eq!(r.at_distance(150.0), Point::new(100.0, 60.0));
        assert_eq!(r.at_distance(1e9), Point::new(100.0, 90.0));
    }

    #[test]
    fn grid_sampling_excludes_indoor() {
        let m = simple_map();
        let all = m.grid_samples(10.0, false);
        let outdoor = m.grid_samples(10.0, true);
        assert_eq!(all.len(), 100);
        assert!(outdoor.len() < all.len());
        assert!(outdoor.iter().all(|&p| !m.is_indoor(p)));
    }

    #[test]
    fn area() {
        let m = simple_map();
        assert!((m.area_km2() - 0.01).abs() < 1e-12);
    }

    /// Strip the index (as external construction without `new` would)
    /// and check every query agrees with the indexed fast path.
    #[test]
    fn indexed_queries_match_full_scan() {
        let indexed = simple_map();
        let plain = CampusMap {
            bounds: indexed.bounds,
            buildings: indexed.buildings.clone(),
            roads: indexed.roads.clone(),
            index: None,
        };
        assert!(indexed.spatial_index().is_some());
        assert!(plain.spatial_index().is_none());
        for k in 0..300u32 {
            let a = Point::new((k as f64 * 7.3) % 100.0, (k as f64 * 13.7) % 100.0);
            let b = Point::new((k as f64 * 31.1) % 100.0, (k as f64 * 3.9) % 100.0);
            assert_eq!(indexed.is_indoor(a), plain.is_indoor(a));
            assert_eq!(indexed.has_los(a, b), plain.has_los(a, b));
            assert_eq!(indexed.trace(a, b), plain.trace(a, b));
        }
        let mut rebuilt = plain;
        rebuilt.ensure_index();
        assert!(rebuilt.spatial_index().is_some());
        assert!(!rebuilt.has_los(Point::new(30.0, 50.0), Point::new(70.0, 50.0)));
    }

    #[test]
    fn for_buildings_near_segment_visits_blockers() {
        let m = simple_map();
        let seg = Segment::new(Point::new(30.0, 50.0), Point::new(70.0, 50.0));
        let mut cand = Vec::new();
        let mut hit = 0;
        let visited = m.for_buildings_near_segment(seg, &mut cand, |b| {
            if b.blocks(seg) {
                hit += 1;
            }
        });
        assert_eq!(hit, 1);
        assert!(visited <= m.buildings.len());
        // A far-away ray prunes everything.
        let far = Segment::new(Point::new(0.0, 0.0), Point::new(10.0, 0.0));
        let visited = m.for_buildings_near_segment(far, &mut cand, |_| {});
        assert_eq!(visited, 0);
    }
}
