//! Flag-validation tests for the `repro` binary: every bad `--trace`
//! invocation must exit 2 with the usage text, before any job runs.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("repro binary runs")
}

#[test]
fn unknown_trace_mode_exits_2_with_usage() {
    let out = repro(&["--trace=firehose", "--only", "scenario"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown mode `firehose`"),
        "stderr names the bad mode: {stderr}"
    );
    assert!(
        stderr.contains("Usage: repro"),
        "stderr shows usage: {stderr}"
    );
}

#[test]
fn trace_without_a_target_exits_2_with_usage() {
    for args in [&["--trace"][..], &["--trace=full"][..]] {
        let out = repro(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--trace requires a target"),
            "stderr explains the missing target: {stderr}"
        );
        assert!(
            stderr.contains("Usage: repro"),
            "stderr shows usage: {stderr}"
        );
    }
}

#[test]
fn trace_with_a_target_passes_flag_validation() {
    // A filter that matches nothing still clears flag parsing; the
    // failure is the late "no jobs matched" path, not the usage text.
    let out = repro(&["--trace=ring", "--only", "no-such-job-anywhere"]);
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("no jobs matched"), "got: {stderr}");
    assert!(!stderr.contains("Usage: repro"), "got: {stderr}");
}
