//! Benches regenerating the latency results (Fig. 13, Fig. 14, Fig. 15).

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_core::experiments::latency;
use fiveg_core::Fidelity;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("latency");
    g.bench_function("fig13_rtt_scatter", |b| {
        b.iter(|| black_box(latency::fig13(Fidelity::Quick, 1)));
    });
    g.bench_function("fig14_traceroute", |b| {
        b.iter(|| black_box(latency::fig14(2, 30)));
    });
    g.bench_function("fig15_rtt_vs_distance", |b| {
        b.iter(|| black_box(latency::fig15(Fidelity::Quick, 3)));
    });
    g.finish();
    println!("{}", latency::fig13(Fidelity::Paper, 1).to_text());
    println!("{}", latency::fig14(2, 100).to_text());
    println!("{}", latency::fig15(Fidelity::Paper, 3).to_text());
}

criterion_group!(benches, bench);
criterion_main!(benches);
