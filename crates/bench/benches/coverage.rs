//! Benches regenerating the coverage results (Tab. 1, Tab. 2, Fig. 2a/b,
//! Fig. 3). Each iteration runs the full campaign; the printed summary
//! after the run is the paper-vs-measured comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_core::experiments::coverage;
use fiveg_core::Scenario;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sc = Scenario::paper(2020);
    let mut g = c.benchmark_group("coverage");
    g.sample_size(10);
    g.bench_function("table1_road_survey", |b| {
        b.iter(|| black_box(coverage::table1(&sc)));
    });
    g.bench_function("table2_rsrp_distribution", |b| {
        b.iter(|| black_box(coverage::table2(&sc, 1000)));
    });
    g.bench_function("fig2a_rsrp_map", |b| {
        b.iter(|| black_box(coverage::fig2a(&sc, 40.0)));
    });
    g.bench_function("fig2b_cell_contour", |b| {
        b.iter(|| black_box(coverage::fig2b(&sc)));
    });
    g.bench_function("fig3_indoor_outdoor", |b| {
        b.iter(|| black_box(coverage::fig3(&sc)));
    });
    g.finish();
    // Print the paper-vs-measured summary once.
    println!("{}", coverage::table1(&sc).to_text());
    println!("{}", coverage::table2(&sc, 4630).to_text());
    println!("{}", coverage::fig3(&sc).to_text());
}

criterion_group!(benches, bench);
criterion_main!(benches);
