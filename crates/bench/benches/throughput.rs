//! Benches regenerating the transport results (Fig. 7, Fig. 8, Fig. 9,
//! Fig. 10, Fig. 11, Tab. 3).

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_core::experiments::throughput;
use fiveg_core::net::path::PaperPathParams;
use fiveg_core::transport::CcAlgorithm;
use fiveg_core::Fidelity;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("throughput");
    g.sample_size(10);
    // One 3-second 5G flow per protocol per iteration.
    for alg in [CcAlgorithm::Cubic, CcAlgorithm::Bbr, CcAlgorithm::Vegas] {
        g.bench_function(format!("fig7_5g_{}_3s", alg.name()), |b| {
            b.iter(|| {
                black_box(throughput::tcp_goodput(
                    &PaperPathParams::nr_day(),
                    alg,
                    3,
                    42,
                ))
            });
        });
    }
    g.bench_function("fig9_udp_probe_halfload_3s", |b| {
        b.iter(|| {
            use fiveg_core::net::path::{Direction, PathConfig};
            let p = PaperPathParams::nr_day();
            let path = PathConfig::paper(&p, Direction::Downlink);
            let cross = path.paper_cross_traffic();
            black_box(fiveg_core::transport::udp::udp_probe(
                path,
                Some(cross),
                fiveg_core::simcore::BitRate::from_mbps(440.0),
                fiveg_core::simcore::SimDuration::from_secs(3),
                7,
            ))
        });
    });
    g.bench_function("fig10_harq_10k_blocks", |b| {
        b.iter(|| black_box(throughput::fig10(5, 10_000)));
    });
    g.finish();
    println!("{}", throughput::fig7(Fidelity::Quick, 42).to_text());
    println!("{}", throughput::fig9(Fidelity::Quick, 42).to_text());
    println!("{}", throughput::fig10(42, 50_000).to_text());
    println!("{}", throughput::fig11(Fidelity::Quick, 42).to_text());
    println!("{}", throughput::table3(Fidelity::Quick, 42).to_text());
}

criterion_group!(benches, bench);
criterion_main!(benches);
