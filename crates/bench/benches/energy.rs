//! Benches regenerating the energy results (Fig. 21, Fig. 22, Fig. 23,
//! Tab. 4).

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_core::experiments::energy;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("energy");
    g.bench_function("fig21_breakdowns", |b| {
        b.iter(|| black_box(energy::fig21(60)));
    });
    g.bench_function("fig22_energy_per_bit", |b| {
        b.iter(|| black_box(energy::fig22()));
    });
    g.bench_function("fig23_power_trace", |b| {
        b.iter(|| black_box(energy::fig23()));
    });
    g.bench_function("table4_strategy_matrix", |b| {
        b.iter(|| black_box(energy::table4()));
    });
    g.finish();
    println!("{}", energy::fig21(60).to_text());
    println!("{}", energy::fig22().to_text());
    println!("{}", energy::fig23().to_text());
    println!("{}", energy::table4().to_text());
}

criterion_group!(benches, bench);
criterion_main!(benches);
