//! Benches regenerating the application-QoE results (Fig. 16, Fig. 17,
//! Fig. 18, Fig. 19, Fig. 20).

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_core::apps::video::{Resolution, SceneKind, VideoSession};
use fiveg_core::apps::web::{load_page, PageCategory, WebPage};
use fiveg_core::experiments::application;
use fiveg_core::net::path::{Direction, PaperPathParams, PathConfig};
use fiveg_core::simcore::{SimDuration, SimRng};
use fiveg_core::transport::CcAlgorithm;
use fiveg_core::Fidelity;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("applications");
    g.sample_size(10);
    g.bench_function("fig16_single_page_load_5g", |b| {
        let mut rng = SimRng::new(1);
        b.iter(|| {
            let page = WebPage::sample(PageCategory::Shopping, &mut rng);
            let path = PathConfig::paper(&PaperPathParams::nr_day(), Direction::Downlink);
            let cross = path.paper_cross_traffic();
            black_box(load_page(
                page,
                path,
                Some(cross),
                CcAlgorithm::Bbr,
                1.5,
                9,
                SimDuration::from_secs(30),
            ))
        });
    });
    g.bench_function("fig18_4k_session_5s", |b| {
        b.iter(|| {
            let session = VideoSession {
                duration: SimDuration::from_secs(5),
                ..VideoSession::paper(Resolution::K4, SceneKind::Static)
            };
            let path = PathConfig::paper(&PaperPathParams::nr_ul(), Direction::Uplink);
            black_box(session.run(path, None, 11))
        });
    });
    g.finish();
    println!("{}", application::fig16(Fidelity::Quick, 1).to_text());
    println!("{}", application::fig17(1).to_text());
    println!("{}", application::video_study(Fidelity::Quick, 1).to_text());
}

criterion_group!(benches, bench);
criterion_main!(benches);
