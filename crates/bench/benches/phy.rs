//! Benches for the radio measurement fast path: full-environment
//! measurement sweeps, KPI sampling and spatial-indexed ray tracing.

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_core::phy::{MeasureScratch, Tech};
use fiveg_core::Scenario;
use fiveg_geo::Point;
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sc = Scenario::paper(2020);
    let ue = Point::new(250.0, 460.0);
    let mut g = c.benchmark_group("phy");
    g.bench_function("measure_all_nr", |b| {
        let mut scratch = MeasureScratch::new();
        b.iter(|| {
            black_box(
                sc.env
                    .measure_all_into(black_box(ue), Tech::Nr, &mut scratch)
                    .len(),
            )
        });
    });
    g.bench_function("measure_all_lte", |b| {
        let mut scratch = MeasureScratch::new();
        b.iter(|| {
            black_box(
                sc.env
                    .measure_all_into(black_box(ue), Tech::Lte, &mut scratch)
                    .len(),
            )
        });
    });
    g.bench_function("kpi_sample", |b| {
        let mut scratch = MeasureScratch::new();
        b.iter(|| {
            black_box(
                sc.env
                    .kpi_sample_into(black_box(ue), Tech::Nr, 1.0, &mut scratch),
            )
        });
    });
    g.bench_function("campus_trace", |b| {
        let a = Point::new(20.0, 30.0);
        let z = Point::new(480.0, 890.0);
        b.iter(|| black_box(sc.campus.map.trace(black_box(a), black_box(z))));
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
