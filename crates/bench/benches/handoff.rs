//! Benches regenerating the hand-off results (Fig. 4, Fig. 5, Fig. 6,
//! Fig. 12).

use criterion::{criterion_group, criterion_main, Criterion};
use fiveg_core::experiments::handoff;
use fiveg_core::{Fidelity, Scenario};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let sc = Scenario::paper(2020);
    let mut g = c.benchmark_group("handoff");
    g.sample_size(10);
    g.bench_function("fig4_rsrq_transect", |b| {
        b.iter(|| black_box(handoff::fig4(&sc)));
    });
    g.bench_function("fig5_fig6_campaign_1min", |b| {
        // One simulated minute of campaign per iteration.
        b.iter(|| {
            let rwp = fiveg_geo::mobility::RandomWaypoint {
                speed_min_kmh: 3.0,
                speed_max_kmh: 10.0,
                duration: fiveg_core::simcore::SimDuration::from_secs(60),
                interval: fiveg_core::simcore::SimDuration::from_millis(100),
            };
            let mut rng = sc.rng("bench-ho");
            let trace = rwp.generate(&sc.campus.map, &mut rng);
            black_box(fiveg_core::ran::HandoffCampaign::default().run(&sc.env, &trace, &mut rng))
        });
    });
    g.bench_function("fig12_ho_throughput_drop", |b| {
        b.iter(|| black_box(handoff::fig12(&sc, 1)));
    });
    g.finish();
    println!("{}", handoff::handoff_study(&sc, Fidelity::Quick).to_text());
    println!("{}", handoff::fig12(&sc, 3).to_text());
}

criterion_group!(benches, bench);
criterion_main!(benches);
