//! Benchmark reports: the `BENCH_0003.json` schema and the drift
//! comparator behind `repro --bench` / `--bench-check`.
//!
//! A bench report summarises one campaign run per job: deterministic
//! work counters (events executed, packets forwarded, HARQ tries, …)
//! plus advisory host timings (wall time, events per second), and — new
//! in schema 3 — a `micro` section of targeted hot-path microbenchmarks
//! (currently `phy.sample`: the radio measurement path). The CI perf
//! gate compares a fresh report against a committed baseline:
//!
//! * **counter drift is a failure** — counters depend only on the seed,
//!   so any change means the simulation itself changed;
//! * **throughput regression is a warning** — wall time depends on the
//!   host, so a slow machine must not fail the build. Only a drop of
//!   more than [`THROUGHPUT_WARN_FRACTION`] is called out.

use fiveg_campaign::{JobResult, RunReport};
use fiveg_obs::{parse_json, JsonValue};
use serde::Serialize;
use std::collections::BTreeMap;

/// Schema version of the bench report (the `0003` in `BENCH_0003.json`).
pub const BENCH_SCHEMA: u32 = 3;

/// Relative `events_per_sec` drop that triggers a regression warning.
pub const THROUGHPUT_WARN_FRACTION: f64 = 0.25;

/// One job's row in a bench report.
#[derive(Debug, Clone, Serialize)]
pub struct BenchJob {
    /// Wall time, milliseconds (advisory).
    pub wall_ms: u64,
    /// Simulation events executed (deterministic).
    pub events: u64,
    /// Events per wall-clock second (advisory).
    pub events_per_sec: u64,
    /// All deterministic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
}

/// Whole-run totals, aggregated over all jobs.
#[derive(Debug, Clone, Serialize)]
pub struct BenchTotals {
    /// Sum of per-job wall times, milliseconds (advisory).
    pub wall_ms: u64,
    /// Total simulation events executed (deterministic).
    pub events: u64,
    /// Aggregate events per wall-clock second (advisory).
    pub events_per_sec: u64,
}

/// One microbenchmark row: a fixed, seed-deterministic hot-path
/// workload timed outside the campaign executor.
#[derive(Debug, Clone, Serialize)]
pub struct MicroBench {
    /// Wall time, milliseconds (advisory).
    pub wall_ms: u64,
    /// Measurement samples taken (deterministic).
    pub samples: u64,
    /// Samples per wall-clock second (advisory).
    pub samples_per_sec: u64,
    /// All deterministic counters the workload recorded, sorted by name.
    pub counters: BTreeMap<String, u64>,
}

/// The `BENCH_0003.json` document.
#[derive(Debug, Clone, Serialize)]
pub struct BenchReport {
    /// Bench schema version.
    pub schema: u32,
    /// Fidelity name of the run (`"quick"` / `"paper"`).
    pub fidelity: String,
    /// Base seed of the run.
    pub base_seed: u64,
    /// Per-job rows, keyed by artifact stem (`name` or `name.repN`).
    pub jobs: BTreeMap<String, BenchJob>,
    /// Whole-run totals.
    pub totals: BenchTotals,
    /// Hot-path microbenchmarks, keyed by name (e.g. `phy.sample`).
    pub micro: BTreeMap<String, MicroBench>,
}

fn bench_job(r: &JobResult) -> Option<BenchJob> {
    let snap = r.metrics.as_ref()?;
    let counters = snap.deterministic();
    let events = counters.get("sim.events.executed").copied().unwrap_or(0);
    let events_per_sec = if r.wall.as_secs_f64() > 0.0 {
        (events as f64 / r.wall.as_secs_f64()) as u64
    } else {
        0
    };
    Some(BenchJob {
        wall_ms: r.wall.as_millis() as u64,
        events,
        events_per_sec,
        counters,
    })
}

impl BenchReport {
    /// Builds the report from a finished campaign run. Failed units are
    /// skipped (they have no metrics); the caller already fails the run.
    pub fn from_run(report: &RunReport) -> BenchReport {
        let mut jobs = BTreeMap::new();
        for r in &report.results {
            if let Some(row) = bench_job(r) {
                jobs.insert(r.artifact_stem(), row);
            }
        }
        let wall_ms: u64 = jobs.values().map(|j| j.wall_ms).sum();
        let events: u64 = jobs.values().map(|j| j.events).sum();
        let events_per_sec = if wall_ms > 0 {
            (events as f64 / (wall_ms as f64 / 1000.0)) as u64
        } else {
            0
        };
        BenchReport {
            schema: BENCH_SCHEMA,
            fidelity: report.manifest.fidelity.clone(),
            base_seed: report.manifest.base_seed,
            jobs,
            totals: BenchTotals {
                wall_ms,
                events,
                events_per_sec,
            },
            micro: BTreeMap::new(),
        }
    }

    /// Pretty JSON rendering (`BTreeMap` keys keep it byte-stable for
    /// identical counter content).
    pub fn to_json(&self) -> String {
        // Serialisation of plain data cannot fail; keep the library
        // panic-free rather than abort a whole campaign on a bug here.
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

/// Outcome of comparing a fresh bench report against a baseline.
#[derive(Debug, Clone, Default)]
pub struct BenchComparison {
    /// Counter drift — any entry here must fail the gate.
    pub failures: Vec<String>,
    /// Advisory throughput regressions — reported, never fatal.
    pub warnings: Vec<String>,
}

impl BenchComparison {
    /// Whether the gate passes (warnings allowed).
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }

    /// Human-readable summary, one line per finding.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        for f in &self.failures {
            s.push_str("bench FAIL: ");
            s.push_str(f);
            s.push('\n');
        }
        for w in &self.warnings {
            s.push_str("bench warn: ");
            s.push_str(w);
            s.push('\n');
        }
        if self.failures.is_empty() && self.warnings.is_empty() {
            s.push_str("bench: counters match baseline, throughput within bounds\n");
        }
        s
    }
}

fn u64_field(job: &JsonValue, field: &str) -> Option<u64> {
    job.get(field).and_then(JsonValue::as_u64)
}

/// Compares `current` against a parsed `baseline` document (the JSON of
/// an earlier [`BenchReport`]). Counter drift — a job missing on either
/// side, a counter missing on either side, or any value difference — is
/// a failure; an `events_per_sec` drop beyond
/// [`THROUGHPUT_WARN_FRACTION`] is a warning.
pub fn compare_to_baseline(
    current: &BenchReport,
    baseline_json: &str,
) -> Result<BenchComparison, String> {
    let doc = parse_json(baseline_json).map_err(|e| format!("baseline is not valid JSON: {e}"))?;
    let base_jobs = doc
        .get("jobs")
        .and_then(JsonValue::as_object)
        .ok_or_else(|| "baseline has no `jobs` object".to_string())?;

    let mut cmp = BenchComparison::default();
    for name in base_jobs.keys() {
        if !current.jobs.contains_key(name) {
            cmp.failures
                .push(format!("job `{name}` in baseline but not in this run"));
        }
    }
    for (name, job) in &current.jobs {
        let Some(base) = base_jobs.get(name) else {
            cmp.failures.push(format!(
                "job `{name}` not in baseline (re-bless golden/bench-baseline.json)"
            ));
            continue;
        };
        let base_counters = base
            .get("counters")
            .and_then(JsonValue::as_object)
            .ok_or_else(|| format!("baseline job `{name}` has no `counters` object"))?;
        for key in base_counters.keys() {
            if !job.counters.contains_key(key) {
                cmp.failures
                    .push(format!("{name}: counter `{key}` disappeared"));
            }
        }
        for (key, &val) in &job.counters {
            match base_counters.get(key).and_then(JsonValue::as_u64) {
                None => cmp
                    .failures
                    .push(format!("{name}: counter `{key}` not in baseline")),
                Some(b) if b != val => cmp
                    .failures
                    .push(format!("{name}: counter `{key}` drifted {b} -> {val}")),
                Some(_) => {}
            }
        }
        if let Some(base_eps) = u64_field(base, "events_per_sec") {
            let eps = job.events_per_sec;
            if base_eps > 0 && (eps as f64) < (base_eps as f64) * (1.0 - THROUGHPUT_WARN_FRACTION) {
                cmp.warnings.push(format!(
                    "{name}: events/sec fell {base_eps} -> {eps} (>{:.0}% regression; advisory)",
                    THROUGHPUT_WARN_FRACTION * 100.0
                ));
            }
        }
    }

    // Microbenchmark section (schema 3). Same rules: counter drift
    // fails, samples/sec only warns. A baseline that predates the
    // section cannot gate it — fail loudly so it gets re-blessed rather
    // than silently skipping the check.
    match doc.get("micro").and_then(JsonValue::as_object) {
        None => {
            if !current.micro.is_empty() {
                cmp.failures.push(
                    "baseline has no `micro` section (schema < 3; re-bless golden/bench-baseline.json)"
                        .to_string(),
                );
            }
        }
        Some(base_micro) => {
            for name in base_micro.keys() {
                if !current.micro.contains_key(name) {
                    cmp.failures
                        .push(format!("micro `{name}` in baseline but not in this run"));
                }
            }
            for (name, row) in &current.micro {
                let Some(base) = base_micro.get(name) else {
                    cmp.failures.push(format!(
                        "micro `{name}` not in baseline (re-bless golden/bench-baseline.json)"
                    ));
                    continue;
                };
                let base_counters = base
                    .get("counters")
                    .and_then(JsonValue::as_object)
                    .ok_or_else(|| format!("baseline micro `{name}` has no `counters` object"))?;
                for key in base_counters.keys() {
                    if !row.counters.contains_key(key) {
                        cmp.failures
                            .push(format!("micro {name}: counter `{key}` disappeared"));
                    }
                }
                for (key, &val) in &row.counters {
                    match base_counters.get(key).and_then(JsonValue::as_u64) {
                        None => cmp
                            .failures
                            .push(format!("micro {name}: counter `{key}` not in baseline")),
                        Some(b) if b != val => cmp.failures.push(format!(
                            "micro {name}: counter `{key}` drifted {b} -> {val}"
                        )),
                        Some(_) => {}
                    }
                }
                if let Some(base_sps) = u64_field(base, "samples_per_sec") {
                    let sps = row.samples_per_sec;
                    if base_sps > 0
                        && (sps as f64) < (base_sps as f64) * (1.0 - THROUGHPUT_WARN_FRACTION)
                    {
                        cmp.warnings.push(format!(
                            "micro {name}: samples/sec fell {base_sps} -> {sps} (>{:.0}% regression; advisory)",
                            THROUGHPUT_WARN_FRACTION * 100.0
                        ));
                    }
                }
            }
        }
    }
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(counters: &[(&str, u64)], eps: u64) -> BenchReport {
        let counters: BTreeMap<String, u64> =
            counters.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        let events = counters.get("sim.events.executed").copied().unwrap_or(0);
        let mut jobs = BTreeMap::new();
        jobs.insert(
            "table1".to_string(),
            BenchJob {
                wall_ms: 10,
                events,
                events_per_sec: eps,
                counters,
            },
        );
        BenchReport {
            schema: BENCH_SCHEMA,
            fidelity: "quick".into(),
            base_seed: 2020,
            jobs,
            totals: BenchTotals {
                wall_ms: 10,
                events,
                events_per_sec: eps,
            },
            micro: BTreeMap::new(),
        }
    }

    fn with_micro(mut r: BenchReport, counters: &[(&str, u64)], sps: u64) -> BenchReport {
        let counters: BTreeMap<String, u64> =
            counters.iter().map(|&(k, v)| (k.to_string(), v)).collect();
        let samples = counters.get("phy.measure.samples").copied().unwrap_or(0);
        r.micro.insert(
            "phy.sample".to_string(),
            MicroBench {
                wall_ms: 5,
                samples,
                samples_per_sec: sps,
                counters,
            },
        );
        r
    }

    #[test]
    fn identical_reports_pass() {
        let r = report_with(&[("sim.events.executed", 100)], 5_000);
        let cmp = compare_to_baseline(&r, &r.to_json()).unwrap();
        assert!(cmp.ok(), "{:?}", cmp.failures);
        assert!(cmp.warnings.is_empty());
    }

    #[test]
    fn counter_drift_fails() {
        let base = report_with(&[("sim.events.executed", 100)], 5_000);
        let cur = report_with(&[("sim.events.executed", 101)], 5_000);
        let cmp = compare_to_baseline(&cur, &base.to_json()).unwrap();
        assert!(!cmp.ok());
        assert!(cmp.failures[0].contains("drifted 100 -> 101"));
    }

    #[test]
    fn new_and_missing_counters_fail() {
        let base = report_with(&[("a", 1), ("b", 2)], 5_000);
        let cur = report_with(&[("a", 1), ("c", 3)], 5_000);
        let cmp = compare_to_baseline(&cur, &base.to_json()).unwrap();
        assert_eq!(cmp.failures.len(), 2, "{:?}", cmp.failures);
    }

    #[test]
    fn slow_run_warns_but_passes() {
        let base = report_with(&[("sim.events.executed", 100)], 10_000);
        let cur = report_with(&[("sim.events.executed", 100)], 1_000);
        let cmp = compare_to_baseline(&cur, &base.to_json()).unwrap();
        assert!(cmp.ok(), "throughput regressions must not fail the gate");
        assert_eq!(cmp.warnings.len(), 1);
        assert!(cmp.summary().contains("bench warn"));
    }

    #[test]
    fn missing_job_fails_both_directions() {
        let base = report_with(&[("a", 1)], 5_000);
        let mut cur = report_with(&[("a", 1)], 5_000);
        let row = cur.jobs.remove("table1").unwrap();
        cur.jobs.insert("table9".into(), row);
        let cmp = compare_to_baseline(&cur, &base.to_json()).unwrap();
        assert_eq!(cmp.failures.len(), 2, "{:?}", cmp.failures);
    }

    #[test]
    fn garbage_baseline_is_an_error() {
        let r = report_with(&[], 0);
        assert!(compare_to_baseline(&r, "not json").is_err());
        assert!(compare_to_baseline(&r, "{}").is_err());
    }

    #[test]
    fn micro_counter_drift_fails() {
        let base = with_micro(
            report_with(&[("a", 1)], 5_000),
            &[("phy.measure.samples", 720), ("phy.rays.traced", 33_840)],
            9_000,
        );
        let ok = compare_to_baseline(&base, &base.to_json()).unwrap();
        assert!(ok.ok(), "{:?}", ok.failures);
        let cur = with_micro(
            report_with(&[("a", 1)], 5_000),
            &[("phy.measure.samples", 720), ("phy.rays.traced", 33_000)],
            9_000,
        );
        let cmp = compare_to_baseline(&cur, &base.to_json()).unwrap();
        assert!(!cmp.ok());
        assert!(
            cmp.failures[0].contains("phy.rays.traced"),
            "{:?}",
            cmp.failures
        );
    }

    #[test]
    fn micro_slowdown_warns_but_passes() {
        let base = with_micro(report_with(&[("a", 1)], 5_000), &[("x", 1)], 10_000);
        let cur = with_micro(report_with(&[("a", 1)], 5_000), &[("x", 1)], 1_000);
        let cmp = compare_to_baseline(&cur, &base.to_json()).unwrap();
        assert!(cmp.ok(), "{:?}", cmp.failures);
        assert_eq!(cmp.warnings.len(), 1);
        assert!(cmp.warnings[0].contains("samples/sec"));
    }

    #[test]
    fn pre_micro_baseline_fails_when_run_has_micro() {
        let base = report_with(&[("a", 1)], 5_000);
        // Rename the `micro` key away to emulate a schema-2 baseline
        // document (rename rather than delete keeps the JSON valid).
        let base_json = base.to_json().replace("\"micro\"", "\"legacy\"");
        assert!(!base_json.contains("\"micro\""));
        let cur = with_micro(report_with(&[("a", 1)], 5_000), &[("x", 1)], 1_000);
        let cmp = compare_to_baseline(&cur, &base_json).unwrap();
        assert!(!cmp.ok());
        assert!(cmp.failures[0].contains("re-bless"), "{:?}", cmp.failures);
        // And a schema-2 baseline with a schema-2 run (no micro) still
        // passes — the gate only demands what the run produces.
        let cmp2 = compare_to_baseline(&base, &base_json).unwrap();
        assert!(cmp2.ok(), "{:?}", cmp2.failures);
    }
}
