//! # fiveg-bench
//!
//! The benchmark harness: one Criterion bench per experiment family and
//! the `repro` binary that regenerates every table and figure of the
//! paper as text + JSON artifacts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;
pub mod report;

pub use micro::{
    city_attach_micro, city_sweep_micro, fleet_shard_micro, phy_sample_micro, trace_overhead_micro,
};
pub use report::{
    compare_to_baseline, BenchComparison, BenchJob, BenchReport, BenchTotals, MicroBench,
    BENCH_SCHEMA, THROUGHPUT_WARN_FRACTION,
};

use std::fs;
use std::path::Path;

/// Writes an artifact file, creating the output directory.
pub fn write_artifact(dir: &Path, name: &str, contents: &str) -> std::io::Result<()> {
    fs::create_dir_all(dir)?;
    fs::write(dir.join(name), contents)
}
