//! Hot-path microbenchmarks for the `micro` section of the bench
//! report (schema 3).
//!
//! The campaign jobs time whole experiments; these workloads isolate
//! the layers the experiments lean on hardest. Each workload is fixed
//! and seed-deterministic, runs single-threaded, and records its work
//! through `fiveg-obs` counters — so the CI gate can fail on counter
//! drift (the workload itself changed) while treating wall time as
//! advisory, exactly like the per-job rows.

use crate::report::MicroBench;
use fiveg_core::phy::{MeasureScratch, Tech};
use fiveg_core::Scenario;
use fiveg_obs::MetricsHandle;
use std::time::Instant;

/// Grid spacing for the `phy.sample` workload, metres.
const GRID_STEP_M: f64 = 25.0;

/// The `phy.sample` workload: a serial outdoor-grid sweep of the paper
/// scenario measuring every LTE and NR cell at each point through one
/// reused [`MeasureScratch`]. This is the exact inner loop of the
/// coverage-grid and hand-off-trace experiments, minus orchestration.
pub fn phy_sample_micro(seed: u64) -> MicroBench {
    let sc = Scenario::paper(seed);
    let grid = sc.campus.map.grid_samples(GRID_STEP_M, true);
    let m = MetricsHandle::new();
    // fiveg-lint: allow(D003) -- microbench wall time; counters carry determinism
    let start = Instant::now();
    fiveg_obs::scoped(&m, || {
        let mut scratch = MeasureScratch::new();
        for &p in &grid {
            for tech in [Tech::Lte, Tech::Nr] {
                std::hint::black_box(sc.env.measure_all_into(p, tech, &mut scratch).len());
            }
        }
        // `scratch` drops here, inside the scope: its counters flush
        // into `m` before the snapshot below.
    });
    let wall = start.elapsed();
    let counters = m.snapshot().deterministic();
    let samples = counters.get("phy.measure.samples").copied().unwrap_or(0);
    let samples_per_sec = if wall.as_secs_f64() > 0.0 {
        (samples as f64 / wall.as_secs_f64()) as u64
    } else {
        0
    };
    MicroBench {
        wall_ms: wall.as_millis() as u64,
        samples,
        samples_per_sec,
        counters,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phy_sample_micro_is_counter_deterministic() {
        let a = phy_sample_micro(2020);
        let b = phy_sample_micro(2020);
        assert!(a.samples > 500, "workload too small: {}", a.samples);
        assert_eq!(a.counters, b.counters, "micro counters must be seed-pure");
        assert_eq!(
            a.counters["phy.scratch.reuse"],
            a.samples - 1,
            "one persistent scratch reuses every call after the first"
        );
        assert!(a.counters["phy.buildings.pruned"] > 0);
        assert!(a.counters["phy.rays.traced"] > a.samples);
    }
}
