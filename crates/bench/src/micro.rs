//! Hot-path microbenchmarks for the `micro` section of the bench
//! report (schema 3).
//!
//! The campaign jobs time whole experiments; these workloads isolate
//! the layers the experiments lean on hardest. Each workload is fixed
//! and seed-deterministic, runs single-threaded, and records its work
//! through `fiveg-obs` counters — so the CI gate can fail on counter
//! drift (the workload itself changed) while treating wall time as
//! advisory, exactly like the per-job rows.

use crate::report::MicroBench;
use fiveg_core::phy::{MeasureScratch, Tech};
use fiveg_core::Scenario;
use fiveg_obs::MetricsHandle;
use std::time::Instant;

/// Grid spacing for the `phy.sample` workload, metres.
const GRID_STEP_M: f64 = 25.0;

/// The `phy.sample` workload: a serial outdoor-grid sweep of the paper
/// scenario measuring every LTE and NR cell at each point through one
/// reused [`MeasureScratch`]. This is the exact inner loop of the
/// coverage-grid and hand-off-trace experiments, minus orchestration.
pub fn phy_sample_micro(seed: u64) -> MicroBench {
    let sc = Scenario::paper(seed);
    let grid = sc.campus.map.grid_samples(GRID_STEP_M, true);
    let m = MetricsHandle::new();
    // fiveg-lint: allow(D003) -- microbench wall time; counters carry determinism
    let start = Instant::now();
    fiveg_obs::scoped(&m, || {
        let mut scratch = MeasureScratch::new();
        for &p in &grid {
            for tech in [Tech::Lte, Tech::Nr] {
                std::hint::black_box(sc.env.measure_all_into(p, tech, &mut scratch).len());
            }
        }
        // `scratch` drops here, inside the scope: its counters flush
        // into `m` before the snapshot below.
    });
    let wall = start.elapsed();
    let counters = m.snapshot().deterministic();
    let samples = counters.get("phy.measure.samples").copied().unwrap_or(0);
    let samples_per_sec = if wall.as_secs_f64() > 0.0 {
        (samples as f64 / wall.as_secs_f64()) as u64
    } else {
        0
    };
    MicroBench {
        wall_ms: wall.as_millis() as u64,
        samples,
        samples_per_sec,
        counters,
    }
}

/// The multi-cell fleet scenario for the `shard.fleet.*` pair: 384 UEs
/// (6 chunks → 6 shards) across the paper campus's 47 cells for 90 s.
const FLEET_SCENARIO: &str = r#"{
  "name": "fleet_shard_micro",
  "workload": { "kind": "fleet", "duration_s": 90, "tick_ms": 1000, "groups": [
    { "name": "walkers", "count": 128, "tech": "nr",
      "mobility": { "model": "waypoint", "speed_min_kmh": 3, "speed_max_kmh": 10 },
      "arrival": { "process": "steady" }, "app": { "kind": "bulk" } },
    { "name": "watchers", "count": 128, "tech": "nr",
      "mobility": { "model": "static" },
      "arrival": { "process": "diurnal", "peak_frac": 0.4 },
      "app": { "kind": "video", "resolution": "1080p", "scene": "dynamic" } },
    { "name": "readers", "count": 128, "tech": "lte",
      "mobility": { "model": "static" },
      "arrival": { "process": "steady" },
      "app": { "kind": "web", "category": "search", "think_s": 2 } } ] }
}"#;

/// Shard count of the parallel `shard.fleet.sharded` leg. Fixed — not
/// host parallelism — so the workload is identical on every machine;
/// the determinism contract makes the counters independent of it
/// anyway.
const FLEET_SHARDS: usize = 6;

/// The `shard.fleet.serial` / `shard.fleet.sharded` workload pair: one
/// multi-cell fleet scenario run twice — on the classic single-queue
/// serial loop (`shards = 1`) and on `FLEET_SHARDS` conservative-PDES
/// shards. Returns `(serial, sharded)`.
///
/// The sharded leg's counters carry the determinism contract twice
/// over: every counter must equal the serial leg's (both legs sit in
/// the blessed baseline), and the synthetic `shard.report.identical`
/// counter is 1 only when the two reports serialise to identical
/// bytes — so a determinism regression fails the CI perf gate as
/// counter drift. Wall time is the advisory speedup signal.
pub fn fleet_shard_micro(seed: u64) -> (MicroBench, MicroBench) {
    let spec = fiveg_core::scenario_dsl::parse_scenario(FLEET_SCENARIO, "fleet-shard-micro")
        .unwrap_or_else(|e| panic!("inline micro scenario parses: {e}"));
    let fleet = match &spec.workload {
        fiveg_core::scenario_dsl::WorkloadSpec::Fleet(f) => f.clone(),
        fiveg_core::scenario_dsl::WorkloadSpec::Survey(_) => {
            unreachable!("the inline micro scenario is a fleet workload")
        }
    };
    let sc = fiveg_core::scenario_run::build_scenario(&spec, seed);
    let leg = |shards: usize| {
        let m = MetricsHandle::new();
        // fiveg-lint: allow(D003) -- microbench wall time; counters carry determinism
        let start = Instant::now();
        let report = fiveg_obs::scoped(&m, || {
            fiveg_core::scenario_run::run_fleet_sharded(&sc, &spec, &fleet, seed ^ 0xf1ee7, shards)
        });
        let wall = start.elapsed();
        let json = serde_json::to_string(&report).unwrap_or_default();
        (m, wall, json)
    };
    let (m_serial, wall_serial, json_serial) = leg(1);
    let (m_sharded, wall_sharded, json_sharded) = leg(FLEET_SHARDS);
    fiveg_obs::scoped(&m_sharded, || {
        fiveg_obs::counter_add(
            "shard.report.identical",
            u64::from(json_serial == json_sharded),
        );
    });
    let finish = |m: &MetricsHandle, wall: std::time::Duration| {
        let counters = m.snapshot().deterministic();
        let samples = counters.get("scenario.kpi.samples").copied().unwrap_or(0);
        let samples_per_sec = if wall.as_secs_f64() > 0.0 {
            (samples as f64 / wall.as_secs_f64()) as u64
        } else {
            0
        };
        MicroBench {
            wall_ms: wall.as_millis() as u64,
            samples,
            samples_per_sec,
            counters,
        }
    };
    (
        finish(&m_serial, wall_serial),
        finish(&m_sharded, wall_sharded),
    )
}

/// The `trace.full` / `trace.ring` workload pair: the exact
/// `shard.fleet.sharded` leg re-run under an active trace scope in
/// each mode, `finish()` included in the timed region. Returns
/// `(full, ring)`.
///
/// The legs' `trace.events` and `trace.bytes` counters carry the trace
/// determinism contract into the perf gate: both are seed-pure, so any
/// drift (an emitter added, a row dropped, the columnar layout changed)
/// fails the baseline check as counter drift. Wall time against the
/// untraced `shard.fleet.sharded` row is the advisory overhead signal
/// (budget: full < 15%, ring < 5%).
pub fn trace_overhead_micro(seed: u64) -> (MicroBench, MicroBench) {
    let spec = fiveg_core::scenario_dsl::parse_scenario(FLEET_SCENARIO, "trace-overhead-micro")
        .unwrap_or_else(|e| panic!("inline micro scenario parses: {e}"));
    let fleet = match &spec.workload {
        fiveg_core::scenario_dsl::WorkloadSpec::Fleet(f) => f.clone(),
        fiveg_core::scenario_dsl::WorkloadSpec::Survey(_) => {
            unreachable!("the inline micro scenario is a fleet workload")
        }
    };
    let sc = fiveg_core::scenario_run::build_scenario(&spec, seed);
    let leg = |mode: fiveg_trace::TraceMode| {
        let m = MetricsHandle::new();
        let t = fiveg_trace::TraceHandle::new(fiveg_trace::TraceConfig {
            mode,
            ..Default::default()
        });
        // fiveg-lint: allow(D003) -- microbench wall time; counters carry determinism
        let start = Instant::now();
        fiveg_obs::scoped(&m, || {
            fiveg_trace::scoped(&t, || {
                std::hint::black_box(fiveg_core::scenario_run::run_fleet_sharded(
                    &sc,
                    &spec,
                    &fleet,
                    seed ^ 0xf1ee7,
                    FLEET_SHARDS,
                ));
            });
            // Merge + encode is part of what we are timing; run it
            // inside the obs scope so trace.events / trace.bytes land
            // in this leg's counters.
            std::hint::black_box(t.finish());
        });
        let wall = start.elapsed();
        let counters = m.snapshot().deterministic();
        let samples = counters.get("scenario.kpi.samples").copied().unwrap_or(0);
        let samples_per_sec = if wall.as_secs_f64() > 0.0 {
            (samples as f64 / wall.as_secs_f64()) as u64
        } else {
            0
        };
        MicroBench {
            wall_ms: wall.as_millis() as u64,
            samples,
            samples_per_sec,
            counters,
        }
    };
    (
        leg(fiveg_trace::TraceMode::Full),
        leg(fiveg_trace::TraceMode::Ring),
    )
}

/// Grid spacing for the `city.sweep.100k` workload, metres. On the
/// 3×3-tile dense-urban city (1200 × 1200 m) this lands the outdoor
/// sweep near 100 k measurement samples across both techs.
const CITY_GRID_STEP_M: f64 = 4.0;

/// The `city.sweep.100k` workload: a serial outdoor-grid coverage
/// sweep of a 3×3-tile dense-urban procedural city — big enough to
/// cross the tiled-spatial-index threshold, so this times the exact
/// fast path a metro-scale scenario takes (tile-directory candidate
/// streaming under ~160 cells), where `phy.sample` times the flat
/// paper campus.
pub fn city_sweep_micro(seed: u64) -> MicroBench {
    let mut spec = fiveg_core::geo::CitySpec::dense_urban();
    spec.tiles_x = 3;
    spec.tiles_y = 3;
    let campus = fiveg_core::geo::generate_city(&spec, &fiveg_core::simcore::SimRng::new(seed));
    let env = fiveg_core::phy::RadioEnv::from_campus(&campus, seed ^ 0x5eed, 0.5, 0.05);
    let grid = campus.map.grid_samples(CITY_GRID_STEP_M, true);
    let m = MetricsHandle::new();
    // fiveg-lint: allow(D003) -- microbench wall time; counters carry determinism
    let start = Instant::now();
    fiveg_obs::scoped(&m, || {
        let mut scratch = MeasureScratch::new();
        for &p in &grid {
            for tech in [Tech::Lte, Tech::Nr] {
                std::hint::black_box(env.measure_all_into(p, tech, &mut scratch).len());
            }
        }
    });
    let wall = start.elapsed();
    let counters = m.snapshot().deterministic();
    let samples = counters.get("phy.measure.samples").copied().unwrap_or(0);
    let samples_per_sec = if wall.as_secs_f64() > 0.0 {
        (samples as f64 / wall.as_secs_f64()) as u64
    } else {
        0
    };
    MicroBench {
        wall_ms: wall.as_millis() as u64,
        samples,
        samples_per_sec,
        counters,
    }
}

/// The city fleet for the `city.attach.*` pair: a 2×2-tile dense-urban
/// city with a mostly-parked population, where incremental
/// re-measurement pays off hardest.
const CITY_FLEET_SCENARIO: &str = r#"{
  "name": "city_attach_micro",
  "city": { "preset": "dense_urban" },
  "workload": { "kind": "fleet", "duration_s": 30, "tick_ms": 1000, "groups": [
    { "name": "walkers", "count": 64, "tech": "nr",
      "mobility": { "model": "waypoint", "speed_min_kmh": 3, "speed_max_kmh": 10 },
      "arrival": { "process": "steady" }, "app": { "kind": "bulk" } },
    { "name": "parked", "count": 128, "tech": "lte",
      "mobility": { "model": "static" },
      "arrival": { "process": "steady" },
      "app": { "kind": "video", "resolution": "1080p", "scene": "static" } } ] }
}"#;

/// The `city.attach.full` / `city.attach.incremental` workload pair:
/// one city fleet scenario run twice — with the full re-measure oracle
/// and with the incremental re-measurement cache. Returns
/// `(full, incremental)`.
///
/// The incremental leg's counters carry the fast path's contract: the
/// `city.remeasure.skipped` count is the cache's deterministic hit
/// total (baseline-gated), and the synthetic `city.incremental.identical`
/// counter is 1 only when both legs' reports serialise to identical
/// bytes — so a cache-coherence regression fails the CI perf gate as
/// counter drift. Wall time is the advisory speedup signal.
pub fn city_attach_micro(seed: u64) -> (MicroBench, MicroBench) {
    let spec = fiveg_core::scenario_dsl::parse_scenario(CITY_FLEET_SCENARIO, "city-attach-micro")
        .unwrap_or_else(|e| panic!("inline micro scenario parses: {e}"));
    let fleet = match &spec.workload {
        fiveg_core::scenario_dsl::WorkloadSpec::Fleet(f) => f.clone(),
        fiveg_core::scenario_dsl::WorkloadSpec::Survey(_) => {
            unreachable!("the inline micro scenario is a fleet workload")
        }
    };
    let sc = fiveg_core::scenario_run::build_scenario(&spec, seed);
    let leg = |incremental: bool| {
        let m = MetricsHandle::new();
        // fiveg-lint: allow(D003) -- microbench wall time; counters carry determinism
        let start = Instant::now();
        let report = fiveg_obs::scoped(&m, || {
            let run = if incremental {
                fiveg_core::scenario_run::run_fleet_sharded
            } else {
                fiveg_core::scenario_run::run_fleet_full_remeasure
            };
            run(&sc, &spec, &fleet, seed ^ 0xc17, 2)
        });
        let wall = start.elapsed();
        let json = serde_json::to_string(&report).unwrap_or_default();
        (m, wall, json)
    };
    let (m_full, wall_full, json_full) = leg(false);
    let (m_inc, wall_inc, json_inc) = leg(true);
    fiveg_obs::scoped(&m_inc, || {
        fiveg_obs::counter_add(
            "city.incremental.identical",
            u64::from(json_full == json_inc),
        );
    });
    let finish = |m: &MetricsHandle, wall: std::time::Duration| {
        let counters = m.snapshot().deterministic();
        let samples = counters.get("scenario.kpi.samples").copied().unwrap_or(0);
        let samples_per_sec = if wall.as_secs_f64() > 0.0 {
            (samples as f64 / wall.as_secs_f64()) as u64
        } else {
            0
        };
        MicroBench {
            wall_ms: wall.as_millis() as u64,
            samples,
            samples_per_sec,
            counters,
        }
    };
    (finish(&m_full, wall_full), finish(&m_inc, wall_inc))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn city_sweep_micro_covers_the_tiled_city() {
        let a = city_sweep_micro(2020);
        assert!(a.samples > 50_000, "workload too small: {}", a.samples);
        let b = city_sweep_micro(2020);
        assert_eq!(a.counters, b.counters, "micro counters must be seed-pure");
    }

    #[test]
    fn city_attach_micro_legs_agree_and_cache_bites() {
        let (full, inc) = city_attach_micro(2020);
        assert_eq!(inc.counters["city.incremental.identical"], 1);
        // Both legs push the same KPI sample stream...
        assert_eq!(full.samples, inc.samples);
        // ...but the incremental leg skips most re-measurements: the
        // parked majority is cache-hot from its second active tick on.
        let skipped = inc.counters["city.remeasure.skipped"];
        assert!(
            skipped * 2 > inc.samples,
            "cache hits should dominate a mostly-parked fleet: {skipped} of {}",
            inc.samples
        );
        assert_eq!(full.counters["city.remeasure.skipped"], 0);
    }

    #[test]
    fn fleet_shard_micro_legs_agree() {
        let (serial, sharded) = fleet_shard_micro(2020);
        assert!(
            serial.samples > 10_000,
            "workload too small: {}",
            serial.samples
        );
        assert_eq!(sharded.counters["shard.report.identical"], 1);
        // Every counter but the synthetic marker matches the serial leg.
        let mut sharded_counters = sharded.counters.clone();
        sharded_counters.remove("shard.report.identical");
        assert_eq!(serial.counters, sharded_counters);
    }

    #[test]
    fn trace_overhead_micro_is_counter_deterministic() {
        let (full, ring) = trace_overhead_micro(2020);
        assert!(full.counters["trace.events"] > 0);
        // Ring mode keeps a bounded suffix of what full mode keeps.
        assert_eq!(full.counters["trace.events"], ring.counters["trace.events"]);
        assert!(full.counters["trace.bytes"] > ring.counters["trace.bytes"]);
        let (full2, ring2) = trace_overhead_micro(2020);
        assert_eq!(
            full.counters, full2.counters,
            "trace micro must be seed-pure"
        );
        assert_eq!(
            ring.counters, ring2.counters,
            "trace micro must be seed-pure"
        );
    }

    #[test]
    fn phy_sample_micro_is_counter_deterministic() {
        let a = phy_sample_micro(2020);
        let b = phy_sample_micro(2020);
        assert!(a.samples > 500, "workload too small: {}", a.samples);
        assert_eq!(a.counters, b.counters, "micro counters must be seed-pure");
        assert_eq!(
            a.counters["phy.scratch.reuse"],
            a.samples - 1,
            "one persistent scratch reuses every call after the first"
        );
        assert!(a.counters["phy.buildings.pruned"] > 0);
        assert!(a.counters["phy.rays.traced"] > a.samples);
    }
}
