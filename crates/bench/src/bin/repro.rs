//! Regenerates every table and figure of the paper.
//!
//! Usage:
//!
//! ```text
//! repro [--paper] [--out DIR]
//! ```
//!
//! By default runs at Quick fidelity and writes text + JSON artifacts to
//! `./repro-out/`. `--paper` switches to the paper's methodology scale
//! (60 s flows, 5 repetitions, 80-minute hand-off campaign) — expect it
//! to take a while.

use fiveg_bench::write_artifact;
use fiveg_core::experiments::{application, coverage, discussion, energy, handoff, latency, throughput};
use fiveg_core::{Fidelity, Scenario};
use serde::Serialize;
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let fidelity = if args.iter().any(|a| a == "--paper") {
        Fidelity::Paper
    } else {
        Fidelity::Quick
    };
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("repro-out"));
    let seed = 2020;
    let sc = Scenario::paper(seed);

    println!("fiveg repro — fidelity {fidelity:?}, seed {seed}, output {}\n", out.display());

    let mut emit = |name: &str, text: String, json: String| {
        print!("{text}");
        if let Err(e) = write_artifact(&out, &format!("{name}.txt"), &text) {
            eprintln!("warn: could not write {name}.txt: {e}");
        }
        if let Err(e) = write_artifact(&out, &format!("{name}.json"), &json) {
            eprintln!("warn: could not write {name}.json: {e}");
        }
        println!();
    };

    fn json<T: Serialize>(v: &T) -> String {
        serde_json::to_string_pretty(v).expect("experiment results serialise")
    }

    // --- Sec. 3: coverage ---
    let t1 = coverage::table1(&sc);
    emit("table1", t1.to_text(), json(&t1));
    let t2 = coverage::table2(&sc, 4630);
    emit("table2", t2.to_text(), json(&t2));
    let f2a = coverage::fig2a(&sc, 20.0);
    emit("fig2a", f2a.to_text(), json(&f2a));
    let f2b = coverage::fig2b(&sc);
    emit("fig2b", f2b.to_text(), json(&f2b));
    let f3 = coverage::fig3(&sc);
    emit("fig3", f3.to_text(), json(&f3));

    // --- Sec. 3.4: hand-off ---
    let f4 = handoff::fig4(&sc);
    emit("fig4", f4.to_text(), json(&f4));
    let study = handoff::handoff_study(&sc, fidelity);
    emit("fig5_fig6", study.to_text(), json(&study));
    let f12 = handoff::fig12(&sc, if fidelity == Fidelity::Paper { 30 } else { 5 });
    emit("fig12", f12.to_text(), json(&f12));

    // --- Sec. 4: throughput & loss ---
    let f7 = throughput::fig7(fidelity, seed);
    emit("fig7", f7.to_text(), json(&f7));
    let f8 = throughput::fig8(fidelity, seed);
    emit("fig8", f8.to_text(), json(&f8));
    let f9 = throughput::fig9(fidelity, seed);
    emit("fig9", f9.to_text(), json(&f9));
    let f10 = throughput::fig10(seed, 100_000);
    emit("fig10", f10.to_text(), json(&f10));
    let f11 = throughput::fig11(fidelity, seed);
    emit("fig11", f11.to_text(), json(&f11));
    let t3 = throughput::table3(fidelity, seed);
    emit("table3", t3.to_text(), json(&t3));

    // --- Sec. 4.4: latency ---
    let f13 = latency::fig13(fidelity, seed);
    emit("fig13", f13.to_text(), json(&f13));
    let f14 = latency::fig14(seed, 100);
    emit("fig14", f14.to_text(), json(&f14));
    let f15 = latency::fig15(fidelity, seed);
    emit("fig15", f15.to_text(), json(&f15));

    // --- Sec. 5: applications ---
    let f16 = application::fig16(fidelity, seed);
    emit("fig16", f16.to_text(), json(&f16));
    let f17 = application::fig17(seed);
    emit("fig17", f17.to_text(), json(&f17));
    let video = application::video_study(fidelity, seed);
    emit("fig18_19_20", video.to_text(), json(&video));

    // --- Sec. 6: energy ---
    let f21 = energy::fig21(60);
    emit("fig21", f21.to_text(), json(&f21));
    let f22 = energy::fig22();
    emit("fig22", f22.to_text(), json(&f22));
    let f23 = energy::fig23();
    emit("fig23", f23.to_text(), json(&f23));
    let t4 = energy::table4();
    emit("table4", t4.to_text(), json(&t4));

    // --- Sec. 8: discussion ---
    let cpe = discussion::cpe_study(&sc);
    emit("sec8_cpe_dsl", cpe.to_text(), json(&cpe));

    println!("done: artifacts in {}", out.display());
}
