//! Regenerates every table and figure of the paper via the campaign
//! executor.
//!
//! A thin CLI over [`fiveg_campaign`]: job selection, worker count and
//! golden checks live in the library; this binary only parses flags,
//! streams progress to stderr and sets the exit code.

use fiveg_bench::{compare_to_baseline, BenchReport};
use fiveg_campaign::{check_run, run, write_golden, write_run, JobEvent, RunConfig};
use fiveg_core::campaign::FidelityLevel;
use fiveg_core::jobs::paper_registry;
use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
Usage: repro [OPTIONS]

Regenerates the paper's tables and figures as text + JSON artifacts.

Options:
  --paper          paper-methodology fidelity (default: quick)
  --out DIR        artifact directory (default: repro-out)
  --seed N         base seed (default: 2020)
  --jobs N         worker threads (default: all cores; results are
                   byte-identical for any value)
  --only FILTER    run only jobs whose name or section contains FILTER
  --scenario FILE  register a scenario file (fiveg-scenario DSL) as an
                   extra job in section `scenario`; repeatable. Parse or
                   validation errors exit 2 with a file:line location
  --check DIR      diff the run's JSON artifacts against golden DIR and
                   exit non-zero on any drift
  --bless DIR      write the run's JSON artifacts to DIR as new goldens
  --bench          also write a benchmark report (BENCH_0003.json in the
                   artifact directory): per-job wall time, events
                   simulated, events/sec, all deterministic counters and
                   the phy.sample hot-path microbenchmark
  --bench-out FILE write the benchmark report to FILE (implies --bench)
  --bench-check FILE
                   compare this run's benchmark report against baseline
                   FILE (implies --bench): counter drift fails, >25%
                   events/sec regression only warns
  --trace[=MODE]   record a deterministic per-unit event trace; MODE is
                   `ring` (bounded flight recorder, the default) or
                   `full`. Writes {job}.trace.bin + {job}.trace.json
                   (+ .trace.spans.json) next to the artifacts; inspect
                   with the `trace` binary. Requires a target: --scenario
                   and/or --only
  --list           list registered jobs and exit
  -h, --help       show this help
";

struct Cli {
    fidelity: FidelityLevel,
    out: PathBuf,
    seed: u64,
    jobs: usize,
    only: Option<String>,
    scenarios: Vec<PathBuf>,
    check: Option<PathBuf>,
    bless: Option<PathBuf>,
    bench: bool,
    bench_out: Option<PathBuf>,
    bench_check: Option<PathBuf>,
    trace: Option<fiveg_trace::TraceMode>,
    list: bool,
}

fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

fn parse(args: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        fidelity: FidelityLevel::Quick,
        out: PathBuf::from("repro-out"),
        seed: 2020,
        jobs: default_jobs(),
        only: None,
        scenarios: Vec::new(),
        check: None,
        bless: None,
        bench: false,
        bench_out: None,
        bench_check: None,
        trace: None,
        list: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .map(String::as_str)
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match arg.as_str() {
            "--paper" => cli.fidelity = FidelityLevel::Paper,
            "--out" => cli.out = PathBuf::from(value("--out")?),
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--jobs" => {
                cli.jobs = value("--jobs")?
                    .parse()
                    .map_err(|e| format!("--jobs: {e}"))?;
                if cli.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--only" => cli.only = Some(value("--only")?.to_string()),
            "--scenario" => cli.scenarios.push(PathBuf::from(value("--scenario")?)),
            "--check" => cli.check = Some(PathBuf::from(value("--check")?)),
            "--bless" => cli.bless = Some(PathBuf::from(value("--bless")?)),
            "--bench" => cli.bench = true,
            "--bench-out" => {
                cli.bench = true;
                cli.bench_out = Some(PathBuf::from(value("--bench-out")?));
            }
            "--bench-check" => {
                cli.bench = true;
                cli.bench_check = Some(PathBuf::from(value("--bench-check")?));
            }
            "--trace" => cli.trace = Some(fiveg_trace::TraceMode::Ring),
            "--list" => cli.list = true,
            "-h" | "--help" => return Err(String::new()),
            other => {
                if let Some(mode) = other.strip_prefix("--trace=") {
                    cli.trace = Some(match mode {
                        "full" => fiveg_trace::TraceMode::Full,
                        "ring" => fiveg_trace::TraceMode::Ring,
                        bad => {
                            return Err(format!(
                                "--trace: unknown mode `{bad}` (expected `full` or `ring`)"
                            ))
                        }
                    });
                } else {
                    return Err(format!("unknown flag `{other}`"));
                }
            }
        }
    }
    // Tracing the whole registry would record every experiment; require
    // an explicit target so a stray --trace can't turn a full repro run
    // into gigabytes of event rows.
    if cli.trace.is_some() && cli.scenarios.is_empty() && cli.only.is_none() {
        return Err("--trace requires a target: --scenario FILE and/or --only FILTER".into());
    }
    Ok(cli)
}

fn progress(ev: &JobEvent) {
    match ev {
        JobEvent::Started { name, rep } => {
            if *rep == 0 {
                eprintln!("        start  {name}");
            } else {
                eprintln!("        start  {name} (rep {rep})");
            }
        }
        JobEvent::Finished {
            name,
            rep,
            ok,
            error,
            attempts,
            wall_ms,
            done,
            total,
        } => {
            let status = if *ok { "ok    " } else { "FAILED" };
            let rep_tag = if *rep == 0 {
                String::new()
            } else {
                format!(" (rep {rep})")
            };
            let retry_tag = if *attempts > 1 {
                format!(", {attempts} attempts")
            } else {
                String::new()
            };
            eprintln!("[{done:>2}/{total}] {status} {name}{rep_tag}  {wall_ms} ms{retry_tag}");
            if let Some(e) = error {
                eprintln!("        error: {e}");
            }
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match parse(&args) {
        Ok(cli) => cli,
        Err(msg) if msg.is_empty() => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("error: {msg}\n");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    // Validate paths before spending minutes on the run: a mistyped
    // golden directory or baseline file should fail like a bad flag.
    if let Some(dir) = &cli.check {
        if !dir.is_dir() {
            eprintln!(
                "error: --check: golden directory `{}` does not exist\n",
                dir.display()
            );
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    }
    if let Some(file) = &cli.bench_check {
        if !file.is_file() {
            eprintln!(
                "error: --bench-check: baseline file `{}` does not exist\n",
                file.display()
            );
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    }

    let mut registry = paper_registry();
    // Scenario-file jobs ride alongside the registry jobs: parse and
    // validate up front (a broken file fails like a bad flag), and
    // reject names colliding with registered jobs before the executor's
    // duplicate-name assert would turn it into a panic.
    for path in &cli.scenarios {
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: --scenario: reading {}: {e}\n", path.display());
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        };
        let spec = match fiveg_core::scenario_dsl::parse_scenario(&src, &path.display().to_string())
        {
            Ok(spec) => spec,
            Err(e) => {
                eprintln!("error: --scenario: {e}\n");
                eprint!("{USAGE}");
                return ExitCode::from(2);
            }
        };
        if registry.jobs().iter().any(|j| j.name() == spec.name) {
            eprintln!(
                "error: --scenario: {}: scenario name `{}` collides with an already registered job\n",
                path.display(),
                spec.name
            );
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
        registry.register(fiveg_core::scenario_run::ScenarioJob::new(spec));
    }
    if cli.list {
        // `let _ =`: a closed pipe (`repro --list | head`) is fine.
        let mut out = std::io::stdout().lock();
        for (name, section, reps) in registry.describe() {
            if reps > 1 {
                let _ = writeln!(out, "{name:<14} {section}  ({reps} reps)");
            } else {
                let _ = writeln!(out, "{name:<14} {section}");
            }
        }
        return ExitCode::SUCCESS;
    }

    let mut cfg = RunConfig::new(cli.seed)
        .fidelity(cli.fidelity)
        .workers(cli.jobs);
    if let Some(f) = &cli.only {
        cfg = cfg.only(f.clone());
    }
    if let Some(mode) = cli.trace {
        cfg = cfg.trace(mode);
    }

    eprintln!(
        "fiveg repro — fidelity {}, seed {}, {} workers, output {}",
        cli.fidelity.name(),
        cli.seed,
        cfg.workers,
        cli.out.display()
    );

    let report = run(&registry, &cfg, &mut progress);
    if report.results.is_empty() {
        eprintln!(
            "error: no jobs matched{}",
            cli.only
                .as_deref()
                .map(|f| format!(" `{f}`"))
                .unwrap_or_default()
        );
        return ExitCode::from(2);
    }

    // The classic human-readable report, in deterministic job order.
    // Write errors (closed pipe) don't abort the run: artifacts and the
    // exit code still matter to whoever truncated our stdout.
    let mut stdout = std::io::stdout().lock();
    for r in &report.results {
        if let Some(out) = &r.output {
            let _ = writeln!(stdout, "{}", out.text);
        }
    }
    drop(stdout);

    match write_run(&cli.out, &report) {
        Ok(n) => eprintln!(
            "wrote {n} artifacts + manifest.json to {} in {:.1} s",
            cli.out.display(),
            report.wall.as_secs_f64()
        ),
        Err(e) => {
            eprintln!("error: writing artifacts to {}: {e}", cli.out.display());
            return ExitCode::from(2);
        }
    }

    if let Some(dir) = &cli.bless {
        match write_golden(dir, &report) {
            Ok(n) => eprintln!("blessed {n} golden artifacts in {}", dir.display()),
            Err(e) => {
                eprintln!("error: blessing goldens in {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }

    let mut failed = report.failures() > 0;

    if cli.bench {
        let mut bench = BenchReport::from_run(&report);
        let micro = fiveg_bench::phy_sample_micro(cli.seed);
        eprintln!(
            "micro phy.sample: {} samples in {} ms ({} samples/s)",
            micro.samples, micro.wall_ms, micro.samples_per_sec
        );
        bench.micro.insert("phy.sample".to_string(), micro);
        let (serial, sharded) = fiveg_bench::fleet_shard_micro(cli.seed);
        eprintln!(
            "micro shard.fleet: serial {} ms vs sharded {} ms ({} samples; speedup {:.2}x)",
            serial.wall_ms,
            sharded.wall_ms,
            serial.samples,
            serial.wall_ms as f64 / (sharded.wall_ms.max(1)) as f64
        );
        let untraced_ms = sharded.wall_ms;
        bench.micro.insert("shard.fleet.serial".to_string(), serial);
        bench
            .micro
            .insert("shard.fleet.sharded".to_string(), sharded);
        let (trace_full, trace_ring) = fiveg_bench::trace_overhead_micro(cli.seed);
        let overhead = |traced_ms: u64| {
            100.0 * (traced_ms as f64 - untraced_ms as f64) / (untraced_ms.max(1)) as f64
        };
        eprintln!(
            "micro trace: full {} ms ({:+.1}%) / ring {} ms ({:+.1}%) vs untraced {} ms; {} events, {} / {} bytes",
            trace_full.wall_ms,
            overhead(trace_full.wall_ms),
            trace_ring.wall_ms,
            overhead(trace_ring.wall_ms),
            untraced_ms,
            trace_full.counters.get("trace.events").copied().unwrap_or(0),
            trace_full.counters.get("trace.bytes").copied().unwrap_or(0),
            trace_ring.counters.get("trace.bytes").copied().unwrap_or(0),
        );
        bench.micro.insert("trace.full".to_string(), trace_full);
        bench.micro.insert("trace.ring".to_string(), trace_ring);
        let city = fiveg_bench::city_sweep_micro(cli.seed);
        eprintln!(
            "micro city.sweep.100k: {} samples across the tiled 3x3 dense-urban city in {} ms ({} samples/s)",
            city.samples, city.wall_ms, city.samples_per_sec
        );
        bench.micro.insert("city.sweep.100k".to_string(), city);
        let (full, incremental) = fiveg_bench::city_attach_micro(cli.seed);
        eprintln!(
            "micro city.attach: full {} ms vs incremental {} ms ({} of {} re-measurements skipped; speedup {:.2}x)",
            full.wall_ms,
            incremental.wall_ms,
            incremental
                .counters
                .get("city.remeasure.skipped")
                .copied()
                .unwrap_or(0),
            incremental.samples,
            full.wall_ms as f64 / (incremental.wall_ms.max(1)) as f64
        );
        bench.micro.insert("city.attach.full".to_string(), full);
        bench
            .micro
            .insert("city.attach.incremental".to_string(), incremental);
        let path = cli
            .bench_out
            .clone()
            .unwrap_or_else(|| cli.out.join("BENCH_0003.json"));
        if let Err(e) = std::fs::write(&path, bench.to_json()) {
            eprintln!("error: writing bench report to {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!(
            "wrote bench report ({} jobs, {} events) to {}",
            bench.jobs.len(),
            bench.totals.events,
            path.display()
        );
        if let Some(baseline) = &cli.bench_check {
            let baseline_json = match std::fs::read_to_string(baseline) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("error: reading baseline {}: {e}", baseline.display());
                    return ExitCode::from(2);
                }
            };
            match compare_to_baseline(&bench, &baseline_json) {
                Ok(cmp) => {
                    eprint!("{}", cmp.summary());
                    failed |= !cmp.ok();
                }
                Err(e) => {
                    eprintln!("error: baseline {}: {e}", baseline.display());
                    return ExitCode::from(2);
                }
            }
        }
    }

    if let Some(dir) = &cli.check {
        match check_run(dir, &report) {
            Ok(golden) => {
                eprint!("{}", golden.summary());
                failed |= !golden.ok();
            }
            Err(e) => {
                eprintln!("error: reading goldens in {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        }
    }

    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
