//! Property tests for the item-level parser: total on arbitrary input
//! (never panics, even on token soup and truncated items) and every
//! reported line stays inside the file — the span guarantee the
//! baseline excerpt keys and `file:line` reports depend on.

use fiveg_lint::parser::{parse_file, FileModel};
use proptest::prelude::*;

/// Rust-ish fragments biased toward the constructs the parser treats
/// specially, so random concatenations hit item boundaries, attribute
/// back-scans, generic skips and parallel-region scans far more often
/// than uniform bytes would.
const FRAGMENTS: &[&str] = &[
    "pub ",
    "pub(crate) ",
    "fn f",
    "fn ",
    "(",
    ")",
    "{",
    "}",
    "{ }",
    ";",
    "impl ",
    "impl<T: Clone> ",
    "ShardLogic ",
    "for ",
    "Node ",
    "Drop ",
    "mod m ",
    "trait T ",
    "struct S ",
    "enum E ",
    "type A = B;",
    "static X: AtomicU64 = AtomicU64::new(0);",
    "static Y: usize = 8;",
    "thread_local! { static Z: RefCell<u32> = RefCell::new(0); }",
    "const C: f64 = 1.0;",
    "let mut acc = 0.0;",
    "let n = 0usize;",
    "acc += x;",
    "n += 1;",
    "par_map_with(xs, 4, || (), |_, i, x| ",
    "std::thread::scope(|s| ",
    "xs.iter().sum::<f64>()",
    ".fold(0.0, |a, b| a + b)",
    "OnlineStats::new()",
    "std::env::var(\"FIVEG_SHARDS\")",
    "env::var_os(\"PATH\")",
    "fiveg_obs::counter_add(\"k\", 1)",
    "SCREAMING_REF",
    "/// doc comment\n",
    "//! inner doc\n",
    "// plain comment\n",
    "/* block */ ",
    "/* /* nested */ */ ",
    "#[derive(Clone)]\n",
    "#[test]\n",
    "#[cfg(test)]\n",
    "#![forbid(unsafe_code)]\n",
    "#[doc = \"x\"]\n",
    "\"string literal\"",
    "r#\"raw \" string\"#",
    "'c'",
    "'static ",
    "0x1f",
    "1e3",
    "1_000e-5",
    "0.5f32",
    "::",
    "<",
    ">",
    "->",
    ",",
    ".",
    "\n",
    "    ",
    "=>",
    "&mut ",
    "where T: Send ",
];

/// Every line the model reports must be a real line of the input.
fn assert_spans(src: &str, model: &FileModel) {
    let max = src.lines().count() as u32 + 1;
    let ok = |line: u32| line >= 1 && line <= max;
    for f in &model.fns {
        assert!(ok(f.line), "fn {} line {} out of 1..={max}", f.name, f.line);
        for c in f.calls.iter().chain(&f.screaming_refs) {
            assert!(
                ok(c.line),
                "call {} line {} out of 1..={max}",
                c.name,
                c.line
            );
        }
    }
    for s in &model.statics {
        assert!(ok(s.line), "static {} line {}", s.name, s.line);
    }
    for p in &model.pub_items {
        assert!(ok(p.line), "pub {} line {}", p.name, p.line);
    }
    for e in &model.env_reads {
        assert!(ok(e.line), "env {} line {}", e.var, e.line);
    }
    for fa in &model.float_par {
        assert!(ok(fa.line), "float_par {} line {}", fa.what, fa.line);
    }
}

proptest! {
    #[test]
    fn parser_is_total_on_fragment_soup(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 0..80)
    ) {
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let model = parse_file(&src);
        assert_spans(&src, &model);
    }

    #[test]
    fn parser_is_total_on_random_text(src in "[ -~\n]{0,200}") {
        let model = parse_file(&src);
        assert_spans(&src, &model);
    }

    #[test]
    fn truncation_never_panics(
        picks in prop::collection::vec(0usize..FRAGMENTS.len(), 1..40),
        cut in 0usize..400
    ) {
        // Chop a valid-ish stream mid-token: unterminated items and
        // dangling attributes must degrade, not panic.
        let src: String = picks.iter().map(|&i| FRAGMENTS[i]).collect();
        let cut = cut.min(src.len());
        let cut = (cut..=src.len())
            .find(|&c| src.is_char_boundary(c))
            .unwrap_or(src.len());
        let model = parse_file(&src[..cut]);
        assert_spans(&src[..cut], &model);
    }
}
