//! Runs the fixture self-test under `cargo test`, so the rule engine
//! and the `fiveg-lint --self-test` CI stage can never drift apart.

use std::path::Path;

#[test]
fn fixture_suite_matches_markers() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    match fiveg_lint::selftest::run(&fixtures) {
        Ok(checked) => assert!(checked >= 4, "expected at least 4 fixtures, ran {checked}"),
        Err(failures) => panic!("fixture drift:\n{}", failures.join("\n")),
    }
}

#[test]
fn repo_scan_is_deterministic_and_baseline_round_trips() {
    // Scan the real workspace twice: identical findings and identical
    // JSON reports (the --json byte-stability contract).
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let a = fiveg_lint::scan_workspace(root).expect("scan");
    let b = fiveg_lint::scan_workspace(root).expect("scan");
    assert_eq!(a.findings, b.findings);
    assert_eq!(a.suppressed, b.suppressed);
    let base = fiveg_lint::Baseline::from_findings(&a.findings);
    assert_eq!(
        fiveg_lint::report_json(&a, &base),
        fiveg_lint::report_json(&b, &base)
    );
    // Blessing today's findings yields zero new ones.
    let (_, new) = base.split(&a.findings);
    assert!(new.is_empty());
    // And the baseline round-trips through the fiveg-obs JSON reader.
    let back = fiveg_lint::Baseline::parse(&base.to_json()).expect("parse");
    assert_eq!(base, back);
}
