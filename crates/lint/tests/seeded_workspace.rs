//! End-to-end checks on a seeded throwaway workspace: every semantic
//! rule id (S001–S003, F001, W001–W003) fires on a planted violation,
//! `--check` against an empty baseline exits 2, and grandfathering the
//! findings through the baseline brings `--check` back to exit 0 —
//! the full ratchet lifecycle, driven through the real binary.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

const NEW_RULES: &[&str] = &["S001", "S002", "S003", "F001", "W001", "W002", "W003"];

/// Builds a miniature workspace under `target/tmp` with one planted
/// violation per semantic rule. Returns its root.
fn seed_workspace(name: &str) -> PathBuf {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    if root.exists() {
        fs::remove_dir_all(&root).expect("clear previous seed");
    }
    let write = |rel: &str, body: &str| {
        let path = root.join(rel);
        fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
        fs::write(path, body).expect("write seed file");
    };
    write("Cargo.toml", "[workspace]\nmembers = [\"crates/*\"]\n");
    // `obs` may depend on nothing — fiveg-core here is a W001 edge.
    write(
        "crates/obs/Cargo.toml",
        "[package]\nname = \"fiveg-obs\"\n\n[dependencies]\nfiveg-core = { path = \"../core\" }\n",
    );
    // Sink crate: its own lib stays silent apart from W002/W003 seeds.
    write(
        "crates/obs/src/lib.rs",
        "//! Seeded obs crate: missing forbid (W002) and an undocumented\n\
         //! pub item (W003).\n\
         pub fn undocumented_api() {}\n",
    );
    write(
        "crates/simcore/Cargo.toml",
        "[package]\nname = \"fiveg-simcore\"\n\n[dependencies]\n",
    );
    // S001 (obs write in a handler), S003 (mutable static from a
    // handler), S002 (env read), F001 (float accumulation in a
    // parallel closure) — all in one library file.
    write(
        "crates/simcore/src/lib.rs",
        "//! Seeded simcore crate.\n\
         #![forbid(unsafe_code)]\n\
         static HITS: AtomicU64 = AtomicU64::new(0);\n\
         /// Seeded shard handler.\n\
         pub struct Node;\n\
         impl ShardLogic for Node {\n\
             fn handle(&mut self) {\n\
                 fiveg_obs::counter_add(\"seed.hits\", 1);\n\
                 HITS.fetch_add(1, Ordering::Relaxed);\n\
             }\n\
         }\n\
         /// Seeded env read outside core::par / campaign.\n\
         pub fn knob() -> bool {\n\
             std::env::var(\"FIVEG_SEEDED_KNOB\").is_ok()\n\
         }\n\
         /// Seeded float accumulation under par_map_with.\n\
         pub fn reduce(xs: &[f64]) -> f64 {\n\
             let mut total = 0.0f64;\n\
             par_map_with(xs, 4, || (), |_, _, x| {\n\
                 total += x;\n\
             });\n\
             total\n\
         }\n",
    );
    root
}

fn lint(root: &Path, baseline: &Path, mode: &str) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_fiveg-lint"))
        .arg(mode)
        .arg("--root")
        .arg(root)
        .arg("--baseline")
        .arg(baseline)
        .output()
        .expect("run fiveg-lint")
}

#[test]
fn seeded_violations_exit_2_then_grandfather_to_0() {
    let root = seed_workspace("lint-seeded-ws");
    let baseline = root.join("lint-baseline.json");
    fs::write(&baseline, "{\"entries\": [], \"schema\": 1}\n").expect("empty baseline");

    // Empty baseline: every planted rule is a *new* finding → exit 2.
    let check = lint(&root, &baseline, "--check");
    assert_eq!(
        check.status.code(),
        Some(2),
        "--check on seeded violations must exit 2\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&check.stdout),
        String::from_utf8_lossy(&check.stderr),
    );
    let listing = String::from_utf8_lossy(&check.stdout);
    for rule in NEW_RULES {
        assert!(
            listing.contains(rule),
            "seeded workspace did not produce a new {rule} finding:\n{listing}"
        );
    }

    // Bless, then re-check: grandfathered findings are old → exit 0.
    let bless = lint(&root, &baseline, "--bless");
    assert_eq!(bless.status.code(), Some(0), "--bless must succeed");
    let recheck = lint(&root, &baseline, "--check");
    assert_eq!(
        recheck.status.code(),
        Some(0),
        "--check after --bless must exit 0\nstdout: {}",
        String::from_utf8_lossy(&recheck.stdout),
    );
}

#[test]
fn grandfathered_semantic_findings_split_as_old() {
    // Library-level version of the ratchet: semantic findings fed to
    // Baseline::from_findings come back entirely "old" on re-split,
    // and an empty baseline marks them all "new".
    let root = seed_workspace("lint-seeded-ws-lib");
    let report = fiveg_lint::scan_workspace(&root).expect("scan seeded workspace");
    for rule in NEW_RULES {
        assert!(
            report.findings.iter().any(|f| f.rule == *rule),
            "seeded workspace scan missing {rule}"
        );
    }
    let blessed = fiveg_lint::Baseline::from_findings(&report.findings);
    let (old, new) = blessed.split(&report.findings);
    assert_eq!(old.len(), report.findings.len());
    assert!(new.is_empty(), "blessed findings must all be grandfathered");
    let empty = fiveg_lint::Baseline::from_findings(&[]);
    let (old, new) = empty.split(&report.findings);
    assert!(old.is_empty());
    assert_eq!(new.len(), report.findings.len());
}

#[test]
fn real_tree_shard_handler_is_seen_by_parser() {
    // Taint seeding must not go silently vacuous: the parser has to
    // see the real fleet shard handler in core.
    let src = fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../core/src/scenario_run.rs"
    ))
    .expect("read core scenario_run.rs");
    let model = fiveg_lint::parser::parse_file(&src);
    let handlers: Vec<&str> = model
        .fns
        .iter()
        .filter(|f| {
            f.impl_ctx
                .as_ref()
                .is_some_and(|c| c.trait_name.as_deref() == Some("ShardLogic"))
        })
        .map(|f| f.name.as_str())
        .collect();
    assert!(
        !handlers.is_empty(),
        "no fns parsed inside `impl ShardLogic for ..` in core/src/scenario_run.rs — \
         S-rule seeding would be vacuous"
    );
}
