//! Docs-drift check: the DESIGN.md §7 rule table must match
//! `fiveg_lint::RULES` — the same table `fiveg-lint --rules` prints —
//! row for row, string for string. Edit either side without the other
//! and this test names the exact drifted cell.

use fiveg_lint::RULES;

/// Extracts `(id, what, hint)` rows from the §7 markdown table.
fn design_rule_rows(design: &str) -> Vec<(String, String, String)> {
    let mut rows = Vec::new();
    for line in design.lines() {
        let Some(rest) = line.strip_prefix('|') else {
            continue;
        };
        let cells: Vec<&str> = rest.split('|').map(str::trim).collect();
        if cells.len() < 3 {
            continue;
        }
        let id = cells[0];
        // Rule ids look like D001/S003/W001 — one uppercase letter,
        // three digits. Header and separator rows fail this shape.
        let is_rule = id.len() == 4
            && id.starts_with(|c: char| c.is_ascii_uppercase())
            && id[1..].chars().all(|c| c.is_ascii_digit());
        if is_rule {
            rows.push((id.to_string(), cells[1].to_string(), cells[2].to_string()));
        }
    }
    rows
}

#[test]
fn design_section_7_table_matches_rules() {
    let design_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let design = std::fs::read_to_string(design_path)
        .unwrap_or_else(|e| panic!("cannot read {design_path}: {e}"));
    let rows = design_rule_rows(&design);
    assert_eq!(
        rows.len(),
        RULES.len(),
        "DESIGN.md §7 table has {} rule rows, RULES has {} — add/remove the row",
        rows.len(),
        RULES.len()
    );
    for (row, (id, what, hint)) in rows.iter().zip(RULES) {
        assert_eq!(
            &row.0, id,
            "rule order drifted: DESIGN.md row {} vs RULES {id}",
            row.0
        );
        assert_eq!(
            &row.1, what,
            "{id}: DESIGN.md description differs from RULES (and from `--rules` output)"
        );
        assert_eq!(
            &row.2, hint,
            "{id}: DESIGN.md fix hint differs from RULES (and from `--rules` output)"
        );
    }
}

#[test]
fn design_has_section_12() {
    let design_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../DESIGN.md");
    let design = std::fs::read_to_string(design_path)
        .unwrap_or_else(|e| panic!("cannot read {design_path}: {e}"));
    assert!(
        design.contains("## 12. Workspace-aware semantic analysis"),
        "DESIGN.md lost §12 (workspace model / rule families / layering DAG)"
    );
    // The layering table lives in workspace.rs; §12 must point there.
    assert!(
        design.contains("ALLOWED_DEPS"),
        "DESIGN.md §12 no longer references the ALLOWED_DEPS layering DAG"
    );
}
