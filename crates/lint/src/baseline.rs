//! The ratchet baseline: grandfathered findings committed as
//! `golden/lint-baseline.json`.
//!
//! The gate is "no *new* findings": a finding is new when the number of
//! sites with the same `(rule, file, excerpt)` key exceeds the count the
//! baseline grandfathers. Keying on the trimmed source line instead of
//! the line number keeps the baseline stable when unrelated edits shift
//! code up or down a file; the baseline shrinks as old sites are fixed
//! (`--bless` rewrites it).
//!
//! The file is read back with `fiveg-obs`'s JSON reader — the same
//! parser that gates the bench baseline — and written with the same
//! stable key ordering, so it diffs cleanly under version control.

use std::collections::BTreeMap;

use fiveg_obs::JsonValue;

use crate::rules::Finding;

/// Baseline schema version written into the file.
pub const SCHEMA: u64 = 1;

/// Multiplicity of grandfathered findings per `(rule, file, excerpt)`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Baseline {
    entries: BTreeMap<(String, String, String), u64>,
}

/// A baseline that failed to load.
#[derive(Debug)]
pub struct BaselineError(pub String);

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint baseline: {}", self.0)
    }
}

impl std::error::Error for BaselineError {}

impl Baseline {
    /// Builds a baseline grandfathering exactly the given findings.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries = BTreeMap::new();
        for f in findings {
            *entries
                .entry((f.rule.to_string(), f.file.clone(), f.excerpt.clone()))
                .or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Parses the committed JSON representation.
    pub fn parse(text: &str) -> Result<Baseline, BaselineError> {
        let doc = fiveg_obs::parse_json(text).map_err(|e| BaselineError(e.to_string()))?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| BaselineError("missing `schema`".into()))?;
        if schema != SCHEMA {
            return Err(BaselineError(format!(
                "schema {schema} unsupported (expected {SCHEMA}); re-bless with --bless"
            )));
        }
        let Some(JsonValue::Array(items)) = doc.get("entries") else {
            return Err(BaselineError("missing `entries` array".into()));
        };
        let mut entries = BTreeMap::new();
        for item in items {
            let field = |k: &str| {
                item.get(k)
                    .and_then(JsonValue::as_str)
                    .map(str::to_string)
                    .ok_or_else(|| BaselineError(format!("entry missing string `{k}`")))
            };
            let rule = field("rule")?;
            let file = field("file")?;
            let excerpt = field("excerpt")?;
            let count = item
                .get("count")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| BaselineError("entry missing uint `count`".into()))?;
            *entries.entry((rule, file, excerpt)).or_insert(0) += count;
        }
        Ok(Baseline { entries })
    }

    /// Serializes with stable key order; byte-identical for equal content.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"entries\": [\n");
        let mut first = true;
        for ((rule, file, excerpt), count) in &self.entries {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str("    {\"count\": ");
            out.push_str(&count.to_string());
            out.push_str(", \"excerpt\": ");
            escape_json_into(&mut out, excerpt);
            out.push_str(", \"file\": ");
            escape_json_into(&mut out, file);
            out.push_str(", \"rule\": ");
            escape_json_into(&mut out, rule);
            out.push('}');
        }
        if !self.entries.is_empty() {
            out.push('\n');
        }
        out.push_str("  ],\n  \"schema\": ");
        out.push_str(&SCHEMA.to_string());
        out.push_str("\n}\n");
        out
    }

    /// Number of grandfathered sites.
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }

    /// Splits `findings` into (grandfathered, new). Within one key the
    /// first `count` sites in line order are treated as grandfathered.
    pub fn split<'a>(&self, findings: &'a [Finding]) -> (Vec<&'a Finding>, Vec<&'a Finding>) {
        let mut budget: BTreeMap<(&str, &str, &str), u64> = self
            .entries
            .iter()
            .map(|((r, f, e), c)| ((r.as_str(), f.as_str(), e.as_str()), *c))
            .collect();
        let mut old = Vec::new();
        let mut new = Vec::new();
        for f in findings {
            let key = (f.rule, f.file.as_str(), f.excerpt.as_str());
            match budget.get_mut(&key) {
                Some(c) if *c > 0 => {
                    *c -= 1;
                    old.push(f);
                }
                _ => new.push(f),
            }
        }
        (old, new)
    }

    /// Grandfathered sites that no longer exist (fixed since blessing);
    /// returned as `(rule, file, gone_count)` for the shrink report.
    pub fn stale(&self, findings: &[Finding]) -> Vec<(String, String, u64)> {
        let mut current: BTreeMap<(&str, &str, &str), u64> = BTreeMap::new();
        for f in findings {
            *current
                .entry((f.rule, f.file.as_str(), f.excerpt.as_str()))
                .or_insert(0) += 1;
        }
        let mut gone: BTreeMap<(String, String), u64> = BTreeMap::new();
        for ((rule, file, excerpt), count) in &self.entries {
            let have = current
                .get(&(rule.as_str(), file.as_str(), excerpt.as_str()))
                .copied()
                .unwrap_or(0);
            if have < *count {
                *gone.entry((rule.clone(), file.clone())).or_insert(0) += count - have;
            }
        }
        gone.into_iter().map(|((r, f), c)| (r, f, c)).collect()
    }
}

/// Minimal JSON string escaping matching the fiveg-obs writer's output
/// (and therefore round-tripping through its reader).
pub fn escape_json_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::Finding;

    fn finding(rule: &'static str, file: &str, line: u32, excerpt: &str) -> Finding {
        Finding {
            file: file.to_string(),
            line,
            rule,
            excerpt: excerpt.to_string(),
            hint: "",
        }
    }

    #[test]
    fn round_trips_through_obs_parser() {
        let fs = vec![
            finding("U001", "crates/net/src/hop.rs", 4, "x.unwrap();"),
            finding("U001", "crates/net/src/hop.rs", 9, "x.unwrap();"),
            finding("D001", "crates/phy/src/a.rs", 1, "use HashMap; \"q\""),
        ];
        let b = Baseline::from_findings(&fs);
        let json = b.to_json();
        let back = Baseline::parse(&json).expect("parses");
        assert_eq!(b, back);
        assert_eq!(back.total(), 3);
        // Serialization is canonical: re-serializing parses back equal bytes.
        assert_eq!(json, back.to_json());
    }

    #[test]
    fn split_respects_multiplicity() {
        let committed = vec![finding("U001", "f.rs", 4, "x.unwrap();")];
        let b = Baseline::from_findings(&committed);
        let now = vec![
            finding("U001", "f.rs", 4, "x.unwrap();"),
            finding("U001", "f.rs", 9, "x.unwrap();"),
        ];
        let (old, new) = b.split(&now);
        assert_eq!(old.len(), 1);
        assert_eq!(new.len(), 1);
        assert_eq!(new[0].line, 9);
    }

    #[test]
    fn stale_reports_fixed_sites() {
        let committed = vec![
            finding("U001", "f.rs", 4, "x.unwrap();"),
            finding("D001", "g.rs", 2, "HashMap"),
        ];
        let b = Baseline::from_findings(&committed);
        let now = vec![finding("U001", "f.rs", 4, "x.unwrap();")];
        let stale = b.stale(&now);
        assert_eq!(stale, vec![("D001".to_string(), "g.rs".to_string(), 1)]);
    }

    #[test]
    fn rejects_wrong_schema_and_shape() {
        assert!(Baseline::parse("{\"schema\": 99, \"entries\": []}").is_err());
        assert!(Baseline::parse("{\"entries\": []}").is_err());
        assert!(Baseline::parse("not json").is_err());
    }
}
