//! The determinism rules and the per-file scanner.
//!
//! Each rule is a named, machine-checkable invariant of this
//! workspace's "byte-identical artifacts for any worker/thread count"
//! guarantee. Rules operate on the token stream from
//! [`crate::tokenizer`], so identifiers inside strings and comments
//! never match.

use crate::tokenizer::{tokenize, Tok, TokKind};

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `crates/<name>/src/**` minus binaries — panics here abort sims.
    Lib,
    /// `src/main.rs`, `src/bin/**` — CLI entry points may panic on bad
    /// user input.
    Bin,
    /// `examples/**` anywhere.
    Example,
    /// `tests/**` anywhere, and benches.
    Test,
}

/// Per-file context computed from its workspace-relative path.
#[derive(Debug, Clone)]
pub struct FileCtx {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: String,
    /// `<name>` for `crates/<name>/...` files.
    pub crate_name: Option<String>,
    /// Location class.
    pub kind: FileKind,
}

impl FileCtx {
    /// Classifies a workspace-relative path, or `None` for paths the
    /// linter must not scan (vendored code, lint fixtures).
    pub fn classify(rel_path: &str) -> Option<FileCtx> {
        let rel = rel_path.replace('\\', "/");
        if rel.starts_with("vendor/") || rel.contains("/fixtures/") || rel.starts_with("target/") {
            return None;
        }
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .map(str::to_string);
        let tail = match crate_name {
            Some(ref name) => rel
                .strip_prefix("crates/")
                .and_then(|r| r.strip_prefix(name.as_str()))
                .and_then(|r| r.strip_prefix('/'))
                .unwrap_or(&rel),
            None => &rel,
        };
        let kind = if tail.starts_with("tests/") || tail.starts_with("benches/") {
            FileKind::Test
        } else if tail.starts_with("examples/") {
            FileKind::Example
        } else if tail.starts_with("src/bin/") || tail == "src/main.rs" {
            FileKind::Bin
        } else {
            FileKind::Lib
        };
        Some(FileCtx {
            rel_path: rel,
            crate_name,
            kind,
        })
    }

    fn is_sim_crate(&self) -> bool {
        // Crates on the deterministic artifact path. `obs` (stable-order
        // snapshots by construction), `bench` (wall-clock reporting) and
        // `lint` itself are not sim crates.
        matches!(
            self.crate_name.as_deref(),
            Some(
                "simcore"
                    | "geo"
                    | "phy"
                    | "ran"
                    | "net"
                    | "transport"
                    | "apps"
                    | "energy"
                    | "core"
                    | "campaign"
                    | "trace"
            )
        )
    }
}

/// One finding: rule, location, the offending line and a fix hint.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Rule id (`D001` ... `U001`, `L000`).
    pub rule: &'static str,
    /// The trimmed source line — the baseline key, resilient to code
    /// moving between lines.
    pub excerpt: String,
    /// One-line fix hint.
    pub hint: &'static str,
}

/// Rule table: id, what it catches, and the fix hint attached to every
/// finding. Kept in one place so `--rules`, the docs and the engine
/// cannot drift apart.
pub const RULES: &[(&str, &str, &str)] = &[
    (
        "D001",
        "HashMap/HashSet in deterministic sim-crate library code",
        "unordered iteration breaks byte-identity; use BTreeMap/BTreeSet or sort before draining",
    ),
    (
        "D002",
        "float sort/min/max comparator built on partial_cmp",
        "partial_cmp panics or mis-orders on NaN; use f64::total_cmp",
    ),
    (
        "D003",
        "wall-clock (Instant::now/SystemTime) outside fiveg-obs span timers",
        "wall-clock in sim paths breaks replay; route timing through fiveg-obs spans",
    ),
    (
        "D004",
        "static mut global state",
        "mutable globals defeat determinism and thread-safety; pass state explicitly",
    ),
    (
        "D005",
        "unseeded RNG construction (thread_rng/from_entropy/OsRng)",
        "unseeded RNG breaks replay; derive seeds via stable_hash(base_seed, name, rep)",
    ),
    (
        "U001",
        "unwrap()/expect() in library code",
        "library panics abort whole campaigns; return Result or add a justifying pragma",
    ),
    (
        "L000",
        "malformed fiveg-lint pragma",
        "pragma syntax is `// fiveg-lint: allow(D00x[,D00y]) -- reason`",
    ),
    (
        "S001",
        "obs metric write reachable from a ShardLogic handler outside a Drop flush",
        "ambient writes under the shard engine are worker-ordered; accumulate in per-origin scratch and flush from Drop",
    ),
    (
        "S002",
        "FIVEG_* environment read outside core::par / fiveg-campaign",
        "scattered env reads fork run configuration; read once in core::par or the campaign runner and pass values down",
    ),
    (
        "S003",
        "mutable static/thread_local state reachable from a ShardLogic handler",
        "cross-shard shared state orders by worker schedule; key state by logical origin inside the shard instead",
    ),
    (
        "F001",
        "float accumulation inside a par_map/thread::scope closure",
        "float reduction order varies with the thread count; accumulate per chunk and combine in a fixed order after the join",
    ),
    (
        "W001",
        "crate dependency edge outside the declared layering DAG",
        "add the edge to ALLOWED_DEPS in crates/lint/src/workspace.rs (a reviewed design decision) or drop the dependency",
    ),
    (
        "W002",
        "library crate missing #![forbid(unsafe_code)]",
        "add #![forbid(unsafe_code)] to the crate root; sim results must not rest on unchecked memory claims",
    ),
    (
        "W003",
        "pub item without a rustdoc comment",
        "document the item or demote it from pub; ratcheted via the baseline like U001 was",
    ),
];

/// True if `id` is a known rule id.
pub fn rule_exists(id: &str) -> bool {
    RULES.iter().any(|(r, _, _)| *r == id)
}

/// Fix hint for a rule id (`""` for unknown ids).
pub fn hint_for(id: &str) -> &'static str {
    RULES
        .iter()
        .find(|(r, _, _)| *r == id)
        .map_or("", |(_, _, h)| h)
}

/// A parsed suppression pragma.
struct Pragma {
    line: u32,
    rules: Vec<String>,
}

/// Scans one file's source, returning (findings, suppressed_count).
///
/// Suppression: `// fiveg-lint: allow(D001) -- reason` silences the
/// listed rules on the pragma's own line and on the line directly
/// below it, so it works both as a trailing comment and as a
/// stand-alone line above the offending statement.
pub fn scan_file(ctx: &FileCtx, src: &str) -> (Vec<Finding>, usize) {
    let toks = tokenize(src);
    let test_regions = test_regions(&toks);
    let in_test = |line: u32| {
        ctx.kind == FileKind::Test || test_regions.iter().any(|&(a, b)| line >= a && line <= b)
    };
    let lines: Vec<&str> = src.lines().collect();
    let excerpt = |line: u32| {
        lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    };

    let mut pragmas: Vec<Pragma> = Vec::new();
    let mut raw = Vec::new(); // findings before pragma filtering

    for t in &toks {
        if t.kind != TokKind::LineComment && t.kind != TokKind::BlockComment {
            continue;
        }
        if let Some(rest) = pragma_body(t.text) {
            match parse_pragma(rest) {
                Some(rules) => pragmas.push(Pragma {
                    line: t.line,
                    rules,
                }),
                None => raw.push(Finding {
                    file: ctx.rel_path.clone(),
                    line: t.line,
                    rule: "L000",
                    excerpt: excerpt(t.line),
                    hint: hint_for("L000"),
                }),
            }
        }
    }

    // Significant (non-comment) tokens drive the rules.
    let sig: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let push = |raw: &mut Vec<Finding>, rule: &'static str, line: u32| {
        // One finding per (rule, line): `HashMap<K, HashSet<V>>` is one
        // hazard site, not two.
        if raw.iter().any(|f| f.rule == rule && f.line == line) {
            return;
        }
        raw.push(Finding {
            file: ctx.rel_path.clone(),
            line,
            rule,
            excerpt: excerpt(line),
            hint: hint_for(rule),
        });
    };

    // Index of the most recent sort-family method name, for D002.
    let mut last_sort: Option<usize> = None;
    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text {
            "HashMap" | "HashSet"
                if ctx.kind == FileKind::Lib && ctx.is_sim_crate() && !in_test(t.line) =>
            {
                push(&mut raw, "D001", t.line);
            }
            "sort_by" | "sort_unstable_by" | "max_by" | "min_by" | "binary_search_by" => {
                last_sort = Some(i);
            }
            "partial_cmp" => {
                // Inside a comparator closure the call sits within a few
                // dozen tokens of the sort-family name; `fn partial_cmp`
                // trait impls have no such neighbour and never match.
                if matches!(last_sort, Some(j) if i - j <= 40) {
                    push(&mut raw, "D002", t.line);
                }
            }
            "Instant" | "SystemTime" => {
                let is_now_call = t.text == "SystemTime"
                    || matches!(
                        (sig.get(i + 1), sig.get(i + 2), sig.get(i + 3)),
                        (Some(a), Some(b), Some(c))
                            if a.text == ":" && b.text == ":" && c.text == "now"
                    );
                if is_now_call && ctx.crate_name.as_deref() != Some("obs") && !in_test(t.line) {
                    push(&mut raw, "D003", t.line);
                }
            }
            "static" => {
                if matches!(sig.get(i + 1), Some(n) if n.text == "mut") {
                    push(&mut raw, "D004", t.line);
                }
            }
            "thread_rng" | "from_entropy" | "OsRng" if !in_test(t.line) => {
                push(&mut raw, "D005", t.line);
            }
            "unwrap" | "expect" => {
                let is_method_call = i > 0
                    && sig[i - 1].text == "."
                    && matches!(sig.get(i + 1), Some(p) if p.text == "(");
                // `self.expect(...)` is a custom method on the receiver
                // type (e.g. the obs JSON parser), not Option/Result.
                let custom_method = i >= 2 && sig[i - 2].text == "self" && sig[i - 1].text == ".";
                if is_method_call && !custom_method && ctx.kind == FileKind::Lib && !in_test(t.line)
                {
                    push(&mut raw, "U001", t.line);
                }
            }
            _ => {}
        }
    }

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let hit = pragmas.iter().any(|p| {
            (p.line == f.line || p.line + 1 == f.line) && p.rules.iter().any(|r| r == f.rule)
        });
        if hit {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    findings.sort();
    (findings, suppressed)
}

/// Extracts the pragma body from a comment whose text *starts* with
/// `fiveg-lint:` (after the comment markers). Prose that merely
/// mentions the pragma syntax mid-sentence is not a pragma.
fn pragma_body(comment: &str) -> Option<&str> {
    let body = comment
        .trim_start_matches(['/', '!', '*'])
        .trim_start()
        .strip_prefix("fiveg-lint:")?;
    let body = body.trim();
    // Block comments carry their closing delimiter in the token text.
    Some(body.strip_suffix("*/").map_or(body, str::trim_end))
}

/// Parses `allow(D001,D002) -- reason`; `None` if malformed (unknown
/// rule, missing reason, bad shape).
fn parse_pragma(body: &str) -> Option<Vec<String>> {
    let rest = body.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    let (list, tail) = rest.split_at(close);
    let tail = tail[1..].trim_start();
    let reason = tail.strip_prefix("--")?;
    if reason.trim().is_empty() {
        return None;
    }
    let rules: Vec<String> = list.split(',').map(|r| r.trim().to_string()).collect();
    if rules.is_empty() || rules.iter().any(|r| !rule_exists(r)) {
        return None;
    }
    Some(rules)
}

/// Well-formed pragmas of a source file, as `(line, rules)` pairs, for
/// passes that run outside [`scan_file`] (the semantic workspace pass).
/// Malformed pragmas are skipped here — [`scan_file`] already reports
/// them as L000, and reporting twice would double-count.
pub fn file_pragmas(src: &str) -> Vec<(u32, Vec<String>)> {
    let toks = tokenize(src);
    toks.iter()
        .filter(|t| t.is_comment())
        .filter_map(|t| {
            let rules = parse_pragma(pragma_body(t.text)?)?;
            Some((t.line, rules))
        })
        .collect()
}

/// `test_regions` computed from raw source, for callers outside this
/// module that do not hold a token stream.
pub fn test_regions_of(src: &str) -> Vec<(u32, u32)> {
    test_regions(&tokenize(src))
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items. After the
/// attribute, the region extends to the end of the next brace-balanced
/// block (or to the terminating `;` for brace-less items).
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let sig: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < sig.len() {
        if sig[i].text == "#" && matches!(sig.get(i + 1), Some(t) if t.text == "[") {
            // Match `#[test]` or `#[cfg(test)]` exactly.
            let is_test_attr = matches!(
                (sig.get(i + 2), sig.get(i + 3)),
                (Some(a), Some(b)) if a.text == "test" && b.text == "]"
            ) || matches!(
                (sig.get(i + 2), sig.get(i + 3), sig.get(i + 4), sig.get(i + 5), sig.get(i + 6)),
                (Some(a), Some(b), Some(c), Some(d), Some(e))
                    if a.text == "cfg" && b.text == "(" && c.text == "test"
                        && d.text == ")" && e.text == "]"
            );
            if is_test_attr {
                let start_line = sig[i].line;
                let mut j = i;
                // Find the opening brace of the annotated item; a `;`
                // first means a brace-less item (e.g. `#[cfg(test)] use`).
                let mut depth = 0usize;
                let mut end_line = start_line;
                while j < sig.len() {
                    match sig[j].text {
                        "{" => {
                            depth += 1;
                        }
                        "}" => {
                            depth = depth.saturating_sub(1);
                            if depth == 0 {
                                end_line = sig[j].line;
                                break;
                            }
                        }
                        ";" if depth == 0 => {
                            end_line = sig[j].line;
                            break;
                        }
                        _ => {}
                    }
                    end_line = sig[j].line;
                    j += 1;
                }
                regions.push((start_line, end_line));
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    regions
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(path: &str) -> FileCtx {
        FileCtx::classify(path).expect("classifiable")
    }

    fn rules_hit(path: &str, src: &str) -> Vec<(&'static str, u32)> {
        let (f, _) = scan_file(&lib_ctx(path), src);
        f.into_iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn classify_kinds() {
        assert_eq!(lib_ctx("crates/phy/src/env.rs").kind, FileKind::Lib);
        assert_eq!(lib_ctx("crates/bench/src/bin/repro.rs").kind, FileKind::Bin);
        assert_eq!(lib_ctx("crates/phy/examples/x.rs").kind, FileKind::Example);
        assert_eq!(lib_ctx("tests/integration.rs").kind, FileKind::Test);
        assert_eq!(lib_ctx("examples/quickstart.rs").kind, FileKind::Example);
        assert!(FileCtx::classify("vendor/rand/src/lib.rs").is_none());
        assert!(FileCtx::classify("crates/lint/fixtures/pos.rs").is_none());
    }

    #[test]
    fn d001_only_in_sim_lib_code() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(rules_hit("crates/phy/src/x.rs", src), vec![("D001", 1)]);
        assert!(rules_hit("crates/obs/src/x.rs", src).is_empty());
        assert!(rules_hit("tests/x.rs", src).is_empty());
    }

    #[test]
    fn d001_skips_test_mods() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::collections::HashSet;\n}\n";
        assert!(rules_hit("crates/net/src/x.rs", src).is_empty());
    }

    #[test]
    fn d002_flags_sort_comparators_not_trait_impls() {
        let sort = "v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n";
        assert!(rules_hit("crates/phy/src/x.rs", sort)
            .iter()
            .any(|&(r, _)| r == "D002"));
        let tr = "impl PartialOrd for T {\n  fn partial_cmp(&self, o: &T) -> Option<Ordering> { None }\n}\n";
        assert!(!rules_hit("crates/phy/src/x.rs", tr)
            .iter()
            .any(|&(r, _)| r == "D002"));
    }

    #[test]
    fn d003_exempts_obs_and_tests() {
        let src = "let t = Instant::now();\n";
        assert_eq!(
            rules_hit("crates/campaign/src/x.rs", src),
            vec![("D003", 1)]
        );
        assert!(rules_hit("crates/obs/src/x.rs", src).is_empty());
        assert!(rules_hit("tests/x.rs", src).is_empty());
        // A plain `Instant` type mention is not a wall-clock read.
        assert!(rules_hit("crates/campaign/src/x.rs", "fn f(t: Instant) {}\n").is_empty());
    }

    #[test]
    fn d004_and_d005() {
        assert_eq!(
            rules_hit("crates/net/src/x.rs", "static mut G: u32 = 0;\n"),
            vec![("D004", 1)]
        );
        assert_eq!(
            rules_hit("crates/net/src/x.rs", "let mut r = thread_rng();\n"),
            vec![("D005", 1)]
        );
        assert!(rules_hit("crates/net/src/x.rs", "static G: u32 = 0;\n").is_empty());
    }

    #[test]
    fn u001_lib_only_and_method_position() {
        let src = "let x = o.unwrap();\n";
        assert_eq!(rules_hit("crates/net/src/x.rs", src), vec![("U001", 1)]);
        assert!(rules_hit("crates/bench/src/bin/repro.rs", src).is_empty());
        assert!(rules_hit("examples/q.rs", src).is_empty());
        // `unwrap_or`, a bare `expect` ident, and a custom
        // `self.expect(...)` method are not findings.
        assert!(rules_hit("crates/net/src/x.rs", "let x = o.unwrap_or(0);\n").is_empty());
        assert!(rules_hit("crates/net/src/x.rs", "let expect = 1;\n").is_empty());
        assert!(rules_hit("crates/net/src/x.rs", "self.expect(b'{')?;\n").is_empty());
    }

    #[test]
    fn pragma_suppresses_same_and_next_line() {
        let trailing =
            "let x = o.unwrap(); // fiveg-lint: allow(U001) -- invariant: set in new()\n";
        let (f, s) = scan_file(&lib_ctx("crates/net/src/x.rs"), trailing);
        assert!(f.is_empty());
        assert_eq!(s, 1);
        let above = "// fiveg-lint: allow(U001) -- invariant: set in new()\nlet x = o.unwrap();\n";
        let (f, s) = scan_file(&lib_ctx("crates/net/src/x.rs"), above);
        assert!(f.is_empty());
        assert_eq!(s, 1);
    }

    #[test]
    fn pragma_does_not_blanket_other_rules_or_lines() {
        let src =
            "// fiveg-lint: allow(U001) -- reason\nlet x = o.unwrap();\nlet y = o.unwrap();\n";
        let (f, s) = scan_file(&lib_ctx("crates/net/src/x.rs"), src);
        assert_eq!(s, 1);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn malformed_pragmas_are_l000() {
        for bad in [
            "// fiveg-lint: allow(U001)\nlet a = 1;\n", // missing reason
            "// fiveg-lint: allow(X999) -- nope\nlet a = 1;\n", // unknown rule
            "// fiveg-lint: disallow(U001) -- x\nlet a = 1;\n", // bad verb
        ] {
            let (f, _) = scan_file(&lib_ctx("crates/net/src/x.rs"), bad);
            assert_eq!(f.len(), 1, "{bad:?}");
            assert_eq!(f[0].rule, "L000", "{bad:?}");
        }
    }

    #[test]
    fn strings_and_comments_never_match() {
        let src = "// HashMap Instant::now()\nlet s = \"static mut thread_rng\";\n";
        assert!(rules_hit("crates/phy/src/x.rs", src).is_empty());
    }
}
