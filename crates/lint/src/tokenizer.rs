//! A minimal Rust tokenizer.
//!
//! `fiveg-lint` owns its lexer the same way `fiveg-obs` owns its JSON
//! reader: the vendored dependency set has no `syn`/`proc-macro2`, and
//! the determinism rules only need a faithful token stream — not a
//! parse tree. The lexer understands everything that could hide a
//! false positive from a naive grep: line and (nested) block comments,
//! string / raw-string / byte-string / char literals, lifetimes, and
//! numeric literals with suffixes. `"HashMap"` inside a string or a
//! doc comment therefore never trips a rule; only real identifier
//! tokens do.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`HashMap`, `static`, `r#type`).
    Ident,
    /// A single punctuation byte (`.`, `:`, `{`, ...).
    Punct,
    /// A numeric literal including any suffix (`1.5e3`, `0xff_u32`).
    Num,
    /// A string literal of any flavour (`"s"`, `r#"s"#`, `b"s"`).
    Str,
    /// A character literal (`'a'`, `'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A `//` comment, text includes the slashes.
    LineComment,
    /// A `/* */` comment (possibly nested), text includes delimiters.
    BlockComment,
}

/// One lexed token: kind, the exact source slice, and its 1-based line.
#[derive(Debug, Clone, Copy)]
pub struct Tok<'a> {
    /// Token class.
    pub kind: TokKind,
    /// Exact source text of the token.
    pub text: &'a str,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok<'_> {
    /// True for comment tokens (skipped by the rule matcher).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// Lexes `src` into tokens. Unknown bytes become single-byte `Punct`
/// tokens — the linter must never fail on syntactically-broken input,
/// it only has to avoid misclassifying well-formed code.
pub fn tokenize(src: &str) -> Vec<Tok<'_>> {
    Lexer {
        src,
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
    }
    .run()
}

struct Lexer<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: u32,
}

impl<'a> Lexer<'a> {
    fn run(mut self) -> Vec<Tok<'a>> {
        let mut toks = Vec::new();
        while let Some(b) = self.peek(0) {
            let start = self.pos;
            let line = self.line;
            let kind = match b {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => {
                    self.line_comment();
                    TokKind::LineComment
                }
                b'/' if self.peek(1) == Some(b'*') => {
                    self.block_comment();
                    TokKind::BlockComment
                }
                b'"' => {
                    self.string();
                    TokKind::Str
                }
                b'r' | b'b' if self.raw_or_byte_string() => TokKind::Str,
                b'\'' => self.char_or_lifetime(),
                b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                    self.ident();
                    TokKind::Ident
                }
                b'0'..=b'9' => {
                    self.number();
                    TokKind::Num
                }
                _ => {
                    // Single punctuation byte; multi-byte UTF-8 chars
                    // (only legal inside strings/comments in Rust) are
                    // consumed whole to keep slices on char bounds.
                    let w = utf8_width(b);
                    self.pos += w;
                    TokKind::Punct
                }
            };
            toks.push(Tok {
                kind,
                text: &self.src[start..self.pos],
                line,
            });
        }
        toks
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) {
        if self.bytes[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) {
        self.pos += 2; // consume `/*`
        let mut depth = 1usize;
        while let Some(b) = self.peek(0) {
            if b == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if b == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
                if depth == 0 {
                    return;
                }
            } else {
                self.bump();
            }
        }
    }

    /// Consumes a `"…"` string starting at the current `"`.
    fn string(&mut self) {
        self.pos += 1; // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => {
                    self.bump();
                    if self.peek(0).is_some() {
                        self.bump();
                    }
                }
                b'"' => {
                    self.pos += 1;
                    return;
                }
                _ => self.bump(),
            }
        }
    }

    /// Handles `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` and `b'…'`. Returns
    /// true if a string/byte literal was consumed; false means the
    /// leading `r`/`b` starts an ordinary identifier (including raw
    /// identifiers like `r#match`), which the caller lexes instead.
    fn raw_or_byte_string(&mut self) -> bool {
        let (prefix, raw) = match (self.bytes[self.pos], self.peek(1)) {
            (b'b', Some(b'r')) => (2, true),
            (b'b', Some(b'"')) => (1, false),
            (b'b', Some(b'\'')) => {
                self.pos += 1; // past `b`; lex the rest like a char
                self.char_or_lifetime();
                return true;
            }
            (b'r', _) => (1, true),
            _ => return false,
        };
        if !raw {
            self.pos += 1; // past `b`; escapes apply as in a plain string
            self.string();
            return true;
        }
        let mut hashes = 0usize;
        while self.peek(prefix + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(prefix + hashes) != Some(b'"') {
            return false; // `r#ident` / `r` / `br` used as identifiers
        }
        self.pos += prefix + hashes + 1;
        // Raw string: ends at `"` followed by `hashes` hash marks.
        while let Some(b) = self.peek(0) {
            if b == b'"' && (0..hashes).all(|h| self.peek(1 + h) == Some(b'#')) {
                self.pos += 1 + hashes;
                return true;
            }
            self.bump();
        }
        true
    }

    /// At a `'`: either a char literal or a lifetime.
    fn char_or_lifetime(&mut self) -> TokKind {
        self.pos += 1; // consume `'`
        match self.peek(0) {
            Some(b'\\') => {
                // Escaped char literal: consume escape then scan to `'`.
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
                while let Some(b) = self.peek(0) {
                    self.bump();
                    if b == b'\'' {
                        break;
                    }
                }
                TokKind::Char
            }
            Some(b) if b == b'_' || b.is_ascii_alphanumeric() => {
                // `'a'` = char, `'a` / `'static` = lifetime.
                let mut i = 1;
                while matches!(self.peek(i), Some(c) if c == b'_' || c.is_ascii_alphanumeric()) {
                    i += 1;
                }
                if self.peek(i) == Some(b'\'') && i == 1 {
                    self.pos += i + 1;
                    TokKind::Char
                } else {
                    for _ in 0..i {
                        self.bump();
                    }
                    TokKind::Lifetime
                }
            }
            Some(_) => {
                // `'('` style single-char literal of a non-alnum char.
                let w = self.peek(0).map_or(1, utf8_width);
                self.pos += w;
                if self.peek(0) == Some(b'\'') {
                    self.pos += 1;
                }
                TokKind::Char
            }
            None => TokKind::Punct,
        }
    }

    fn ident(&mut self) {
        while matches!(self.peek(0), Some(b) if b == b'_' || b.is_ascii_alphanumeric()) {
            self.pos += 1;
        }
    }

    /// Numeric literal. Careful not to eat the `.` of a method call:
    /// `1.0.total_cmp(...)` must lex as `1.0` `.` `total_cmp`.
    fn number(&mut self) {
        if self.peek(0) == Some(b'0') && matches!(self.peek(1), Some(b'x' | b'o' | b'b')) {
            self.pos += 2;
            while matches!(self.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
                self.pos += 1;
            }
            return;
        }
        while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
            self.pos += 1;
        }
        if self.peek(0) == Some(b'.') && matches!(self.peek(1), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
            while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
                self.pos += 1;
            }
        }
        if matches!(self.peek(0), Some(b'e' | b'E')) {
            let sign = usize::from(matches!(self.peek(1), Some(b'+' | b'-')));
            if matches!(self.peek(1 + sign), Some(b) if b.is_ascii_digit()) {
                self.pos += 1 + sign;
                while matches!(self.peek(0), Some(b) if b.is_ascii_digit() || b == b'_') {
                    self.pos += 1;
                }
            }
        }
        // Type suffix (`u32`, `f64`) — alphanumeric tail.
        while matches!(self.peek(0), Some(b) if b.is_ascii_alphanumeric() || b == b'_') {
            self.pos += 1;
        }
    }
}

fn utf8_width(b: u8) -> usize {
    match b {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text.to_string()))
            .collect()
    }

    #[test]
    fn idents_and_punct() {
        let t = kinds("map.insert(k, v);");
        assert_eq!(t[0], (TokKind::Ident, "map".into()));
        assert_eq!(t[1], (TokKind::Punct, ".".into()));
        assert_eq!(t[2], (TokKind::Ident, "insert".into()));
    }

    #[test]
    fn strings_hide_identifiers() {
        let t = kinds(r#"let s = "HashMap::new()";"#);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.contains("HashMap")));
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "HashMap"));
    }

    #[test]
    fn raw_strings_and_hashes() {
        let t = kinds(r##"let s = r#"a "quoted" HashMap"# ;"##);
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Str && s.contains("quoted")));
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "HashMap"));
    }

    #[test]
    fn raw_identifiers_stay_identifiers() {
        let t = kinds("let r#type = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "type"));
    }

    #[test]
    fn byte_strings() {
        let t = kinds(r#"let b = b"Instant::now";"#);
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "Instant"));
    }

    #[test]
    fn comments_are_tokens_not_idents() {
        let t = kinds("// HashMap here\n/* static mut */ let x = 1;");
        assert_eq!(t[0].0, TokKind::LineComment);
        assert_eq!(t[1].0, TokKind::BlockComment);
        assert!(!t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "HashMap"));
    }

    #[test]
    fn nested_block_comments() {
        let t = kinds("/* a /* b */ c */ x");
        assert_eq!(t.len(), 2);
        assert_eq!(t[1], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let t = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Lifetime && s == "'a"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Char && s == "'x'"));
        assert!(t.iter().any(|(k, _)| *k == TokKind::Char));
    }

    #[test]
    fn float_method_calls_do_not_fuse() {
        let t = kinds("1.0.total_cmp(&x); v[0].partial_cmp(&y)");
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "total_cmp"));
        assert!(t
            .iter()
            .any(|(k, s)| *k == TokKind::Ident && s == "partial_cmp"));
        assert!(t.iter().any(|(k, s)| *k == TokKind::Num && s == "1.0"));
    }

    #[test]
    fn numeric_suffixes_and_bases() {
        let t = kinds("0xff_u32 1_000u64 2.5e-3f64");
        assert_eq!(t[0], (TokKind::Num, "0xff_u32".into()));
        assert_eq!(t[1], (TokKind::Num, "1_000u64".into()));
        assert_eq!(t[2], (TokKind::Num, "2.5e-3f64".into()));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let t = tokenize("a\nb\n\nc");
        assert_eq!(t[0].line, 1);
        assert_eq!(t[1].line, 2);
        assert_eq!(t[2].line, 4);
    }
}
