//! `fiveg-lint` CLI.
//!
//! Exit codes: 0 = clean (or only grandfathered findings), 1 = usage or
//! I/O error, 2 = new findings (`--check`) or fixture mismatch
//! (`--self-test`).

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use fiveg_lint::{
    report_json, scan_workspace, selftest, worst_rule, Baseline, Finding, BASELINE_PATH, RULES,
};

const USAGE: &str = "\
fiveg-lint: workspace determinism linter

USAGE: fiveg-lint [MODE] [--root DIR] [--baseline FILE]

MODES (default: list all findings):
  --check       exit 2 if any finding is not in the baseline; print the
                new findings and the rule id with the most of them
  --json        print the full report as stable, diffable JSON
  --bless       rewrite the baseline to grandfather today's findings
  --self-test   run the rule engine over crates/lint/fixtures and
                compare against the `//~ RULE` markers; exit 2 on drift
  --rules       print the rule table
  --help        this text

OPTIONS:
  --root DIR       workspace root (default: nearest ancestor with a
                   [workspace] Cargo.toml)
  --baseline FILE  baseline path (default: golden/lint-baseline.json)
";

enum Mode {
    List,
    Check,
    Json,
    Bless,
    SelfTest,
    Rules,
}

fn main() -> ExitCode {
    let mut mode = Mode::List;
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => mode = Mode::Check,
            "--json" => mode = Mode::Json,
            "--bless" => mode = Mode::Bless,
            "--self-test" => mode = Mode::SelfTest,
            "--rules" => mode = Mode::Rules,
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    if let Mode::Rules = mode {
        for (id, what, hint) in RULES {
            println!("{id}  {what}\n      fix: {hint}");
        }
        return ExitCode::SUCCESS;
    }

    let Some(root) = root.or_else(find_workspace_root) else {
        eprintln!("fiveg-lint: no [workspace] Cargo.toml above the current directory; pass --root");
        return ExitCode::FAILURE;
    };
    let baseline_path = baseline_path.unwrap_or_else(|| root.join(BASELINE_PATH));

    if let Mode::SelfTest = mode {
        return match selftest::run(&root.join("crates/lint/fixtures")) {
            Ok(checked) => {
                println!("fiveg-lint self-test: {checked} fixtures ok");
                ExitCode::SUCCESS
            }
            Err(failures) => {
                for f in &failures {
                    eprintln!("self-test: {f}");
                }
                eprintln!("fiveg-lint self-test: {} fixture(s) FAILED", failures.len());
                ExitCode::from(2)
            }
        };
    }

    let report = match scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("fiveg-lint: scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Mode::Bless = mode {
        let base = Baseline::from_findings(&report.findings);
        if let Err(e) = std::fs::write(&baseline_path, base.to_json()) {
            eprintln!("fiveg-lint: cannot write {}: {e}", baseline_path.display());
            return ExitCode::FAILURE;
        }
        println!(
            "blessed {} findings into {}",
            report.findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let base = match load_baseline(&baseline_path) {
        Ok(b) => b,
        Err(msg) => {
            eprintln!("fiveg-lint: {msg}");
            return ExitCode::FAILURE;
        }
    };

    match mode {
        Mode::Json => {
            print!("{}", report_json(&report, &base));
            ExitCode::SUCCESS
        }
        Mode::Check => {
            let (_, new) = base.split(&report.findings);
            let stale = base.stale(&report.findings);
            if !stale.is_empty() {
                let gone: u64 = stale.iter().map(|(_, _, c)| c).sum();
                println!(
                    "note: {gone} baseline finding(s) no longer exist; run --bless to shrink the baseline"
                );
            }
            if new.is_empty() {
                println!(
                    "fiveg-lint: clean — {} files, {} grandfathered, {} suppressed, 0 new",
                    report.files,
                    report.findings.len(),
                    report.suppressed
                );
                return ExitCode::SUCCESS;
            }
            for f in &new {
                print_finding(f, true);
            }
            if let Some((rule, count)) = worst_rule(&new) {
                eprintln!(
                    "fiveg-lint: {} new finding(s); most from {rule} ({count}) — fix them or add `// fiveg-lint: allow({rule}) -- reason`",
                    new.len()
                );
            }
            ExitCode::from(2)
        }
        Mode::List => {
            let (old, new) = base.split(&report.findings);
            let new_set: std::collections::BTreeSet<(&str, u32, &str)> = new
                .iter()
                .map(|f| (f.file.as_str(), f.line, f.rule))
                .collect();
            for f in &report.findings {
                print_finding(f, new_set.contains(&(f.file.as_str(), f.line, f.rule)));
            }
            println!(
                "fiveg-lint: {} findings in {} files ({} grandfathered, {} new, {} suppressed)",
                report.findings.len(),
                report.files,
                old.len(),
                new.len(),
                report.suppressed
            );
            ExitCode::SUCCESS
        }
        Mode::Bless | Mode::SelfTest | Mode::Rules => unreachable!("handled above"),
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("fiveg-lint: {msg}\n\n{USAGE}");
    ExitCode::FAILURE
}

fn print_finding(f: &Finding, is_new: bool) {
    let tag = if is_new { "NEW " } else { "base" };
    println!("[{tag}] {}:{} {} `{}`", f.file, f.line, f.rule, f.excerpt);
    println!("        fix: {}", f.hint);
}

/// A missing baseline is an empty baseline, so the linter works before
/// the first `--bless`; a present-but-invalid one is a hard error.
fn load_baseline(path: &Path) -> Result<Baseline, String> {
    match std::fs::read_to_string(path) {
        Ok(text) => Baseline::parse(&text).map_err(|e| e.to_string()),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(Baseline::default()),
        Err(e) => Err(format!("cannot read {}: {e}", path.display())),
    }
}

fn find_workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
