//! The workspace model and the semantic rule families (S/F/W).
//!
//! The per-file token rules (D001–D005, U001) catch hazards visible on
//! one line. The hazards PR 7–9 introduced are *cross-file*: an obs
//! counter write buried three calls below a `ShardLogic` handler, a
//! crate quietly growing a dependency edge that inverts the layering, a
//! float reduction inside a scoped-thread closure. This module builds a
//! light workspace model — parsed [`crate::parser::FileModel`]s per
//! file, `fiveg-*` dependency edges per crate manifest, a name-resolved
//! call graph with shard-handler taint — and evaluates:
//!
//! * **S001** — obs metric writes (`counter_add` / `gauge_max` /
//!   `observe`) reachable from an `impl ShardLogic` handler, outside a
//!   per-origin scratch `Drop` flush. Ambient writes under the shard
//!   engine execute in worker order; only origin-keyed, chunk-structured
//!   flushes keep counters byte-identical across `FIVEG_SHARDS`.
//! * **S002** — `std::env` reads of `FIVEG_*` outside `core::par` (and
//!   the `campaign` crate). Scattered env reads fork run configuration.
//! * **S003** — mutable `static` / `thread_local!` state referenced
//!   from shard-handler-reachable code.
//! * **F001** — float accumulation (`+=`, `fold(0.0, ..)`,
//!   `sum::<f64>()`, `OnlineStats`) inside `par_map*` /
//!   `std::thread::scope` closures: reduction order varies with the
//!   thread count.
//! * **W001** — crate dependency edges outside the declared layering
//!   DAG ([`ALLOWED_DEPS`]).
//! * **W002** — library crates missing `#![forbid(unsafe_code)]`.
//! * **W003** — `pub` items without a rustdoc comment (ratcheted
//!   through the baseline, like U001 was).
//!
//! Call-graph edges are resolved *by name* within a crate and its
//! declared dependencies — a deliberate over-approximation (no type
//! information), tamed by the same pragma/baseline machinery as every
//! other rule. The `obs` and `trace` crates are exempt from S001/S003:
//! their ambient sinks are the *sanctioned* aggregation channels, and
//! their shard-invariance is proven end-to-end by the `ci.sh` shard
//! matrix and trace-determinism stages rather than statically.

use std::collections::{BTreeMap, BTreeSet};
use std::path::Path;

use crate::parser::{parse_file, FileModel};
use crate::rules::{file_pragmas, hint_for, test_regions_of, FileCtx, FileKind, Finding};

/// The declared crate-layering DAG: for each crate (by `crates/<name>`
/// directory name), the `fiveg-*` crates its `[dependencies]` section
/// may name. W001 fires on any edge not listed here — adding one is an
/// explicit, reviewed design decision, not a `Cargo.toml` drive-by.
///
/// Layering (bottom → top): `obs` and `trace` are leaf infrastructure;
/// `simcore` is the DES kernel; `geo`/`phy`/`ran`/`net`/`transport`/
/// `apps`/`energy` are the sim libraries; `scenario` is pure data
/// model; `campaign` schedules; `core` composes everything; `bench` is
/// the CLI shell. `lint` sees only `obs` (its JSON reader) — it must
/// stay buildable before anything else is.
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("obs", &[]),
    ("trace", &["obs"]),
    ("simcore", &["obs", "trace"]),
    ("geo", &["simcore"]),
    ("phy", &["simcore", "geo", "obs"]),
    ("ran", &["obs", "simcore", "geo", "phy", "trace"]),
    ("net", &["obs", "simcore", "trace"]),
    ("transport", &["obs", "simcore", "net", "trace"]),
    ("apps", &["simcore", "net", "transport"]),
    ("energy", &["obs", "simcore"]),
    ("scenario", &["obs", "geo"]),
    ("campaign", &["obs", "simcore", "trace"]),
    (
        "core",
        &[
            "simcore",
            "geo",
            "phy",
            "ran",
            "net",
            "transport",
            "apps",
            "energy",
            "campaign",
            "obs",
            "scenario",
            "trace",
        ],
    ),
    (
        "bench",
        &["core", "campaign", "obs", "trace", "geo", "scenario"],
    ),
    ("lint", &["obs"]),
];

/// Obs write entry points guarded by S001.
const OBS_WRITES: &[&str] = &["counter_add", "gauge_max", "observe"];

/// Crates whose internals are exempt from S001/S003: their ambient
/// sinks are the sanctioned aggregation channels (see module docs).
const SINK_CRATES: &[&str] = &["obs", "trace"];

/// One `fiveg-*` dependency edge from a crate manifest.
#[derive(Debug, Clone)]
pub struct Dep {
    /// Short crate name (`"obs"` for `fiveg-obs`).
    pub name: String,
    /// 1-based line of the dependency in the manifest.
    pub line: u32,
    /// Trimmed manifest line (the baseline key).
    pub excerpt: String,
}

/// One crate manifest, as W001/W002 see it.
#[derive(Debug, Clone)]
pub struct Manifest {
    /// `crates/<name>` directory name.
    pub crate_name: String,
    /// Workspace-relative manifest path (`crates/net/Cargo.toml`).
    pub rel_path: String,
    /// `fiveg-*` edges in the `[dependencies]` section only —
    /// dev-dependencies may reach across layers for tests.
    pub deps: Vec<Dep>,
}

impl Manifest {
    /// Parses the `[dependencies]` section of one `Cargo.toml` for
    /// `fiveg-*` edges. A line scan is enough: the manifests in this
    /// workspace are machine-written one-dep-per-line TOML.
    pub fn parse(crate_name: &str, rel_path: &str, text: &str) -> Manifest {
        let mut deps = Vec::new();
        let mut in_deps = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.starts_with('[') {
                in_deps = line == "[dependencies]";
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(rest) = line.strip_prefix("fiveg-") {
                if let Some(dep) = rest.split(['=', ' ']).next() {
                    if !dep.is_empty() {
                        deps.push(Dep {
                            name: dep.to_string(),
                            line: idx as u32 + 1,
                            excerpt: line.to_string(),
                        });
                    }
                }
            }
        }
        Manifest {
            crate_name: crate_name.to_string(),
            rel_path: rel_path.to_string(),
            deps,
        }
    }
}

/// Loads every `crates/<name>/Cargo.toml` under `root`.
pub fn load_manifests(root: &Path) -> std::io::Result<Vec<Manifest>> {
    let crates_dir = root.join("crates");
    if !crates_dir.is_dir() {
        return Ok(Vec::new());
    }
    let mut names: Vec<String> = std::fs::read_dir(&crates_dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .filter(|e| e.path().is_dir())
        .filter_map(|e| e.file_name().to_str().map(str::to_string))
        .collect();
    names.sort();
    let mut out = Vec::new();
    for name in names {
        let path = crates_dir.join(&name).join("Cargo.toml");
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        let rel = format!("crates/{name}/Cargo.toml");
        out.push(Manifest::parse(&name, &rel, &text));
    }
    Ok(out)
}

/// A source file handed to the analyzer.
#[derive(Debug)]
pub struct SourceFile {
    /// Classification (path, crate, kind).
    pub ctx: FileCtx,
    /// Full source text.
    pub src: String,
}

struct FileData<'a> {
    ctx: &'a FileCtx,
    src: &'a str,
    model: FileModel,
    tests: Vec<(u32, u32)>,
    lines: Vec<&'a str>,
}

impl FileData<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.ctx.kind == FileKind::Test || self.tests.iter().any(|&(a, b)| line >= a && line <= b)
    }

    fn excerpt(&self, line: u32) -> String {
        self.lines
            .get(line as usize - 1)
            .map(|l| l.trim().to_string())
            .unwrap_or_default()
    }
}

/// Runs the semantic pass over parsed sources + manifests. Returns
/// `(findings, suppressed_by_pragma)`; findings are unsorted (the
/// caller merges them with the per-file scan and sorts once).
pub fn analyze(files: &[SourceFile], manifests: &[Manifest]) -> (Vec<Finding>, usize) {
    let data: Vec<FileData> = files
        .iter()
        .map(|f| FileData {
            ctx: &f.ctx,
            src: &f.src,
            model: parse_file(&f.src),
            tests: test_regions_of(&f.src),
            lines: f.src.lines().collect(),
        })
        .collect();

    let mut raw: Vec<Finding> = Vec::new();
    let allowed: BTreeMap<&str, &[&str]> = ALLOWED_DEPS.iter().copied().collect();

    // --- W001: layering DAG ------------------------------------------------
    for m in manifests {
        let ok = allowed.get(m.crate_name.as_str()).copied().unwrap_or(&[]);
        for dep in &m.deps {
            if !ok.contains(&dep.name.as_str()) {
                raw.push(Finding {
                    file: m.rel_path.clone(),
                    line: dep.line,
                    rule: "W001",
                    excerpt: dep.excerpt.clone(),
                    hint: hint_for("W001"),
                });
            }
        }
    }

    // --- W002: forbid(unsafe_code) on every library crate root -------------
    for m in manifests {
        let lib_rel = format!("crates/{}/src/lib.rs", m.crate_name);
        let Some(lib) = data.iter().find(|d| d.ctx.rel_path == lib_rel) else {
            continue; // bin-only crate
        };
        if !lib.model.forbids_unsafe {
            raw.push(Finding {
                file: lib_rel,
                line: 1,
                rule: "W002",
                excerpt: lib.excerpt(1),
                hint: hint_for("W002"),
            });
        }
    }

    // --- crate dependency closure (for call resolution) --------------------
    let direct: BTreeMap<&str, BTreeSet<&str>> = manifests
        .iter()
        .map(|m| {
            (
                m.crate_name.as_str(),
                m.deps.iter().map(|d| d.name.as_str()).collect(),
            )
        })
        .collect();
    let closure = |start: &str| -> BTreeSet<String> {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut work = vec![start.to_string()];
        while let Some(c) = work.pop() {
            if let Some(deps) = direct.get(c.as_str()) {
                for d in deps {
                    if seen.insert((*d).to_string()) {
                        work.push((*d).to_string());
                    }
                }
            }
        }
        seen
    };

    // --- global fn index + shard taint -------------------------------------
    // Fn identity: (file index, fn index). Resolution is by callee name
    // within the caller's crate and its dependency closure.
    let mut by_name: BTreeMap<&str, Vec<(usize, usize)>> = BTreeMap::new();
    for (fi, d) in data.iter().enumerate() {
        for (gi, f) in d.model.fns.iter().enumerate() {
            by_name.entry(f.name.as_str()).or_default().push((fi, gi));
        }
    }
    let crate_of = |fi: usize| data[fi].ctx.crate_name.as_deref();
    let reachable_crates: BTreeMap<usize, BTreeSet<String>> = data
        .iter()
        .enumerate()
        .map(|(fi, _)| {
            let mut set = match crate_of(fi) {
                Some(c) => closure(c),
                None => BTreeSet::new(),
            };
            if let Some(c) = crate_of(fi) {
                set.insert(c.to_string());
            }
            (fi, set)
        })
        .collect();

    let mut tainted: BTreeSet<(usize, usize)> = BTreeSet::new();
    let mut work: Vec<(usize, usize)> = Vec::new();
    for (fi, d) in data.iter().enumerate() {
        if d.ctx.kind != FileKind::Lib {
            continue;
        }
        for (gi, f) in d.model.fns.iter().enumerate() {
            let is_shard_impl = f
                .impl_ctx
                .as_ref()
                .is_some_and(|c| c.trait_name.as_deref() == Some("ShardLogic"));
            if is_shard_impl && !d.in_test(f.line) && tainted.insert((fi, gi)) {
                work.push((fi, gi));
            }
        }
    }
    while let Some((fi, gi)) = work.pop() {
        let caller_crates = &reachable_crates[&fi];
        for call in &data[fi].model.fns[gi].calls {
            let Some(cands) = by_name.get(call.name.as_str()) else {
                continue;
            };
            for &(cfi, cgi) in cands {
                let callee_crate = crate_of(cfi);
                let in_scope = match callee_crate {
                    Some(c) => caller_crates.contains(c),
                    None => false,
                };
                if in_scope
                    && data[cfi].ctx.kind == FileKind::Lib
                    && !data[cfi].in_test(data[cfi].model.fns[cgi].line)
                    && tainted.insert((cfi, cgi))
                {
                    work.push((cfi, cgi));
                }
            }
        }
    }

    // --- mutable statics (for S003) ----------------------------------------
    let mut mut_statics: BTreeMap<&str, Vec<usize>> = BTreeMap::new(); // name -> file idx
    for (fi, d) in data.iter().enumerate() {
        for s in &d.model.statics {
            let mutable = s.thread_local || ty_has_interior_mutability(&s.ty);
            if mutable {
                mut_statics.entry(s.name.as_str()).or_default().push(fi);
            }
        }
    }

    // --- S001 / S003 over tainted fns --------------------------------------
    for &(fi, gi) in &tainted {
        let d = &data[fi];
        let Some(krate) = crate_of(fi) else { continue };
        if SINK_CRATES.contains(&krate) {
            continue;
        }
        let f = &d.model.fns[gi];
        let in_drop = f
            .impl_ctx
            .as_ref()
            .is_some_and(|c| c.trait_name.as_deref() == Some("Drop"));
        for call in &f.calls {
            if OBS_WRITES.contains(&call.name.as_str()) && !in_drop && !d.in_test(call.line) {
                raw.push(Finding {
                    file: d.ctx.rel_path.clone(),
                    line: call.line,
                    rule: "S001",
                    excerpt: d.excerpt(call.line),
                    hint: hint_for("S001"),
                });
            }
        }
        let visible = &reachable_crates[&fi];
        for r in &f.screaming_refs {
            let Some(decl_files) = mut_statics.get(r.name.as_str()) else {
                continue;
            };
            let in_scope = decl_files
                .iter()
                .any(|&sfi| crate_of(sfi).is_some_and(|c| c == krate || visible.contains(c)));
            if in_scope && !d.in_test(r.line) {
                raw.push(Finding {
                    file: d.ctx.rel_path.clone(),
                    line: r.line,
                    rule: "S003",
                    excerpt: d.excerpt(r.line),
                    hint: hint_for("S003"),
                });
            }
        }
    }

    // --- S002 / F001 / W003 per file ---------------------------------------
    for d in &data {
        if d.ctx.kind != FileKind::Lib {
            continue;
        }
        let krate = d.ctx.crate_name.as_deref().unwrap_or("");
        let env_exempt = krate == "campaign" || d.ctx.rel_path == "crates/core/src/par.rs";
        if !env_exempt {
            for e in &d.model.env_reads {
                if !d.in_test(e.line) {
                    raw.push(Finding {
                        file: d.ctx.rel_path.clone(),
                        line: e.line,
                        rule: "S002",
                        excerpt: d.excerpt(e.line),
                        hint: hint_for("S002"),
                    });
                }
            }
        }
        for fa in &d.model.float_par {
            if !d.in_test(fa.line) {
                raw.push(Finding {
                    file: d.ctx.rel_path.clone(),
                    line: fa.line,
                    rule: "F001",
                    excerpt: d.excerpt(fa.line),
                    hint: hint_for("F001"),
                });
            }
        }
        for p in &d.model.pub_items {
            if !p.has_doc && !d.in_test(p.line) {
                raw.push(Finding {
                    file: d.ctx.rel_path.clone(),
                    line: p.line,
                    rule: "W003",
                    excerpt: d.excerpt(p.line),
                    hint: hint_for("W003"),
                });
            }
        }
    }

    // One finding per (rule, file, line): taint can reach a fn through
    // several paths, the hazard site is still one.
    raw.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    raw.dedup_by(|a, b| a.rule == b.rule && a.file == b.file && a.line == b.line);

    // --- pragma suppression (same contract as the per-file scan) -----------
    let mut pragmas: BTreeMap<&str, Vec<(u32, Vec<String>)>> = BTreeMap::new();
    for d in &data {
        pragmas.insert(d.ctx.rel_path.as_str(), file_pragmas(d.src));
    }
    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    for f in raw {
        let hit = pragmas.get(f.file.as_str()).is_some_and(|ps| {
            ps.iter().any(|(line, rules)| {
                (*line == f.line || *line + 1 == f.line) && rules.iter().any(|r| r == f.rule)
            })
        });
        if hit {
            suppressed += 1;
        } else {
            findings.push(f);
        }
    }
    (findings, suppressed)
}

/// True when a static's type tokens imply interior mutability that
/// shard handlers could race on or order-depend on. Write-once cells
/// (`OnceLock`, `OnceCell`, `LazyLock`) are excluded: they cannot vary
/// across shard schedules after initialization.
fn ty_has_interior_mutability(ty: &str) -> bool {
    ty.split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .any(|word| {
            word.starts_with("Atomic")
                || matches!(word, "Mutex" | "RwLock" | "RefCell" | "Cell" | "UnsafeCell")
        })
}

/// Validates the declared DAG itself: every named dep exists as a key
/// and the graph is acyclic (a topological order exists). Used by unit
/// tests so the table cannot decay into something self-contradictory.
pub fn dag_is_well_formed() -> Result<(), String> {
    let keys: BTreeSet<&str> = ALLOWED_DEPS.iter().map(|(k, _)| *k).collect();
    for (k, deps) in ALLOWED_DEPS {
        for d in *deps {
            if !keys.contains(d) {
                return Err(format!("crate `{k}` allows unknown dep `{d}`"));
            }
        }
    }
    // Kahn's algorithm over the allowed edges.
    let mut indeg: BTreeMap<&str, usize> = keys.iter().map(|k| (*k, 0)).collect();
    for (_, deps) in ALLOWED_DEPS {
        for d in *deps {
            if let Some(n) = indeg.get_mut(d) {
                *n += 1;
            }
        }
    }
    let mut ready: Vec<&str> = indeg
        .iter()
        .filter(|(_, &n)| n == 0)
        .map(|(k, _)| *k)
        .collect();
    let mut done = 0usize;
    while let Some(k) = ready.pop() {
        done += 1;
        let deps = ALLOWED_DEPS
            .iter()
            .find(|(name, _)| *name == k)
            .map_or(&[][..], |(_, d)| *d);
        for d in deps {
            if let Some(n) = indeg.get_mut(d) {
                *n -= 1;
                if *n == 0 {
                    ready.push(d);
                }
            }
        }
    }
    if done != keys.len() {
        return Err("layering DAG has a cycle".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src_file(path: &str, src: &str) -> SourceFile {
        SourceFile {
            ctx: FileCtx::classify(path).expect("classifiable"),
            src: src.to_string(),
        }
    }

    fn rules_at(findings: &[Finding]) -> Vec<(&str, u32)> {
        findings.iter().map(|f| (f.rule, f.line)).collect()
    }

    #[test]
    fn declared_dag_is_well_formed() {
        dag_is_well_formed().expect("DAG must be acyclic and closed");
    }

    #[test]
    fn manifest_parse_reads_dependencies_only() {
        let toml = "\
[package]
name = \"fiveg-net\"

[dependencies]
fiveg-obs = { workspace = true }
fiveg-simcore = { workspace = true }

[dev-dependencies]
fiveg-core = { workspace = true }
";
        let m = Manifest::parse("net", "crates/net/Cargo.toml", toml);
        let names: Vec<&str> = m.deps.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["obs", "simcore"]);
        assert_eq!(m.deps[0].line, 5);
    }

    #[test]
    fn w001_fires_on_undeclared_edges() {
        let m = Manifest::parse(
            "geo",
            "crates/geo/Cargo.toml",
            "[dependencies]\nfiveg-simcore = { workspace = true }\nfiveg-core = { workspace = true }\n",
        );
        let (f, _) = analyze(&[], &[m]);
        assert_eq!(rules_at(&f), vec![("W001", 3)]);
    }

    #[test]
    fn w002_fires_without_forbid() {
        let m = Manifest::parse("net", "crates/net/Cargo.toml", "[dependencies]\n");
        let lib = src_file("crates/net/src/lib.rs", "//! Net.\npub mod sim;\n");
        let (f, _) = analyze(&[lib], &[m]);
        assert!(rules_at(&f).contains(&("W002", 1)));
        let m = Manifest::parse("net", "crates/net/Cargo.toml", "[dependencies]\n");
        let lib = src_file(
            "crates/net/src/lib.rs",
            "//! Net.\n#![forbid(unsafe_code)]\npub mod sim;\n",
        );
        let (f, _) = analyze(&[lib], &[m]);
        assert!(!rules_at(&f).iter().any(|&(r, _)| r == "W002"));
    }

    #[test]
    fn s001_taint_reaches_through_helpers() {
        let src = "
impl ShardLogic for Node {
    fn handle(&mut self) { self.helper(); }
}
impl Node {
    fn helper(&mut self) { fiveg_obs::counter_add(\"x.y\", 1); }
}
fn unrelated() { fiveg_obs::counter_add(\"x.z\", 1); }
";
        let (f, _) = analyze(&[src_file("crates/core/src/fx.rs", src)], &[]);
        assert_eq!(rules_at(&f), vec![("S001", 6)]);
    }

    #[test]
    fn s001_exempts_drop_flush_and_sink_crates() {
        let src = "
impl ShardLogic for Node {
    fn handle(&mut self) { scratch_done(); }
}
fn scratch_done() { let s = Scratch; drop(s); }
impl Drop for Scratch {
    fn drop(&mut self) { fiveg_obs::counter_add(\"x.y\", 1); }
}
";
        let (f, _) = analyze(&[src_file("crates/phy/src/fx.rs", src)], &[]);
        assert!(!rules_at(&f).iter().any(|&(r, _)| r == "S001"), "{f:?}");
        // Same shape inside the trace crate: exempt wholesale.
        let src = "
impl ShardLogic for Node {
    fn handle(&mut self) { fiveg_obs::counter_add(\"t\", 1); }
}
";
        let (f, _) = analyze(&[src_file("crates/trace/src/fx.rs", src)], &[]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn s003_flags_mutable_static_refs() {
        let src = "
static SEQ: AtomicU64 = AtomicU64::new(0);
static LIMIT: usize = 8;
impl ShardLogic for Node {
    fn handle(&mut self) {
        SEQ.fetch_add(1, Ordering::Relaxed);
        let _ = LIMIT;
    }
}
";
        let (f, _) = analyze(&[src_file("crates/core/src/fx.rs", src)], &[]);
        assert_eq!(rules_at(&f), vec![("S003", 6)]);
    }

    #[test]
    fn s002_scopes_env_reads() {
        let src = "fn f() { let v = std::env::var(\"FIVEG_SHARDS\"); }\n";
        let (f, _) = analyze(&[src_file("crates/net/src/fx.rs", src)], &[]);
        assert_eq!(rules_at(&f), vec![("S002", 1)]);
        // core::par and campaign are the sanctioned homes.
        let (f, _) = analyze(&[src_file("crates/core/src/par.rs", src)], &[]);
        assert!(f.is_empty());
        let (f, _) = analyze(&[src_file("crates/campaign/src/fx.rs", src)], &[]);
        assert!(f.is_empty());
    }

    #[test]
    fn w003_ratchets_pub_docs() {
        let src = "/// Doc.\npub fn a() {}\npub fn b() {}\nfn c() {}\n";
        let (f, _) = analyze(&[src_file("crates/geo/src/fx.rs", src)], &[]);
        assert_eq!(rules_at(&f), vec![("W003", 3)]);
    }

    #[test]
    fn pragmas_suppress_semantic_findings() {
        let src = "\
// fiveg-lint: allow(W003) -- internal-only surface kept pub for benches
pub fn a() {}
pub fn b() {}
";
        let (f, s) = analyze(&[src_file("crates/geo/src/fx.rs", src)], &[]);
        assert_eq!(s, 1);
        assert_eq!(rules_at(&f), vec![("W003", 3)]);
    }

    #[test]
    fn test_regions_are_exempt() {
        let src = "
#[cfg(test)]
mod tests {
    impl ShardLogic for T { fn handle(&mut self) { fiveg_obs::counter_add(\"x\", 1); } }
    pub fn helper() {}
}
";
        let (f, _) = analyze(&[src_file("crates/core/src/fx.rs", src)], &[]);
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn cross_crate_taint_respects_dependency_edges() {
        let core_manifest = Manifest::parse(
            "core",
            "crates/core/Cargo.toml",
            "[dependencies]\nfiveg-phy = { workspace = true }\n",
        );
        let phy_manifest = Manifest::parse("phy", "crates/phy/Cargo.toml", "[dependencies]\n");
        let core_src = "
impl ShardLogic for Node {
    fn handle(&mut self) { measure_site(); }
}
";
        let phy_src = "fn measure_site() { fiveg_obs::counter_add(\"phy.x\", 1); }\n";
        let (f, _) = analyze(
            &[
                src_file("crates/core/src/fx.rs", core_src),
                src_file("crates/phy/src/fx.rs", phy_src),
            ],
            &[core_manifest, phy_manifest],
        );
        assert_eq!(rules_at(&f), vec![("S001", 1)]);
        // Reverse direction: phy does not depend on core, so a handler
        // in phy cannot taint a core fn.
        let phy_handler = "
impl ShardLogic for Node {
    fn handle(&mut self) { core_helper(); }
}
";
        let core_helper = "fn core_helper() { fiveg_obs::counter_add(\"c.x\", 1); }\n";
        let core_manifest = Manifest::parse(
            "core",
            "crates/core/Cargo.toml",
            "[dependencies]\nfiveg-phy = { workspace = true }\n",
        );
        let phy_manifest = Manifest::parse("phy", "crates/phy/Cargo.toml", "[dependencies]\n");
        let (f, _) = analyze(
            &[
                src_file("crates/phy/src/fx.rs", phy_handler),
                src_file("crates/core/src/fx.rs", core_helper),
            ],
            &[core_manifest, phy_manifest],
        );
        assert!(f.is_empty(), "{f:?}");
    }
}
