//! `fiveg-lint`: the workspace determinism linter.
//!
//! The campaign goldens prove *that* every artifact is byte-identical
//! for any `--jobs`/thread count; this crate proves *where* a hazard
//! entered. It scans `crates/`, `tests/` and `examples/` (never
//! `vendor/`) with its own Rust tokenizer and enforces the project's
//! determinism invariants as named rules (see [`rules::RULES`]):
//!
//! | rule | invariant |
//! |------|-----------|
//! | D001 | no `HashMap`/`HashSet` in sim-crate library code |
//! | D002 | no float comparators built on `partial_cmp` |
//! | D003 | no wall-clock reads outside `fiveg-obs` |
//! | D004 | no `static mut` globals |
//! | D005 | no unseeded RNG outside tests |
//! | U001 | no `unwrap()`/`expect()` in library code |
//!
//! On top of the per-file token scan, a workspace-level *semantic*
//! pass ([`workspace`]) parses every file into an item model
//! ([`parser`]), resolves a name-based call graph, and enforces the
//! cross-file rule families: S-rules (shard safety: S001–S003),
//! F-rules (float determinism: F001) and W-rules (workspace
//! architecture: W001–W003). See [`workspace`] for the rule semantics
//! and the declared crate-layering DAG.
//!
//! Suppression is explicit — a
//! `// fiveg-lint: allow(D00x) -- reason` pragma — or grandfathered
//! through the committed `golden/lint-baseline.json` ratchet, so CI
//! fails only on *new* findings and the baseline shrinks over time.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod parser;
pub mod rules;
pub mod selftest;
pub mod tokenizer;
pub mod workspace;

use std::fs;
use std::path::{Path, PathBuf};

pub use baseline::{Baseline, BaselineError};
pub use rules::{scan_file, FileCtx, FileKind, Finding, RULES};

/// Directories scanned under the workspace root.
pub const SCAN_ROOTS: &[&str] = &["crates", "tests", "examples"];

/// Default baseline location relative to the workspace root.
pub const BASELINE_PATH: &str = "golden/lint-baseline.json";

/// Everything one scan produced.
#[derive(Debug, Default)]
pub struct ScanReport {
    /// All unsuppressed findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Number of findings silenced by pragmas.
    pub suppressed: usize,
    /// Number of `.rs` files scanned.
    pub files: usize,
}

/// Scans the workspace rooted at `root`: the per-file token rules on
/// every source file, then the semantic workspace pass (S/F/W rules)
/// over the whole set plus the crate manifests. Files are visited in
/// sorted path order so the report is deterministic; `vendor/`,
/// `target/` and lint fixture directories are never scanned.
pub fn scan_workspace(root: &Path) -> std::io::Result<ScanReport> {
    let mut files = Vec::new();
    for dir in SCAN_ROOTS {
        collect_rs_files(&root.join(dir), &mut files)?;
    }
    files.sort();
    let mut report = ScanReport::default();
    let mut sources: Vec<workspace::SourceFile> = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let Some(ctx) = FileCtx::classify(&rel) else {
            continue;
        };
        let src = fs::read_to_string(&path)?;
        let (findings, suppressed) = scan_file(&ctx, &src);
        report.findings.extend(findings);
        report.suppressed += suppressed;
        report.files += 1;
        sources.push(workspace::SourceFile { ctx, src });
    }
    let manifests = workspace::load_manifests(root)?;
    let (semantic, suppressed) = workspace::analyze(&sources, &manifests);
    report.findings.extend(semantic);
    report.suppressed += suppressed;
    report
        .findings
        .sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(report)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == "vendor" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Renders findings as the stable JSON report (`--json`): findings
/// sorted by (file, line, rule), object keys sorted, no wall-clock or
/// host-dependent fields — byte-identical across runs and machines.
pub fn report_json(report: &ScanReport, base: &Baseline) -> String {
    let (_, new) = base.split(&report.findings);
    let new_keys: std::collections::BTreeSet<(&str, u32, &str)> = new
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.rule))
        .collect();
    let mut out = String::from("{\n  \"findings\": [\n");
    let mut first = true;
    for f in &report.findings {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let is_new = new_keys.contains(&(f.file.as_str(), f.line, f.rule));
        out.push_str("    {\"excerpt\": ");
        baseline::escape_json_into(&mut out, &f.excerpt);
        out.push_str(", \"file\": ");
        baseline::escape_json_into(&mut out, &f.file);
        out.push_str(", \"hint\": ");
        baseline::escape_json_into(&mut out, f.hint);
        out.push_str(&format!(
            ", \"line\": {}, \"new\": {}, \"rule\": ",
            f.line, is_new
        ));
        baseline::escape_json_into(&mut out, f.rule);
        out.push('}');
    }
    if !report.findings.is_empty() {
        out.push('\n');
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"summary\": {{\"files\": {}, \"new\": {}, \"suppressed\": {}, \"total\": {}}},\n",
        report.files,
        new.len(),
        report.suppressed,
        report.findings.len()
    ));
    out.push_str("  \"schema\": 1\n}\n");
    out
}

/// The rule id with the most entries in `new`, with its count — named
/// in the CI failure message so the offending invariant is obvious.
pub fn worst_rule<'a>(new: &[&'a Finding]) -> Option<(&'a str, usize)> {
    let mut counts: std::collections::BTreeMap<&str, usize> = std::collections::BTreeMap::new();
    for f in new {
        *counts.entry(f.rule).or_insert(0) += 1;
    }
    // max_by_key returns the *last* max; iterate explicitly so ties
    // break toward the lexically-first rule id, deterministically.
    let mut best: Option<(&str, usize)> = None;
    for (rule, count) in counts {
        if best.is_none_or(|(_, c)| count > c) {
            best = Some((rule, count));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_rule_breaks_ties_deterministically() {
        let mk = |rule: &'static str| Finding {
            file: "f.rs".into(),
            line: 1,
            rule,
            excerpt: String::new(),
            hint: "",
        };
        let a = mk("U001");
        let b = mk("D001");
        let c = mk("D001");
        let new = vec![&a, &b, &c];
        assert_eq!(worst_rule(&new), Some(("D001", 2)));
        let tie = vec![&a, &b];
        assert_eq!(worst_rule(&tie), Some(("D001", 1)));
        assert_eq!(worst_rule(&[]), None);
    }

    #[test]
    fn report_json_is_stable() {
        let report = ScanReport {
            findings: vec![Finding {
                file: "crates/x/src/a.rs".into(),
                line: 3,
                rule: "U001",
                excerpt: "x.unwrap();".into(),
                hint: "h",
            }],
            suppressed: 1,
            files: 2,
        };
        let base = Baseline::default();
        let one = report_json(&report, &base);
        let two = report_json(&report, &base);
        assert_eq!(one, two);
        assert!(one.contains("\"new\": true"));
        let parsed = fiveg_obs::parse_json(&one).expect("valid json");
        assert_eq!(
            parsed
                .get("summary")
                .and_then(|s| s.get("total"))
                .and_then(fiveg_obs::JsonValue::as_u64),
            Some(1)
        );
    }
}
