//! Item-level parsing on top of [`crate::tokenizer`].
//!
//! The workspace rules (S/F/W families) need more structure than a
//! token stream: which `fn` a call site lives in, whether that fn sits
//! inside an `impl ShardLogic for ...` block, where a parallel-closure
//! region starts and ends, which `pub` items carry a rustdoc comment.
//! This module recovers exactly that — modules, `fn`/`impl`/`trait`
//! items, statics, `thread_local!` declarations and closure-bearing
//! call regions — as a flat [`FileModel`] of *facts*, still with zero
//! external dependencies.
//!
//! Like the tokenizer, the parser must never fail: on syntactically
//! broken input it degrades to recording fewer facts, never panics and
//! never reports a line outside the file. (A property test drives
//! arbitrary inputs through it.)

use crate::tokenizer::{tokenize, Tok, TokKind};

/// The innermost `impl` block a fn sits in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ImplCtx {
    /// `Some("ShardLogic")` for `impl fiveg_simcore::shard::ShardLogic
    /// for FleetNode` — the last path segment before `for`. `None` for
    /// inherent impls.
    pub trait_name: Option<String>,
    /// First path segment of the self type (`FleetNode`).
    pub type_name: String,
}

/// One call site inside a fn body: the callee's final name segment.
#[derive(Debug, Clone)]
pub struct Call {
    /// Identifier directly before the `(`.
    pub name: String,
    /// 1-based line of the callee identifier.
    pub line: u32,
}

/// One `fn` item (free, inherent method, or trait-impl method).
#[derive(Debug, Clone)]
pub struct FnInfo {
    /// The fn's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Innermost enclosing `impl` block, if any.
    pub impl_ctx: Option<ImplCtx>,
    /// `pub` without a `pub(...)` restriction.
    pub is_pub: bool,
    /// Preceded by a `///` / `/**` / `#[doc]` comment.
    pub has_doc: bool,
    /// Every `name(` call site in the body (methods and plain calls).
    pub calls: Vec<Call>,
    /// SCREAMING_SNAKE_CASE identifiers referenced in the body — the
    /// candidates for static/`thread_local!` state access (S003).
    pub screaming_refs: Vec<Call>,
}

/// A `static` item (or a `static` inside `thread_local!`).
#[derive(Debug, Clone)]
pub struct StaticInfo {
    /// The static's name.
    pub name: String,
    /// 1-based line of the name.
    pub line: u32,
    /// The type tokens joined with spaces (`AtomicU64`, `RefCell < V >`).
    pub ty: String,
    /// Declared inside a `thread_local! { ... }` block.
    pub thread_local: bool,
}

/// A `pub` item eligible for the W003 doc ratchet.
#[derive(Debug, Clone)]
pub struct PubItem {
    /// Item keyword (`fn`, `struct`, ...).
    pub kind: &'static str,
    /// The item's name.
    pub name: String,
    /// 1-based line of the item keyword.
    pub line: u32,
    /// Preceded by a rustdoc comment.
    pub has_doc: bool,
}

/// A float-accumulation hazard inside a parallel-closure region (F001).
#[derive(Debug, Clone)]
pub struct FloatAccum {
    /// 1-based line of the hazard.
    pub line: u32,
    /// What was matched (`+=`, `fold`, `sum::<f64>`, `OnlineStats`).
    pub what: &'static str,
}

/// A `std::env` read of a `FIVEG_*` variable (S002).
#[derive(Debug, Clone)]
pub struct EnvRead {
    /// 1-based line of the `env` identifier.
    pub line: u32,
    /// The literal variable name, quotes stripped.
    pub var: String,
}

/// Everything the workspace rules need to know about one file.
#[derive(Debug, Clone, Default)]
pub struct FileModel {
    /// All fn items, in source order.
    pub fns: Vec<FnInfo>,
    /// Item-level statics and `thread_local!` declarations.
    pub statics: Vec<StaticInfo>,
    /// `pub` items for the doc ratchet.
    pub pub_items: Vec<PubItem>,
    /// Float accumulations inside `par_map*` / `thread::scope` closures.
    pub float_par: Vec<FloatAccum>,
    /// `FIVEG_*` environment reads.
    pub env_reads: Vec<EnvRead>,
    /// File has an inner `#![forbid(unsafe_code)]` attribute.
    pub forbids_unsafe: bool,
    /// Number of lines in the file (span sanity bound).
    pub lines: u32,
}

/// Keywords that look like `name(` call sites but are control flow.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "loop", "return", "as", "in", "move", "mut", "ref", "else",
    "let", "fn", "impl", "use", "pub", "struct", "enum", "where", "break", "continue", "await",
    "async", "dyn", "unsafe", "const", "static", "type", "trait", "mod", "crate", "super", "self",
    "Self",
];

/// Function names whose argument list is a parallel region: any closure
/// passed to them runs on multiple workers concurrently.
const PAR_ENTRYPOINTS: &[&str] = &["par_map", "par_map_threads", "par_map_with"];

/// Parses one file into its fact model. Never panics; unknown syntax
/// is skipped, not diagnosed.
pub fn parse_file(src: &str) -> FileModel {
    let toks = tokenize(src);
    let sig: Vec<&Tok> = toks.iter().filter(|t| !t.is_comment()).collect();
    // `has_doc` needs the comment tokens: for each significant token,
    // remember its index in the full stream.
    let full_index: Vec<usize> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_comment())
        .map(|(i, _)| i)
        .collect();
    let mut p = Parser {
        toks: &toks,
        sig: &sig,
        full_index: &full_index,
        model: FileModel {
            lines: src.lines().count() as u32 + 1,
            ..FileModel::default()
        },
    };
    p.scan_inner_attrs();
    let mut i = 0;
    p.parse_items(&mut i, sig.len(), None);
    p.model
}

struct Parser<'a, 'b> {
    toks: &'b [Tok<'a>],
    sig: &'b [&'b Tok<'a>],
    full_index: &'b [usize],
    model: FileModel,
}

impl Parser<'_, '_> {
    fn text(&self, i: usize) -> &str {
        self.sig.get(i).map_or("", |t| t.text)
    }

    fn line(&self, i: usize) -> u32 {
        self.sig.get(i).map_or(1, |t| t.line)
    }

    /// Detects `#![forbid(unsafe_code)]` anywhere in the file (crate
    /// roots carry it as the inner attribute block).
    fn scan_inner_attrs(&mut self) {
        for w in self.sig.windows(6) {
            if w[0].text == "#"
                && w[1].text == "!"
                && w[2].text == "["
                && w[3].text == "forbid"
                && w[4].text == "("
                && w[5].text == "unsafe_code"
            {
                self.model.forbids_unsafe = true;
                return;
            }
        }
    }

    /// True when a rustdoc comment (`///`, `/**` or a `#[doc`
    /// attribute) directly precedes significant token `i`, looking
    /// back across attributes and ordinary comments. Inner docs
    /// (`//!`, `/*!`) attach to the enclosing module, never to the
    /// item that happens to follow them, so they don't count.
    fn has_doc_before(&self, i: usize) -> bool {
        let Some(&full) = self.full_index.get(i) else {
            return false;
        };
        let mut j = full;
        while j > 0 {
            j -= 1;
            let t = &self.toks[j];
            match t.kind {
                TokKind::LineComment => {
                    if t.text.starts_with("///") {
                        return true;
                    }
                }
                TokKind::BlockComment => {
                    if t.text.starts_with("/**") && t.text != "/**/" {
                        return true;
                    }
                }
                _ => {
                    // Skip a preceding attribute `#[...]` wholesale; any
                    // other token ends the lookback.
                    if t.text == "]" {
                        let mut depth = 1usize;
                        while j > 0 && depth > 0 {
                            j -= 1;
                            match self.toks[j].text {
                                "]" => depth += 1,
                                "[" => depth -= 1,
                                _ => {}
                            }
                        }
                        if j > 0 && self.toks[j - 1].text == "#" {
                            // `#[doc = "..."]` counts as documentation.
                            if self.toks.get(j + 1).is_some_and(|t| t.text == "doc") {
                                return true;
                            }
                            j -= 1;
                            continue;
                        }
                        return false;
                    }
                    return false;
                }
            }
        }
        false
    }

    /// Advances past a balanced `open`/`close` group; `i` enters at the
    /// opening token and leaves just past the matching close (or at
    /// `end` on truncated input).
    fn skip_balanced(&self, i: &mut usize, end: usize, open: &str, close: &str) {
        let mut depth = 0usize;
        while *i < end {
            let t = self.text(*i);
            if t == open {
                depth += 1;
            } else if t == close {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    *i += 1;
                    return;
                }
            }
            *i += 1;
        }
    }

    /// Parses items in `sig[*i..end]`; `impl_ctx` is the innermost
    /// enclosing impl block.
    #[allow(clippy::too_many_lines)]
    fn parse_items(&mut self, i: &mut usize, end: usize, impl_ctx: Option<&ImplCtx>) {
        let mut is_pub = false;
        let mut pub_token: Option<usize> = None;
        while *i < end {
            let t = self.text(*i);
            match t {
                "pub" => {
                    pub_token = Some(*i);
                    *i += 1;
                    // `pub(crate)` and friends are not external API.
                    if self.text(*i) == "(" {
                        self.skip_balanced(i, end, "(", ")");
                        is_pub = false;
                    } else {
                        is_pub = true;
                    }
                    continue;
                }
                "#" => {
                    // Attribute: `#[...]` or `#![...]`.
                    *i += 1;
                    if self.text(*i) == "!" {
                        *i += 1;
                    }
                    if self.text(*i) == "[" {
                        self.skip_balanced(i, end, "[", "]");
                    }
                    continue;
                }
                "fn" => {
                    let doc_at = pub_token.unwrap_or(*i);
                    self.parse_fn(i, end, impl_ctx, is_pub, self.has_doc_before(doc_at));
                }
                "impl" => {
                    self.parse_impl(i, end);
                }
                "mod" => {
                    let line = self.line(*i);
                    let kw = *i;
                    *i += 1;
                    let name = self.text(*i).to_string();
                    // Only *inline* `pub mod name { .. }` is API surface
                    // needing a doc here; an out-of-line `pub mod name;`
                    // carries its docs as the module file's `//!` header.
                    if is_pub && !name.is_empty() && self.text(*i + 1) == "{" {
                        let has_doc = self.has_doc_before(pub_token.unwrap_or(kw));
                        self.model.pub_items.push(PubItem {
                            kind: "mod",
                            name,
                            line,
                            has_doc,
                        });
                    }
                    *i += 1;
                    if self.text(*i) == "{" {
                        let mut j = *i;
                        self.skip_balanced(&mut j, end, "{", "}");
                        *i += 1; // step inside the brace
                        self.parse_items(i, j.saturating_sub(1), None);
                        *i = j;
                    } else if self.text(*i) == ";" {
                        *i += 1;
                    }
                }
                "struct" | "enum" | "trait" | "union" | "type" => {
                    let kind: &'static str = match t {
                        "struct" => "struct",
                        "enum" => "enum",
                        "trait" => "trait",
                        "union" => "union",
                        _ => "type",
                    };
                    let line = self.line(*i);
                    let kw = *i;
                    *i += 1;
                    let name = self.text(*i).to_string();
                    if is_pub && !name.is_empty() {
                        let has_doc = self.has_doc_before(pub_token.unwrap_or(kw));
                        self.model.pub_items.push(PubItem {
                            kind,
                            name,
                            line,
                            has_doc,
                        });
                    }
                    *i += 1;
                    // Body: trait bodies contain items (default methods);
                    // struct/enum bodies are data and are skipped.
                    while *i < end && self.text(*i) != "{" && self.text(*i) != ";" {
                        if self.text(*i) == "(" {
                            // Tuple struct: skip fields, then expect `;`.
                            self.skip_balanced(i, end, "(", ")");
                            continue;
                        }
                        *i += 1;
                    }
                    if self.text(*i) == "{" {
                        if kind == "trait" {
                            let mut j = *i;
                            self.skip_balanced(&mut j, end, "{", "}");
                            *i += 1;
                            self.parse_items(i, j.saturating_sub(1), None);
                            *i = j;
                        } else {
                            self.skip_balanced(i, end, "{", "}");
                        }
                    } else if self.text(*i) == ";" {
                        *i += 1;
                    }
                }
                "static" | "const" => {
                    // `const fn` is handled by the `fn` arm next round.
                    if self.text(*i + 1) == "fn"
                        || (self.text(*i + 1) == "unsafe" && self.text(*i + 2) == "fn")
                    {
                        *i += 1;
                        continue;
                    }
                    let kind: &'static str = if t == "static" { "static" } else { "const" };
                    let line = self.line(*i);
                    let kw = *i;
                    *i += 1;
                    if self.text(*i) == "mut" {
                        *i += 1;
                    }
                    let name = self.text(*i).to_string();
                    let name_line = self.line(*i);
                    *i += 1;
                    let mut ty = String::new();
                    if self.text(*i) == ":" {
                        *i += 1;
                        while *i < end && self.text(*i) != "=" && self.text(*i) != ";" {
                            if !ty.is_empty() {
                                ty.push(' ');
                            }
                            ty.push_str(self.text(*i));
                            *i += 1;
                        }
                    }
                    while *i < end && self.text(*i) != ";" {
                        if self.text(*i) == "{" {
                            self.skip_balanced(i, end, "{", "}");
                            continue;
                        }
                        *i += 1;
                    }
                    if kind == "static" && !name.is_empty() {
                        self.model.statics.push(StaticInfo {
                            name: name.clone(),
                            line: name_line,
                            ty,
                            thread_local: false,
                        });
                    }
                    if is_pub && !name.is_empty() {
                        let has_doc = self.has_doc_before(pub_token.unwrap_or(kw));
                        self.model.pub_items.push(PubItem {
                            kind,
                            name,
                            line,
                            has_doc,
                        });
                    }
                }
                "thread_local" if self.text(*i + 1) == "!" => {
                    *i += 2;
                    if self.text(*i) == "{" || self.text(*i) == "(" {
                        let (open, close) = if self.text(*i) == "{" {
                            ("{", "}")
                        } else {
                            ("(", ")")
                        };
                        let mut j = *i;
                        self.skip_balanced(&mut j, end, open, close);
                        // Record each `static NAME` inside the macro body.
                        let mut k = *i;
                        while k < j {
                            if self.text(k) == "static" {
                                let name = self.text(k + 1).to_string();
                                if !name.is_empty() {
                                    self.model.statics.push(StaticInfo {
                                        name,
                                        line: self.line(k + 1),
                                        ty: String::new(),
                                        thread_local: true,
                                    });
                                }
                            }
                            k += 1;
                        }
                        *i = j;
                    }
                }
                "{" => {
                    // Stray block (e.g. macro output); recurse so nested
                    // items keep their impl context.
                    let mut j = *i;
                    self.skip_balanced(&mut j, end, "{", "}");
                    *i += 1;
                    self.parse_items(i, j.saturating_sub(1), impl_ctx);
                    *i = j;
                }
                _ => {
                    *i += 1;
                }
            }
            is_pub = false;
            pub_token = None;
        }
    }

    /// At the `impl` keyword: recovers the trait/type names and parses
    /// the body's items with that context.
    fn parse_impl(&mut self, i: &mut usize, end: usize) {
        *i += 1; // past `impl`
        if self.text(*i) == "<" {
            // Generic params: skip to the matching `>` by nesting count.
            let mut depth = 0usize;
            while *i < end {
                match self.text(*i) {
                    "<" => depth += 1,
                    ">" => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            *i += 1;
                            break;
                        }
                    }
                    "{" | ";" => break, // malformed; bail
                    _ => {}
                }
                *i += 1;
            }
        }
        // Collect path idents up to `{` / `;`, splitting at `for`.
        let mut before_for: Vec<String> = Vec::new();
        let mut after_for: Vec<String> = Vec::new();
        let mut seen_for = false;
        while *i < end {
            let t = self.text(*i);
            match t {
                "{" | ";" | "where" => break,
                "for" => seen_for = true,
                _ => {
                    if self
                        .sig
                        .get(*i)
                        .is_some_and(|t| t.kind == TokKind::Ident && t.text != "dyn")
                    {
                        if seen_for {
                            after_for.push(t.to_string());
                        } else {
                            before_for.push(t.to_string());
                        }
                    }
                }
            }
            *i += 1;
        }
        if self.text(*i) == "where" {
            while *i < end && self.text(*i) != "{" && self.text(*i) != ";" {
                *i += 1;
            }
        }
        let ctx = if seen_for {
            ImplCtx {
                trait_name: before_for.last().cloned(),
                type_name: after_for.first().cloned().unwrap_or_default(),
            }
        } else {
            ImplCtx {
                trait_name: None,
                type_name: before_for.first().cloned().unwrap_or_default(),
            }
        };
        if self.text(*i) == "{" {
            let mut j = *i;
            self.skip_balanced(&mut j, end, "{", "}");
            *i += 1;
            self.parse_items(i, j.saturating_sub(1), Some(&ctx));
            *i = j;
        } else if self.text(*i) == ";" {
            *i += 1;
        }
    }

    /// At the `fn` keyword: records the fn and scans its body for call
    /// sites, screaming-case references, parallel regions, float
    /// accumulation and env reads.
    fn parse_fn(
        &mut self,
        i: &mut usize,
        end: usize,
        impl_ctx: Option<&ImplCtx>,
        is_pub: bool,
        has_doc: bool,
    ) {
        let fn_line = self.line(*i);
        *i += 1;
        let name = self.text(*i).to_string();
        *i += 1;
        // Signature: skip to the body `{` or declaration `;`, balancing
        // parens/brackets (a `{` inside them — e.g. a default argument
        // block — does not open the body).
        let mut paren = 0usize;
        while *i < end {
            match self.text(*i) {
                "(" | "[" => paren += 1,
                ")" | "]" => paren = paren.saturating_sub(1),
                "{" if paren == 0 => break,
                ";" if paren == 0 => {
                    // Trait method declaration without a body.
                    *i += 1;
                    self.record_fn(name, fn_line, impl_ctx, is_pub, has_doc, 0, 0);
                    return;
                }
                _ => {}
            }
            *i += 1;
        }
        let body_start = *i;
        let mut j = *i;
        self.skip_balanced(&mut j, end, "{", "}");
        self.record_fn(name, fn_line, impl_ctx, is_pub, has_doc, body_start, j);
        *i = j;
    }

    #[allow(clippy::too_many_arguments)]
    fn record_fn(
        &mut self,
        name: String,
        line: u32,
        impl_ctx: Option<&ImplCtx>,
        is_pub: bool,
        has_doc: bool,
        body_start: usize,
        body_end: usize,
    ) {
        if name.is_empty() {
            return;
        }
        let mut info = FnInfo {
            name: name.clone(),
            line,
            impl_ctx: impl_ctx.cloned(),
            is_pub,
            has_doc,
            calls: Vec::new(),
            screaming_refs: Vec::new(),
        };
        if body_end > body_start {
            self.scan_body(body_start, body_end, &mut info);
        }
        // Trait-impl methods are not independent API surface; inherent
        // `pub fn` methods and free `pub fn`s are.
        let impl_trait = impl_ctx.and_then(|c| c.trait_name.as_deref());
        if is_pub && impl_trait.is_none() {
            self.model.pub_items.push(PubItem {
                kind: "fn",
                name,
                line,
                has_doc,
            });
        }
        self.model.fns.push(info);
    }

    /// Variable names bound with a float initializer anywhere in
    /// `sig[start..end]`: `let [mut] name` whose binding statement
    /// mentions `f64`/`f32` or a float literal. Lets the par-region
    /// scan see that `acc += x` is a float accumulation when the float
    /// type only appears at the `let` site.
    fn float_bindings(&self, start: usize, end: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut k = start;
        while k < end {
            if self.text(k) == "let" {
                let mut n = k + 1;
                if self.text(n) == "mut" {
                    n += 1;
                }
                let name = self.text(n).to_string();
                let is_ident = self.sig.get(n).is_some_and(|t| t.kind == TokKind::Ident);
                // Scan the binding statement (to `;`) for float-ness.
                let mut j = n;
                let mut is_float = false;
                while j < end && self.text(j) != ";" {
                    if let Some(t) = self.sig.get(j) {
                        is_float |= match t.kind {
                            TokKind::Ident => t.text == "f64" || t.text == "f32",
                            TokKind::Num => is_float_literal(t.text),
                            _ => false,
                        };
                    }
                    j += 1;
                }
                if is_ident && is_float {
                    out.push(name);
                }
                k = j;
            }
            k += 1;
        }
        out
    }

    /// Scans a fn body `sig[start..end]` for the fact kinds.
    fn scan_body(&mut self, start: usize, end: usize, info: &mut FnInfo) {
        let mut par_regions: Vec<(usize, usize)> = Vec::new();
        let mut k = start;
        while k < end {
            let t = self.sig[k];
            if t.kind == TokKind::Ident {
                let name = t.text;
                let next = self.text(k + 1);
                // Call site: `name(`, excluding control-flow keywords.
                if next == "(" && !NON_CALL_KEYWORDS.contains(&name) {
                    info.calls.push(Call {
                        name: name.to_string(),
                        line: t.line,
                    });
                }
                // Parallel region: the balanced argument list of a
                // `par_map*` call or of `thread::scope`.
                let is_par = PAR_ENTRYPOINTS.contains(&name)
                    || (name == "scope"
                        && k >= 2
                        && self.text(k - 1) == ":"
                        && self.text(k - 2) == ":"
                        && k >= 3
                        && self.text(k - 3) == "thread");
                if is_par && next == "(" {
                    let mut j = k + 1;
                    self.skip_balanced(&mut j, end, "(", ")");
                    par_regions.push((k + 1, j));
                }
                // Screaming-case reference (static / thread_local use).
                if is_screaming(name) {
                    info.screaming_refs.push(Call {
                        name: name.to_string(),
                        line: t.line,
                    });
                }
                // `env::var("FIVEG_...")` / `env::var_os(...)`.
                if name == "env" && next == ":" && self.text(k + 2) == ":" {
                    let callee = self.text(k + 3);
                    if callee.starts_with("var") && self.text(k + 4) == "(" {
                        if let Some(arg) = self.sig.get(k + 5) {
                            if arg.kind == TokKind::Str {
                                let var = arg.text.trim_matches('"');
                                if var.starts_with("FIVEG_") {
                                    self.model.env_reads.push(EnvRead {
                                        line: t.line,
                                        var: var.to_string(),
                                    });
                                }
                            }
                        }
                    }
                }
            }
            k += 1;
        }
        if !par_regions.is_empty() {
            let float_vars = self.float_bindings(start, end);
            for (a, b) in par_regions {
                self.scan_par_region(a, b.min(end), &float_vars);
            }
        }
    }

    /// Flags order-dependent float reductions inside one parallel
    /// region (the argument list of a `par_map*` / `thread::scope`
    /// call, closures included). `float_vars` carries variables the
    /// enclosing fn bound with a float initializer.
    fn scan_par_region(&mut self, start: usize, end: usize, float_vars: &[String]) {
        let mut k = start;
        while k < end {
            let t = self.sig[k];
            let push = |model: &mut FileModel, line: u32, what: &'static str| {
                if !model
                    .float_par
                    .iter()
                    .any(|f| f.line == line && f.what == what)
                {
                    model.float_par.push(FloatAccum { line, what });
                }
            };
            match t.kind {
                TokKind::Ident => match t.text {
                    // The workspace's order-sensitive accumulator: its
                    // push order is part of the artifact bytes.
                    "OnlineStats" => push(&mut self.model, t.line, "OnlineStats"),
                    // `.sum::<f64>()` / `.fold(0.0, ...)` — explicit
                    // float reductions.
                    "sum" | "product"
                        if self.text(k + 1) == ":"
                            && self.text(k + 2) == ":"
                            && self.text(k + 3) == "<"
                            && matches!(self.text(k + 4), "f64" | "f32") =>
                    {
                        push(&mut self.model, t.line, "sum::<float>");
                    }
                    "fold"
                        if self.text(k + 1) == "("
                            && self.sig.get(k + 2).is_some_and(|arg| {
                                arg.kind == TokKind::Num && is_float_literal(arg.text)
                            }) =>
                    {
                        push(&mut self.model, t.line, "fold(float)");
                    }
                    _ => {}
                },
                TokKind::Punct if t.text == "+" || t.text == "-" => {
                    // `+=` / `-=`: a float compound assignment if the
                    // statement around it mentions a float type or
                    // float literal, or the left-hand side is a
                    // variable bound with a float initializer.
                    let lhs_is_float = k > start
                        && self.sig[k - 1].kind == TokKind::Ident
                        && float_vars.iter().any(|v| v == self.sig[k - 1].text);
                    if self.text(k + 1) == "="
                        && (lhs_is_float || self.statement_mentions_float(k, start, end))
                    {
                        push(&mut self.model, t.line, "float +=");
                    }
                }
                _ => {}
            }
            k += 1;
        }
    }

    /// True when the statement containing token `k` (delimited by `;`,
    /// `{` or `}`) mentions `f64`/`f32` or a float literal.
    fn statement_mentions_float(&self, k: usize, lo: usize, hi: usize) -> bool {
        let mut a = k;
        while a > lo {
            let t = self.text(a - 1);
            if t == ";" || t == "{" || t == "}" {
                break;
            }
            a -= 1;
        }
        let mut b = k;
        while b < hi {
            let t = self.text(b);
            if t == ";" || t == "{" || t == "}" {
                break;
            }
            b += 1;
        }
        (a..b).any(|j| {
            let t = self.sig[j];
            match t.kind {
                TokKind::Ident => t.text == "f64" || t.text == "f32",
                TokKind::Num => is_float_literal(t.text),
                _ => false,
            }
        })
    }
}

/// `TOTAL_POWER`, `SHARD_SEQ` — but not `X` or `Ordering`.
fn is_screaming(name: &str) -> bool {
    name.len() > 1
        && name
            .chars()
            .all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
        && name.chars().any(|c| c.is_ascii_uppercase())
}

/// `1.5`, `2e3`, `1f64` — numeric literals that are floats. Integer
/// literals with alphabetic suffixes (`0usize`, `3u64`) are not: the
/// `e` in `usize` is not an exponent, so the check demands digits on
/// both sides of one.
fn is_float_literal(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    if text.contains('.') || text.ends_with("f32") || text.ends_with("f64") {
        return true;
    }
    // Exponent form: digits/underscores, then e/E, optional sign, digits.
    let bytes = text.as_bytes();
    if let Some(pos) = text.find(['e', 'E']) {
        let mantissa_ok = pos > 0
            && bytes[..pos]
                .iter()
                .all(|b| b.is_ascii_digit() || *b == b'_');
        let exp = &text[pos + 1..];
        let exp = exp.strip_prefix(['+', '-']).unwrap_or(exp);
        let exp_ok = !exp.is_empty() && exp.bytes().all(|b| b.is_ascii_digit() || b == b'_');
        return mantissa_ok && exp_ok;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_fns_with_impl_context() {
        let src = "
impl fiveg_simcore::shard::ShardLogic for FleetNode<'_> {
    type Event = FleetEvent;
    fn handle(&mut self, ctx: &mut ShardCtx<'_, FleetEvent>, at: SimTime, ev: FleetEvent) {
        self.on_measure(ctx, 1, 2);
        helper(ev);
    }
}
fn helper(ev: FleetEvent) {}
";
        let m = parse_file(src);
        assert_eq!(m.fns.len(), 2);
        let handle = &m.fns[0];
        assert_eq!(handle.name, "handle");
        let ctx = handle.impl_ctx.as_ref().expect("impl ctx");
        assert_eq!(ctx.trait_name.as_deref(), Some("ShardLogic"));
        assert_eq!(ctx.type_name, "FleetNode");
        let calls: Vec<&str> = handle.calls.iter().map(|c| c.name.as_str()).collect();
        assert!(calls.contains(&"on_measure"));
        assert!(calls.contains(&"helper"));
        assert!(m.fns[1].impl_ctx.is_none());
    }

    #[test]
    fn inherent_impl_has_no_trait() {
        let m = parse_file("impl Foo { pub fn bar(&self) {} }");
        let ctx = m.fns[0].impl_ctx.as_ref().expect("ctx");
        assert_eq!(ctx.trait_name, None);
        assert_eq!(ctx.type_name, "Foo");
        // Inherent pub methods are API surface.
        assert_eq!(m.pub_items.len(), 1);
        assert!(!m.pub_items[0].has_doc);
    }

    #[test]
    fn doc_detection_spans_attributes() {
        let src = "
/// Documented.
#[derive(Debug)]
pub struct A;
pub struct B;
/** block doc */
pub fn c() {}
#[doc = \"macro doc\"]
pub fn d() {}
";
        let m = parse_file(src);
        let doc: Vec<(bool, &str)> = m
            .pub_items
            .iter()
            .map(|p| (p.has_doc, p.name.as_str()))
            .collect();
        assert_eq!(
            doc,
            vec![(true, "A"), (false, "B"), (true, "c"), (true, "d")]
        );
    }

    #[test]
    fn pub_crate_is_not_api() {
        let m = parse_file("pub(crate) fn f() {} pub fn g() {}");
        assert_eq!(m.pub_items.len(), 1);
        assert_eq!(m.pub_items[0].name, "g");
    }

    #[test]
    fn trait_impl_methods_are_not_pub_items() {
        let m = parse_file("impl Display for X { fn fmt(&self) {} }");
        assert!(m.pub_items.is_empty());
        assert_eq!(
            m.fns[0].impl_ctx.as_ref().unwrap().trait_name.as_deref(),
            Some("Display")
        );
    }

    #[test]
    fn statics_and_thread_locals() {
        let src = "
static TOTAL: AtomicU64 = AtomicU64::new(0);
thread_local! {
    static SCRATCH: RefCell<Vec<u8>> = RefCell::new(Vec::new());
}
fn touch() { TOTAL.fetch_add(1, Ordering::Relaxed); SCRATCH.with(|_| {}); }
";
        let m = parse_file(src);
        assert_eq!(m.statics.len(), 2);
        assert_eq!(m.statics[0].name, "TOTAL");
        assert!(m.statics[0].ty.contains("AtomicU64"));
        assert!(!m.statics[0].thread_local);
        assert_eq!(m.statics[1].name, "SCRATCH");
        assert!(m.statics[1].thread_local);
        let refs: Vec<&str> = m.fns[0]
            .screaming_refs
            .iter()
            .map(|c| c.name.as_str())
            .collect();
        assert!(refs.contains(&"TOTAL"));
        assert!(refs.contains(&"SCRATCH"));
    }

    #[test]
    fn env_reads_only_fiveg() {
        let src = r#"
fn conf() {
    let a = std::env::var("FIVEG_SHARDS");
    let b = std::env::var("PATH");
    let c = std::env::var_os("FIVEG_TRACE");
}
"#;
        let m = parse_file(src);
        let vars: Vec<&str> = m.env_reads.iter().map(|e| e.var.as_str()).collect();
        assert_eq!(vars, vec!["FIVEG_SHARDS", "FIVEG_TRACE"]);
    }

    #[test]
    fn float_accum_inside_par_regions_only() {
        let src = "
fn serial(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs { acc += x; }
    acc
}
fn parallel(xs: &[f64]) {
    let mut acc = 0.0f64;
    par_map_with(xs, 4, || (), |_, i, x| {
        acc += x;
        stats.fold(0.0, |a, b| a + b);
        let s: f64 = xs.iter().sum::<f64>();
        let mut o = OnlineStats::new();
    });
}
";
        let m = parse_file(src);
        let whats: Vec<&str> = m.float_par.iter().map(|f| f.what).collect();
        assert!(whats.contains(&"float +="), "{whats:?}");
        assert!(whats.contains(&"fold(float)"));
        assert!(whats.contains(&"sum::<float>"));
        assert!(whats.contains(&"OnlineStats"));
        // The serial fn contributes nothing.
        assert!(m.float_par.iter().all(|f| f.line >= 8), "{:?}", m.float_par);
    }

    #[test]
    fn thread_scope_is_a_par_region() {
        let src = "
fn f(xs: &[f64]) {
    let mut total = 0.0;
    std::thread::scope(|s| {
        s.spawn(|| { total += xs[0]; });
    });
}
";
        let m = parse_file(src);
        assert!(m.float_par.iter().any(|f| f.what == "float +="));
    }

    #[test]
    fn integer_accum_is_not_flagged() {
        let src = "
fn f(xs: &[u64]) {
    par_map_with(xs, 4, || (), |_, i, x| {
        let mut n = 0u64;
        n += x;
    });
}
";
        let m = parse_file(src);
        assert!(m.float_par.is_empty(), "{:?}", m.float_par);
    }

    #[test]
    fn forbid_unsafe_detected() {
        assert!(parse_file("#![forbid(unsafe_code)]\nfn f() {}").forbids_unsafe);
        assert!(!parse_file("#![warn(missing_docs)]\nfn f() {}").forbids_unsafe);
    }

    #[test]
    fn never_panics_on_garbage() {
        for src in [
            "",
            "impl",
            "fn",
            "fn f(",
            "impl < for {",
            "pub pub pub",
            "static : = ;",
            "thread_local!",
            "{{{{",
            "}}}}",
            "fn f() { par_map_with( }",
            "\u{1F600} fn \u{1F600}() {}",
        ] {
            let m = parse_file(src);
            for f in &m.fns {
                assert!(f.line <= m.lines);
            }
        }
    }

    #[test]
    fn screaming_filter() {
        assert!(is_screaming("TOTAL_POWER"));
        assert!(is_screaming("SHARD2"));
        assert!(!is_screaming("Ordering"));
        assert!(!is_screaming("x"));
        assert!(!is_screaming("X"));
        assert!(!is_screaming("__"));
    }
}
