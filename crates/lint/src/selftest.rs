//! The fixture self-test: runs the rule engine over
//! `crates/lint/fixtures/` and compares findings against inline
//! expectation markers.
//!
//! Markers: `//~ RULE [RULE...]` expects those findings on the marker's
//! own line; `//~^ RULE` on the line above. Fixtures declare the
//! workspace path they emulate with a `lint-fixture-path:` header so
//! scoping (sim crate / test file / example) is exercised too. Each
//! fixture runs through *both* engines — the per-file token scan and
//! the semantic pass (manifest-less, so same-file taint only).
//!
//! `fixtures/ws/` holds a miniature workspace (crate directories with
//! `Cargo.toml` + `src/lib.rs`) exercised through the full
//! manifest-aware pass: crate-layering (W001, markers as `# //~ W001`
//! TOML comments), missing-forbid (W002) and cross-crate shard taint
//! (S001 across a dependency edge). Both `cargo test -p fiveg-lint`
//! and `fiveg-lint --self-test` run all of this.

use std::path::Path;

use crate::rules::{scan_file, FileCtx, RULES};
use crate::workspace::{analyze, load_manifests, SourceFile};

/// Runs every `.rs` fixture under `fixtures`. `Ok(checked_count)` when
/// all match; `Err(messages)` describing each drift otherwise.
pub fn run(fixtures: &Path) -> Result<usize, Vec<String>> {
    let mut entries = match std::fs::read_dir(fixtures) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect::<Vec<_>>(),
        Err(e) => return Err(vec![format!("cannot read {}: {e}", fixtures.display())]),
    };
    entries.sort();
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for path in entries
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
    {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("{name}: cannot read: {e}"));
                continue;
            }
        };
        let Some(emulated) = fixture_path_header(&src) else {
            failures.push(format!("{name}: missing `lint-fixture-path:` header"));
            continue;
        };
        let Some(ctx) = FileCtx::classify(&emulated) else {
            failures.push(format!("{name}: header path `{emulated}` is not scannable"));
            continue;
        };
        let (mut findings, _) = scan_file(&ctx, &src);
        let file = SourceFile {
            ctx,
            src: src.clone(),
        };
        let (semantic, _) = analyze(std::slice::from_ref(&file), &[]);
        findings.extend(semantic);
        let mut got: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.rule)).collect();
        got.sort_unstable();
        let want = expected_markers(&src);
        checked += 1;
        if got != want {
            let mut msg = format!("{name} (as {emulated}) drifted:");
            for &(line, rule) in &want {
                if !got.contains(&(line, rule)) {
                    msg.push_str(&format!("\n  missing expected {rule} at line {line}"));
                }
            }
            for f in &findings {
                if !want.contains(&(f.line, f.rule)) {
                    msg.push_str(&format!(
                        "\n  unexpected {} at line {} `{}`",
                        f.rule, f.line, f.excerpt
                    ));
                }
            }
            failures.push(msg);
        }
    }
    if checked == 0 {
        failures.push(format!("no fixtures found in {}", fixtures.display()));
    }
    let ws_root = fixtures.join("ws");
    if ws_root.is_dir() {
        match run_ws(&ws_root) {
            Ok(n) => checked += n,
            Err(mut msgs) => failures.append(&mut msgs),
        }
    } else {
        failures.push(format!(
            "missing ws fixture workspace at {}",
            ws_root.display()
        ));
    }
    if failures.is_empty() {
        Ok(checked)
    } else {
        Err(failures)
    }
}

/// Runs the full manifest-aware pass over the miniature fixture
/// workspace and compares every finding — per-file and semantic —
/// against the markers in its `.rs` and `Cargo.toml` files.
fn run_ws(ws_root: &Path) -> Result<usize, Vec<String>> {
    let manifests = match load_manifests(ws_root) {
        Ok(m) => m,
        Err(e) => return Err(vec![format!("ws fixture: cannot load manifests: {e}")]),
    };
    let mut want: Vec<(String, u32, &str)> = Vec::new();
    for m in &manifests {
        let Ok(text) = std::fs::read_to_string(ws_root.join(&m.rel_path)) else {
            continue;
        };
        for (line, rule) in expected_markers(&text) {
            want.push((m.rel_path.clone(), line, rule));
        }
    }
    let mut sources = Vec::new();
    let mut got: Vec<(String, u32, &str)> = Vec::new();
    let mut rs_files = Vec::new();
    collect_ws_rs(ws_root, ws_root, &mut rs_files);
    rs_files.sort();
    for rel in rs_files {
        let Ok(src) = std::fs::read_to_string(ws_root.join(&rel)) else {
            continue;
        };
        let Some(ctx) = FileCtx::classify(&rel) else {
            continue;
        };
        for (line, rule) in expected_markers(&src) {
            want.push((rel.clone(), line, rule));
        }
        let (findings, _) = scan_file(&ctx, &src);
        got.extend(findings.into_iter().map(|f| (f.file, f.line, f.rule)));
        sources.push(SourceFile { ctx, src });
    }
    let files = sources.len();
    let (semantic, _) = analyze(&sources, &manifests);
    got.extend(semantic.into_iter().map(|f| (f.file, f.line, f.rule)));
    got.sort_unstable();
    want.sort_unstable();
    if files == 0 {
        return Err(vec!["ws fixture workspace has no source files".into()]);
    }
    if got == want {
        return Ok(files);
    }
    let mut msgs = Vec::new();
    for (file, line, rule) in &want {
        if !got.contains(&(file.clone(), *line, rule)) {
            msgs.push(format!(
                "ws fixture: missing expected {rule} at {file}:{line}"
            ));
        }
    }
    for (file, line, rule) in &got {
        if !want.contains(&(file.clone(), *line, rule)) {
            msgs.push(format!("ws fixture: unexpected {rule} at {file}:{line}"));
        }
    }
    Err(msgs)
}

/// Collects `.rs` paths under `dir` as `/`-separated paths relative to
/// `ws_root`.
fn collect_ws_rs(ws_root: &Path, dir: &Path, out: &mut Vec<String>) {
    let Ok(rd) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in rd.filter_map(Result::ok) {
        let path = entry.path();
        if path.is_dir() {
            collect_ws_rs(ws_root, &path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(ws_root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
}

fn fixture_path_header(src: &str) -> Option<String> {
    for line in src.lines().take(5) {
        if let Some(idx) = line.find("lint-fixture-path:") {
            return Some(line[idx + "lint-fixture-path:".len()..].trim().to_string());
        }
    }
    None
}

/// Expected (line, rule) pairs from the markers, sorted like scan
/// output. Unknown rule ids become a guaranteed-mismatch sentinel so a
/// typo in a fixture cannot silently pass.
fn expected_markers(src: &str) -> Vec<(u32, &'static str)> {
    let mut want = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let lineno = i as u32 + 1;
        let Some(idx) = line.find("//~") else {
            continue;
        };
        let rest = &line[idx + 3..];
        let (target, list) = match rest.strip_prefix('^') {
            Some(r) => (lineno - 1, r),
            None => (lineno, rest),
        };
        for word in list.split_whitespace() {
            match RULES.iter().find(|(id, _, _)| *id == word) {
                Some((id, _, _)) => want.push((target, *id)),
                None => want.push((target, "???")),
            }
        }
    }
    want.sort_unstable();
    want
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_parsing() {
        let src = "let a = 1; //~ U001 D002\n//~^ D001\nplain\n//~ Z999\n";
        assert_eq!(
            expected_markers(src),
            vec![(1, "D001"), (1, "D002"), (1, "U001"), (4, "???")]
        );
    }
}
