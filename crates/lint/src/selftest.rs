//! The fixture self-test: runs the rule engine over
//! `crates/lint/fixtures/` and compares findings against inline
//! expectation markers.
//!
//! Markers: `//~ RULE [RULE...]` expects those findings on the marker's
//! own line; `//~^ RULE` on the line above. Fixtures declare the
//! workspace path they emulate with a `lint-fixture-path:` header so
//! scoping (sim crate / test file / example) is exercised too. Both
//! `cargo test -p fiveg-lint` and `fiveg-lint --self-test` run this.

use std::path::Path;

use crate::rules::{scan_file, FileCtx, RULES};

/// Runs every `.rs` fixture under `fixtures`. `Ok(checked_count)` when
/// all match; `Err(messages)` describing each drift otherwise.
pub fn run(fixtures: &Path) -> Result<usize, Vec<String>> {
    let mut entries = match std::fs::read_dir(fixtures) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .collect::<Vec<_>>(),
        Err(e) => return Err(vec![format!("cannot read {}: {e}", fixtures.display())]),
    };
    entries.sort();
    let mut failures = Vec::new();
    let mut checked = 0usize;
    for path in entries
        .iter()
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
    {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or("?")
            .to_string();
        let src = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                failures.push(format!("{name}: cannot read: {e}"));
                continue;
            }
        };
        let Some(emulated) = fixture_path_header(&src) else {
            failures.push(format!("{name}: missing `lint-fixture-path:` header"));
            continue;
        };
        let Some(ctx) = FileCtx::classify(&emulated) else {
            failures.push(format!("{name}: header path `{emulated}` is not scannable"));
            continue;
        };
        let (findings, _) = scan_file(&ctx, &src);
        let got: Vec<(u32, &str)> = findings.iter().map(|f| (f.line, f.rule)).collect();
        let want = expected_markers(&src);
        checked += 1;
        if got != want {
            let mut msg = format!("{name} (as {emulated}) drifted:");
            for &(line, rule) in &want {
                if !got.contains(&(line, rule)) {
                    msg.push_str(&format!("\n  missing expected {rule} at line {line}"));
                }
            }
            for f in &findings {
                if !want.contains(&(f.line, f.rule)) {
                    msg.push_str(&format!(
                        "\n  unexpected {} at line {} `{}`",
                        f.rule, f.line, f.excerpt
                    ));
                }
            }
            failures.push(msg);
        }
    }
    if checked == 0 {
        failures.push(format!("no fixtures found in {}", fixtures.display()));
    }
    if failures.is_empty() {
        Ok(checked)
    } else {
        Err(failures)
    }
}

fn fixture_path_header(src: &str) -> Option<String> {
    for line in src.lines().take(5) {
        if let Some(idx) = line.find("lint-fixture-path:") {
            return Some(line[idx + "lint-fixture-path:".len()..].trim().to_string());
        }
    }
    None
}

/// Expected (line, rule) pairs from the markers, sorted like scan
/// output. Unknown rule ids become a guaranteed-mismatch sentinel so a
/// typo in a fixture cannot silently pass.
fn expected_markers(src: &str) -> Vec<(u32, &'static str)> {
    let mut want = Vec::new();
    for (i, line) in src.lines().enumerate() {
        let lineno = i as u32 + 1;
        let Some(idx) = line.find("//~") else {
            continue;
        };
        let rest = &line[idx + 3..];
        let (target, list) = match rest.strip_prefix('^') {
            Some(r) => (lineno - 1, r),
            None => (lineno, rest),
        };
        for word in list.split_whitespace() {
            match RULES.iter().find(|(id, _, _)| *id == word) {
                Some((id, _, _)) => want.push((target, *id)),
                None => want.push((target, "???")),
            }
        }
    }
    want.sort_unstable();
    want
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_parsing() {
        let src = "let a = 1; //~ U001 D002\n//~^ D001\nplain\n//~ Z999\n";
        assert_eq!(
            expected_markers(src),
            vec![(1, "D001"), (1, "D002"), (1, "U001"), (4, "???")]
        );
    }
}
