//! lint-fixture-path: crates/geo/src/fixture_docs.rs
//!
//! W003 doc-ratchet behaviour: undocumented `pub` items fire; private
//! items, trait-impl methods and documented surface stay silent. This
//! file is never compiled — the self-test only parses it.

/// Documented: no finding.
pub fn documented() {}

pub fn undocumented() {} //~ W003

pub struct Bare; //~ W003

/// Documented struct.
pub struct Covered {
    inner: u32,
}

#[derive(Clone)]
/// Docs may sit on either side of other attributes.
pub struct AttrSandwich;

pub(crate) fn crate_visible() {} // pub(crate) is not public API

fn private_helper() {}

impl Display for Covered {
    // Trait-impl methods are the trait's surface, not new API.
    fn fmt(&self, f: &mut Formatter<'_>) -> Result {
        f.write_str("covered")
    }
}

// fiveg-lint: allow(W003) -- fixture: pragma-suppressed missing doc
pub fn grandfathered() {}

#[cfg(test)]
mod tests {
    pub fn test_helper() {} // test regions are exempt
}
