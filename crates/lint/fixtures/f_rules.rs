//! lint-fixture-path: crates/core/src/fixture_float.rs
//!
//! F-rule positives: order-dependent float reductions inside parallel
//! regions, and the serial/integer shapes that must stay silent. This
//! file is never compiled — the self-test only parses it.

fn serial_sum(xs: &[f64]) -> f64 {
    let mut acc = 0.0;
    for x in xs {
        acc += x; // serial: reduction order is fixed
    }
    acc
}

fn parallel_hazards(xs: &[f64]) -> f64 {
    let mut total = 0.0f64;
    par_map_with(xs, 4, || 0.0, |_, _, x| {
        total += x; //~ F001
        let partial: f64 = xs.iter().sum::<f64>(); //~ F001
        let folded = xs.iter().fold(0.0, |a, b| a + b); //~ F001
        let mut stats = OnlineStats::new(); //~ F001
        stats.push(partial + folded);
    });
    total
}

fn scoped_hazard(xs: &[f64]) -> f64 {
    let mut total = 0.0;
    std::thread::scope(|s| {
        s.spawn(|| {
            total += xs[0]; //~ F001
        });
    });
    total
}

fn integer_parallel(xs: &[u64]) -> u64 {
    let mut n = 0u64;
    par_map_with(xs, 4, || 0u64, |_, _, x| {
        n += x; // integer accumulation commutes: no F001
    });
    n
}

fn chunked_and_blessed(xs: &[f64]) -> f64 {
    let mut acc = 0.0f64;
    par_map_with(xs, 4, || 0.0, |_, _, x| {
        // fiveg-lint: allow(F001) -- fixture: pragma-suppressed accumulation
        acc += x;
    });
    // Combining *after* the join in index order is the sanctioned shape.
    acc
}
