//! lint-fixture-path: crates/campaign/src/fixture.rs
//!
//! Pragma behaviour: a well-formed pragma suppresses exactly its rules
//! on its own line and the next; malformed pragmas are L000 findings.

use std::time::Instant;

fn timed() -> Instant {
    // fiveg-lint: allow(D003) -- wall time feeds the manifest, not artifacts
    Instant::now()
}

fn trailing(o: Option<u64>) -> u64 {
    o.unwrap() // fiveg-lint: allow(U001) -- invariant: caller checked is_some
}

fn not_covered(o: Option<u64>) -> u64 {
    // fiveg-lint: allow(U001) -- only shields the next line
    let a = o.unwrap();
    let b = o.unwrap(); //~ U001
    a + b
}

// fiveg-lint: allow(U001)
//~^ L000
fn missing_reason(o: Option<u64>) -> u64 {
    o.unwrap() //~ U001
}

// fiveg-lint: allow(Z999) -- unknown rule id
//~^ L000
fn unknown_rule() {}
