//! lint-fixture-path: crates/core/src/fixture.rs
//!
//! S-rule positives: shard-safety hazards the semantic pass must
//! catch, plus the sanctioned patterns it must stay silent on. This
//! file is never compiled — the self-test only parses it.

static SEQ: AtomicU64 = AtomicU64::new(0);
static LIMIT: usize = 8;

thread_local! {
    static SCRATCH_POOL: RefCell<Vec<f64>> = RefCell::new(Vec::new());
}

impl ShardLogic for FixtureNode {
    type Event = FixtureEvent;

    fn handle(&mut self, at: u64, ev: FixtureEvent) {
        self.on_event(at, ev);
        self.record_direct();
        ambient_seq_bump();
        let _ = LIMIT; // immutable static: not a shard hazard
    }
}

impl FixtureNode {
    fn on_event(&mut self, at: u64, _ev: FixtureEvent) {
        // Reached from the handler through one hop: still tainted.
        fiveg_obs::counter_add("fixture.events", 1); //~ S001
        let _ = at;
    }

    fn record_direct(&mut self) {
        // fiveg-lint: allow(S001) -- fixture: pragma-suppressed metric write
        fiveg_obs::gauge_max("fixture.peak", 1.0);
    }
}

fn ambient_seq_bump() {
    SEQ.fetch_add(1, Ordering::Relaxed); //~ S003
    SCRATCH_POOL.with(|p| p.borrow_mut().clear()); //~ S003
}

/// The sanctioned per-origin scratch flush: obs writes inside a `Drop`
/// impl are chunk-structured and shard-invariant by construction.
impl Drop for FixtureScratch {
    fn drop(&mut self) {
        fiveg_obs::counter_add("fixture.flush", self.n);
        fiveg_obs::observe("fixture.hist", EDGES, self.v);
    }
}

fn untainted_writer() {
    // Not reachable from any ShardLogic impl: no S001.
    fiveg_obs::counter_add("fixture.setup", 1);
}

fn scattered_config() -> bool {
    std::env::var("FIVEG_FIXTURE_KNOB").is_ok() //~ S002
}

fn sanctioned_config() -> bool {
    // fiveg-lint: allow(S002) -- fixture: pragma-suppressed env read
    std::env::var("FIVEG_FIXTURE_OTHER").is_ok()
}

fn non_fiveg_env() -> bool {
    // Only the FIVEG_* namespace is governed by S002.
    std::env::var("PATH").is_ok()
}

#[cfg(test)]
mod tests {
    impl ShardLogic for TestOnlyNode {
        fn handle(&mut self) {
            // Test-region impls never seed taint.
            fiveg_obs::counter_add("fixture.test", 1);
        }
    }
}
