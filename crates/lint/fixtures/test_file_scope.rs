//! lint-fixture-path: tests/fixture.rs
//!
//! Rule scoping in `tests/`: hazards that only matter for library /
//! sim code (D001, D003, D005, U001) are exempt, but a NaN-unsafe
//! float comparator (D002) and `static mut` (D004) are hazards
//! anywhere — goldens are compared by tests too.

use std::collections::HashMap;
use std::time::Instant;

static mut COUNTER: u64 = 0; //~ D004

#[test]
fn free_to_unwrap_and_time() {
    let mut m = HashMap::new();
    m.insert("k", 1u64);
    let t = Instant::now();
    let v = m.get("k").unwrap();
    assert!(t.elapsed().as_secs() < 60 && *v == 1);
}

#[test]
fn but_not_to_sort_floats_unsafely() {
    let mut v = vec![2.0_f64, 1.0];
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ D002
    assert_eq!(v[0], 1.0);
}
