//! lint-fixture-path: crates/phy/src/fixture.rs
//!
//! Known-positive snippets: every determinism rule must fire exactly
//! where the expectation markers say. This file is never compiled —
//! the self-test only tokenizes it.

use std::collections::HashMap; //~ D001
use std::time::Instant;

struct Grid {
    cells: HashMap<u32, f64>, //~ D001
}

static mut GLOBAL_SCRATCH: [f64; 8] = [0.0; 8]; //~ D004

fn hazards(mut v: Vec<f64>) -> f64 {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap()); //~ D002 U001
    let best = v
        .iter()
        .max_by(|a, b| a.partial_cmp(b).expect("no NaN")); //~ D002 U001
    let started = Instant::now(); //~ D003
    let _ = SystemTime::now(); //~ D003
    let mut rng = thread_rng(); //~ D005
    let other = SmallRng::from_entropy(); //~ D005
    let _ = (started, rng, other);
    *best.unwrap() //~ U001
}

fn panicky(o: Option<u64>) -> u64 {
    o.expect("set by caller") //~ U001
}
