//! lint ws fixture: the callee crate — its ambient write is flagged
//! because a `ShardLogic` handler in the crate above reaches it.

#![forbid(unsafe_code)]

/// Reached from `fiveg-core`'s handler: tainted across the crate edge.
pub fn simcore_flush(at: u64) {
    fiveg_obs::counter_add("ws.flush", at); //~ S001
}

/// Never called by a handler: no finding.
pub fn simcore_setup() {
    fiveg_obs::counter_add("ws.setup", 1);
}
