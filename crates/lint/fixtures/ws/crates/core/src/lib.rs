//! lint ws fixture: a shard handler whose metric write lives one
//! crate below — the cross-crate taint case single-file fixtures
//! cannot express. Never compiled; only parsed by the self-test.

#![forbid(unsafe_code)]

impl ShardLogic for WsNode {
    /// The handler: taints `simcore_flush` through the dependency edge.
    fn handle(&mut self, at: u64) {
        simcore_flush(at);
    }
}
