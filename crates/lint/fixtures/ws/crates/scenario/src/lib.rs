//! lint ws fixture: a library crate root missing its forbid. //~ W002

/// Documented, so no W003 rides along.
pub fn scenario_probe() {}
