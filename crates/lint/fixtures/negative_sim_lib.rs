//! lint-fixture-path: crates/phy/src/fixture.rs
//!
//! Known-negative snippets: nothing here may produce a finding. Each
//! block is a near-miss for one rule.

// D001 near-misses: ordered containers, and the name inside strings,
// comments (HashMap) and raw strings.
use std::collections::{BTreeMap, BTreeSet};

fn ordered() -> BTreeMap<u32, BTreeSet<u32>> {
    let doc = "HashMap iteration order is the hazard";
    let raw = r#"HashSet too"#;
    let _ = (doc, raw);
    BTreeMap::new()
}

// D002 near-misses: total_cmp comparators, and a PartialOrd impl whose
// `partial_cmp` is a definition, not a comparator.
fn sorted(mut v: Vec<f64>) -> Vec<f64> {
    v.sort_by(|a, b| a.total_cmp(b));
    v.sort_unstable_by(f64::total_cmp);
    v
}

struct Wrapped(f64);

impl PartialEq for Wrapped {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl PartialOrd for Wrapped {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.0.partial_cmp(&other.0)
    }
}

// D003 near-miss: storing/passing an Instant is fine; only `::now()`
// reads the wall clock.
fn annotate(t: std::time::Instant) -> std::time::Instant {
    t
}

// D004 near-miss: immutable statics are fine.
static LOOKUP: [u8; 4] = [1, 2, 3, 4];

// D005 / U001 near-misses: seeded RNG, non-panicking accessors, and
// panicking calls confined to test code.
fn seeded(seed: u64) -> u64 {
    let _ = LOOKUP;
    seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
}

fn safe(o: Option<u64>) -> u64 {
    o.unwrap_or(0)
}

// U001 near-miss: `self.expect(...)` is a custom parser method, not
// Option/Result::expect.
struct Parser;

impl Parser {
    fn expect(&mut self, _b: u8) -> Result<(), ()> {
        Ok(())
    }

    fn object(&mut self) -> Result<(), ()> {
        self.expect(b'{')?;
        self.expect(b'}')
    }
}

#[cfg(test)]
mod tests {
    use std::collections::HashSet;

    #[test]
    fn unwrap_is_fine_in_tests() {
        let mut seen = HashSet::new();
        seen.insert(Some(1).unwrap());
        assert!(seen.contains(&1));
    }
}
