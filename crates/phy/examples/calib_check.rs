//! Scratch calibration check (not shipped): prints Tab.2-style RSRP buckets.
use fiveg_geo::mobility::RoadSurvey;
use fiveg_geo::{Campus, CampusConfig};
use fiveg_phy::{RadioEnv, Tech};
use fiveg_simcore::SimRng;

fn main() {
    let campus = Campus::generate(&CampusConfig::default(), &mut SimRng::new(2020));
    let env = RadioEnv::from_campus(&campus, 77, 0.5, 0.05);
    let trace = RoadSurvey::paper_default().generate(&campus.map);
    for tech in [Tech::Lte, Tech::Nr] {
        let mut buckets = [0u32; 6]; // [-140,-105),[-105,-90),[-90,-80),[-80,-70),[-70,-60),[-60,-40)
        let mut sum = 0.0;
        let mut sq = 0.0;
        let mut n = 0u32;
        for p in trace.iter() {
            let m = env.serving(p.pos, tech).unwrap();
            let r = m.rsrp.value();
            sum += r;
            sq += r * r;
            n += 1;
            let b = if r < -105.0 {
                0
            } else if r < -90.0 {
                1
            } else if r < -80.0 {
                2
            } else if r < -70.0 {
                3
            } else if r < -60.0 {
                4
            } else {
                5
            };
            buckets[b] += 1;
        }
        let mean = sum / n as f64;
        let std = (sq / n as f64 - mean * mean).sqrt();
        println!("{tech:?}: n={n} mean={mean:.2} std={std:.2}");
        let labels = [
            "<-105",
            "-105..-90",
            "-90..-80",
            "-80..-70",
            "-70..-60",
            "-60..-40",
        ];
        for (l, c) in labels.iter().zip(buckets) {
            println!("  {:>10}: {:5.2}%", l, 100.0 * c as f64 / n as f64);
        }
    }
    // cell radius check along boresight LoS-ish
    let idx = env.cell_index(60).unwrap();
    let pos = env.cells[idx].pos;
    println!("gNB site at {pos:?}");
}
