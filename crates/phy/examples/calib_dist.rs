//! Scratch: distance-to-nearest-gNB and hole anatomy.
use fiveg_geo::mobility::RoadSurvey;
use fiveg_geo::{Campus, CampusConfig};
use fiveg_phy::{RadioEnv, Tech};
use fiveg_simcore::SimRng;

fn main() {
    let campus = Campus::generate(&CampusConfig::default(), &mut SimRng::new(2020));
    let env = RadioEnv::from_campus(&campus, 77, 0.5, 0.05);
    let trace = RoadSurvey::paper_default().generate(&campus.map);
    let mut dists: Vec<f64> = Vec::new();
    let mut hole_d = Vec::new();
    for p in trace.iter() {
        let d = campus
            .plan
            .gnb_sites
            .iter()
            .map(|s| s.pos.distance(p.pos))
            .fold(f64::INFINITY, f64::min);
        dists.push(d);
        let m = env.serving(p.pos, Tech::Nr).unwrap();
        if m.rsrp.value() < -105.0 {
            hole_d.push((d, m.distance_m));
        }
    }
    dists.sort_by(f64::total_cmp);
    println!(
        "nearest-gNB dist: p50={:.0} p80={:.0} p95={:.0} max={:.0}",
        dists[dists.len() / 2],
        dists[dists.len() * 8 / 10],
        dists[dists.len() * 95 / 100],
        dists.last().unwrap()
    );
    println!("holes: {} of {}", hole_d.len(), dists.len());
    let close_holes = hole_d.iter().filter(|(d, _)| *d < 150.0).count();
    println!("holes with nearest gNB <150m: {close_holes}");
    let serv_far = hole_d.iter().filter(|(_, s)| *s > 200.0).count();
    println!("holes where serving cell >200m: {serv_far}");
    for s in &campus.plan.gnb_sites {
        println!(
            "gnb at ({:.0},{:.0}) az {:?}",
            s.pos.x,
            s.pos.y,
            s.sector_azimuths
                .iter()
                .map(|a| *a as i32)
                .collect::<Vec<_>>()
        );
    }
}
