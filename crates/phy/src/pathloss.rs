//! Propagation loss and shadowing.
//!
//! The model is a log-distance urban form with an explicit LoS/NLoS
//! branch and a frequency-dependent *street clutter* term (foliage,
//! vehicles, street furniture) that grows linearly with distance:
//!
//! ```text
//! PL_LoS(d)  = PL0(f) + 10·n_los ·log10(d/d0) + γ(f)·d/100
//! PL_NLoS(d) = max(PL_LoS, PL0(f) + Δ_nlos + 10·n_nlos·log10(d/d0) + γ(f)·d/100)
//! ```
//!
//! with `d0 = 10 m` and `PL0(f)` the free-space loss at `d0` plus a fixed
//! clutter offset. The linear clutter term is what limits urban street
//! range far more than the log term alone; its frequency slope is why the
//! 3.5 GHz NR cell dies at ≈230 m where the 1.85 GHz LTE cell reaches
//! ≈520 m (paper Sec. 3.2) — those two radii are the calibration anchors
//! for [`PropagationParams::default_urban`].
//!
//! Shadowing is a deterministic, spatially-correlated log-normal field:
//! Gaussian values on a 50 m lattice (hashed from the seed and lattice
//! coordinates) interpolated bilinearly. Determinism keeps the coverage
//! map stable across queries — the same location always sees the same
//! shadowing, as in reality — while different cells get independent
//! fields.

use fiveg_simcore::{Db, Frequency};
use serde::{Deserialize, Serialize};

/// Free-space path loss at distance `d` metres and frequency `f`.
pub fn free_space_db(d_m: f64, f: Frequency) -> Db {
    // FSPL(dB) = 20 log10(d_km) + 20 log10(f_MHz) + 32.44
    let d_km = (d_m.max(1.0)) / 1000.0;
    Db::new(20.0 * d_km.log10() + 20.0 * f.mhz().log10() + 32.44)
}

/// Parameters of the urban log-distance + clutter model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PropagationParams {
    /// Reference distance, metres.
    pub d0_m: f64,
    /// Fixed clutter offset added to free-space loss at `d0`, dB.
    pub clutter_offset_db: f64,
    /// LoS path-loss exponent.
    pub n_los: f64,
    /// NLoS path-loss exponent.
    pub n_nlos: f64,
    /// Additional fixed NLoS loss (diffraction around blockage), dB.
    pub nlos_extra_db: f64,
    /// Street-clutter attenuation at 1 GHz, dB per 100 m.
    pub clutter_per_100m_at_1ghz: f64,
    /// Frequency slope of the clutter attenuation, dB per 100 m per GHz.
    pub clutter_slope_per_ghz: f64,
    /// Shadowing standard deviation on LoS paths, dB.
    pub shadow_sigma_los: f64,
    /// Shadowing standard deviation on NLoS paths, dB.
    pub shadow_sigma_nlos: f64,
}

impl PropagationParams {
    /// Dense-urban parameters calibrated to the paper's observed cell
    /// radii (5G ≈230 m, 4G ≈520 m for the same −105 dBm service
    /// threshold).
    pub fn default_urban() -> Self {
        // The clutter line is solved through two anchors from the paper:
        // the −105 dBm contour must sit at ≈230 m for the 3.55 GHz NR
        // cell (per-RE EIRP ≈43.9 dBm, see carrier.rs) and ≈520 m for
        // the 1.85 GHz LTE cell (≈12.2 dBm), giving γ(1.85) ≈ 1.8 and
        // γ(3.55) ≈ 21.0 dB/100 m. The steep frequency slope folds in
        // everything that punishes 3.5 GHz street-level reception in
        // dense clutter (foliage, vehicles, body loss, beam
        // misalignment).
        PropagationParams {
            d0_m: 10.0,
            clutter_offset_db: 2.0,
            n_los: 2.8,
            n_nlos: 2.9,
            nlos_extra_db: 6.0,
            clutter_per_100m_at_1ghz: -19.10,
            clutter_slope_per_ghz: 11.29,
            shadow_sigma_los: 5.0,
            shadow_sigma_nlos: 9.0,
        }
    }

    /// Street-clutter attenuation for a given frequency, dB per 100 m
    /// (floored at 1 dB/100 m for low frequencies).
    pub fn clutter_per_100m(&self, f: Frequency) -> f64 {
        (self.clutter_per_100m_at_1ghz + self.clutter_slope_per_ghz * f.ghz()).max(1.0)
    }

    /// Reference loss at `d0`: free-space loss plus the clutter offset.
    /// Frequency-only, so per-cell callers hoist it out of the hot loop.
    pub fn pl0_db(&self, f: Frequency) -> f64 {
        free_space_db(self.d0_m, f).value() + self.clutter_offset_db
    }

    /// Median (shadowing-free) LoS path loss at distance `d_m`.
    pub fn loss_los(&self, d_m: f64, f: Frequency) -> Db {
        Db::new(self.loss_los_from(self.pl0_db(f), self.clutter_per_100m(f), d_m))
    }

    /// LoS loss from precomputed frequency terms (`pl0_db`,
    /// `clutter_per_100m`); bit-identical to [`PropagationParams::loss_los`]
    /// by construction — the dB expression is evaluated in the same order.
    pub fn loss_los_from(&self, pl0: f64, clutter_per_100m: f64, d_m: f64) -> f64 {
        let d = d_m.max(self.d0_m);
        pl0 + 10.0 * self.n_los * (d / self.d0_m).log10() + clutter_per_100m * d / 100.0
    }

    /// Median NLoS path loss at distance `d_m` (never below the LoS loss).
    pub fn loss_nlos(&self, d_m: f64, f: Frequency) -> Db {
        Db::new(self.loss_nlos_from(self.pl0_db(f), self.clutter_per_100m(f), d_m))
    }

    /// NLoS loss from precomputed frequency terms; bit-identical to
    /// [`PropagationParams::loss_nlos`] by construction.
    pub fn loss_nlos_from(&self, pl0: f64, clutter_per_100m: f64, d_m: f64) -> f64 {
        let d = d_m.max(self.d0_m);
        let nlos = pl0
            + self.nlos_extra_db
            + 10.0 * self.n_nlos * (d / self.d0_m).log10()
            + clutter_per_100m * d / 100.0;
        nlos.max(self.loss_los_from(pl0, clutter_per_100m, d_m))
    }
}

/// Deterministic spatially-correlated shadowing field.
///
/// Values at 50 m lattice points are standard Gaussians derived by
/// hashing `(seed, i, j)`; queries interpolate bilinearly and scale by
/// the configured sigma. Correlation length is therefore ≈ the lattice
/// spacing, in line with the 30–70 m decorrelation distances reported
/// for urban macro cells.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShadowingField {
    seed: u64,
    /// Lattice spacing, metres.
    pub grid_m: f64,
}

impl ShadowingField {
    /// Creates a field with the given per-cell seed and a 50 m lattice.
    pub fn new(seed: u64) -> Self {
        ShadowingField { seed, grid_m: 50.0 }
    }

    /// splitmix64-style integer hash.
    fn hash(&self, i: i64, j: i64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add((j as u64).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Standard Gaussian at a lattice point via Box–Muller over two
    /// hashed uniforms.
    fn gaussian_at(&self, i: i64, j: i64) -> f64 {
        let h1 = self.hash(i, j);
        let h2 = self.hash(j.wrapping_add(0x5bd1), i.wrapping_sub(0x27d4));
        let u1 = ((h1 >> 11) as f64 + 1.0) / (1u64 << 53) as f64; // (0,1]
        let u2 = (h2 >> 11) as f64 / (1u64 << 53) as f64; // [0,1)
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
    }

    /// Standard-normal shadowing value at `(x, y)` metres (multiply by
    /// sigma to get dB).
    pub fn standard_value(&self, x: f64, y: f64) -> f64 {
        let gx = x / self.grid_m;
        let gy = y / self.grid_m;
        let i0 = gx.floor() as i64;
        let j0 = gy.floor() as i64;
        let fx = gx - i0 as f64;
        let fy = gy - j0 as f64;
        let v00 = self.gaussian_at(i0, j0);
        let v10 = self.gaussian_at(i0 + 1, j0);
        let v01 = self.gaussian_at(i0, j0 + 1);
        let v11 = self.gaussian_at(i0 + 1, j0 + 1);
        let w00 = (1.0 - fx) * (1.0 - fy);
        let w10 = fx * (1.0 - fy);
        let w01 = (1.0 - fx) * fy;
        let w11 = fx * fy;
        // Normalise by the L2 norm of the weights so the interpolated
        // field keeps unit marginal variance everywhere (plain bilinear
        // interpolation of iid Gaussians would shrink variance to 4/9 at
        // cell centres).
        let norm = (w00 * w00 + w10 * w10 + w01 * w01 + w11 * w11).sqrt();
        (v00 * w00 + v10 * w10 + v01 * w01 + v11 * w11) / norm
    }

    /// Shadowing loss in dB at `(x, y)` with the given sigma.
    pub fn value_db(&self, x: f64, y: f64, sigma: f64) -> Db {
        Db::new(self.standard_value(x, y) * sigma)
    }

    /// Precomputes every lattice Gaussian this field can need for
    /// queries inside `[min_x, max_x] × [min_y, max_y]` (inclusive of
    /// the +1 lattice corners bilinear interpolation reads). The cached
    /// values are the exact `gaussian_at` outputs, so cached queries are
    /// bit-identical to uncached ones.
    pub fn grid_for(&self, min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> ShadowGrid {
        let i0 = (min_x / self.grid_m).floor() as i64;
        let j0 = (min_y / self.grid_m).floor() as i64;
        let i1 = (max_x / self.grid_m).floor() as i64 + 1;
        let j1 = (max_y / self.grid_m).floor() as i64 + 1;
        let nx = (i1 - i0 + 1).max(1) as usize;
        let ny = (j1 - j0 + 1).max(1) as usize;
        let mut vals = Vec::with_capacity(nx * ny);
        for j in 0..ny as i64 {
            for i in 0..nx as i64 {
                vals.push(self.gaussian_at(i0 + i, j0 + j));
            }
        }
        ShadowGrid {
            i0,
            j0,
            nx,
            ny,
            vals,
        }
    }

    /// [`ShadowingField::value_db`] reading lattice Gaussians from a
    /// [`ShadowGrid`] cache where possible (falling back to direct
    /// evaluation outside it). Same arithmetic, same bits — the
    /// Gaussian evaluation (two hashes, `ln`, `sqrt`, `cos` per corner)
    /// dominates the query cost, and the cache replaces it with a load.
    pub fn value_db_cached(&self, x: f64, y: f64, sigma: f64, grid: &ShadowGrid) -> Db {
        let gx = x / self.grid_m;
        let gy = y / self.grid_m;
        let i0 = gx.floor() as i64;
        let j0 = gy.floor() as i64;
        let fx = gx - i0 as f64;
        let fy = gy - j0 as f64;
        let corner = |i: i64, j: i64| -> f64 {
            match grid.get(i, j) {
                Some(v) => v,
                None => self.gaussian_at(i, j),
            }
        };
        let v00 = corner(i0, j0);
        let v10 = corner(i0 + 1, j0);
        let v01 = corner(i0, j0 + 1);
        let v11 = corner(i0 + 1, j0 + 1);
        let w00 = (1.0 - fx) * (1.0 - fy);
        let w10 = fx * (1.0 - fy);
        let w01 = (1.0 - fx) * fy;
        let w11 = fx * fy;
        let norm = (w00 * w00 + w10 * w10 + w01 * w01 + w11 * w11).sqrt();
        let v = (v00 * w00 + v10 * w10 + v01 * w01 + v11 * w11) / norm;
        Db::new(v * sigma)
    }
}

/// Dense cache of one [`ShadowingField`]'s lattice Gaussians over a
/// rectangle (see [`ShadowingField::grid_for`]).
#[derive(Debug, Clone)]
pub struct ShadowGrid {
    i0: i64,
    j0: i64,
    nx: usize,
    ny: usize,
    vals: Vec<f64>,
}

impl ShadowGrid {
    /// Cached Gaussian at lattice point `(i, j)`, if inside the grid.
    #[inline]
    fn get(&self, i: i64, j: i64) -> Option<f64> {
        let di = i - self.i0;
        let dj = j - self.j0;
        if di < 0 || dj < 0 || di >= self.nx as i64 || dj >= self.ny as i64 {
            return None;
        }
        Some(self.vals[dj as usize * self.nx + di as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::OnlineStats;

    fn f5g() -> Frequency {
        Frequency::from_mhz(3550.0)
    }
    fn f4g() -> Frequency {
        Frequency::from_mhz(1850.0)
    }

    #[test]
    fn free_space_sanity() {
        // FSPL at 1 km, 3.55 GHz ≈ 103.4 dB.
        let v = free_space_db(1000.0, f5g()).value();
        assert!((v - 103.4).abs() < 0.3, "{v}");
    }

    #[test]
    fn loss_increases_with_distance_and_frequency() {
        let p = PropagationParams::default_urban();
        assert!(p.loss_los(200.0, f5g()).value() > p.loss_los(100.0, f5g()).value());
        assert!(p.loss_los(100.0, f5g()).value() > p.loss_los(100.0, f4g()).value());
        assert!(p.loss_nlos(100.0, f5g()).value() > p.loss_los(100.0, f5g()).value());
    }

    #[test]
    fn calibration_anchor_cell_radii() {
        // Service threshold: RSRP ≥ −105 dBm (paper Sec. 3.1, Rel-15 TS
        // 36.211). Per-RE EIRP ≈ 17.8 + 21 ≈ 38.9 dBm for NR, ≈ 8.2 + 4
        // ≈ 12.2 dBm for LTE (see carrier.rs). The calibrated model must
        // place the −105 dBm contour near 230 m at 3.55 GHz and near
        // 520 m at 1.85 GHz.
        let p = PropagationParams::default_urban();
        let budget_nr = 43.9 + 105.0;
        let budget_lte = 12.2 + 105.0;
        let radius = |f: Frequency, budget: f64| -> f64 {
            let mut d = 10.0;
            while d < 2000.0 && p.loss_los(d, f).value() < budget {
                d += 1.0;
            }
            d
        };
        let r5 = radius(f5g(), budget_nr);
        let r4 = radius(f4g(), budget_lte);
        assert!((200.0..270.0).contains(&r5), "5G LoS radius {r5}");
        assert!((470.0..580.0).contains(&r4), "4G LoS radius {r4}");
    }

    #[test]
    fn shadowing_is_deterministic() {
        let f = ShadowingField::new(42);
        assert_eq!(
            f.standard_value(123.0, 456.0),
            f.standard_value(123.0, 456.0)
        );
        let g = ShadowingField::new(43);
        assert_ne!(
            f.standard_value(123.0, 456.0),
            g.standard_value(123.0, 456.0)
        );
    }

    /// The precomputed-lattice query must be bit-identical to the
    /// hashing query, both inside the grid and through the out-of-range
    /// fallback.
    #[test]
    fn shadow_grid_bit_identical_to_direct() {
        let f = ShadowingField::new(0xD5);
        let grid = f.grid_for(0.0, 0.0, 500.0, 920.0);
        let mut k = 0u64;
        for _ in 0..500 {
            // Cheap LCG over a range straddling the grid edges.
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let x = -300.0 + (k >> 40) as f64 * (1100.0 / (1u64 << 24) as f64);
            k = k
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let y = -300.0 + (k >> 40) as f64 * (1500.0 / (1u64 << 24) as f64);
            let direct = f.value_db(x, y, 7.0).value();
            let cached = f.value_db_cached(x, y, 7.0, &grid).value();
            assert_eq!(direct.to_bits(), cached.to_bits(), "at ({x}, {y})");
        }
    }

    #[test]
    fn shadowing_is_roughly_standard_normal() {
        let f = ShadowingField::new(7);
        let mut s = OnlineStats::new();
        // Sample on a grid much coarser than the lattice so samples are
        // nearly independent.
        for i in 0..60 {
            for j in 0..60 {
                s.push(f.standard_value(i as f64 * 137.0, j as f64 * 211.0));
            }
        }
        assert!(s.mean().abs() < 0.1, "mean {}", s.mean());
        assert!((s.std_dev() - 1.0).abs() < 0.15, "std {}", s.std_dev());
    }

    #[test]
    fn shadowing_is_spatially_correlated() {
        let f = ShadowingField::new(9);
        // Nearby points (5 m apart, lattice 50 m) must be similar.
        let mut close_diff = OnlineStats::new();
        let mut far_diff = OnlineStats::new();
        for k in 0..500 {
            let x = k as f64 * 31.0;
            let y = k as f64 * 17.0;
            close_diff.push((f.standard_value(x, y) - f.standard_value(x + 5.0, y)).abs());
            far_diff.push((f.standard_value(x, y) - f.standard_value(x + 500.0, y)).abs());
        }
        assert!(
            close_diff.mean() < 0.5 * far_diff.mean(),
            "close {} far {}",
            close_diff.mean(),
            far_diff.mean()
        );
    }

    #[test]
    fn sigma_scales_output() {
        let f = ShadowingField::new(5);
        let v1 = f.value_db(10.0, 10.0, 1.0).value();
        let v8 = f.value_db(10.0, 10.0, 8.0).value();
        assert!((v8 - 8.0 * v1).abs() < 1e-12);
    }
}
