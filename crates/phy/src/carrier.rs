//! Carrier configurations.
//!
//! Tab. 1 of the paper: the 4G network runs on LTE band 3 (downlink
//! 1840–1860 MHz, FDD, 20 MHz) and the 5G network on NR band n78
//! (3500–3600 MHz, TDD with a 3:1 downlink:uplink slot ratio, 100 MHz).

use fiveg_simcore::{Bandwidth, BitRate, Dbm, Frequency};
use serde::{Deserialize, Serialize};

/// Radio access technology generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tech {
    /// 4G LTE.
    Lte,
    /// 5G New Radio (sub-6 GHz, NSA).
    Nr,
}

impl Tech {
    /// Human-readable name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Tech::Lte => "4G",
            Tech::Nr => "5G",
        }
    }
}

/// Duplexing scheme.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Duplex {
    /// Frequency-division duplexing: full bandwidth in each direction.
    Fdd,
    /// Time-division duplexing with the given downlink slot fraction.
    Tdd {
        /// Fraction of slots assigned to the downlink (paper ISP: 3:1 → 0.75).
        dl_fraction: f64,
    },
}

impl Duplex {
    /// Fraction of airtime available to the downlink.
    pub fn dl_share(self) -> f64 {
        match self {
            Duplex::Fdd => 1.0,
            Duplex::Tdd { dl_fraction } => dl_fraction,
        }
    }

    /// Fraction of airtime available to the uplink.
    pub fn ul_share(self) -> f64 {
        match self {
            Duplex::Fdd => 1.0,
            Duplex::Tdd { dl_fraction } => 1.0 - dl_fraction,
        }
    }
}

/// A carrier configuration — everything the bitrate and measurement
/// models need to know about the air interface.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Carrier {
    /// Technology generation.
    pub tech: Tech,
    /// Downlink centre frequency.
    pub freq: Frequency,
    /// Channel bandwidth.
    pub bandwidth: Bandwidth,
    /// Duplexing scheme.
    pub duplex: Duplex,
    /// Subcarrier spacing in Hz (LTE: 15 kHz; NR n78: 30 kHz).
    pub subcarrier_spacing_hz: f64,
    /// Number of physical resource blocks in the channel.
    pub num_prbs: u32,
    /// Total transmit power of one sector.
    pub tx_power: Dbm,
    /// Effective antenna + beamforming gain applied to reference signals, dB.
    pub ref_signal_gain_db: f64,
    /// Peak downlink PHY bitrate with every PRB and the top MCS
    /// (paper Sec. 4.1: 1200.98 Mbps for the NR cell, implied ≈206 Mbps
    /// for the LTE cell).
    pub max_phy_dl: BitRate,
    /// Receiver noise figure, dB.
    pub noise_figure_db: f64,
}

impl Carrier {
    /// The paper ISP's LTE band-3 carrier.
    pub fn lte_b3() -> Carrier {
        Carrier {
            tech: Tech::Lte,
            freq: Frequency::from_mhz(1850.0),
            bandwidth: Bandwidth::from_mhz(20.0),
            duplex: Duplex::Fdd,
            subcarrier_spacing_hz: 15_000.0,
            num_prbs: 100,
            tx_power: Dbm::new(39.0), // ~8 W per-CRS-port macro sector
            // Effective gain on the cell-specific reference signals;
            // low because CRS are wide-beam. Calibrated with the clutter
            // line so the road-survey mean RSRP lands at the paper's
            // −84.8 dBm (Tab. 1) and the −105 dBm edge at ≈520 m.
            ref_signal_gain_db: 4.0,
            max_phy_dl: BitRate::from_mbps(206.0),
            noise_figure_db: 7.0,
        }
    }

    /// The paper ISP's NR n78 carrier (3.5 GHz, 100 MHz, TDD 3:1).
    pub fn nr_n78() -> Carrier {
        Carrier {
            tech: Tech::Nr,
            freq: Frequency::from_mhz(3550.0),
            bandwidth: Bandwidth::from_mhz(100.0),
            duplex: Duplex::Tdd { dl_fraction: 0.75 },
            subcarrier_spacing_hz: 30_000.0,
            num_prbs: 273,
            tx_power: Dbm::new(53.0), // ~200 W massive-MIMO sector
            // RSRP is measured on beam-swept SSBs, which carry the full
            // massive-MIMO array gain — that is why operational 5G shows
            // the same mean RSRP as 4G (Tab. 1: −84.0 vs −84.8 dBm)
            // despite the much harsher 3.5 GHz propagation.
            ref_signal_gain_db: 26.0,
            max_phy_dl: BitRate::from_mbps(1200.98),
            noise_figure_db: 7.0,
        }
    }

    /// Number of subcarriers (resource elements per symbol).
    pub fn num_subcarriers(&self) -> u32 {
        self.num_prbs * 12
    }

    /// Transmit power per resource element, dBm — the quantity RSRP
    /// measures at the receiver after propagation loss.
    pub fn tx_power_per_re(&self) -> Dbm {
        let total_mw = self.tx_power.to_milliwatts().milliwatts();
        Dbm::from_milliwatts(fiveg_simcore::Power::from_milliwatts(
            total_mw / self.num_subcarriers() as f64,
        ))
    }

    /// Thermal noise power in one resource element's bandwidth, dBm,
    /// including the receiver noise figure: `-174 + 10·log10(Δf) + NF`.
    pub fn noise_per_re(&self) -> Dbm {
        Dbm::new(-174.0 + 10.0 * self.subcarrier_spacing_hz.log10() + self.noise_figure_db)
    }

    /// Peak downlink bitrate scaled by the fraction of PRBs allocated.
    pub fn dl_rate_at_peak_mcs(&self, prb_fraction: f64) -> BitRate {
        self.max_phy_dl * prb_fraction.clamp(0.0, 1.0)
    }

    /// Peak uplink PHY bitrate: scaled from the downlink peak by the
    /// duplex share and a single-layer/lower-order penalty. Calibrated to
    /// the paper's UL baselines (5G ≈130 Mbps of a 900 Mbps DL; 4G
    /// ≈100 Mbps night of a 200 Mbps DL).
    pub fn max_phy_ul(&self) -> BitRate {
        let dir_ratio = self.duplex.ul_share() / self.duplex.dl_share();
        let layer_penalty = match self.tech {
            Tech::Lte => 0.55, // 1 UL layer, 16QAM-heavy
            Tech::Nr => 0.50,
        };
        BitRate::from_bps(self.max_phy_dl.bps() * dir_ratio * layer_penalty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_band_parameters() {
        let lte = Carrier::lte_b3();
        assert_eq!(lte.tech, Tech::Lte);
        assert_eq!(lte.freq.mhz(), 1850.0);
        assert_eq!(lte.bandwidth.mhz(), 20.0);
        assert_eq!(lte.num_prbs, 100);
        assert_eq!(lte.duplex.dl_share(), 1.0);

        let nr = Carrier::nr_n78();
        assert_eq!(nr.tech, Tech::Nr);
        assert_eq!(nr.freq.mhz(), 3550.0);
        assert_eq!(nr.bandwidth.mhz(), 100.0);
        assert_eq!(nr.num_prbs, 273);
        assert!((nr.duplex.dl_share() - 0.75).abs() < 1e-12);
        assert!((nr.max_phy_dl.mbps() - 1200.98).abs() < 1e-9);
    }

    #[test]
    fn per_re_power_is_total_minus_subcarrier_count() {
        let nr = Carrier::nr_n78();
        let per_re = nr.tx_power_per_re().value();
        let expect = 53.0 - 10.0 * (273.0f64 * 12.0).log10();
        assert!((per_re - expect).abs() < 1e-9, "{per_re} vs {expect}");
    }

    #[test]
    fn noise_floor_values() {
        let nr = Carrier::nr_n78();
        // -174 + 10log10(30k) + 7 = -122.2 dBm.
        assert!((nr.noise_per_re().value() + 122.2).abs() < 0.1);
        let lte = Carrier::lte_b3();
        assert!((lte.noise_per_re().value() + 125.2).abs() < 0.1);
    }

    #[test]
    fn ul_peaks_match_paper_scale() {
        // 5G UL baseline ~130 Mbps (Sec. 4.1); PHY peak a bit above that.
        let nr_ul = Carrier::nr_n78().max_phy_ul().mbps();
        assert!((150.0..270.0).contains(&nr_ul), "NR UL peak {nr_ul}");
        // 4G UL nighttime baseline ~100 Mbps.
        let lte_ul = Carrier::lte_b3().max_phy_ul().mbps();
        assert!((100.0..130.0).contains(&lte_ul), "LTE UL peak {lte_ul}");
    }

    #[test]
    fn prb_scaling() {
        let nr = Carrier::nr_n78();
        assert_eq!(nr.dl_rate_at_peak_mcs(0.5).bps(), nr.max_phy_dl.bps() * 0.5);
        assert_eq!(nr.dl_rate_at_peak_mcs(2.0).bps(), nr.max_phy_dl.bps());
    }

    #[test]
    fn duplex_shares_sum_to_one_for_tdd() {
        let d = Duplex::Tdd { dl_fraction: 0.75 };
        assert!((d.dl_share() + d.ul_share() - 1.0).abs() < 1e-12);
    }
}
