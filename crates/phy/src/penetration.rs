//! Building penetration loss.
//!
//! Per-wall loss as a function of material and carrier frequency. The
//! paper attributes the 5G indoor bit-rate collapse (−50.6 % vs −20.4 %
//! for 4G, Fig. 3) to the brick/concrete campus walls penalising 3.5 GHz
//! far more than 1.85 GHz, and points to channel-sounding literature for
//! lighter materials. We model loss per exterior wall as a base value at
//! 1 GHz plus a linear frequency slope, with coefficients in the range
//! reported by measurement studies (e.g. ITU-R P.2040, Rodriguez et al.
//! GLOBECOM'13 at 3.5 vs 1.9 GHz).

use fiveg_geo::building::RayObstruction;
use fiveg_geo::Material;
use fiveg_simcore::{Db, Frequency};

/// Loss of one exterior wall of the given material at frequency `f`.
pub fn wall_loss(material: Material, f: Frequency) -> Db {
    // (base dB at 1 GHz, dB per GHz slope)
    let (base, slope) = match material {
        Material::Brick => (5.0, 2.6),
        Material::Concrete => (9.0, 4.0),
        Material::Drywall => (1.5, 0.5),
        Material::Wood => (2.0, 0.8),
        Material::Glass => (2.5, 1.1),
    };
    Db::new(base + slope * f.ghz())
}

/// Total penetration loss of a traced ray: the sum of per-wall losses
/// over every wall crossed, capped so multi-building traversals do not
/// produce physically absurd values (beyond ~60 dB the signal is gone
/// anyway and the indirect/diffracted component dominates).
pub fn ray_penetration_loss(obstruction: &RayObstruction, f: Frequency) -> Db {
    let total: f64 = obstruction
        .crossings
        .iter()
        .map(|&(m, n)| wall_loss(m, f).value() * n as f64)
        .sum();
    Db::new(total.min(60.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f5g() -> Frequency {
        Frequency::from_mhz(3550.0)
    }
    fn f4g() -> Frequency {
        Frequency::from_mhz(1850.0)
    }

    #[test]
    fn higher_frequency_loses_more() {
        for m in Material::ALL {
            assert!(
                wall_loss(m, f5g()).value() > wall_loss(m, f4g()).value(),
                "{m:?}"
            );
        }
    }

    #[test]
    fn concrete_heavier_than_brick_heavier_than_drywall() {
        let f = f5g();
        assert!(wall_loss(Material::Concrete, f).value() > wall_loss(Material::Brick, f).value());
        assert!(wall_loss(Material::Brick, f).value() > wall_loss(Material::Wood, f).value());
        assert!(wall_loss(Material::Wood, f).value() > wall_loss(Material::Drywall, f).value());
    }

    #[test]
    fn paper_scale_brick_loss() {
        // Brick at 3.5 GHz should be roughly 12–16 dB (sounding studies);
        // at 1.85 GHz roughly 8–11 dB.
        let b5 = wall_loss(Material::Brick, f5g()).value();
        let b4 = wall_loss(Material::Brick, f4g()).value();
        assert!((12.0..17.0).contains(&b5), "{b5}");
        assert!((8.0..12.0).contains(&b4), "{b4}");
    }

    #[test]
    fn ray_loss_sums_and_caps() {
        let obs = RayObstruction {
            crossings: vec![(Material::Brick, 2), (Material::Concrete, 1)],
        };
        let expect = 2.0 * wall_loss(Material::Brick, f5g()).value()
            + wall_loss(Material::Concrete, f5g()).value();
        assert!((ray_penetration_loss(&obs, f5g()).value() - expect).abs() < 1e-12);

        let many = RayObstruction {
            crossings: vec![(Material::Concrete, 10)],
        };
        assert_eq!(ray_penetration_loss(&many, f5g()).value(), 60.0);
    }

    #[test]
    fn clear_ray_no_loss() {
        let obs = RayObstruction::default();
        assert_eq!(ray_penetration_loss(&obs, f5g()).value(), 0.0);
    }
}
