//! # fiveg-phy
//!
//! Radio physical-layer substrate for the fiveg workspace.
//!
//! Models everything the paper's XCAL-Mobile probe *observed* at the
//! PHY/MAC boundary, from first principles:
//!
//! * [`carrier`] — carrier configurations: LTE band 3 (1.85 GHz FDD,
//!   20 MHz) and NR band n78 (3.5 GHz TDD 3:1, 100 MHz), Tab. 1 of the
//!   paper.
//! * [`pathloss`] — log-distance urban propagation with LoS/NLoS branches
//!   and a frequency-dependent street-clutter term, plus deterministic
//!   spatially-correlated shadowing fields. Constants are calibrated so
//!   the paper's observed cell radii (≈230 m for 5G, ≈520 m for 4G,
//!   Sec. 3.2) emerge from the model.
//! * [`penetration`] — per-material, per-frequency exterior-wall loss
//!   (brick/concrete campus walls; Sec. 3.3).
//! * [`antenna`] — 3GPP-style sectorised antenna pattern (fan-shaped gain,
//!   narrow FoV — the cause of the paper's coverage defects at locations
//!   B/C of Fig. 2b).
//! * [`mcs`] — SINR → CQI → MCS → spectral efficiency mapping and the
//!   BLER model that drives HARQ in `fiveg-ran`.
//! * [`cell`] — a physical transmitter (one sector).
//! * [`mod@env`] — the radio environment: per-location measurement of every
//!   cell (RSRP/RSRQ/SINR/CQI/MCS/bitrate), serving-cell selection; the
//!   XCAL-Mobile analogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod antenna;
pub mod carrier;
pub mod cell;
pub mod env;
pub mod mcs;
pub mod pathloss;
pub mod penetration;

pub use antenna::SectorAntenna;
pub use carrier::{Carrier, Duplex, Tech};
pub use cell::CellPhy;
pub use env::{CellMeasurement, KpiSample, MeasureScratch, RadioEnv};
pub use mcs::{bler, cqi_from_sinr, mcs_from_cqi, spectral_efficiency};
pub use pathloss::{PropagationParams, ShadowingField};
