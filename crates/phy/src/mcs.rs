//! Link adaptation: SINR → CQI → MCS → spectral efficiency, plus the
//! block-error-rate model that drives HARQ.
//!
//! The tables follow the 3GPP 256-QAM CQI table (TS 38.214 Table
//! 5.2.2.1-3): 15 CQI indices up to 256QAM at code rate 0.925 — the
//! paper observes exactly that operating point ("MCS index is 27, which
//! corresponds to a maximum code rate of 0.925 ... in 256 QAM",
//! Sec. 4.1).

/// Spectral efficiency (bit/s/Hz) per CQI index 1..=15 (index 0 = out of
/// range). 3GPP 256-QAM table.
pub const CQI_SPECTRAL_EFFICIENCY: [f64; 16] = [
    0.0, 0.1523, 0.3770, 0.8770, 1.4766, 1.9141, 2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152,
    5.5547, 6.2266, 6.9141, 7.4063,
];

/// Approximate SINR (dB) required to operate at each CQI with ≈10 %
/// initial BLER. Spacing ≈2 dB, anchored at −6.7 dB for CQI 1 (standard
/// link-level results for the 256-QAM table).
pub const CQI_SINR_THRESHOLD_DB: [f64; 16] = [
    f64::NEG_INFINITY,
    -6.7,
    -4.7,
    -2.3,
    0.2,
    2.4,
    4.3,
    5.9,
    8.1,
    10.3,
    11.7,
    14.1,
    16.3,
    18.7,
    21.0,
    22.7,
];

/// Highest CQI whose SINR threshold is met; 0 when even CQI 1 fails.
pub fn cqi_from_sinr(sinr_db: f64) -> u8 {
    let mut cqi = 0u8;
    for (i, &thr) in CQI_SINR_THRESHOLD_DB.iter().enumerate().skip(1) {
        if sinr_db >= thr {
            cqi = i as u8;
        }
    }
    cqi
}

/// Maps CQI to the MCS index the scheduler would pick (0–27, two MCS
/// steps per CQI as in the 256-QAM MCS table; the paper's peak is 27).
pub fn mcs_from_cqi(cqi: u8) -> u8 {
    if cqi == 0 {
        0
    } else {
        (cqi as u16 * 2 - 2).min(27) as u8
    }
}

/// Spectral efficiency achieved at the given SINR (bit/s/Hz) after link
/// adaptation — the CQI table lookup, zero below the lowest threshold.
pub fn spectral_efficiency(sinr_db: f64) -> f64 {
    CQI_SPECTRAL_EFFICIENCY[cqi_from_sinr(sinr_db) as usize]
}

/// Peak spectral efficiency of the table (CQI 15: 256QAM, rate 0.925).
pub const PEAK_SPECTRAL_EFFICIENCY: f64 = 7.4063;

/// Fraction of the carrier's peak bitrate achieved at this SINR.
pub fn rate_fraction(sinr_db: f64) -> f64 {
    spectral_efficiency(sinr_db) / PEAK_SPECTRAL_EFFICIENCY
}

/// SINR required by an MCS index for ≈10 % initial BLER, interpolated
/// from the CQI thresholds (two MCS per CQI step).
pub fn mcs_sinr_requirement_db(mcs: u8) -> f64 {
    let mcs = mcs.min(27) as f64;
    let cqi_pos = mcs / 2.0 + 1.0; // fractional CQI position
    let lo = cqi_pos.floor() as usize;
    let hi = (lo + 1).min(15);
    let frac = cqi_pos - lo as f64;
    let lo_thr = CQI_SINR_THRESHOLD_DB[lo.clamp(1, 15)];
    let hi_thr = CQI_SINR_THRESHOLD_DB[hi.clamp(1, 15)];
    lo_thr + (hi_thr - lo_thr) * frac
}

/// Initial-transmission block error rate at `sinr_db` for the given MCS:
/// a logistic waterfall centred 1 dB below the MCS requirement with a
/// ≈0.9 dB slope, anchored so operating exactly at the requirement gives
/// ≈10 % BLER (the standard outer-loop link-adaptation target).
pub fn bler(sinr_db: f64, mcs: u8) -> f64 {
    let req = mcs_sinr_requirement_db(mcs);
    // At sinr == req we want bler == 0.1: solve offset = ln(9) * slope.
    let slope = 0.9;
    let offset = slope * (9.0f64).ln();
    1.0 / (1.0 + ((sinr_db - (req - offset)) / slope).exp())
}

/// The MCS the scheduler selects at this SINR (via CQI), i.e. the
/// operating point whose initial BLER is ≈10 %.
pub fn select_mcs(sinr_db: f64) -> u8 {
    mcs_from_cqi(cqi_from_sinr(sinr_db))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cqi_monotonic_in_sinr() {
        let mut prev = 0;
        for s in -10..35 {
            let c = cqi_from_sinr(s as f64);
            assert!(c >= prev, "CQI dropped at {s} dB");
            prev = c;
        }
    }

    #[test]
    fn cqi_extremes() {
        assert_eq!(cqi_from_sinr(-20.0), 0);
        assert_eq!(cqi_from_sinr(-6.7), 1);
        assert_eq!(cqi_from_sinr(40.0), 15);
    }

    #[test]
    fn paper_peak_operating_point() {
        // High SINR → CQI 15 → MCS 27 (wait: 15*2-2=28, capped at 27),
        // spectral efficiency 7.4063 = 8 bits × 0.925 code rate.
        assert_eq!(mcs_from_cqi(15), 27);
        assert_eq!(select_mcs(30.0), 27);
        assert!((PEAK_SPECTRAL_EFFICIENCY - 8.0 * 0.9258).abs() < 0.01);
        assert_eq!(spectral_efficiency(30.0), 7.4063);
    }

    #[test]
    fn rate_fraction_bounds() {
        assert_eq!(rate_fraction(-30.0), 0.0);
        assert!((rate_fraction(30.0) - 1.0).abs() < 1e-12);
        let mid = rate_fraction(10.0);
        assert!(mid > 0.3 && mid < 0.7, "{mid}");
    }

    #[test]
    fn bler_at_requirement_is_ten_percent() {
        for mcs in [0u8, 9, 17, 27] {
            let req = mcs_sinr_requirement_db(mcs);
            let b = bler(req, mcs);
            assert!((b - 0.1).abs() < 0.01, "mcs {mcs}: bler {b}");
        }
    }

    #[test]
    fn bler_waterfall_shape() {
        let mcs = 15;
        let req = mcs_sinr_requirement_db(mcs);
        assert!(bler(req - 5.0, mcs) > 0.95);
        assert!(bler(req + 4.0, mcs) < 0.01);
        // Monotonically decreasing in SINR.
        let mut prev = 1.0;
        for i in 0..100 {
            let b = bler(req - 10.0 + i as f64 * 0.2, mcs);
            assert!(b <= prev + 1e-12);
            prev = b;
        }
    }

    #[test]
    fn higher_mcs_needs_more_sinr() {
        let mut prev = f64::NEG_INFINITY;
        for mcs in 0..=27 {
            let r = mcs_sinr_requirement_db(mcs);
            assert!(r >= prev, "req dropped at MCS {mcs}");
            prev = r;
        }
    }

    #[test]
    fn selected_mcs_operates_near_target_bler() {
        // Wherever the scheduler lands, the initial BLER should be below
        // ~30 % and usually near 10 % (the CQI quantisation makes it
        // better than target most of the time).
        for s in [-5.0, 0.0, 5.0, 12.0, 20.0, 25.0] {
            let mcs = select_mcs(s);
            let b = bler(s, mcs);
            assert!(b <= 0.30, "sinr {s}: mcs {mcs} bler {b}");
        }
    }
}
