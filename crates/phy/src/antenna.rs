//! Sectorised base-station antenna pattern.
//!
//! The paper observes (Sec. 3.2, Fig. 2b) that gNBs use "sectionalized
//! antennas with a fan-shaped gain pattern, and hence a narrow FoV" —
//! locations outside a sector's field of view are simply not covered.
//! We use the standard 3GPP horizontal pattern:
//!
//! ```text
//! A(θ) = −min(12·(θ/θ3dB)², A_m)
//! ```
//!
//! with a 65° half-power beamwidth and a 30 dB front-to-back floor.

use serde::{Deserialize, Serialize};

/// A horizontal sector antenna pattern.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SectorAntenna {
    /// Boresight azimuth, degrees CCW from east.
    pub azimuth_deg: f64,
    /// Half-power beamwidth, degrees (3GPP default 65°).
    pub beamwidth_deg: f64,
    /// Maximum attenuation (front-to-back ratio), dB.
    pub max_attenuation_db: f64,
}

impl SectorAntenna {
    /// Standard 65° sector pointing at `azimuth_deg`.
    pub fn standard(azimuth_deg: f64) -> Self {
        SectorAntenna {
            azimuth_deg,
            beamwidth_deg: 65.0,
            max_attenuation_db: 30.0,
        }
    }

    /// Effective pattern of an NR massive-MIMO panel whose SSB beams
    /// sweep across the sector: the envelope over the swept beams is much
    /// wider than a single beam (≈100°) with a softer floor, because some
    /// beam always points near the UE within the sector's field of view.
    pub fn nr_sweeping(azimuth_deg: f64) -> Self {
        SectorAntenna {
            azimuth_deg,
            beamwidth_deg: 100.0,
            max_attenuation_db: 14.0,
        }
    }

    /// Smallest absolute angular difference between two azimuths, degrees
    /// in `[0, 180]`.
    pub fn angle_diff(a: f64, b: f64) -> f64 {
        let d = (a - b).rem_euclid(360.0);
        if d > 180.0 {
            360.0 - d
        } else {
            d
        }
    }

    /// Pattern attenuation (≥ 0 dB) towards the given azimuth.
    pub fn attenuation_db(&self, towards_deg: f64) -> f64 {
        let theta = Self::angle_diff(towards_deg, self.azimuth_deg);
        (12.0 * (theta / self.beamwidth_deg).powi(2)).min(self.max_attenuation_db)
    }

    /// Whether an azimuth is within the half-power field of view.
    pub fn in_fov(&self, towards_deg: f64) -> bool {
        Self::angle_diff(towards_deg, self.azimuth_deg) <= self.beamwidth_deg / 2.0
    }
}

/// Vertical (elevation) pattern with electrical downtilt.
///
/// Macro masts tilt their main lobe a few degrees below the horizon; a UE
/// standing near the mast foot sits far above the lobe and sees heavy
/// attenuation, which is why measured RSRP right under a site is *not*
/// the strongest on the map.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VerticalPattern {
    /// Downtilt below the horizon, degrees (positive = down).
    pub tilt_deg: f64,
    /// Vertical half-power beamwidth, degrees.
    pub beamwidth_deg: f64,
    /// Maximum vertical attenuation, dB.
    pub max_attenuation_db: f64,
}

impl VerticalPattern {
    /// Typical macro-site pattern: 7° tilt, 10° beamwidth, 18 dB floor.
    pub fn macro_default() -> Self {
        VerticalPattern {
            tilt_deg: 7.0,
            beamwidth_deg: 10.0,
            max_attenuation_db: 18.0,
        }
    }

    /// Attenuation towards a UE at ground distance `d2d_m` from a mast of
    /// height `mast_m` (UE at 1.5 m).
    pub fn attenuation_db(&self, d2d_m: f64, mast_m: f64) -> f64 {
        let depression_deg = ((mast_m - 1.5) / d2d_m.max(1.0)).atan().to_degrees();
        let off = depression_deg - self.tilt_deg;
        (12.0 * (off / self.beamwidth_deg).powi(2)).min(self.max_attenuation_db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertical_pattern_punishes_mast_foot() {
        let v = VerticalPattern::macro_default();
        let near = v.attenuation_db(20.0, 25.0);
        let mid = v.attenuation_db(150.0, 25.0);
        let far = v.attenuation_db(500.0, 25.0);
        assert_eq!(near, 18.0, "mast foot capped");
        assert!(mid < 3.0, "main lobe region {mid}");
        assert!(far < 3.0, "far field {far}");
    }

    #[test]
    fn vertical_minimum_near_boresight_distance() {
        let v = VerticalPattern::macro_default();
        // Boresight hits the ground at (25-1.5)/tan(7°) ≈ 191 m.
        let bore = v.attenuation_db(191.0, 25.0);
        assert!(bore < 0.01, "{bore}");
    }

    #[test]
    fn boresight_has_no_attenuation() {
        let a = SectorAntenna::standard(90.0);
        assert_eq!(a.attenuation_db(90.0), 0.0);
    }

    #[test]
    fn half_power_at_half_beamwidth() {
        let a = SectorAntenna::standard(0.0);
        // At θ = θ3dB/2 the pattern gives 12·(0.5)² = 3 dB.
        assert!((a.attenuation_db(32.5) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn back_lobe_capped() {
        let a = SectorAntenna::standard(0.0);
        assert_eq!(a.attenuation_db(180.0), 30.0);
        assert_eq!(a.attenuation_db(120.0), 30.0);
    }

    #[test]
    fn wraparound_angles() {
        assert_eq!(SectorAntenna::angle_diff(350.0, 10.0), 20.0);
        assert_eq!(SectorAntenna::angle_diff(10.0, 350.0), 20.0);
        assert_eq!(SectorAntenna::angle_diff(0.0, 180.0), 180.0);
        let a = SectorAntenna::standard(350.0);
        assert!((a.attenuation_db(10.0) - 12.0 * (20.0f64 / 65.0).powi(2)).abs() < 1e-9);
    }

    #[test]
    fn fov_test() {
        let a = SectorAntenna::standard(90.0);
        assert!(a.in_fov(90.0));
        assert!(a.in_fov(120.0));
        assert!(!a.in_fov(130.0));
        assert!(!a.in_fov(270.0));
    }

    #[test]
    fn attenuation_monotonic_within_front() {
        let a = SectorAntenna::standard(0.0);
        let mut prev = -1.0;
        for deg in 0..=90 {
            let v = a.attenuation_db(deg as f64);
            assert!(v >= prev, "not monotonic at {deg}");
            prev = v;
        }
    }
}
