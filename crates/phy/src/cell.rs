//! A physical transmitter: one sector of a base-station site.

use crate::antenna::{SectorAntenna, VerticalPattern};
use crate::carrier::{Carrier, Tech};
use fiveg_geo::Point;
use serde::{Deserialize, Serialize};

/// One cell (sector) at the physical layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellPhy {
    /// Physical cell identifier, as reported by the modem diagnostics.
    pub pci: u16,
    /// Carrier configuration.
    pub carrier: Carrier,
    /// Mast position, metres.
    pub pos: Point,
    /// Mast height above ground, metres.
    pub height_m: f64,
    /// Sector antenna.
    pub antenna: SectorAntenna,
    /// Vertical (downtilt) pattern.
    pub vertical: VerticalPattern,
    /// Downlink activity factor in `[0, 1]`: the probability the cell is
    /// transmitting on a given resource element, which scales the
    /// interference it causes to neighbours (busy-hour ≈ high for 4G,
    /// very low for the lightly-used early-deployment 5G).
    pub load: f64,
}

impl CellPhy {
    /// Technology of this cell.
    pub fn tech(&self) -> Tech {
        self.carrier.tech
    }

    /// 3-D distance from the mast to a UE at ground level + 1.5 m.
    pub fn distance_3d(&self, ue: Point) -> f64 {
        let d2 = self.pos.distance(ue);
        let dh = self.height_m - 1.5;
        (d2 * d2 + dh * dh).sqrt()
    }

    /// Antenna attenuation towards the UE, dB.
    pub fn antenna_attenuation_db(&self, ue: Point) -> f64 {
        // A UE standing at the mast foot sees the pattern's downtilt
        // region; treat it as boresight (no horizontal attenuation).
        if self.pos.distance(ue) < 1.0 {
            return 0.0;
        }
        self.antenna.attenuation_db(self.pos.azimuth_to(ue))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> CellPhy {
        CellPhy {
            pci: 72,
            carrier: Carrier::nr_n78(),
            pos: Point::new(100.0, 100.0),
            height_m: 25.0,
            antenna: SectorAntenna::standard(0.0),
            vertical: VerticalPattern::macro_default(),
            load: 0.1,
        }
    }

    #[test]
    fn distance_includes_height() {
        let c = cell();
        let d = c.distance_3d(Point::new(100.0, 100.0));
        assert!((d - 23.5).abs() < 1e-9);
        let far = c.distance_3d(Point::new(400.0, 100.0));
        assert!(far > 300.0 && far < 301.0);
    }

    #[test]
    fn antenna_attenuation_depends_on_direction() {
        let c = cell();
        // UE due east (boresight).
        assert_eq!(c.antenna_attenuation_db(Point::new(300.0, 100.0)), 0.0);
        // UE due west (back lobe).
        assert_eq!(c.antenna_attenuation_db(Point::new(0.0, 100.0)), 30.0);
        // UE at the mast: no horizontal attenuation.
        assert_eq!(c.antenna_attenuation_db(Point::new(100.0, 100.0)), 0.0);
    }
}
