//! The radio environment — the XCAL-Mobile analogue.
//!
//! [`RadioEnv`] combines the campus map, the deployed cells, the
//! propagation model and per-cell shadowing fields, and answers the
//! question the paper's probe answered at every sampled location: what
//! RSRP/RSRQ/SINR/CQI/MCS/bitrate does each cell deliver here, and which
//! cell would serve me?

use crate::carrier::Tech;
use crate::cell::CellPhy;
use crate::mcs;
use crate::pathloss::{PropagationParams, ShadowGrid, ShadowingField};
use crate::penetration::wall_loss;
use fiveg_geo::building::Material;
use fiveg_geo::point::Segment;
use fiveg_geo::{Campus, CampusMap, Point};
use fiveg_simcore::{BitRate, Db, Dbm};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Service threshold: below this RSRP the network cannot sustain a
/// connection (paper Sec. 3.1, citing Rel-15 TS 36.211: "if the RSRP is
/// less than −105 dBm, the communication service cannot be triggered").
pub const SERVICE_THRESHOLD: Dbm = Dbm::new(-105.0);

/// Everything measured about one cell at one location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellMeasurement {
    /// Physical cell id.
    pub pci: u16,
    /// Technology.
    pub tech: Tech,
    /// Reference signal received power.
    pub rsrp: Dbm,
    /// Reference signal received quality, dB.
    pub rsrq: Db,
    /// Signal-to-interference-plus-noise ratio, dB.
    pub sinr: Db,
    /// 2-D ground distance to the mast, metres.
    pub distance_m: f64,
}

/// A full KPI sample for the serving cell at one location — one row of
/// the measurement dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KpiSample {
    /// Sampled position.
    pub pos: Point,
    /// Whether the position is indoors.
    pub indoor: bool,
    /// Serving-cell measurement.
    pub serving: CellMeasurement,
    /// Channel quality indicator derived from SINR.
    pub cqi: u8,
    /// Modulation-and-coding-scheme index.
    pub mcs: u8,
    /// Downlink PHY bitrate available to this UE at the allocated PRB
    /// share.
    pub bitrate: BitRate,
    /// Whether the RSRP is above the service threshold.
    pub in_service: bool,
}

/// Slot of a material in the per-cell wall-loss table; must mirror
/// [`Material::ALL`] order (asserted in tests).
fn mat_slot(m: Material) -> usize {
    match m {
        Material::Brick => 0,
        Material::Concrete => 1,
        Material::Drywall => 2,
        Material::Wood => 3,
        Material::Glass => 4,
    }
}

/// One mast location, shared by every co-sited sector — and by both
/// RATs when the deployment co-sites them (the paper's NSA gNBs stand
/// on eNB towers). All ray geometry (blockage, wall count, UE-building
/// material, ground distance, azimuth) depends only on `(pos, ue)`, so
/// it is computed once per site per sample instead of once per cell.
#[derive(Debug, Clone)]
struct SiteGeom {
    pos: Point,
    /// Bitmap of buildings containing the mast position (the rooftop
    /// "own building does not obstruct" rule); word layout matches the
    /// spatial index's candidate masks.
    mast_mask: Vec<u64>,
}

/// A run of same-technology cells sharing one site and identical
/// propagation invariants (height, carrier-derived pathloss constants,
/// vertical pattern). Per sample, the distance/median-loss/vertical
/// terms are computed once per group; members differ only in sector
/// azimuth, shadowing field and per-carrier wall/EIRP tables.
#[derive(Debug, Clone)]
struct TechGroup {
    site: usize,
    height_m: f64,
    pl0_db: f64,
    clutter_db_per_100m: f64,
    vertical: crate::antenna::VerticalPattern,
    /// `(position in the tech's cell list, cell index)` per member.
    members: Vec<(u32, u32)>,
}

impl TechGroup {
    /// Whether a cell with these invariants belongs to this group (bit
    /// equality — grouping must never merge almost-equal parameters).
    fn matches(
        &self,
        site: usize,
        height_m: f64,
        cache: &CellCache,
        v: &crate::antenna::VerticalPattern,
    ) -> bool {
        self.site == site
            && self.height_m.to_bits() == height_m.to_bits()
            && self.pl0_db.to_bits() == cache.pl0_db.to_bits()
            && self.clutter_db_per_100m.to_bits() == cache.clutter_db_per_100m.to_bits()
            && self.vertical.tilt_deg.to_bits() == v.tilt_deg.to_bits()
            && self.vertical.beamwidth_deg.to_bits() == v.beamwidth_deg.to_bits()
            && self.vertical.max_attenuation_db.to_bits() == v.max_attenuation_db.to_bits()
    }
}

/// Cached ray geometry from one site to the current UE position.
#[derive(Debug, Default, Clone, Copy)]
struct RaySite {
    computed: bool,
    blocked: bool,
    /// Exterior walls of the UE's building on this ray (0 if outdoor).
    walls_ue: u32,
    /// Material of the UE's building, if indoors.
    mat: Option<Material>,
    /// Ground distance mast → UE.
    d2: f64,
    /// Azimuth mast → UE, degrees (unused when `d2 < 1`).
    az_deg: f64,
}

/// Per-cell invariants hoisted out of the per-sample hot loop. Every
/// value is exactly what the corresponding per-call expression computed,
/// so cached and uncached paths are bit-identical.
#[derive(Debug, Clone)]
struct CellCache {
    /// `tx_power_per_re + ref_signal_gain_db`, dBm.
    eirp_dbm: f64,
    /// Thermal noise per RE at this cell's carrier, linear mW.
    noise_mw: f64,
    /// `PL0(f)` of the propagation model at this cell's carrier, dB.
    pl0_db: f64,
    /// Street-clutter slope at this cell's carrier, dB per 100 m.
    clutter_db_per_100m: f64,
    /// Wall penetration loss per material at this carrier, dB
    /// ([`Material::ALL`] order).
    wall_db: [f64; 5],
}

/// Reusable buffers + deterministic work counters for the allocation-free
/// measurement fast path ([`RadioEnv::measure_all_into`]).
///
/// Counters are flushed to the ambient `fiveg-obs` scope on [`Drop`] (or
/// an explicit [`MeasureScratch::flush`]), following the same Drop-flush
/// pattern as the net-layer simulator, so per-job manifests pick up
/// `phy.rays.traced` / `phy.buildings.pruned` / `phy.scratch.reuse`
/// without any plumbing through call sites.
#[derive(Debug, Default)]
pub struct MeasureScratch {
    rsrp_dbm: Vec<Dbm>,
    rsrp_mw: Vec<f64>,
    /// Ground distance per cell (same order as the tech's cell list).
    d2s: Vec<f64>,
    /// Already-tested bitmap words for the current ray.
    words: Vec<u64>,
    /// Buildings containing the current UE position (ascending).
    ue_hits: Vec<u32>,
    /// UE position the ray cache below is valid for.
    ray_ue: Option<(u64, u64)>,
    /// Per-site ray geometry for the current UE. Persists across the
    /// per-technology calls of one sample, so co-sited NR cells reuse
    /// the rays the LTE call already traced.
    ray_sites: Vec<RaySite>,
    out: Vec<CellMeasurement>,
    used: bool,
    stats: ScratchStats,
}

#[derive(Debug, Default, Clone, Copy)]
struct ScratchStats {
    samples: u64,
    rays: u64,
    pruned: u64,
    reuses: u64,
}

impl MeasureScratch {
    /// Creates an empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        MeasureScratch::default()
    }

    /// Flushes accumulated work counters to the current `fiveg-obs`
    /// scope; a no-op when no metrics handle is installed.
    pub fn flush(&mut self) {
        let s = std::mem::take(&mut self.stats);
        if s.samples > 0 {
            fiveg_obs::counter_add("phy.measure.samples", s.samples);
        }
        if s.rays > 0 {
            fiveg_obs::counter_add("phy.rays.traced", s.rays);
        }
        if s.pruned > 0 {
            fiveg_obs::counter_add("phy.buildings.pruned", s.pruned);
        }
        if s.reuses > 0 {
            fiveg_obs::counter_add("phy.scratch.reuse", s.reuses);
        }
    }
}

impl Drop for MeasureScratch {
    fn drop(&mut self) {
        self.flush();
    }
}

/// The radio environment.
#[derive(Debug, Clone)]
pub struct RadioEnv {
    /// Campus geometry.
    pub map: CampusMap,
    /// Deployed cells (all technologies).
    pub cells: Vec<CellPhy>,
    /// Propagation parameters.
    pub params: PropagationParams,
    shadowing: Vec<ShadowingField>,
    /// Precomputed lattice Gaussians per shadowing field, covering the
    /// campus bounds (plus a margin); same order as `cells`.
    shadow_grids: Vec<ShadowGrid>,
    /// Unique mast locations (by bit-equal position).
    sites: Vec<SiteGeom>,
    /// Site-sharing cell groups per technology (`[Lte, Nr]`).
    groups: [Vec<TechGroup>; 2],
    /// Hoisted per-cell invariants, same order as `cells`.
    cache: Vec<CellCache>,
    /// Cell indices per technology (`[Lte, Nr]`), ascending.
    by_tech: [Vec<usize>; 2],
    /// First cell index per PCI.
    pci_index: BTreeMap<u16, usize>,
}

fn tech_slot(tech: Tech) -> usize {
    match tech {
        Tech::Lte => 0,
        Tech::Nr => 1,
    }
}

impl RadioEnv {
    /// Builds an environment from explicit cells.
    ///
    /// Per-cell invariants (EIRP, noise, clutter and wall-loss tables)
    /// are precomputed here; `cells` and `params` must not be mutated
    /// afterwards or the caches go stale.
    pub fn new(map: CampusMap, cells: Vec<CellPhy>, params: PropagationParams, seed: u64) -> Self {
        let mut map = map;
        map.ensure_index();
        let shadowing: Vec<ShadowingField> = cells
            .iter()
            .map(|c| ShadowingField::new(seed ^ (c.pci as u64).wrapping_mul(0x9e37_79b9)))
            .collect();
        // Evaluating one shadowing query costs four lattice Gaussians
        // (two hashes + ln/sqrt/cos each); pre-evaluating the lattice
        // over the campus (plus a walk-off margin) replaces that with
        // loads. The cached values ARE the gaussian_at outputs, so fast
        // and naive paths stay bit-identical.
        const SHADOW_MARGIN_M: f64 = 200.0;
        let shadow_grids = shadowing
            .iter()
            .map(|f| {
                f.grid_for(
                    map.bounds.min.x - SHADOW_MARGIN_M,
                    map.bounds.min.y - SHADOW_MARGIN_M,
                    map.bounds.max.x + SHADOW_MARGIN_M,
                    map.bounds.max.y + SHADOW_MARGIN_M,
                )
            })
            .collect();
        let cache: Vec<CellCache> = cells
            .iter()
            .map(|c| {
                let f = c.carrier.freq;
                let mut wall_db = [0.0; 5];
                for &m in &Material::ALL {
                    wall_db[mat_slot(m)] = wall_loss(m, f).value();
                }
                CellCache {
                    eirp_dbm: (c.carrier.tx_power_per_re() + Db::new(c.carrier.ref_signal_gain_db))
                        .value(),
                    noise_mw: c.carrier.noise_per_re().to_milliwatts().milliwatts(),
                    pl0_db: params.pl0_db(f),
                    clutter_db_per_100m: params.clutter_per_100m(f),
                    wall_db,
                }
            })
            .collect();
        let wpc = map.mask_words();
        let mut hits = Vec::new();
        let mut sites: Vec<SiteGeom> = Vec::new();
        let mut site_of = vec![0usize; cells.len()];
        for (i, c) in cells.iter().enumerate() {
            let key = (c.pos.x.to_bits(), c.pos.y.to_bits());
            site_of[i] = sites
                .iter()
                .position(|s| (s.pos.x.to_bits(), s.pos.y.to_bits()) == key)
                .unwrap_or_else(|| {
                    let mut m = vec![0u64; wpc];
                    map.buildings_containing_into(c.pos, &mut hits);
                    for &bi in &hits {
                        m[bi as usize / 64] |= 1u64 << (bi % 64);
                    }
                    sites.push(SiteGeom {
                        pos: c.pos,
                        mast_mask: m,
                    });
                    sites.len() - 1
                });
        }
        let mut by_tech: [Vec<usize>; 2] = [Vec::new(), Vec::new()];
        let mut pci_index = BTreeMap::new();
        for (i, c) in cells.iter().enumerate() {
            by_tech[tech_slot(c.tech())].push(i);
            pci_index.entry(c.pci).or_insert(i);
        }
        let mut groups: [Vec<TechGroup>; 2] = [Vec::new(), Vec::new()];
        for (t, idxs) in by_tech.iter().enumerate() {
            for (k, &i) in idxs.iter().enumerate() {
                let c = &cells[i];
                let member = (k as u32, i as u32);
                match groups[t]
                    .iter_mut()
                    .find(|g| g.matches(site_of[i], c.height_m, &cache[i], &c.vertical))
                {
                    Some(g) => g.members.push(member),
                    None => groups[t].push(TechGroup {
                        site: site_of[i],
                        height_m: c.height_m,
                        pl0_db: cache[i].pl0_db,
                        clutter_db_per_100m: cache[i].clutter_db_per_100m,
                        vertical: c.vertical,
                        members: vec![member],
                    }),
                }
            }
        }
        RadioEnv {
            map,
            cells,
            params,
            shadowing,
            shadow_grids,
            sites,
            groups,
            cache,
            by_tech,
            pci_index,
        }
    }

    /// Builds the paper's deployment from a generated campus: LTE cells
    /// on every eNB sector (PCIs from 200), NR cells on every gNB sector
    /// (PCIs from 60 — the paper's Fig. 2a labels NR cells 60–79).
    ///
    /// `lte_load`/`nr_load` are the interference activity factors
    /// (daytime busy-hour defaults: 4G heavily used, 5G nearly empty in
    /// this early-deployment period — Sec. 4.1).
    pub fn from_campus(campus: &Campus, seed: u64, lte_load: f64, nr_load: f64) -> Self {
        let mut cells = Vec::new();
        let mut pci = 200u16;
        for site in &campus.plan.enb_sites {
            for &az in &site.sector_azimuths {
                cells.push(CellPhy {
                    pci,
                    carrier: crate::carrier::Carrier::lte_b3(),
                    pos: site.pos,
                    height_m: 25.0,
                    antenna: crate::antenna::SectorAntenna::standard(az),
                    vertical: crate::antenna::VerticalPattern::macro_default(),
                    load: lte_load,
                });
                pci += 1;
            }
        }
        let mut npci = 60u16;
        for site in &campus.plan.gnb_sites {
            for &az in &site.sector_azimuths {
                cells.push(CellPhy {
                    pci: npci,
                    carrier: crate::carrier::Carrier::nr_n78(),
                    pos: site.pos,
                    height_m: 25.0,
                    antenna: crate::antenna::SectorAntenna::nr_sweeping(az),
                    vertical: crate::antenna::VerticalPattern::macro_default(),
                    load: nr_load,
                });
                npci += 1;
            }
        }
        RadioEnv::new(
            campus.map.clone(),
            cells,
            PropagationParams::default_urban(),
            seed,
        )
    }

    /// Number of cells of a technology.
    pub fn num_cells(&self, tech: Tech) -> usize {
        self.by_tech[tech_slot(tech)].len()
    }

    /// Index of the cell with the given PCI (first match, as deployed).
    pub fn cell_index(&self, pci: u16) -> Option<usize> {
        self.pci_index.get(&pci).copied()
    }

    /// Total propagation loss (path loss + antenna + walls + shadowing)
    /// from cell `idx` to `ue` — reference implementation scanning every
    /// building. The fast path ([`RadioEnv::measure_all_into`]) computes
    /// the same value through the spatial index and the per-cell caches;
    /// equivalence tests hold the two bit-identical.
    fn total_loss_db(&self, idx: usize, ue: Point) -> Db {
        let cell = &self.cells[idx];
        let f = cell.carrier.freq;
        let d3 = cell.distance_3d(ue);
        let seg = Segment::new(cell.pos, ue);

        // Rooftop mast: the building under the mast does not obstruct its
        // own transmissions.
        let mut blocked_walls_ue_building = 0usize;
        let mut ue_material = None;
        let mut blocked = false;
        for b in &self.map.buildings {
            if b.contains(cell.pos) {
                continue;
            }
            let crossings = b.wall_crossings(seg);
            let contains_ue = b.contains(ue);
            if crossings > 0 || contains_ue {
                blocked = true;
            }
            if contains_ue {
                // At least one exterior wall separates an indoor UE.
                blocked_walls_ue_building = crossings.max(1);
                ue_material = Some(b.material);
            }
        }

        let (median, sigma) = if !blocked {
            (self.params.loss_los(d3, f), self.params.shadow_sigma_los)
        } else {
            (self.params.loss_nlos(d3, f), self.params.shadow_sigma_nlos)
        };
        let mut loss = median.value()
            + cell.antenna_attenuation_db(ue)
            + cell
                .vertical
                .attenuation_db(cell.pos.distance(ue), cell.height_m);
        if let Some(mat) = ue_material {
            // Indoor UE: add the exterior wall(s) of its own building.
            // Outdoor blockage by intermediate buildings is already
            // captured by the NLoS branch (diffraction dominates going
            // *around* a building; going *into* one has no such path).
            loss += wall_loss(mat, f).value() * blocked_walls_ue_building as f64;
        }
        loss += self.shadowing[idx].value_db(ue.x, ue.y, sigma).value();
        Db::new(loss)
    }

    /// Traces the ray geometry from site `si` to `ue` — identical logic
    /// to the building loop of [`RadioEnv::total_loss_db`], restructured
    /// around what that loop actually produces: a single `blocked` bit
    /// plus the UE building's material and wall count. `ue_hits` (the
    /// buildings containing the UE, hoisted to once per sample) supplies
    /// the UE-building term, so the candidate scan can stop at the first
    /// wall crossing; candidates stream straight off the spatial-index
    /// grid walk, and a blocked ray (the common case) touches only a
    /// grid cell or two. Only provably-unused work is skipped, keeping
    /// every derived value bit-identical to the reference.
    fn trace_site(
        &self,
        si: usize,
        ue: Point,
        words: &mut Vec<u64>,
        ue_hits: &[u32],
        stats: &mut ScratchStats,
    ) -> RaySite {
        let site = &self.sites[si];
        let seg = Segment::new(site.pos, ue);
        let mast = &site.mast_mask;

        // Last (ascending) building containing the UE that does not also
        // contain the mast — the "last containing building wins" rule.
        let mut ue_b = None;
        for &bi in ue_hits {
            if mast[bi as usize / 64] & (1u64 << (bi % 64)) == 0 {
                ue_b = Some(bi);
            }
        }

        let mut blocked = ue_b.is_some();
        let mut walls_ue = 0u32;
        let mut mat = None;
        let mut visited = 0usize;
        if let Some(bi) = ue_b {
            let b = &self.map.buildings[bi as usize];
            visited += 1;
            walls_ue = b.wall_crossings(seg).max(1) as u32;
            mat = Some(b.material);
        } else {
            // An indoor UE already decides `blocked`. `words` doubles as
            // an already-tested bitmap so a footprint spanning several
            // grid cells is tested once, like the reference scan.
            words.clear();
            words.resize(mast.len(), 0);
            let scanned = self.map.ray_scan_until(seg, |bi| {
                let (w, bit) = (bi as usize / 64, 1u64 << (bi % 64));
                if (mast[w] | words[w]) & bit != 0 {
                    return false;
                }
                words[w] |= bit;
                visited += 1;
                self.map.buildings[bi as usize].wall_crossings(seg) > 0
            });
            match scanned {
                Some(hit) => blocked = hit,
                None => {
                    // No spatial index (deserialized map): full scan.
                    for (bi, b) in self.map.buildings.iter().enumerate() {
                        if mast[bi / 64] & (1u64 << (bi % 64)) != 0 {
                            continue;
                        }
                        visited += 1;
                        if b.wall_crossings(seg) > 0 {
                            blocked = true;
                            break;
                        }
                    }
                }
            }
        }
        stats.rays += 1;
        stats.pruned += (self.map.buildings.len() - visited) as u64;
        RaySite {
            computed: true,
            blocked,
            walls_ue,
            mat,
            d2: site.pos.distance(ue),
            az_deg: site.pos.azimuth_to(ue),
        }
    }

    /// RSRP of cell `idx` at `ue`.
    pub fn rsrp(&self, idx: usize, ue: Point) -> Dbm {
        let cell = &self.cells[idx];
        cell.carrier.tx_power_per_re() + Db::new(cell.carrier.ref_signal_gain_db)
            - self.total_loss_db(idx, ue)
    }

    /// Measures every cell of `tech` at `ue`, with mutual co-channel
    /// interference, sorted by descending RSRP.
    ///
    /// Convenience wrapper over [`RadioEnv::measure_all_into`] that
    /// builds (and throws away) a fresh [`MeasureScratch`] per call, so
    /// it is **test-only / cold-path**: fine in unit tests, examples
    /// and one-shot calibration sweeps, but anything called per UE per
    /// tick (fleet runs, city sweeps, handoff traces) must hold a
    /// persistent scratch and use the `_into` form — the per-call
    /// allocations dominate at 100k-UE scale.
    pub fn measure_all(&self, ue: Point, tech: Tech) -> Vec<CellMeasurement> {
        let mut scratch = MeasureScratch::new();
        self.measure_all_into(ue, tech, &mut scratch);
        std::mem::take(&mut scratch.out)
    }

    /// Allocation-free [`RadioEnv::measure_all`]: fills and returns
    /// `scratch.out` (sorted by descending RSRP), reusing the scratch
    /// buffers across calls.
    pub fn measure_all_into<'a>(
        &self,
        ue: Point,
        tech: Tech,
        scratch: &'a mut MeasureScratch,
    ) -> &'a [CellMeasurement] {
        if scratch.used {
            scratch.stats.reuses += 1;
        } else {
            scratch.used = true;
        }
        scratch.stats.samples += 1;
        scratch.out.clear();
        let idxs: &[usize] = &self.by_tech[tech_slot(tech)];
        if idxs.is_empty() {
            return &scratch.out;
        }
        // The ray cache is keyed on the UE position: the per-technology
        // calls of one sample share it, so co-sited NR cells reuse rays
        // the LTE call already traced. The UE-building lookup is equally
        // ray-invariant and hoisted with it.
        let ue_bits = (ue.x.to_bits(), ue.y.to_bits());
        if scratch.ray_ue != Some(ue_bits) {
            scratch.ray_ue = Some(ue_bits);
            scratch.ray_sites.clear();
            scratch
                .ray_sites
                .resize(self.sites.len(), RaySite::default());
            self.map.buildings_containing_into(ue, &mut scratch.ue_hits);
        }
        let n = idxs.len();
        scratch.rsrp_dbm.clear();
        scratch.rsrp_dbm.resize(n, Dbm::new(0.0));
        scratch.rsrp_mw.clear();
        scratch.rsrp_mw.resize(n, 0.0);
        scratch.d2s.clear();
        scratch.d2s.resize(n, 0.0);
        for g in &self.groups[tech_slot(tech)] {
            if !scratch.ray_sites[g.site].computed {
                scratch.ray_sites[g.site] = self.trace_site(
                    g.site,
                    ue,
                    &mut scratch.words,
                    &scratch.ue_hits,
                    &mut scratch.stats,
                );
            }
            let rs = scratch.ray_sites[g.site];
            // Group-invariant terms, same expressions as the reference:
            // 3-D distance, LoS/NLoS median, vertical-pattern loss.
            let dh = g.height_m - 1.5;
            let d3 = (rs.d2 * rs.d2 + dh * dh).sqrt();
            let (median, sigma) = if !rs.blocked {
                (
                    self.params
                        .loss_los_from(g.pl0_db, g.clutter_db_per_100m, d3),
                    self.params.shadow_sigma_los,
                )
            } else {
                (
                    self.params
                        .loss_nlos_from(g.pl0_db, g.clutter_db_per_100m, d3),
                    self.params.shadow_sigma_nlos,
                )
            };
            let vert = g.vertical.attenuation_db(rs.d2, g.height_m);
            for &(k, i) in &g.members {
                let (k, i) = (k as usize, i as usize);
                let ant = if rs.d2 < 1.0 {
                    0.0
                } else {
                    self.cells[i].antenna.attenuation_db(rs.az_deg)
                };
                let mut loss = median + ant + vert;
                if let Some(m) = rs.mat {
                    loss += self.cache[i].wall_db[mat_slot(m)] * rs.walls_ue as f64;
                }
                loss += self.shadowing[i]
                    .value_db_cached(ue.x, ue.y, sigma, &self.shadow_grids[i])
                    .value();
                let dbm = Dbm::new(self.cache[i].eirp_dbm - loss);
                scratch.rsrp_dbm[k] = dbm;
                scratch.rsrp_mw[k] = dbm.to_milliwatts().milliwatts();
                scratch.d2s[k] = rs.d2;
            }
        }
        let noise_mw = self.cache[idxs[0]].noise_mw;

        // RSSI is ONE wideband quantity at the UE: the sum of every
        // co-channel cell's received power weighted by its airtime
        // activity, floored at the always-on reference-signal overhead
        // (≈20 % of REs), plus noise. Sharing the denominator is what
        // makes RSRQ discriminate between cells — RSRQ gaps equal RSRP
        // gaps, as the A3 hand-off rule relies on.
        const RS_ACTIVITY_FLOOR: f64 = 0.2;
        let rssi_per_re: f64 = idxs
            .iter()
            .enumerate()
            .map(|(k2, &i2)| scratch.rsrp_mw[k2] * self.cells[i2].load.max(RS_ACTIVITY_FLOOR))
            .sum::<f64>()
            + noise_mw;
        // Data-plane SINR: interference from *loaded* REs of the other
        // cells only (data REs dodge the RS collisions). Computing the
        // loaded total once and subtracting each cell's own term turns
        // the old O(cells²) skip-sum into O(cells).
        let total_loaded: f64 = idxs
            .iter()
            .enumerate()
            .map(|(k2, &i2)| scratch.rsrp_mw[k2] * self.cells[i2].load)
            .sum();
        for (k, &i) in idxs.iter().enumerate() {
            let interference = total_loaded - scratch.rsrp_mw[k] * self.cells[i].load;
            let sinr = Db::from_linear((scratch.rsrp_mw[k] / (interference + noise_mw)).max(1e-12));
            let rsrq = Db::from_linear((scratch.rsrp_mw[k] / (12.0 * rssi_per_re)).max(1e-12));
            scratch.out.push(CellMeasurement {
                pci: self.cells[i].pci,
                tech,
                rsrp: scratch.rsrp_dbm[k],
                rsrq,
                sinr,
                distance_m: scratch.d2s[k],
            });
        }
        // total_cmp: a NaN RSRP from a pathological parameter set sorts
        // deterministically instead of panicking mid-campaign.
        scratch
            .out
            .sort_by(|a, b| b.rsrp.value().total_cmp(&a.rsrp.value()));
        &scratch.out
    }

    /// Reference implementation of [`RadioEnv::measure_all`]: full
    /// building scans, no hoisted tables, fresh allocations — the
    /// equivalence property tests hold the fast path bit-identical to
    /// this. Not for production use.
    #[doc(hidden)]
    pub fn measure_all_naive(&self, ue: Point, tech: Tech) -> Vec<CellMeasurement> {
        let idxs: Vec<usize> = (0..self.cells.len())
            .filter(|&i| self.cells[i].tech() == tech)
            .collect();
        if idxs.is_empty() {
            return Vec::new();
        }
        let rsrp_dbm: Vec<Dbm> = idxs.iter().map(|&i| self.rsrp(i, ue)).collect();
        let rsrp_mw: Vec<f64> = rsrp_dbm
            .iter()
            .map(|d| d.to_milliwatts().milliwatts())
            .collect();
        let noise_mw = self.cells[idxs[0]]
            .carrier
            .noise_per_re()
            .to_milliwatts()
            .milliwatts();
        const RS_ACTIVITY_FLOOR: f64 = 0.2;
        let rssi_per_re: f64 = idxs
            .iter()
            .enumerate()
            .map(|(k2, &i2)| rsrp_mw[k2] * self.cells[i2].load.max(RS_ACTIVITY_FLOOR))
            .sum::<f64>()
            + noise_mw;
        let total_loaded: f64 = idxs
            .iter()
            .enumerate()
            .map(|(k2, &i2)| rsrp_mw[k2] * self.cells[i2].load)
            .sum();
        let mut out: Vec<CellMeasurement> = idxs
            .iter()
            .enumerate()
            .map(|(k, &i)| {
                let interference = total_loaded - rsrp_mw[k] * self.cells[i].load;
                let sinr = Db::from_linear((rsrp_mw[k] / (interference + noise_mw)).max(1e-12));
                let rsrq = Db::from_linear((rsrp_mw[k] / (12.0 * rssi_per_re)).max(1e-12));
                CellMeasurement {
                    pci: self.cells[i].pci,
                    tech,
                    rsrp: rsrp_dbm[k],
                    rsrq,
                    sinr,
                    distance_m: self.cells[i].pos.distance(ue),
                }
            })
            .collect();
        out.sort_by(|a, b| b.rsrp.value().total_cmp(&a.rsrp.value()));
        out
    }

    /// The strongest cell of `tech` at `ue`, if any exist.
    pub fn serving(&self, ue: Point, tech: Tech) -> Option<CellMeasurement> {
        let mut scratch = MeasureScratch::new();
        self.serving_into(ue, tech, &mut scratch)
    }

    /// Allocation-free [`RadioEnv::serving`].
    pub fn serving_into(
        &self,
        ue: Point,
        tech: Tech,
        scratch: &mut MeasureScratch,
    ) -> Option<CellMeasurement> {
        self.measure_all_into(ue, tech, scratch).first().copied()
    }

    /// Measurement of one specific cell (by PCI) including interference
    /// from its co-channel neighbours — used when the UE is locked to a
    /// cell (the paper's Sec. 3.2 frequency-lock experiment).
    pub fn measure_pci(&self, ue: Point, pci: u16) -> Option<CellMeasurement> {
        let mut scratch = MeasureScratch::new();
        self.measure_pci_into(ue, pci, &mut scratch)
    }

    /// Allocation-free [`RadioEnv::measure_pci`].
    pub fn measure_pci_into(
        &self,
        ue: Point,
        pci: u16,
        scratch: &mut MeasureScratch,
    ) -> Option<CellMeasurement> {
        let tech = self.cells[self.cell_index(pci)?].tech();
        self.measure_all_into(ue, tech, scratch)
            .iter()
            .find(|m| m.pci == pci)
            .copied()
    }

    /// Full KPI sample of the serving cell at `ue`.
    ///
    /// `prb_fraction` is the share of PRBs the scheduler grants this UE
    /// (the paper observed ≈1.0 for the empty 5G network and 0.4–1.0 for
    /// 4G depending on time of day).
    pub fn kpi_sample(&self, ue: Point, tech: Tech, prb_fraction: f64) -> Option<KpiSample> {
        let mut scratch = MeasureScratch::new();
        self.kpi_sample_into(ue, tech, prb_fraction, &mut scratch)
    }

    /// Allocation-free [`RadioEnv::kpi_sample`].
    pub fn kpi_sample_into(
        &self,
        ue: Point,
        tech: Tech,
        prb_fraction: f64,
        scratch: &mut MeasureScratch,
    ) -> Option<KpiSample> {
        let serving = self.serving_into(ue, tech, scratch)?;
        Some(self.kpi_for(serving, ue, prb_fraction))
    }

    /// Full KPI sample for a given (already measured) serving cell.
    pub fn kpi_for(&self, serving: CellMeasurement, ue: Point, prb_fraction: f64) -> KpiSample {
        let Some(idx) = self.cell_index(serving.pci) else {
            // Unreachable via `kpi_sample_into` (the measurement came
            // from this env); a foreign PCI degrades to out-of-service
            // instead of panicking mid-campaign.
            return KpiSample {
                pos: ue,
                indoor: self.map.is_indoor(ue),
                serving,
                cqi: 0,
                mcs: 0,
                bitrate: BitRate::ZERO,
                in_service: false,
            };
        };
        let carrier = self.cells[idx].carrier;
        let cqi = mcs::cqi_from_sinr(serving.sinr.value());
        let mcs_idx = mcs::mcs_from_cqi(cqi);
        let in_service = serving.rsrp >= SERVICE_THRESHOLD;
        let bitrate = if in_service {
            carrier.dl_rate_at_peak_mcs(prb_fraction) * mcs::rate_fraction(serving.sinr.value())
        } else {
            BitRate::ZERO
        };
        KpiSample {
            pos: ue,
            indoor: self.map.is_indoor(ue),
            serving,
            cqi,
            mcs: mcs_idx,
            bitrate,
            in_service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_geo::CampusConfig;
    use fiveg_simcore::SimRng;

    fn env() -> RadioEnv {
        let campus = Campus::generate(&CampusConfig::default(), &mut SimRng::new(2020));
        RadioEnv::from_campus(&campus, 77, 0.5, 0.05)
    }

    #[test]
    fn deployment_counts() {
        let e = env();
        assert_eq!(e.num_cells(Tech::Lte), 34);
        assert_eq!(e.num_cells(Tech::Nr), 13);
        assert!(e.cell_index(60).is_some(), "first NR PCI");
        assert!(e.cell_index(200).is_some(), "first LTE PCI");
    }

    #[test]
    fn rsrp_decays_with_distance() {
        let e = env();
        let idx = e.cell_index(60).unwrap();
        let cell_pos = e.cells[idx].pos;
        let az = e.cells[idx].antenna.azimuth_deg.to_radians();
        let dir = Point::new(az.cos(), az.sin());
        // Sample along boresight; RSRP must broadly decay (shadowing
        // wiggles, so compare 30 m vs 300 m).
        let near = e.rsrp(idx, cell_pos + dir * 30.0);
        let far = e.rsrp(idx, cell_pos + dir * 300.0);
        assert!(near.value() > far.value() + 10.0, "near {near} far {far}");
    }

    #[test]
    fn serving_cell_is_strongest() {
        let e = env();
        let ue = Point::new(250.0, 460.0);
        let all = e.measure_all(ue, Tech::Nr);
        assert_eq!(all.len(), 13);
        let serving = e.serving(ue, Tech::Nr).unwrap();
        assert_eq!(serving.pci, all[0].pci);
        for w in all.windows(2) {
            assert!(w[0].rsrp >= w[1].rsrp);
        }
    }

    #[test]
    fn sinr_no_higher_than_snr_and_rsrq_in_band() {
        let e = env();
        for &(x, y) in &[(100.0, 100.0), (250.0, 460.0), (400.0, 800.0)] {
            let m = e.serving(Point::new(x, y), Tech::Nr).unwrap();
            // Serving RSRQ for a lightly loaded system tops out near
            // -10·log10(12·0.2) ≈ -3.8 dB and degrades with load and
            // interference.
            assert!(
                m.rsrq.value() < -3.5 && m.rsrq.value() > -30.0,
                "rsrq {}",
                m.rsrq
            );
        }
    }

    #[test]
    fn kpi_sample_consistency() {
        let e = env();
        let s = e
            .kpi_sample(Point::new(250.0, 460.0), Tech::Nr, 1.0)
            .unwrap();
        assert_eq!(s.cqi, mcs::cqi_from_sinr(s.serving.sinr.value()));
        if s.in_service {
            assert!(s.bitrate.bps() > 0.0);
            assert!(s.bitrate.mbps() <= 1201.0);
        } else {
            assert_eq!(s.bitrate.bps(), 0.0);
        }
    }

    #[test]
    fn indoor_ue_sees_extra_loss() {
        let e = env();
        // Find a building and compare just-outside vs inside RSRP of the
        // same cell with shadowing neutralised by comparing many pairs.
        let mut indoor_worse = 0;
        let mut total = 0;
        for b in e.map.buildings.iter().take(12) {
            let c = b.footprint.center();
            let outside = Point::new(b.footprint.min.x - 3.0, c.y);
            if e.map.is_indoor(outside) {
                continue;
            }
            let idx = e.cell_index(60).unwrap();
            let r_in = e.rsrp(idx, c);
            let r_out = e.rsrp(idx, outside);
            total += 1;
            if r_in.value() < r_out.value() {
                indoor_worse += 1;
            }
        }
        assert!(total > 5);
        assert!(
            indoor_worse * 4 >= total * 3,
            "{indoor_worse}/{total} indoor samples worse"
        );
    }

    #[test]
    fn lte_and_nr_do_not_interfere() {
        // NR SINR with heavily loaded LTE should match NR SINR with idle
        // LTE (different bands): verify by comparing two environments.
        let campus = Campus::generate(&CampusConfig::default(), &mut SimRng::new(2020));
        let busy = RadioEnv::from_campus(&campus, 77, 0.9, 0.05);
        let idle = RadioEnv::from_campus(&campus, 77, 0.0, 0.05);
        let ue = Point::new(250.0, 460.0);
        let a = busy.serving(ue, Tech::Nr).unwrap();
        let b = idle.serving(ue, Tech::Nr).unwrap();
        assert_eq!(a.sinr, b.sinr);
    }

    #[test]
    fn measure_pci_finds_locked_cell() {
        let e = env();
        let ue = Point::new(250.0, 460.0);
        let m = e.measure_pci(ue, 60).unwrap();
        assert_eq!(m.pci, 60);
        assert!(e.measure_pci(ue, 9999).is_none());
    }

    /// The spatial-indexed, table-driven fast path must be bit-identical
    /// to the naive full-scan reference — not merely close: the golden
    /// artifacts depend on exact bytes.
    #[test]
    fn fast_path_bit_identical_to_naive() {
        let e = env();
        let mut rng = SimRng::new(0xFA57);
        let mut scratch = MeasureScratch::new();
        for _ in 0..60 {
            let ue = Point::new(rng.range_f64(-50.0, 1050.0), rng.range_f64(-50.0, 1050.0));
            for tech in [Tech::Lte, Tech::Nr] {
                let naive = e.measure_all_naive(ue, tech);
                let fast = e.measure_all_into(ue, tech, &mut scratch);
                assert_eq!(naive.len(), fast.len());
                for (n, f) in naive.iter().zip(fast.iter()) {
                    assert_eq!(n.pci, f.pci, "order diverged at {ue:?}");
                    assert_eq!(n.rsrp.value().to_bits(), f.rsrp.value().to_bits());
                    assert_eq!(n.rsrq.value().to_bits(), f.rsrq.value().to_bits());
                    assert_eq!(n.sinr.value().to_bits(), f.sinr.value().to_bits());
                    assert_eq!(n.distance_m.to_bits(), f.distance_m.to_bits());
                }
            }
        }
    }

    /// A reused scratch returns the same measurements as fresh
    /// allocations, and its Drop flushes the phy.* counters into the
    /// ambient obs scope.
    #[test]
    fn scratch_reuse_matches_and_flushes_counters() {
        let e = env();
        let m = fiveg_obs::MetricsHandle::new();
        fiveg_obs::scoped(&m, || {
            let mut scratch = MeasureScratch::new();
            for k in 0..5 {
                let ue = Point::new(100.0 + 60.0 * k as f64, 300.0);
                let fresh = e.measure_all(ue, Tech::Nr);
                let reused = e.measure_all_into(ue, Tech::Nr, &mut scratch);
                assert_eq!(fresh, reused);
            }
        });
        let snap = m.snapshot();
        // 5 reused calls + 5 wrapper-internal scratches = 10 samples,
        // but only the persistent scratch records reuses (4 of them).
        assert_eq!(snap.counters["phy.measure.samples"], 10);
        assert_eq!(snap.counters["phy.scratch.reuse"], 4);
        // Rays are traced per unique mast position, not per cell.
        let nr_sites: std::collections::BTreeSet<(u64, u64)> = e
            .cells
            .iter()
            .filter(|c| c.tech() == Tech::Nr)
            .map(|c| (c.pos.x.to_bits(), c.pos.y.to_bits()))
            .collect();
        assert!(nr_sites.len() < e.num_cells(Tech::Nr), "sectors co-site");
        assert_eq!(snap.counters["phy.rays.traced"], 10 * nr_sites.len() as u64);
        assert!(snap.counters["phy.buildings.pruned"] > 0);
    }

    /// The RSRP sort uses `total_cmp`: a NaN from a pathological
    /// parameter set sorts deterministically (positive NaN above +inf,
    /// hence first in the descending order) instead of panicking
    /// mid-campaign as the old `partial_cmp(..).expect(..)` did.
    #[test]
    fn nan_rsrp_sorts_deterministically_without_panic() {
        let mk = |v: f64| CellMeasurement {
            pci: 1,
            tech: Tech::Nr,
            rsrp: Dbm::new(v),
            rsrq: Db::new(-10.0),
            sinr: Db::new(0.0),
            distance_m: 10.0,
        };
        let mut v = [mk(f64::NAN), mk(-80.0), mk(-120.0), mk(-60.0)];
        v.sort_by(|a, b| b.rsrp.value().total_cmp(&a.rsrp.value()));
        assert!(v[0].rsrp.value().is_nan());
        assert_eq!(v[1].rsrp.value(), -60.0);
        assert_eq!(v[3].rsrp.value(), -120.0);
    }
}
