//! The radio environment — the XCAL-Mobile analogue.
//!
//! [`RadioEnv`] combines the campus map, the deployed cells, the
//! propagation model and per-cell shadowing fields, and answers the
//! question the paper's probe answered at every sampled location: what
//! RSRP/RSRQ/SINR/CQI/MCS/bitrate does each cell deliver here, and which
//! cell would serve me?

use crate::carrier::Tech;
use crate::cell::CellPhy;
use crate::mcs;
use crate::pathloss::{PropagationParams, ShadowingField};
use crate::penetration::wall_loss;
use fiveg_geo::point::Segment;
use fiveg_geo::{Campus, CampusMap, Point};
use fiveg_simcore::{BitRate, Db, Dbm};
use serde::{Deserialize, Serialize};

/// Service threshold: below this RSRP the network cannot sustain a
/// connection (paper Sec. 3.1, citing Rel-15 TS 36.211: "if the RSRP is
/// less than −105 dBm, the communication service cannot be triggered").
pub const SERVICE_THRESHOLD: Dbm = Dbm::new(-105.0);

/// Everything measured about one cell at one location.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellMeasurement {
    /// Physical cell id.
    pub pci: u16,
    /// Technology.
    pub tech: Tech,
    /// Reference signal received power.
    pub rsrp: Dbm,
    /// Reference signal received quality, dB.
    pub rsrq: Db,
    /// Signal-to-interference-plus-noise ratio, dB.
    pub sinr: Db,
    /// 2-D ground distance to the mast, metres.
    pub distance_m: f64,
}

/// A full KPI sample for the serving cell at one location — one row of
/// the measurement dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KpiSample {
    /// Sampled position.
    pub pos: Point,
    /// Whether the position is indoors.
    pub indoor: bool,
    /// Serving-cell measurement.
    pub serving: CellMeasurement,
    /// Channel quality indicator derived from SINR.
    pub cqi: u8,
    /// Modulation-and-coding-scheme index.
    pub mcs: u8,
    /// Downlink PHY bitrate available to this UE at the allocated PRB
    /// share.
    pub bitrate: BitRate,
    /// Whether the RSRP is above the service threshold.
    pub in_service: bool,
}

/// The radio environment.
#[derive(Debug, Clone)]
pub struct RadioEnv {
    /// Campus geometry.
    pub map: CampusMap,
    /// Deployed cells (all technologies).
    pub cells: Vec<CellPhy>,
    /// Propagation parameters.
    pub params: PropagationParams,
    shadowing: Vec<ShadowingField>,
}

impl RadioEnv {
    /// Builds an environment from explicit cells.
    pub fn new(map: CampusMap, cells: Vec<CellPhy>, params: PropagationParams, seed: u64) -> Self {
        let shadowing = cells
            .iter()
            .map(|c| ShadowingField::new(seed ^ (c.pci as u64).wrapping_mul(0x9e37_79b9)))
            .collect();
        RadioEnv {
            map,
            cells,
            params,
            shadowing,
        }
    }

    /// Builds the paper's deployment from a generated campus: LTE cells
    /// on every eNB sector (PCIs from 200), NR cells on every gNB sector
    /// (PCIs from 60 — the paper's Fig. 2a labels NR cells 60–79).
    ///
    /// `lte_load`/`nr_load` are the interference activity factors
    /// (daytime busy-hour defaults: 4G heavily used, 5G nearly empty in
    /// this early-deployment period — Sec. 4.1).
    pub fn from_campus(campus: &Campus, seed: u64, lte_load: f64, nr_load: f64) -> Self {
        let mut cells = Vec::new();
        let mut pci = 200u16;
        for site in &campus.plan.enb_sites {
            for &az in &site.sector_azimuths {
                cells.push(CellPhy {
                    pci,
                    carrier: crate::carrier::Carrier::lte_b3(),
                    pos: site.pos,
                    height_m: 25.0,
                    antenna: crate::antenna::SectorAntenna::standard(az),
                    vertical: crate::antenna::VerticalPattern::macro_default(),
                    load: lte_load,
                });
                pci += 1;
            }
        }
        let mut npci = 60u16;
        for site in &campus.plan.gnb_sites {
            for &az in &site.sector_azimuths {
                cells.push(CellPhy {
                    pci: npci,
                    carrier: crate::carrier::Carrier::nr_n78(),
                    pos: site.pos,
                    height_m: 25.0,
                    antenna: crate::antenna::SectorAntenna::nr_sweeping(az),
                    vertical: crate::antenna::VerticalPattern::macro_default(),
                    load: nr_load,
                });
                npci += 1;
            }
        }
        RadioEnv::new(
            campus.map.clone(),
            cells,
            PropagationParams::default_urban(),
            seed,
        )
    }

    /// Number of cells of a technology.
    pub fn num_cells(&self, tech: Tech) -> usize {
        self.cells.iter().filter(|c| c.tech() == tech).count()
    }

    /// Index of the cell with the given PCI.
    pub fn cell_index(&self, pci: u16) -> Option<usize> {
        self.cells.iter().position(|c| c.pci == pci)
    }

    /// Total propagation loss (path loss + antenna + walls + shadowing)
    /// from cell `idx` to `ue`.
    fn total_loss_db(&self, idx: usize, ue: Point) -> Db {
        let cell = &self.cells[idx];
        let f = cell.carrier.freq;
        let d3 = cell.distance_3d(ue);
        let seg = Segment::new(cell.pos, ue);

        // Rooftop mast: the building under the mast does not obstruct its
        // own transmissions.
        let mut blocked_walls_ue_building = 0usize;
        let mut ue_material = None;
        let mut blocked = false;
        for b in &self.map.buildings {
            if b.contains(cell.pos) {
                continue;
            }
            let crossings = b.wall_crossings(seg);
            let contains_ue = b.contains(ue);
            if crossings > 0 || contains_ue {
                blocked = true;
            }
            if contains_ue {
                // At least one exterior wall separates an indoor UE.
                blocked_walls_ue_building = crossings.max(1);
                ue_material = Some(b.material);
            }
        }

        let (median, sigma) = if !blocked {
            (self.params.loss_los(d3, f), self.params.shadow_sigma_los)
        } else {
            (self.params.loss_nlos(d3, f), self.params.shadow_sigma_nlos)
        };
        let mut loss = median.value()
            + cell.antenna_attenuation_db(ue)
            + cell
                .vertical
                .attenuation_db(cell.pos.distance(ue), cell.height_m);
        if let Some(mat) = ue_material {
            // Indoor UE: add the exterior wall(s) of its own building.
            // Outdoor blockage by intermediate buildings is already
            // captured by the NLoS branch (diffraction dominates going
            // *around* a building; going *into* one has no such path).
            loss += wall_loss(mat, f).value() * blocked_walls_ue_building as f64;
        }
        loss += self.shadowing[idx].value_db(ue.x, ue.y, sigma).value();
        Db::new(loss)
    }

    /// RSRP of cell `idx` at `ue`.
    pub fn rsrp(&self, idx: usize, ue: Point) -> Dbm {
        let cell = &self.cells[idx];
        cell.carrier.tx_power_per_re() + Db::new(cell.carrier.ref_signal_gain_db)
            - self.total_loss_db(idx, ue)
    }

    /// Measures every cell of `tech` at `ue`, with mutual co-channel
    /// interference, sorted by descending RSRP.
    pub fn measure_all(&self, ue: Point, tech: Tech) -> Vec<CellMeasurement> {
        let idxs: Vec<usize> = (0..self.cells.len())
            .filter(|&i| self.cells[i].tech() == tech)
            .collect();
        if idxs.is_empty() {
            return Vec::new();
        }
        let rsrp_dbm: Vec<Dbm> = idxs.iter().map(|&i| self.rsrp(i, ue)).collect();
        let rsrp_mw: Vec<f64> = rsrp_dbm
            .iter()
            .map(|d| d.to_milliwatts().milliwatts())
            .collect();
        let noise_mw = self.cells[idxs[0]]
            .carrier
            .noise_per_re()
            .to_milliwatts()
            .milliwatts();

        // RSSI is ONE wideband quantity at the UE: the sum of every
        // co-channel cell's received power weighted by its airtime
        // activity, floored at the always-on reference-signal overhead
        // (≈20 % of REs), plus noise. Sharing the denominator is what
        // makes RSRQ discriminate between cells — RSRQ gaps equal RSRP
        // gaps, as the A3 hand-off rule relies on.
        const RS_ACTIVITY_FLOOR: f64 = 0.2;
        let rssi_per_re: f64 = idxs
            .iter()
            .enumerate()
            .map(|(k2, &i2)| rsrp_mw[k2] * self.cells[i2].load.max(RS_ACTIVITY_FLOOR))
            .sum::<f64>()
            + noise_mw;
        let mut out: Vec<CellMeasurement> = idxs
            .iter()
            .enumerate()
            .map(|(k, &i)| {
                // Data-plane SINR: interference from *loaded* REs of the
                // other cells only (data REs dodge the RS collisions).
                let interference: f64 = idxs
                    .iter()
                    .enumerate()
                    .filter(|&(k2, _)| k2 != k)
                    .map(|(k2, &i2)| rsrp_mw[k2] * self.cells[i2].load)
                    .sum();
                let sinr = Db::from_linear((rsrp_mw[k] / (interference + noise_mw)).max(1e-12));
                let rsrq = Db::from_linear((rsrp_mw[k] / (12.0 * rssi_per_re)).max(1e-12));
                CellMeasurement {
                    pci: self.cells[i].pci,
                    tech,
                    rsrp: rsrp_dbm[k],
                    rsrq,
                    sinr,
                    distance_m: self.cells[i].pos.distance(ue),
                }
            })
            .collect();
        out.sort_by(|a, b| b.rsrp.partial_cmp(&a.rsrp).expect("RSRP is finite"));
        out
    }

    /// The strongest cell of `tech` at `ue`, if any exist.
    pub fn serving(&self, ue: Point, tech: Tech) -> Option<CellMeasurement> {
        self.measure_all(ue, tech).into_iter().next()
    }

    /// Measurement of one specific cell (by PCI) including interference
    /// from its co-channel neighbours — used when the UE is locked to a
    /// cell (the paper's Sec. 3.2 frequency-lock experiment).
    pub fn measure_pci(&self, ue: Point, pci: u16) -> Option<CellMeasurement> {
        let tech = self.cells[self.cell_index(pci)?].tech();
        self.measure_all(ue, tech)
            .into_iter()
            .find(|m| m.pci == pci)
    }

    /// Full KPI sample of the serving cell at `ue`.
    ///
    /// `prb_fraction` is the share of PRBs the scheduler grants this UE
    /// (the paper observed ≈1.0 for the empty 5G network and 0.4–1.0 for
    /// 4G depending on time of day).
    pub fn kpi_sample(&self, ue: Point, tech: Tech, prb_fraction: f64) -> Option<KpiSample> {
        let serving = self.serving(ue, tech)?;
        Some(self.kpi_for(serving, ue, prb_fraction))
    }

    /// Full KPI sample for a given (already measured) serving cell.
    pub fn kpi_for(&self, serving: CellMeasurement, ue: Point, prb_fraction: f64) -> KpiSample {
        let idx = self
            .cell_index(serving.pci)
            .expect("measurement refers to a deployed cell");
        let carrier = self.cells[idx].carrier;
        let cqi = mcs::cqi_from_sinr(serving.sinr.value());
        let mcs_idx = mcs::mcs_from_cqi(cqi);
        let in_service = serving.rsrp >= SERVICE_THRESHOLD;
        let bitrate = if in_service {
            carrier.dl_rate_at_peak_mcs(prb_fraction) * mcs::rate_fraction(serving.sinr.value())
        } else {
            BitRate::ZERO
        };
        KpiSample {
            pos: ue,
            indoor: self.map.is_indoor(ue),
            serving,
            cqi,
            mcs: mcs_idx,
            bitrate,
            in_service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_geo::CampusConfig;
    use fiveg_simcore::SimRng;

    fn env() -> RadioEnv {
        let campus = Campus::generate(&CampusConfig::default(), &mut SimRng::new(2020));
        RadioEnv::from_campus(&campus, 77, 0.5, 0.05)
    }

    #[test]
    fn deployment_counts() {
        let e = env();
        assert_eq!(e.num_cells(Tech::Lte), 34);
        assert_eq!(e.num_cells(Tech::Nr), 13);
        assert!(e.cell_index(60).is_some(), "first NR PCI");
        assert!(e.cell_index(200).is_some(), "first LTE PCI");
    }

    #[test]
    fn rsrp_decays_with_distance() {
        let e = env();
        let idx = e.cell_index(60).unwrap();
        let cell_pos = e.cells[idx].pos;
        let az = e.cells[idx].antenna.azimuth_deg.to_radians();
        let dir = Point::new(az.cos(), az.sin());
        // Sample along boresight; RSRP must broadly decay (shadowing
        // wiggles, so compare 30 m vs 300 m).
        let near = e.rsrp(idx, cell_pos + dir * 30.0);
        let far = e.rsrp(idx, cell_pos + dir * 300.0);
        assert!(near.value() > far.value() + 10.0, "near {near} far {far}");
    }

    #[test]
    fn serving_cell_is_strongest() {
        let e = env();
        let ue = Point::new(250.0, 460.0);
        let all = e.measure_all(ue, Tech::Nr);
        assert_eq!(all.len(), 13);
        let serving = e.serving(ue, Tech::Nr).unwrap();
        assert_eq!(serving.pci, all[0].pci);
        for w in all.windows(2) {
            assert!(w[0].rsrp >= w[1].rsrp);
        }
    }

    #[test]
    fn sinr_no_higher_than_snr_and_rsrq_in_band() {
        let e = env();
        for &(x, y) in &[(100.0, 100.0), (250.0, 460.0), (400.0, 800.0)] {
            let m = e.serving(Point::new(x, y), Tech::Nr).unwrap();
            // Serving RSRQ for a lightly loaded system tops out near
            // -10·log10(12·0.2) ≈ -3.8 dB and degrades with load and
            // interference.
            assert!(
                m.rsrq.value() < -3.5 && m.rsrq.value() > -30.0,
                "rsrq {}",
                m.rsrq
            );
        }
    }

    #[test]
    fn kpi_sample_consistency() {
        let e = env();
        let s = e
            .kpi_sample(Point::new(250.0, 460.0), Tech::Nr, 1.0)
            .unwrap();
        assert_eq!(s.cqi, mcs::cqi_from_sinr(s.serving.sinr.value()));
        if s.in_service {
            assert!(s.bitrate.bps() > 0.0);
            assert!(s.bitrate.mbps() <= 1201.0);
        } else {
            assert_eq!(s.bitrate.bps(), 0.0);
        }
    }

    #[test]
    fn indoor_ue_sees_extra_loss() {
        let e = env();
        // Find a building and compare just-outside vs inside RSRP of the
        // same cell with shadowing neutralised by comparing many pairs.
        let mut indoor_worse = 0;
        let mut total = 0;
        for b in e.map.buildings.iter().take(12) {
            let c = b.footprint.center();
            let outside = Point::new(b.footprint.min.x - 3.0, c.y);
            if e.map.is_indoor(outside) {
                continue;
            }
            let idx = e.cell_index(60).unwrap();
            let r_in = e.rsrp(idx, c);
            let r_out = e.rsrp(idx, outside);
            total += 1;
            if r_in.value() < r_out.value() {
                indoor_worse += 1;
            }
        }
        assert!(total > 5);
        assert!(
            indoor_worse * 4 >= total * 3,
            "{indoor_worse}/{total} indoor samples worse"
        );
    }

    #[test]
    fn lte_and_nr_do_not_interfere() {
        // NR SINR with heavily loaded LTE should match NR SINR with idle
        // LTE (different bands): verify by comparing two environments.
        let campus = Campus::generate(&CampusConfig::default(), &mut SimRng::new(2020));
        let busy = RadioEnv::from_campus(&campus, 77, 0.9, 0.05);
        let idle = RadioEnv::from_campus(&campus, 77, 0.0, 0.05);
        let ue = Point::new(250.0, 460.0);
        let a = busy.serving(ue, Tech::Nr).unwrap();
        let b = idle.serving(ue, Tech::Nr).unwrap();
        assert_eq!(a.sinr, b.sinr);
    }

    #[test]
    fn measure_pci_finds_locked_cell() {
        let e = env();
        let ue = Point::new(250.0, 460.0);
        let m = e.measure_pci(ue, 60).unwrap();
        assert_eq!(m.pci, 60);
        assert!(e.measure_pci(ue, 9999).is_none());
    }
}
