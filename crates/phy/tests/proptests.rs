//! Property-based tests for the radio physical layer.

use fiveg_phy::antenna::{SectorAntenna, VerticalPattern};
use fiveg_phy::mcs;
use fiveg_phy::pathloss::{PropagationParams, ShadowingField};
use fiveg_simcore::Frequency;
use proptest::prelude::*;

proptest! {
    /// Path loss grows with distance on both branches, and NLoS never
    /// undercuts LoS.
    #[test]
    fn pathloss_monotone(d1 in 1.0f64..2000.0, d2 in 1.0f64..2000.0, ghz in 0.7f64..6.0) {
        let p = PropagationParams::default_urban();
        let f = Frequency::from_ghz(ghz);
        let (lo, hi) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(p.loss_los(hi, f).value() >= p.loss_los(lo, f).value());
        prop_assert!(p.loss_nlos(hi, f).value() >= p.loss_nlos(lo, f).value());
        prop_assert!(p.loss_nlos(d1, f).value() >= p.loss_los(d1, f).value() - 1e-9);
    }

    /// Higher frequency always loses more.
    #[test]
    fn pathloss_frequency_monotone(d in 10.0f64..1000.0, f1 in 0.7f64..6.0, f2 in 0.7f64..6.0) {
        let p = PropagationParams::default_urban();
        let (lo, hi) = if f1 < f2 { (f1, f2) } else { (f2, f1) };
        prop_assert!(
            p.loss_los(d, Frequency::from_ghz(hi)).value()
                >= p.loss_los(d, Frequency::from_ghz(lo)).value()
        );
    }

    /// Antenna attenuation is bounded and symmetric around boresight.
    #[test]
    fn antenna_bounded_and_symmetric(az in 0.0f64..360.0, off in 0.0f64..180.0) {
        let a = SectorAntenna::standard(az);
        let left = a.attenuation_db((az - off).rem_euclid(360.0));
        let right = a.attenuation_db((az + off).rem_euclid(360.0));
        prop_assert!((left - right).abs() < 1e-9);
        prop_assert!(left >= 0.0 && left <= a.max_attenuation_db);
    }

    /// Vertical pattern is bounded.
    #[test]
    fn vertical_bounded(d in 1.0f64..2000.0, mast in 5.0f64..60.0) {
        let v = VerticalPattern::macro_default();
        let a = v.attenuation_db(d, mast);
        prop_assert!(a >= 0.0 && a <= v.max_attenuation_db);
    }

    /// CQI / spectral efficiency / rate fraction are monotone in SINR
    /// and properly bounded.
    #[test]
    fn link_adaptation_monotone(s1 in -20.0f64..40.0, s2 in -20.0f64..40.0) {
        let (lo, hi) = if s1 < s2 { (s1, s2) } else { (s2, s1) };
        prop_assert!(mcs::cqi_from_sinr(hi) >= mcs::cqi_from_sinr(lo));
        prop_assert!(mcs::spectral_efficiency(hi) >= mcs::spectral_efficiency(lo));
        let rf = mcs::rate_fraction(s1);
        prop_assert!((0.0..=1.0).contains(&rf));
    }

    /// BLER is a valid probability, decreasing in SINR for every MCS.
    #[test]
    fn bler_valid(mcs_idx in 0u8..=27, s in -30.0f64..50.0) {
        let b = mcs::bler(s, mcs_idx);
        prop_assert!((0.0..=1.0).contains(&b));
        prop_assert!(mcs::bler(s + 1.0, mcs_idx) <= b + 1e-12);
    }

    /// Shadowing is deterministic per position and bounded in practice.
    #[test]
    fn shadowing_deterministic(seed in any::<u64>(), x in -1e4f64..1e4, y in -1e4f64..1e4) {
        let f = ShadowingField::new(seed);
        prop_assert_eq!(f.standard_value(x, y), f.standard_value(x, y));
        // Standard normal values essentially never exceed 6 sigma.
        prop_assert!(f.standard_value(x, y).abs() < 8.0);
    }
}
