//! Property-based tests for the simulation kernel.

use fiveg_simcore::dist::Dist;
use fiveg_simcore::{Cdf, EventQueue, Histogram, OnlineStats, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always pop in non-decreasing time order, with FIFO ties.
    #[test]
    fn event_queue_orders_all_schedules(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule_at(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some(ev) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(ev.at >= lt);
                if ev.at == lt {
                    // FIFO among equal timestamps: later insertion pops later.
                    prop_assert!(ev.payload > li || times[ev.payload] != times[li]);
                }
            }
            last = Some((ev.at, ev.payload));
        }
        prop_assert_eq!(q.executed(), times.len() as u64);
    }

    /// The clock never runs backwards, whatever mix of operations runs.
    #[test]
    fn clock_is_monotonic(ops in prop::collection::vec((0u64..1_000_000, prop::bool::ANY), 1..100)) {
        let mut q = EventQueue::new();
        let mut prev = SimTime::ZERO;
        for (t, push) in ops {
            if push {
                let at = q.now() + SimDuration::from_nanos(t);
                q.schedule_at(at, ());
            } else {
                q.pop();
            }
            prop_assert!(q.now() >= prev);
            prev = q.now();
        }
    }

    /// CDF quantiles are monotone in q and bounded by min/max.
    #[test]
    fn cdf_quantiles_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let c = Cdf::from_samples(samples.clone());
        let mut prev = f64::NEG_INFINITY;
        for i in 0..=20 {
            let v = c.quantile(i as f64 / 20.0);
            prop_assert!(v >= prev);
            prev = v;
        }
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(c.quantile(0.0) >= min - 1e-9);
        prop_assert!(c.quantile(1.0) <= max + 1e-9);
    }

    /// prob_le is a valid, monotone CDF.
    #[test]
    fn cdf_prob_le_monotone(samples in prop::collection::vec(-1e3f64..1e3, 1..200)) {
        let c = Cdf::from_samples(samples);
        let mut prev = 0.0;
        for i in -10..=10 {
            let p = c.prob_le(i as f64 * 100.0);
            prop_assert!((0.0..=1.0).contains(&p));
            prop_assert!(p >= prev);
            prev = p;
        }
    }

    /// Histogram never loses a sample.
    #[test]
    fn histogram_conserves_counts(samples in prop::collection::vec(-200f64..200.0, 0..500)) {
        let mut h = Histogram::new(vec![-100.0, -50.0, 0.0, 50.0, 100.0]);
        for &s in &samples {
            h.push(s);
        }
        prop_assert_eq!(h.total(), samples.len() as u64);
        let frac_sum: f64 = (0..h.num_buckets()).map(|i| h.fraction(i)).sum();
        prop_assert!(frac_sum <= 1.0 + 1e-9);
    }

    /// Merging statistics equals sequential accumulation.
    #[test]
    fn online_stats_merge_associative(
        a in prop::collection::vec(-1e4f64..1e4, 0..100),
        b in prop::collection::vec(-1e4f64..1e4, 0..100),
    ) {
        let mut whole = OnlineStats::new();
        for &x in a.iter().chain(&b) {
            whole.push(x);
        }
        let mut sa = OnlineStats::new();
        a.iter().for_each(|&x| sa.push(x));
        let mut sb = OnlineStats::new();
        b.iter().for_each(|&x| sb.push(x));
        sa.merge(&sb);
        prop_assert_eq!(sa.count(), whole.count());
        if whole.count() > 0 {
            prop_assert!((sa.mean() - whole.mean()).abs() < 1e-6);
            prop_assert!((sa.variance() - whole.variance()).abs() < 1e-3);
        }
    }

    /// Seeded streams replay identically and substreams are stable.
    #[test]
    fn rng_determinism(seed in any::<u64>(), label in "[a-z]{1,8}") {
        use rand::RngCore;
        let mut a = SimRng::new(seed).substream(&label);
        let mut b = SimRng::new(seed).substream(&label);
        for _ in 0..16 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// Distribution samples respect their support.
    #[test]
    fn dist_support(seed in any::<u64>(), mean in 0.1f64..100.0, sd in 0.1f64..10.0) {
        let mut rng = SimRng::new(seed);
        let clamped = Dist::NormalClamped { mean, std_dev: sd, min: 0.0 };
        let pareto = Dist::Pareto { x_min: mean, alpha: 1.5 };
        let exp = Dist::Exponential { mean };
        for _ in 0..50 {
            prop_assert!(clamped.sample(&mut rng) >= 0.0);
            prop_assert!(pareto.sample(&mut rng) >= mean);
            prop_assert!(exp.sample(&mut rng) >= 0.0);
        }
    }

    /// Duration arithmetic saturates instead of wrapping.
    #[test]
    fn duration_saturates(a in any::<u64>(), b in any::<u64>()) {
        let da = SimDuration::from_nanos(a);
        let db = SimDuration::from_nanos(b);
        let sum = da + db;
        prop_assert!(sum >= da || sum == SimDuration::MAX);
        let diff = da - db;
        prop_assert!(diff <= da);
    }
}
