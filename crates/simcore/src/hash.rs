//! Stable, dependency-free hashing for seeds and result artifacts.
//!
//! Two consumers rely on these functions being *stable across runs,
//! platforms and refactors*:
//!
//! * seed derivation — `fiveg-campaign` derives each job's RNG seed by
//!   hashing `(base_seed, job_name, rep)`, so results are identical
//!   regardless of worker count or scheduling order;
//! * artifact fingerprints — run manifests record a hash of every JSON
//!   artifact so golden-result regression checks can diff cheaply.
//!
//! `std::hash` offers no such stability guarantee (and `DefaultHasher`
//! explicitly disclaims it), hence this module. FNV-1a is small, has no
//! dependencies, and is plenty for fingerprinting and seed spreading.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Folds `bytes` into an FNV-1a state.
pub fn fnv1a64_extend(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= b as u64;
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// FNV-1a 64-bit hash of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(FNV_OFFSET, bytes)
}

/// Hashes a sequence of byte fields, length-prefixing each so that
/// `["ab", "c"]` and `["a", "bc"]` hash differently.
pub fn stable_hash_fields(fields: &[&[u8]]) -> u64 {
    let mut state = FNV_OFFSET;
    for f in fields {
        state = fnv1a64_extend(state, &(f.len() as u64).to_le_bytes());
        state = fnv1a64_extend(state, f);
    }
    // Final avalanche (SplitMix64 finalizer) so related inputs spread.
    let mut z = state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Renders a hash as fixed-width lowercase hex (16 chars).
pub fn hex64(h: u64) -> String {
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_matches_known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn field_boundaries_matter() {
        assert_ne!(
            stable_hash_fields(&[b"ab", b"c"]),
            stable_hash_fields(&[b"a", b"bc"])
        );
        assert_eq!(
            stable_hash_fields(&[b"ab", b"c"]),
            stable_hash_fields(&[b"ab", b"c"])
        );
    }

    #[test]
    fn hex_is_fixed_width() {
        assert_eq!(hex64(0), "0000000000000000");
        assert_eq!(hex64(u64::MAX), "ffffffffffffffff");
        assert_eq!(hex64(0xdead_beef), "00000000deadbeef");
    }
}
