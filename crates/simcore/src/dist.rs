//! Probability distributions used by the radio, traffic and latency models.
//!
//! Implemented here (rather than pulling in `rand_distr`) to keep the
//! dependency set minimal and the sampling algorithms under our control —
//! the exact draw sequence is part of the reproducibility contract.

use crate::rng::SimRng;
use serde::{Deserialize, Serialize};

/// Standard normal draw via the Marsaglia polar method.
///
/// The polar method consumes a variable number of uniforms, which is fine:
/// determinism comes from the seeded stream, not a fixed draw count.
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    loop {
        let u = rng.range_f64(-1.0, 1.0);
        let v = rng.range_f64(-1.0, 1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Normal draw with the given mean and standard deviation.
pub fn normal(rng: &mut SimRng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// Log-normal draw parameterised by the *underlying* normal's `mu`/`sigma`.
pub fn log_normal(rng: &mut SimRng, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential draw with the given mean (`1/lambda`). A zero or negative
/// mean returns 0.
pub fn exponential(rng: &mut SimRng, mean: f64) -> f64 {
    if mean <= 0.0 {
        return 0.0;
    }
    // Inverse CDF; 1 - U avoids ln(0).
    -mean * (1.0 - rng.f64()).ln()
}

/// Pareto draw with scale `x_min > 0` and shape `alpha > 0`; used for
/// heavy-tailed web object sizes.
pub fn pareto(rng: &mut SimRng, x_min: f64, alpha: f64) -> f64 {
    assert!(x_min > 0.0 && alpha > 0.0, "invalid Pareto parameters");
    x_min / (1.0 - rng.f64()).powf(1.0 / alpha)
}

/// A distribution that can be described in configuration and sampled later.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform over `[lo, hi)`.
    Uniform {
        /// Inclusive lower bound.
        lo: f64,
        /// Exclusive upper bound.
        hi: f64,
    },
    /// Normal with mean and standard deviation.
    Normal {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
    },
    /// Normal truncated below at `min` (re-draws are not used; the sample
    /// is clamped, which keeps draw counts fixed).
    NormalClamped {
        /// Mean.
        mean: f64,
        /// Standard deviation.
        std_dev: f64,
        /// Lower clamp.
        min: f64,
    },
    /// Log-normal with underlying `mu` and `sigma`.
    LogNormal {
        /// Mean of the underlying normal.
        mu: f64,
        /// Std-dev of the underlying normal.
        sigma: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean (`1/lambda`).
        mean: f64,
    },
    /// Pareto with scale and shape.
    Pareto {
        /// Scale (minimum value).
        x_min: f64,
        /// Shape (tail index).
        alpha: f64,
    },
}

impl Dist {
    /// Draws one sample.
    pub fn sample(&self, rng: &mut SimRng) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => rng.range_f64(lo, hi),
            Dist::Normal { mean, std_dev } => normal(rng, mean, std_dev),
            Dist::NormalClamped { mean, std_dev, min } => normal(rng, mean, std_dev).max(min),
            Dist::LogNormal { mu, sigma } => log_normal(rng, mu, sigma),
            Dist::Exponential { mean } => exponential(rng, mean),
            Dist::Pareto { x_min, alpha } => pareto(rng, x_min, alpha),
        }
    }

    /// Analytical mean of the distribution (clamping ignored for
    /// `NormalClamped`; callers use it for sanity checks only).
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant(v) => v,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
            Dist::Normal { mean, .. } => mean,
            Dist::NormalClamped { mean, .. } => mean,
            Dist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            Dist::Exponential { mean } => mean,
            Dist::Pareto { x_min, alpha } => {
                if alpha > 1.0 {
                    alpha * x_min / (alpha - 1.0)
                } else {
                    f64::INFINITY
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::OnlineStats;

    fn sample_stats(d: Dist, n: usize, seed: u64) -> OnlineStats {
        let mut rng = SimRng::new(seed);
        let mut s = OnlineStats::new();
        for _ in 0..n {
            s.push(d.sample(&mut rng));
        }
        s
    }

    #[test]
    fn normal_moments() {
        let s = sample_stats(
            Dist::Normal {
                mean: 10.0,
                std_dev: 2.0,
            },
            50_000,
            1,
        );
        assert!((s.mean() - 10.0).abs() < 0.05, "mean {}", s.mean());
        assert!((s.std_dev() - 2.0).abs() < 0.05, "std {}", s.std_dev());
    }

    #[test]
    fn exponential_moments() {
        let s = sample_stats(Dist::Exponential { mean: 3.0 }, 50_000, 2);
        assert!((s.mean() - 3.0).abs() < 0.1);
        assert!((s.std_dev() - 3.0).abs() < 0.15);
    }

    #[test]
    fn lognormal_mean_matches_formula() {
        let d = Dist::LogNormal {
            mu: 0.5,
            sigma: 0.4,
        };
        let s = sample_stats(d, 100_000, 3);
        assert!((s.mean() - d.mean()).abs() / d.mean() < 0.02);
    }

    #[test]
    fn pareto_respects_minimum() {
        let mut rng = SimRng::new(4);
        for _ in 0..10_000 {
            assert!(pareto(&mut rng, 2.0, 1.5) >= 2.0);
        }
    }

    #[test]
    fn clamped_normal_never_below_min() {
        let d = Dist::NormalClamped {
            mean: 0.0,
            std_dev: 5.0,
            min: 0.0,
        };
        let mut rng = SimRng::new(5);
        for _ in 0..10_000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = SimRng::new(6);
        assert_eq!(Dist::Constant(7.5).sample(&mut rng), 7.5);
        assert_eq!(Dist::Constant(7.5).mean(), 7.5);
    }

    #[test]
    fn exponential_degenerate_mean() {
        let mut rng = SimRng::new(7);
        assert_eq!(exponential(&mut rng, 0.0), 0.0);
        assert_eq!(exponential(&mut rng, -1.0), 0.0);
    }
}
