//! Conservative parallel discrete-event sharding (PDES).
//!
//! A simulation is partitioned into **shards** — e.g. a gNB cell plus
//! its attached UEs, or a wireline router — that advance concurrently
//! under *conservative* synchronization: a shard may only execute
//! events strictly earlier than the current **safe window**, whose
//! width is the minimum **lookahead** (one-way link latency) declared
//! by any cross-shard link. A message sent at time `t` over a link
//! with lookahead `L` arrives no earlier than `t + L ≥ window_end`, so
//! every message is delivered at a barrier *before* any shard enters
//! the window that could observe it — no shard ever receives an event
//! in its past, and no rollback machinery is needed.
//!
//! ## Determinism
//!
//! Every event carries the key `(time, origin shard, origin seq)`,
//! where each shard stamps its local schedules *and* its cross-shard
//! sends from one monotone sequence counter. Per-shard delivery order
//! is the total order of that key — never arrival order — so a run is
//! bit-identical for any thread count and any window partitioning:
//! [`ShardEngine::run`] with 1 thread (a single merged event queue,
//! exactly the classic serial loop) and with N threads execute every
//! shard's events in the same sequence. The property tests at the
//! bottom of this module pin that equivalence.
//!
//! ## Deadlock freedom
//!
//! Conservative synchronization deadlocks iff a window can have zero
//! width, which is why [`TopologyBuilder::build`] rejects any link
//! with zero lookahead up front with [`ShardError::ZeroLookahead`].
//! Each round the shard holding the globally earliest event always
//! executes at least one event, so virtual time strictly advances.
//!
//! ## Observability
//!
//! On completion the engine flushes two deterministic counters into
//! the ambient `fiveg-obs` scope: `shard.events` (events executed,
//! summed over shards) and `shard.msgs` (cross-shard messages
//! delivered). Both are integer sums of per-shard totals — merging is
//! commutative — and are byte-identical for any thread count. Window
//! round counts depend on the execution mode and are reported only in
//! [`ShardStats`], never as ambient counters.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as MemOrder};
use std::sync::{Barrier, Mutex, PoisonError};

/// Index of a shard within a [`Topology`] (`0..shards`).
pub type ShardId = usize;

/// Default bound on undelivered messages per directed link.
pub const DEFAULT_LINK_CAPACITY: usize = 1 << 16;

/// Construction- or run-time failure of the shard engine.
///
/// Every variant is deterministic: a failing configuration fails
/// identically for any thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// A topology needs at least one shard.
    NoShards,
    /// A link endpoint names a shard outside `0..shards`.
    BadEndpoint {
        /// Link source shard.
        src: ShardId,
        /// Link destination shard.
        dst: ShardId,
        /// Number of shards in the topology.
        shards: usize,
    },
    /// A shard cannot link to itself (local events need no link).
    SelfLink {
        /// The offending shard.
        shard: ShardId,
    },
    /// The same directed link was declared twice.
    DuplicateLink {
        /// Link source shard.
        src: ShardId,
        /// Link destination shard.
        dst: ShardId,
    },
    /// A link declared zero lookahead, which would make the safe
    /// window empty and deadlock conservative synchronization.
    ZeroLookahead {
        /// Link source shard.
        src: ShardId,
        /// Link destination shard.
        dst: ShardId,
    },
    /// A link declared a zero message capacity.
    ZeroCapacity {
        /// Link source shard.
        src: ShardId,
        /// Link destination shard.
        dst: ShardId,
    },
    /// The logic count handed to [`ShardEngine::new`] does not match
    /// the topology's shard count.
    LogicCount {
        /// Shards in the topology.
        expected: usize,
        /// Logics provided.
        got: usize,
    },
    /// An event was seeded on (or sent to) a shard outside the
    /// topology.
    UnknownShard {
        /// The offending shard index.
        shard: ShardId,
        /// Number of shards in the topology.
        shards: usize,
    },
    /// [`ShardCtx::send`] targeted a pair with no declared link.
    UnknownLink {
        /// Sending shard.
        src: ShardId,
        /// Destination shard.
        dst: ShardId,
    },
    /// [`ShardCtx::send`] used a delay below the link's lookahead,
    /// which would let a message land inside an already-released safe
    /// window.
    LookaheadViolated {
        /// Sending shard.
        src: ShardId,
        /// Destination shard.
        dst: ShardId,
        /// The delay the sender asked for.
        delay: SimDuration,
        /// The lookahead the link declared.
        lookahead: SimDuration,
    },
    /// More undelivered messages accumulated on a link than its
    /// declared capacity (the bounded-channel guarantee).
    MailboxOverflow {
        /// Sending shard.
        src: ShardId,
        /// Destination shard.
        dst: ShardId,
        /// The link's capacity.
        capacity: usize,
    },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::NoShards => write!(f, "a shard topology needs at least one shard"),
            ShardError::BadEndpoint { src, dst, shards } => write!(
                f,
                "link {src}->{dst} names a shard outside the topology (shards 0..{shards})"
            ),
            ShardError::SelfLink { shard } => write!(
                f,
                "shard {shard} links to itself; local events need no link"
            ),
            ShardError::DuplicateLink { src, dst } => {
                write!(f, "link {src}->{dst} declared twice")
            }
            ShardError::ZeroLookahead { src, dst } => write!(
                f,
                "link {src}->{dst} declares zero lookahead: adjacent shards could never \
                 release a safe window and conservative synchronization would deadlock; \
                 declare the link's one-way latency"
            ),
            ShardError::ZeroCapacity { src, dst } => {
                write!(f, "link {src}->{dst} declares zero message capacity")
            }
            ShardError::LogicCount { expected, got } => write!(
                f,
                "topology has {expected} shards but {got} shard logics were provided"
            ),
            ShardError::UnknownShard { shard, shards } => {
                write!(
                    f,
                    "shard {shard} is outside the topology (shards 0..{shards})"
                )
            }
            ShardError::UnknownLink { src, dst } => {
                write!(f, "shard {src} sent to shard {dst} without a declared link")
            }
            ShardError::LookaheadViolated {
                src,
                dst,
                delay,
                lookahead,
            } => write!(
                f,
                "shard {src} sent to shard {dst} with delay {delay} below the link's \
                 lookahead {lookahead}"
            ),
            ShardError::MailboxOverflow { src, dst, capacity } => write!(
                f,
                "link {src}->{dst} exceeded its capacity of {capacity} undelivered messages"
            ),
        }
    }
}

impl std::error::Error for ShardError {}

/// One directed cross-shard link.
#[derive(Debug, Clone, Copy)]
struct Link {
    lookahead: SimDuration,
    capacity: usize,
}

/// A validated shard graph: shard count plus directed links, each
/// carrying a positive lookahead (its one-way latency) and a bound on
/// undelivered messages.
#[derive(Debug, Clone)]
pub struct Topology {
    shards: usize,
    /// Dense `src * shards + dst` adjacency.
    links: Vec<Option<Link>>,
    /// Minimum lookahead over all links; [`SimDuration::MAX`] when the
    /// topology has no links (one unbounded window).
    min_lookahead: SimDuration,
}

impl Topology {
    /// Starts building a topology over `shards` shards.
    pub fn builder(shards: usize) -> TopologyBuilder {
        TopologyBuilder {
            shards,
            links: Vec::new(),
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The declared lookahead of `src -> dst`, if linked.
    pub fn lookahead(&self, src: ShardId, dst: ShardId) -> Option<SimDuration> {
        self.link(src, dst).map(|l| l.lookahead)
    }

    /// The safe-window width: minimum lookahead over all links, or
    /// [`SimDuration::MAX`] for a link-free topology.
    pub fn min_lookahead(&self) -> SimDuration {
        self.min_lookahead
    }

    fn link(&self, src: ShardId, dst: ShardId) -> Option<Link> {
        if src < self.shards && dst < self.shards {
            self.links[src * self.shards + dst]
        } else {
            None
        }
    }
}

/// Builder for [`Topology`]; all validation happens in [`build`].
///
/// [`build`]: TopologyBuilder::build
#[derive(Debug)]
pub struct TopologyBuilder {
    shards: usize,
    links: Vec<(ShardId, ShardId, SimDuration, usize)>,
}

impl TopologyBuilder {
    /// Declares a directed link `src -> dst` whose one-way latency is
    /// `lookahead`, with the default message capacity.
    #[must_use]
    pub fn link(self, src: ShardId, dst: ShardId, lookahead: SimDuration) -> Self {
        self.link_with_capacity(src, dst, lookahead, DEFAULT_LINK_CAPACITY)
    }

    /// Declares a directed link with an explicit bound on undelivered
    /// messages.
    #[must_use]
    pub fn link_with_capacity(
        mut self,
        src: ShardId,
        dst: ShardId,
        lookahead: SimDuration,
        capacity: usize,
    ) -> Self {
        self.links.push((src, dst, lookahead, capacity));
        self
    }

    /// Validates and freezes the topology.
    ///
    /// Rejects zero-lookahead links ([`ShardError::ZeroLookahead`]) —
    /// the deadlock-freedom precondition — as well as out-of-range
    /// endpoints, self links, duplicates and zero capacities.
    pub fn build(self) -> Result<Topology, ShardError> {
        if self.shards == 0 {
            return Err(ShardError::NoShards);
        }
        let mut links: Vec<Option<Link>> = vec![None; self.shards * self.shards];
        let mut min_lookahead = SimDuration::MAX;
        for (src, dst, lookahead, capacity) in self.links {
            if src >= self.shards || dst >= self.shards {
                return Err(ShardError::BadEndpoint {
                    src,
                    dst,
                    shards: self.shards,
                });
            }
            if src == dst {
                return Err(ShardError::SelfLink { shard: src });
            }
            if lookahead.is_zero() {
                return Err(ShardError::ZeroLookahead { src, dst });
            }
            if capacity == 0 {
                return Err(ShardError::ZeroCapacity { src, dst });
            }
            let slot = &mut links[src * self.shards + dst];
            if slot.is_some() {
                return Err(ShardError::DuplicateLink { src, dst });
            }
            *slot = Some(Link {
                lookahead,
                capacity,
            });
            min_lookahead = min_lookahead.min(lookahead);
        }
        Ok(Topology {
            shards: self.shards,
            links,
            min_lookahead,
        })
    }
}

/// A keyed event: the `(at, origin, seq)` triple is the deterministic
/// total order used everywhere — ties on time break by origin shard,
/// then by the origin's sequence number, never by arrival order.
struct Keyed<E> {
    at: SimTime,
    origin: ShardId,
    seq: u64,
    event: E,
}

impl<E> Keyed<E> {
    fn key(&self) -> (SimTime, ShardId, u64) {
        (self.at, self.origin, self.seq)
    }
}

impl<E> PartialEq for Keyed<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}
impl<E> Eq for Keyed<E> {}
impl<E> PartialOrd for Keyed<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Keyed<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest key.
        other.key().cmp(&self.key())
    }
}

/// A cross-shard message in flight, stamped with its send time.
struct Outgoing<E> {
    dst: ShardId,
    /// Virtual time of the send, kept for the arrival-time invariant
    /// `msg.at >= sent_at + lookahead` (checked in debug builds).
    sent_at: SimTime,
    msg: Keyed<E>,
}

/// The behavior of one shard.
///
/// `handle` is invoked for every event delivered to the shard — local
/// schedules and cross-shard arrivals alike — in deterministic
/// `(time, origin, seq)` order. All scheduling and sending goes
/// through the [`ShardCtx`].
pub trait ShardLogic: Send {
    /// The event/message payload type.
    type Event: Send;

    /// Handles one event delivered at virtual time `at`.
    fn handle(&mut self, ctx: &mut ShardCtx<'_, Self::Event>, at: SimTime, event: Self::Event);
}

/// Scheduling context handed to [`ShardLogic::handle`].
pub struct ShardCtx<'a, E> {
    shard: ShardId,
    now: SimTime,
    topo: &'a Topology,
    seq: &'a mut u64,
    local: &'a mut Vec<Keyed<E>>,
    outbox: &'a mut Vec<Outgoing<E>>,
    error: &'a mut Option<ShardError>,
}

impl<E> ShardCtx<'_, E> {
    /// The shard this context belongs to.
    pub fn shard(&self) -> ShardId {
        self.shard
    }

    /// Current virtual time (the timestamp of the event in flight).
    pub fn now(&self) -> SimTime {
        self.now
    }

    fn next_seq(&mut self) -> u64 {
        let s = *self.seq;
        *self.seq += 1;
        s
    }

    /// Schedules a local event at absolute time `at` (clamped to now;
    /// scheduling into the past is a logic error caught in debug
    /// builds, mirroring [`crate::EventQueue::schedule_at`]).
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let at = at.max(self.now);
        let keyed = Keyed {
            at,
            origin: self.shard,
            seq: self.next_seq(),
            event,
        };
        self.local.push(keyed);
    }

    /// Schedules a local event `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Sends `event` to shard `dst`, arriving `delay` after now.
    ///
    /// The pair must be linked and `delay` must be at least the link's
    /// declared lookahead; a violation records a [`ShardError`] that
    /// deterministically aborts the run.
    pub fn send(&mut self, dst: ShardId, delay: SimDuration, event: E) {
        let Some(link) = self.topo.link(self.shard, dst) else {
            self.fail(ShardError::UnknownLink {
                src: self.shard,
                dst,
            });
            return;
        };
        if delay < link.lookahead {
            self.fail(ShardError::LookaheadViolated {
                src: self.shard,
                dst,
                delay,
                lookahead: link.lookahead,
            });
            return;
        }
        let msg = Keyed {
            at: self.now + delay,
            origin: self.shard,
            seq: self.next_seq(),
            event,
        };
        self.outbox.push(Outgoing {
            dst,
            sent_at: self.now,
            msg,
        });
        // `shard` trace category: physical ids, opt-in only (the
        // event stream varies with FIVEG_SHARDS by construction).
        fiveg_trace::emit(
            self.shard as u32,
            &fiveg_trace::TraceEvent::ShardMsgSend {
                t_ns: self.now.as_nanos(),
                src: self.shard as u32,
                dst: dst as u32,
            },
        );
    }

    fn fail(&mut self, e: ShardError) {
        if self.error.is_none() {
            *self.error = Some(e);
        }
    }
}

/// Per-shard runtime state.
struct Cell<L: ShardLogic> {
    id: ShardId,
    logic: L,
    queue: BinaryHeap<Keyed<L::Event>>,
    seq: u64,
    executed: u64,
    delivered: u64,
}

/// Deterministic run totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Events executed, summed over shards. Thread-count invariant.
    pub events: u64,
    /// Cross-shard messages delivered. Thread-count invariant.
    pub msgs: u64,
    /// Synchronization rounds. Depends on the execution mode (a serial
    /// run has none) — informational only, never an obs counter.
    pub rounds: u64,
}

/// The result of a completed run: the shard logics (in shard order)
/// plus run totals.
pub struct ShardRun<L> {
    /// Final logic state of every shard, indexed by shard id.
    pub logics: Vec<L>,
    /// Run totals.
    pub stats: ShardStats,
}

impl<L> fmt::Debug for ShardRun<L> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ShardRun")
            .field("shards", &self.logics.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// A conservative parallel discrete-event engine over a [`Topology`].
pub struct ShardEngine<L: ShardLogic> {
    topo: Topology,
    cells: Vec<Cell<L>>,
}

impl<L: ShardLogic> ShardEngine<L> {
    /// Creates an engine from a topology and one logic per shard
    /// (`logics[i]` drives shard `i`).
    pub fn new(topo: Topology, logics: Vec<L>) -> Result<Self, ShardError> {
        if logics.len() != topo.shards() {
            return Err(ShardError::LogicCount {
                expected: topo.shards(),
                got: logics.len(),
            });
        }
        let cells = logics
            .into_iter()
            .enumerate()
            .map(|(id, logic)| Cell {
                id,
                logic,
                queue: BinaryHeap::new(),
                seq: 0,
                executed: 0,
                delivered: 0,
            })
            .collect();
        Ok(ShardEngine { topo, cells })
    }

    /// Seeds an initial event on `shard` at absolute time `at`.
    pub fn seed(&mut self, shard: ShardId, at: SimTime, event: L::Event) -> Result<(), ShardError> {
        let shards = self.topo.shards();
        let Some(cell) = self.cells.get_mut(shard) else {
            return Err(ShardError::UnknownShard { shard, shards });
        };
        let seq = cell.seq;
        cell.seq += 1;
        cell.queue.push(Keyed {
            at,
            origin: shard,
            seq,
            event,
        });
        Ok(())
    }

    /// Runs the simulation to completion and returns the final shard
    /// logics plus deterministic totals.
    ///
    /// `threads <= 1` uses the serial path: one merged event queue
    /// ordered by the same `(time, origin, seq)` key — the classic
    /// single-queue loop. More threads use barrier-synchronized safe
    /// windows. Observable behavior is bit-identical either way; on
    /// completion the `shard.events` / `shard.msgs` counters are
    /// flushed into the ambient `fiveg-obs` scope.
    pub fn run(self, threads: usize) -> Result<ShardRun<L>, ShardError> {
        let run = if threads <= 1 || self.topo.shards() == 1 {
            self.run_serial()
        } else {
            self.run_parallel(threads)
        }?;
        fiveg_obs::counter_add("shard.events", run.stats.events);
        fiveg_obs::counter_add("shard.msgs", run.stats.msgs);
        Ok(run)
    }

    /// The serial fallback: every pending event of every shard lives
    /// in one merged queue ordered by `(time, origin, seq)`.
    fn run_serial(self) -> Result<ShardRun<L>, ShardError> {
        let ShardEngine { topo, mut cells } = self;
        let n = topo.shards();
        // The destination rides inside the payload so the merged heap
        // still orders by the plain `(at, origin, seq)` event key.
        struct GlobalTag<E> {
            dst: ShardId,
            event: E,
        }
        let mut heap: BinaryHeap<Keyed<GlobalTag<L::Event>>> = BinaryHeap::new();
        for cell in &mut cells {
            let dst = cell.id;
            for k in std::mem::take(&mut cell.queue) {
                heap.push(Keyed {
                    at: k.at,
                    origin: k.origin,
                    seq: k.seq,
                    event: GlobalTag {
                        dst,
                        event: k.event,
                    },
                });
            }
        }
        // Sent-but-not-yet-executed messages per directed link, for
        // the capacity bound.
        let mut in_flight: Vec<usize> = vec![0; n * n];
        let mut local: Vec<Keyed<L::Event>> = Vec::new();
        let mut outbox: Vec<Outgoing<L::Event>> = Vec::new();
        let mut error: Option<ShardError> = None;
        let mut events = 0u64;
        let mut msgs = 0u64;
        while let Some(k) = heap.pop() {
            let (at, origin) = (k.at, k.origin);
            let GlobalTag { dst, event } = k.event;
            if origin != dst {
                in_flight[origin * n + dst] = in_flight[origin * n + dst].saturating_sub(1);
                msgs += 1;
                // Recv is traced at *execution* time: execution order
                // is deterministic, mailbox-drain order is not.
                fiveg_trace::emit(
                    dst as u32,
                    &fiveg_trace::TraceEvent::ShardMsgRecv {
                        t_ns: at.as_nanos(),
                        src: origin as u32,
                        dst: dst as u32,
                    },
                );
            }
            events += 1;
            let cell = &mut cells[dst];
            cell.executed += 1;
            if origin != dst {
                cell.delivered += 1;
            }
            let mut ctx = ShardCtx {
                shard: dst,
                now: at,
                topo: &topo,
                seq: &mut cell.seq,
                local: &mut local,
                outbox: &mut outbox,
                error: &mut error,
            };
            cell.logic.handle(&mut ctx, at, event);
            for l in local.drain(..) {
                heap.push(Keyed {
                    at: l.at,
                    origin: l.origin,
                    seq: l.seq,
                    event: GlobalTag {
                        dst,
                        event: l.event,
                    },
                });
            }
            for o in outbox.drain(..) {
                let slot = o.msg.origin * n + o.dst;
                // Links were validated by `send`; a missing link is
                // already recorded in `error`.
                if let Some(link) = topo.link(o.msg.origin, o.dst) {
                    if in_flight[slot] >= link.capacity {
                        if error.is_none() {
                            error = Some(ShardError::MailboxOverflow {
                                src: o.msg.origin,
                                dst: o.dst,
                                capacity: link.capacity,
                            });
                        }
                        continue;
                    }
                    in_flight[slot] += 1;
                    debug_assert!(o.msg.at >= o.sent_at + link.lookahead);
                    heap.push(Keyed {
                        at: o.msg.at,
                        origin: o.msg.origin,
                        seq: o.msg.seq,
                        event: GlobalTag {
                            dst: o.dst,
                            event: o.msg.event,
                        },
                    });
                }
            }
            if let Some(e) = error.take() {
                return Err(e);
            }
        }
        Ok(ShardRun {
            logics: cells.into_iter().map(|c| c.logic).collect(),
            stats: ShardStats {
                events,
                msgs,
                rounds: 0,
            },
        })
    }

    /// The parallel path: persistent scoped workers advance shards
    /// through barrier-released safe windows of width
    /// [`Topology::min_lookahead`].
    fn run_parallel(self, threads: usize) -> Result<ShardRun<L>, ShardError> {
        let ShardEngine { topo, cells } = self;
        let n = topo.shards();
        let threads = threads.clamp(2, n);
        let window = topo.min_lookahead();

        let cells: Vec<Mutex<Cell<L>>> = cells.into_iter().map(Mutex::new).collect();
        let mailboxes: Vec<Mutex<Vec<Outgoing<L::Event>>>> =
            (0..n).map(|_| Mutex::new(Vec::new())).collect();
        let barrier = Barrier::new(threads);
        let next_shard = AtomicUsize::new(0);
        let stop = AtomicBool::new(false);
        let window_end = AtomicU64::new(0);
        let rounds = AtomicU64::new(0);
        let msgs = AtomicU64::new(0);
        let failure: Mutex<Option<ShardError>> = Mutex::new(None);

        fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
            m.lock().unwrap_or_else(PoisonError::into_inner)
        }
        let record_failure = |e: ShardError| {
            let mut f = lock(&failure);
            if f.is_none() {
                *f = Some(e);
            }
        };

        let worker = || {
            let mut local: Vec<Keyed<L::Event>> = Vec::new();
            let mut outbox: Vec<Outgoing<L::Event>> = Vec::new();
            let mut error: Option<ShardError> = None;
            loop {
                if barrier.wait().is_leader() {
                    // Deliver every in-flight message, then release
                    // the next safe window.
                    let mut overflow: Option<ShardError> = None;
                    let mut per_src: Vec<usize> = vec![0; n];
                    for (dst, mailbox) in mailboxes.iter().enumerate() {
                        let mut inbox = lock(mailbox);
                        if inbox.is_empty() {
                            continue;
                        }
                        per_src.fill(0);
                        let mut cell = lock(&cells[dst]);
                        for o in inbox.drain(..) {
                            per_src[o.msg.origin] += 1;
                            if let Some(link) = topo.link(o.msg.origin, dst) {
                                if per_src[o.msg.origin] > link.capacity && overflow.is_none() {
                                    overflow = Some(ShardError::MailboxOverflow {
                                        src: o.msg.origin,
                                        dst,
                                        capacity: link.capacity,
                                    });
                                }
                                debug_assert!(o.msg.at >= o.sent_at + link.lookahead);
                            }
                            cell.delivered += 1;
                            msgs.fetch_add(1, MemOrder::Relaxed);
                            cell.queue.push(o.msg);
                        }
                    }
                    if let Some(e) = overflow {
                        record_failure(e);
                    }
                    let horizon = cells
                        .iter()
                        .filter_map(|c| lock(c).queue.peek().map(|k| k.at))
                        .min();
                    let failed = lock(&failure).is_some();
                    match horizon {
                        Some(t) if !failed => {
                            let end = t.checked_add(window).unwrap_or(SimTime::MAX);
                            window_end.store(end.as_nanos(), MemOrder::Relaxed);
                            rounds.fetch_add(1, MemOrder::Relaxed);
                        }
                        _ => stop.store(true, MemOrder::Relaxed),
                    }
                    next_shard.store(0, MemOrder::Relaxed);
                }
                barrier.wait();
                if stop.load(MemOrder::Relaxed) {
                    break;
                }
                let end = SimTime::from_nanos(window_end.load(MemOrder::Relaxed));
                loop {
                    let s = next_shard.fetch_add(1, MemOrder::Relaxed);
                    if s >= n {
                        break;
                    }
                    let mut cell = lock(&cells[s]);
                    let cell = &mut *cell;
                    while cell.queue.peek().is_some_and(|k| k.at < end) {
                        let Some(k) = cell.queue.pop() else { break };
                        cell.executed += 1;
                        if k.origin != cell.id {
                            // Mirror of the serial path: recv traced
                            // at execution time for determinism.
                            fiveg_trace::emit(
                                cell.id as u32,
                                &fiveg_trace::TraceEvent::ShardMsgRecv {
                                    t_ns: k.at.as_nanos(),
                                    src: k.origin as u32,
                                    dst: cell.id as u32,
                                },
                            );
                        }
                        let mut ctx = ShardCtx {
                            shard: cell.id,
                            now: k.at,
                            topo: &topo,
                            seq: &mut cell.seq,
                            local: &mut local,
                            outbox: &mut outbox,
                            error: &mut error,
                        };
                        cell.logic.handle(&mut ctx, k.at, k.event);
                        cell.queue.extend(local.drain(..));
                        if error.is_some() {
                            break;
                        }
                    }
                    for o in outbox.drain(..) {
                        lock(&mailboxes[o.dst]).push(o);
                    }
                    if let Some(e) = error.take() {
                        record_failure(e);
                    }
                }
            }
        };

        // Re-install the caller's ambient metrics scope inside every
        // worker so logic handlers record into the same registry (the
        // par_map_with pattern); counter merges are commutative adds,
        // hence thread-count invariant.
        let handle = fiveg_obs::current();
        let trace_handle = fiveg_trace::current();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let run = || match &handle {
                        Some(h) => fiveg_obs::scoped(h, worker),
                        None => worker(),
                    };
                    // Trace emission is shared-sink + per-origin
                    // sequenced, so re-installing the same handle in
                    // every worker stays thread-count invariant.
                    match &trace_handle {
                        Some(t) => fiveg_trace::scoped(t, run),
                        None => run(),
                    }
                });
            }
        });

        if let Some(e) = failure.into_inner().unwrap_or_else(PoisonError::into_inner) {
            return Err(e);
        }
        let mut events = 0u64;
        let mut logics = Vec::with_capacity(n);
        for cell in cells {
            let cell = cell.into_inner().unwrap_or_else(PoisonError::into_inner);
            events += cell.executed;
            logics.push(cell.logic);
        }
        Ok(ShardRun {
            logics,
            stats: ShardStats {
                events,
                msgs: msgs.into_inner(),
                rounds: rounds.into_inner(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    /// A deterministic pseudo-random logic: every event fans out into
    /// local schedules and cross-shard sends derived from a stable
    /// hash of (shard, time, payload), and logs its delivery order.
    struct Chaos {
        id: ShardId,
        out_links: Vec<(ShardId, SimDuration)>,
        budget: u64,
        log: Vec<(u64, u64)>,
    }

    impl ShardLogic for Chaos {
        type Event = u64;

        fn handle(&mut self, ctx: &mut ShardCtx<'_, u64>, at: SimTime, event: u64) {
            self.log.push((at.as_nanos(), event));
            if self.budget == 0 {
                return;
            }
            self.budget -= 1;
            let h =
                crate::hash::fnv1a64(format!("{}:{}:{event}", self.id, at.as_nanos()).as_bytes());
            if h % 3 == 0 {
                ctx.schedule_in(SimDuration::from_micros(1 + h % 50), h ^ 1);
            }
            if h % 2 == 0 && !self.out_links.is_empty() {
                let (dst, lookahead) = self.out_links[(h as usize >> 8) % self.out_links.len()];
                let extra = SimDuration::from_nanos(h % 10_000);
                ctx.send(dst, lookahead + extra, h ^ 2);
            }
        }
    }

    /// Builds a random strongly-messaging topology plus Chaos logics.
    fn random_setup(shards: usize, seed: u64) -> (Topology, Vec<Chaos>) {
        let mut rng = SimRng::new(seed);
        let mut builder = Topology::builder(shards);
        let mut out: Vec<Vec<(ShardId, SimDuration)>> = vec![Vec::new(); shards];
        for src in 0..shards {
            for dst in 0..shards {
                if src != dst && rng.chance(0.6) {
                    let la = SimDuration::from_micros(rng.range_u64(1, 200));
                    builder = builder.link(src, dst, la);
                    out[src].push((dst, la));
                }
            }
        }
        let topo = builder.build().expect("valid random topology");
        let logics = out
            .into_iter()
            .enumerate()
            .map(|(id, out_links)| Chaos {
                id,
                out_links,
                budget: 400,
                log: Vec::new(),
            })
            .collect();
        (topo, logics)
    }

    fn run_setup(shards: usize, seed: u64, threads: usize) -> (Vec<Vec<(u64, u64)>>, ShardStats) {
        let (topo, logics) = random_setup(shards, seed);
        let mut engine = ShardEngine::new(topo, logics).expect("engine builds");
        for s in 0..shards {
            engine
                .seed(s, SimTime::from_micros(s as u64), s as u64)
                .expect("seed in range");
        }
        let run = engine.run(threads).expect("run completes");
        (run.logics.into_iter().map(|l| l.log).collect(), run.stats)
    }

    #[test]
    fn sharded_equals_serial_for_random_topologies() {
        // The determinism property: for random topologies and
        // lookaheads, every shard delivers the same events in the
        // same order for any thread count.
        for shards in [1, 2, 3, 8] {
            for seed in 0..6u64 {
                let (serial_logs, serial_stats) = run_setup(shards, seed, 1);
                for threads in [2, 3, 8] {
                    let (par_logs, par_stats) = run_setup(shards, seed, threads);
                    assert_eq!(
                        serial_logs, par_logs,
                        "shards={shards} seed={seed} threads={threads}"
                    );
                    assert_eq!(serial_stats.events, par_stats.events);
                    assert_eq!(serial_stats.msgs, par_stats.msgs);
                }
            }
        }
    }

    #[test]
    fn shard_counters_are_thread_count_invariant() {
        for threads in [1, 2, 8] {
            let m = fiveg_obs::MetricsHandle::new();
            fiveg_obs::scoped(&m, || {
                let _ = run_setup(4, 7, threads);
            });
            let snap = m.snapshot();
            let base = {
                let m1 = fiveg_obs::MetricsHandle::new();
                fiveg_obs::scoped(&m1, || {
                    let _ = run_setup(4, 7, 1);
                });
                m1.snapshot()
            };
            assert_eq!(
                snap.counters["shard.events"], base.counters["shard.events"],
                "threads={threads}"
            );
            assert_eq!(
                snap.counters["shard.msgs"], base.counters["shard.msgs"],
                "threads={threads}"
            );
        }
    }

    #[test]
    fn zero_lookahead_adjacent_shards_are_rejected_at_construction() {
        let err = Topology::builder(3)
            .link(0, 1, SimDuration::from_micros(5))
            .link(1, 2, SimDuration::ZERO)
            .build()
            .expect_err("zero lookahead must not build");
        assert_eq!(err, ShardError::ZeroLookahead { src: 1, dst: 2 });
        let msg = err.to_string();
        assert!(msg.contains("zero lookahead"), "unclear error: {msg}");
        assert!(msg.contains("deadlock"), "unclear error: {msg}");
    }

    #[test]
    fn builder_rejects_malformed_topologies() {
        assert_eq!(
            Topology::builder(0).build().expect_err("no shards"),
            ShardError::NoShards
        );
        assert_eq!(
            Topology::builder(2)
                .link(0, 5, SimDuration::from_micros(1))
                .build()
                .expect_err("bad endpoint"),
            ShardError::BadEndpoint {
                src: 0,
                dst: 5,
                shards: 2
            }
        );
        assert_eq!(
            Topology::builder(2)
                .link(1, 1, SimDuration::from_micros(1))
                .build()
                .expect_err("self link"),
            ShardError::SelfLink { shard: 1 }
        );
        assert_eq!(
            Topology::builder(2)
                .link(0, 1, SimDuration::from_micros(1))
                .link(0, 1, SimDuration::from_micros(2))
                .build()
                .expect_err("duplicate"),
            ShardError::DuplicateLink { src: 0, dst: 1 }
        );
        assert_eq!(
            Topology::builder(2)
                .link_with_capacity(0, 1, SimDuration::from_micros(1), 0)
                .build()
                .expect_err("zero capacity"),
            ShardError::ZeroCapacity { src: 0, dst: 1 }
        );
    }

    #[test]
    fn send_without_link_and_lookahead_violations_abort() {
        struct BadSender(ShardError);
        impl ShardLogic for BadSender {
            type Event = u64;
            fn handle(&mut self, ctx: &mut ShardCtx<'_, u64>, _at: SimTime, _ev: u64) {
                match self.0 {
                    ShardError::UnknownLink { .. } => ctx.send(1, SimDuration::from_secs(1), 0),
                    _ => ctx.send(0, SimDuration::from_nanos(1), 0),
                }
            }
        }
        // Shard 0 has no link at all.
        let topo = Topology::builder(2)
            .link(1, 0, SimDuration::from_micros(5))
            .build()
            .expect("builds");
        let mut engine = ShardEngine::new(
            topo,
            vec![
                BadSender(ShardError::UnknownLink { src: 0, dst: 1 }),
                BadSender(ShardError::NoShards),
            ],
        )
        .expect("engine builds");
        engine.seed(0, SimTime::ZERO, 0).expect("seeds");
        let err = engine.run(1).expect_err("unlinked send fails");
        assert_eq!(err, ShardError::UnknownLink { src: 0, dst: 1 });

        // Shard 1 sends below the declared lookahead.
        let topo = Topology::builder(2)
            .link(1, 0, SimDuration::from_micros(5))
            .build()
            .expect("builds");
        let mut engine = ShardEngine::new(
            topo,
            vec![
                BadSender(ShardError::UnknownLink { src: 0, dst: 1 }),
                BadSender(ShardError::NoShards),
            ],
        )
        .expect("engine builds");
        engine.seed(1, SimTime::ZERO, 0).expect("seeds");
        let err = engine.run(1).expect_err("lookahead violation fails");
        assert!(
            matches!(err, ShardError::LookaheadViolated { src: 1, dst: 0, .. }),
            "{err}"
        );
    }

    #[test]
    fn bounded_links_overflow_deterministically() {
        struct Flooder;
        impl ShardLogic for Flooder {
            type Event = u64;
            fn handle(&mut self, ctx: &mut ShardCtx<'_, u64>, _at: SimTime, ev: u64) {
                if ev == 0 {
                    for _ in 0..3 {
                        ctx.send(1, SimDuration::from_micros(10), 1);
                    }
                }
            }
        }
        for threads in [1, 2] {
            let topo = Topology::builder(2)
                .link_with_capacity(0, 1, SimDuration::from_micros(10), 2)
                .build()
                .expect("builds");
            let mut engine = ShardEngine::new(topo, vec![Flooder, Flooder]).expect("engine builds");
            engine.seed(0, SimTime::ZERO, 0).expect("seeds");
            let err = engine.run(threads).expect_err("overflow fails");
            assert_eq!(
                err,
                ShardError::MailboxOverflow {
                    src: 0,
                    dst: 1,
                    capacity: 2
                },
                "threads={threads}"
            );
        }
    }

    #[test]
    fn linkless_topology_runs_each_shard_independently() {
        struct Counter(u64);
        impl ShardLogic for Counter {
            type Event = u64;
            fn handle(&mut self, ctx: &mut ShardCtx<'_, u64>, _at: SimTime, ev: u64) {
                self.0 += 1;
                if ev > 0 {
                    ctx.schedule_in(SimDuration::from_micros(1), ev - 1);
                }
            }
        }
        for threads in [1, 4] {
            let topo = Topology::builder(4).build().expect("builds");
            let mut engine = ShardEngine::new(topo, (0..4).map(|_| Counter(0)).collect())
                .expect("engine builds");
            for s in 0..4 {
                engine.seed(s, SimTime::ZERO, 9).expect("seeds");
            }
            let run = engine.run(threads).expect("completes");
            assert!(run.logics.iter().all(|c| c.0 == 10), "threads={threads}");
            assert_eq!(run.stats.events, 40);
            assert_eq!(run.stats.msgs, 0);
        }
    }

    #[test]
    fn ring_of_shards_makes_progress() {
        // Deadlock-freedom smoke: a message circulating a ring of
        // shards with heterogeneous lookaheads terminates.
        struct Ring {
            hops_left: u64,
            next: ShardId,
            lookahead: SimDuration,
        }
        impl ShardLogic for Ring {
            type Event = u64;
            fn handle(&mut self, ctx: &mut ShardCtx<'_, u64>, _at: SimTime, ev: u64) {
                if ev > 0 {
                    self.hops_left = ev;
                    ctx.send(self.next, self.lookahead, ev - 1);
                }
            }
        }
        for threads in [1, 3] {
            let n = 5;
            let mut builder = Topology::builder(n);
            let mut lookaheads = Vec::new();
            for s in 0..n {
                let la = SimDuration::from_micros(1 + (s as u64 * 7) % 13);
                builder = builder.link(s, (s + 1) % n, la);
                lookaheads.push(la);
            }
            let topo = builder.build().expect("builds");
            let logics = (0..n)
                .map(|s| Ring {
                    hops_left: 0,
                    next: (s + 1) % n,
                    lookahead: lookaheads[s],
                })
                .collect();
            let mut engine = ShardEngine::new(topo, logics).expect("engine builds");
            engine.seed(0, SimTime::ZERO, 100).expect("seeds");
            let run = engine.run(threads).expect("completes");
            assert_eq!(run.stats.events, 101, "threads={threads}");
            assert_eq!(run.stats.msgs, 100);
        }
    }

    #[test]
    fn same_time_cross_shard_ties_break_by_origin_then_seq() {
        // Two senders target the same shard at the same instant; the
        // receiver must log origin 0's burst before origin 1's, each
        // in its origin's send order — regardless of thread count and
        // regardless of seeding (arrival) order.
        struct Node {
            burst: Vec<u64>,
            log: Vec<u64>,
        }
        impl ShardLogic for Node {
            type Event = u64;
            fn handle(&mut self, ctx: &mut ShardCtx<'_, u64>, _at: SimTime, ev: u64) {
                if ev == u64::MAX {
                    for &p in &self.burst {
                        ctx.send(2, SimDuration::from_micros(10), p);
                    }
                } else {
                    self.log.push(ev);
                }
            }
        }
        for threads in [1, 2, 3] {
            let topo = Topology::builder(3)
                .link(0, 2, SimDuration::from_micros(10))
                .link(1, 2, SimDuration::from_micros(10))
                .build()
                .expect("builds");
            let node = |burst: Vec<u64>| Node {
                burst,
                log: Vec::new(),
            };
            let mut engine = ShardEngine::new(
                topo,
                vec![node(vec![10, 11, 12]), node(vec![20, 21]), node(vec![])],
            )
            .expect("engine builds");
            // Seed order deliberately puts shard 1 first: arrival
            // order must not matter.
            engine.seed(1, SimTime::ZERO, u64::MAX).expect("seeds");
            engine.seed(0, SimTime::ZERO, u64::MAX).expect("seeds");
            let run = engine.run(threads).expect("completes");
            assert_eq!(
                run.logics[2].log,
                vec![10, 11, 12, 20, 21],
                "threads={threads}"
            );
            assert_eq!(run.stats.msgs, 5, "threads={threads}");
        }
    }
}
