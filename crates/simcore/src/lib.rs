//! # fiveg-simcore
//!
//! Deterministic discrete-event simulation kernel shared by every crate in
//! the `fiveg` workspace, the simulation reproduction of *"Understanding
//! Operational 5G: A First Measurement Study on Its Coverage, Performance
//! and Energy Consumption"* (SIGCOMM 2020).
//!
//! The kernel is deliberately small and synchronous: simulations here are
//! CPU-bound, single-threaded and must be bit-for-bit reproducible from a
//! seed. The design follows the smoltcp school of event-driven code — the
//! world owns all state, events are plain values ordered by a monotonic
//! virtual clock, and nothing in the hot path allocates beyond the event
//! queue itself.
//!
//! Modules:
//!
//! * [`time`] — nanosecond-resolution virtual clock ([`SimTime`],
//!   [`SimDuration`]).
//! * [`event`] — generic binary-heap event queue with deterministic
//!   FIFO tie-breaking.
//! * [`rng`] — seedable ChaCha-based random stream with named substreams.
//! * [`dist`] — the probability distributions the models need (normal,
//!   log-normal, exponential, Pareto), implemented on top of [`rng`].
//! * [`stats`] — online statistics, histograms and empirical CDFs used to
//!   aggregate measurement campaigns.
//! * [`units`] — strongly-typed radio/network units (dBm, dB, Hz, bit/s,
//!   mW, J) with explicit, documented conversions.
//! * [`trace`] — lightweight time-series recorders for KPI and power
//!   traces.
//! * [`hash`] — stable FNV-1a hashing for campaign seed derivation and
//!   artifact fingerprints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod event;
pub mod hash;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;
pub mod units;

pub use event::{EventQueue, ScheduledEvent};
pub use rng::SimRng;
pub use shard::{
    ShardCtx, ShardEngine, ShardError, ShardId, ShardLogic, ShardRun, ShardStats, Topology,
};
pub use stats::{Cdf, Histogram, OnlineStats};
pub use time::{SimDuration, SimTime};
pub use trace::TimeSeries;
pub use units::{Bandwidth, BitRate, Db, Dbm, Energy, Frequency, Power};
