//! Generic discrete-event queue.
//!
//! [`EventQueue`] is a monotonic priority queue of `(time, payload)` pairs.
//! Ties on time are broken by insertion order (FIFO), so simulations that
//! schedule the same events in the same order always execute them in the
//! same order — a hard requirement for reproducibility.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event that has been scheduled on an [`EventQueue`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Monotonic sequence number used for FIFO tie-breaking.
    pub seq: u64,
    /// The caller-defined payload.
    pub payload: E,
}

/// Internal heap entry; `BinaryHeap` is a max-heap so ordering is reversed.
struct HeapEntry<E> {
    at: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: the heap's "largest" element is the earliest event.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// The queue tracks the current virtual time: popping an event advances the
/// clock to that event's timestamp. Scheduling an event in the past is a
/// logic error and panics in debug builds; in release it is clamped to the
/// current time so the simulation keeps a coherent, monotonic clock.
pub struct EventQueue<E> {
    heap: BinaryHeap<HeapEntry<E>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Drop for EventQueue<E> {
    /// Flushes lifetime totals into the ambient metrics scope (see
    /// `fiveg-obs`): how many events this queue scheduled and executed.
    /// Deterministic — both counts depend only on the simulation — and
    /// free in the hot path, since the queue already tracks them.
    fn drop(&mut self) {
        if self.next_seq > 0 || self.popped > 0 {
            fiveg_obs::counter_add("sim.events.scheduled", self.next_seq);
            fiveg_obs::counter_add("sim.events.executed", self.popped);
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// Current virtual time (timestamp of the last popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events waiting in the queue.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events executed (popped) so far.
    pub fn executed(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` to fire at absolute time `at`.
    ///
    /// Returns the sequence number assigned to the event.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> u64 {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at} < now {}",
            self.now
        );
        let at = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(HeapEntry { at, seq, payload });
        seq
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: crate::time::SimDuration, payload: E) -> u64 {
        self.schedule_at(self.now + delay, payload)
    }

    /// Timestamp of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.at >= self.now, "event queue time went backwards");
        self.now = entry.at;
        self.popped += 1;
        Some(ScheduledEvent {
            at: entry.at,
            seq: entry.seq,
            payload: entry.payload,
        })
    }

    /// Pops the earliest event only if it fires at or before `deadline`.
    pub fn pop_until(&mut self, deadline: SimTime) -> Option<ScheduledEvent<E>> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Discards all pending events without touching the clock.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Forces the clock forward to `at` (no-op if `at` is in the past).
    /// Useful for draining idle periods.
    pub fn advance_to(&mut self, at: SimTime) {
        if at > self.now {
            self.now = at;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(30), "c");
        q.schedule_at(SimTime::from_millis(10), "a");
        q.schedule_at(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.now(), SimTime::from_millis(30));
        assert_eq!(q.executed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|e| e.payload).collect();
        let expect: Vec<_> = (0..100).collect();
        assert_eq!(order, expect);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.pop();
        q.schedule_in(SimDuration::from_millis(5), 2);
        let e = q.pop().unwrap();
        assert_eq!(e.at, SimTime::from_millis(15));
    }

    #[test]
    fn pop_until_respects_deadline() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::from_millis(10), 1);
        q.schedule_at(SimTime::from_millis(20), 2);
        assert_eq!(q.pop_until(SimTime::from_millis(15)).unwrap().payload, 1);
        assert!(q.pop_until(SimTime::from_millis(15)).is_none());
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_millis(50));
        q.advance_to(SimTime::from_millis(10));
        assert_eq!(q.now(), SimTime::from_millis(50));
    }
}
