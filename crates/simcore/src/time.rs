//! Virtual simulation clock.
//!
//! Time is stored as an integer number of nanoseconds since the start of
//! the simulation. Integer time keeps event ordering exact — two events
//! scheduled from the same inputs always compare the same way, which is a
//! prerequisite for deterministic replay.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since t = 0.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Builds an instant from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Builds an instant from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Builds an instant from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This instant expressed in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration; `None` on overflow.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        SimDuration((s.max(0.0) * 1e9).round() as u64)
    }

    /// Builds a duration from fractional milliseconds.
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration::from_secs_f64(ms / 1e3)
    }

    /// Raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This duration in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// This duration in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Whether the duration is exactly zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the duration by a non-negative scalar, saturating at the
    /// maximum representable duration.
    pub fn mul_f64(self, k: f64) -> SimDuration {
        let v = (self.0 as f64 * k.max(0.0)).round();
        if v >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(v as u64)
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}ns", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else if self.0 < 1_000_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimTime::from_secs(2), SimTime::from_millis(2_000));
        assert_eq!(SimTime::from_millis(3), SimTime::from_micros(3_000));
        assert_eq!(SimTime::from_micros(5), SimTime::from_nanos(5_000));
        assert_eq!(SimDuration::from_secs(1).as_nanos(), 1_000_000_000);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let t = SimTime::from_millis(10) + SimDuration::from_millis(5);
        assert_eq!(t, SimTime::from_millis(15));
        assert_eq!(t - SimTime::from_millis(10), SimDuration::from_millis(5));
    }

    #[test]
    fn subtraction_saturates() {
        let early = SimTime::from_millis(1);
        let late = SimTime::from_millis(2);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_millis(1));
    }

    #[test]
    fn float_conversions() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d, SimDuration::from_millis(1_500));
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert_eq!(SimDuration::from_secs_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
    }

    #[test]
    fn mul_f64_scales_and_saturates() {
        let d = SimDuration::from_millis(10);
        assert_eq!(d.mul_f64(2.5), SimDuration::from_millis(25));
        assert_eq!(d.mul_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::MAX.mul_f64(2.0), SimDuration::MAX);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(format!("{}", SimDuration::from_nanos(12)), "12ns");
        assert_eq!(format!("{}", SimDuration::from_micros(12)), "12.000us");
        assert_eq!(format!("{}", SimDuration::from_millis(12)), "12.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(12)), "12.000s");
    }
}
