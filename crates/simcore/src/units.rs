//! Strongly-typed radio and network units.
//!
//! Mixing up dB and dBm, or bits and bytes per second, is the classic
//! source of silent wrongness in link-budget code. Each quantity gets a
//! newtype with explicit constructors/accessors; conversions that change
//! the physical meaning (e.g. dBm → mW) are spelled out as methods.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Absolute power on the decibel-milliwatt scale.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Dbm(f64);

/// A power *ratio* (gain or loss) in decibels.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Db(f64);

/// Linear power in milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Power(f64);

/// Energy in joules.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

/// Carrier or subcarrier frequency in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Frequency(f64);

/// Channel bandwidth in hertz.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(f64);

/// Data rate in bits per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct BitRate(f64);

impl Dbm {
    /// Constructs from a dBm value.
    pub const fn new(v: f64) -> Self {
        Dbm(v)
    }
    /// The raw dBm value.
    pub const fn value(self) -> f64 {
        self.0
    }
    /// Converts to linear milliwatts.
    pub fn to_milliwatts(self) -> Power {
        Power(10f64.powf(self.0 / 10.0))
    }
    /// Constructs from linear milliwatts.
    ///
    /// # Panics
    /// Panics if `mw` is not positive — zero power has no dBm value.
    pub fn from_milliwatts(mw: Power) -> Self {
        assert!(mw.0 > 0.0, "dBm undefined for non-positive power");
        Dbm(10.0 * mw.0.log10())
    }
}

impl Db {
    /// Constructs from a dB value.
    pub const fn new(v: f64) -> Self {
        Db(v)
    }
    /// The raw dB value.
    pub const fn value(self) -> f64 {
        self.0
    }
    /// Converts the ratio to linear scale.
    pub fn to_linear(self) -> f64 {
        10f64.powf(self.0 / 10.0)
    }
    /// Constructs from a linear power ratio.
    pub fn from_linear(r: f64) -> Self {
        assert!(r > 0.0, "dB undefined for non-positive ratio");
        Db(10.0 * r.log10())
    }
}

impl Power {
    /// Constructs from milliwatts.
    pub const fn from_milliwatts(mw: f64) -> Self {
        Power(mw)
    }
    /// Constructs from watts.
    pub fn from_watts(w: f64) -> Self {
        Power(w * 1e3)
    }
    /// Milliwatt value.
    pub const fn milliwatts(self) -> f64 {
        self.0
    }
    /// Watt value.
    pub fn watts(self) -> f64 {
        self.0 / 1e3
    }
    /// Energy consumed when drawing this power for `seconds`.
    pub fn over_seconds(self, seconds: f64) -> Energy {
        Energy::from_joules(self.watts() * seconds)
    }
}

impl Energy {
    /// Constructs from joules.
    pub const fn from_joules(j: f64) -> Self {
        Energy(j)
    }
    /// Joule value.
    pub const fn joules(self) -> f64 {
        self.0
    }
    /// Energy per bit (microjoules per bit) when this energy moved `bits`.
    /// Returns `NaN` when `bits` is zero.
    pub fn micro_joules_per_bit(self, bits: f64) -> f64 {
        self.0 * 1e6 / bits
    }
}

impl Frequency {
    /// Constructs from hertz.
    pub const fn from_hz(hz: f64) -> Self {
        Frequency(hz)
    }
    /// Constructs from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Frequency(mhz * 1e6)
    }
    /// Constructs from gigahertz.
    pub fn from_ghz(ghz: f64) -> Self {
        Frequency(ghz * 1e9)
    }
    /// Hertz value.
    pub const fn hz(self) -> f64 {
        self.0
    }
    /// Megahertz value.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }
    /// Gigahertz value.
    pub fn ghz(self) -> f64 {
        self.0 / 1e9
    }
}

impl Bandwidth {
    /// Constructs from hertz.
    pub const fn from_hz(hz: f64) -> Self {
        Bandwidth(hz)
    }
    /// Constructs from megahertz.
    pub fn from_mhz(mhz: f64) -> Self {
        Bandwidth(mhz * 1e6)
    }
    /// Hertz value.
    pub const fn hz(self) -> f64 {
        self.0
    }
    /// Megahertz value.
    pub fn mhz(self) -> f64 {
        self.0 / 1e6
    }
}

impl BitRate {
    /// Zero rate.
    pub const ZERO: BitRate = BitRate(0.0);

    /// Constructs from bits per second.
    pub const fn from_bps(bps: f64) -> Self {
        BitRate(bps)
    }
    /// Constructs from megabits per second.
    pub fn from_mbps(mbps: f64) -> Self {
        BitRate(mbps * 1e6)
    }
    /// Constructs from gigabits per second.
    pub fn from_gbps(gbps: f64) -> Self {
        BitRate(gbps * 1e9)
    }
    /// Bits per second.
    pub const fn bps(self) -> f64 {
        self.0
    }
    /// Megabits per second.
    pub fn mbps(self) -> f64 {
        self.0 / 1e6
    }
    /// Time to serialise `bits` at this rate, in seconds. Infinite for a
    /// zero rate.
    pub fn secs_for_bits(self, bits: f64) -> f64 {
        if self.0 <= 0.0 {
            f64::INFINITY
        } else {
            bits / self.0
        }
    }
}

// --- arithmetic that is physically meaningful ---

impl Add<Db> for Dbm {
    type Output = Dbm;
    fn add(self, rhs: Db) -> Dbm {
        Dbm(self.0 + rhs.0)
    }
}
impl Sub<Db> for Dbm {
    type Output = Dbm;
    fn sub(self, rhs: Db) -> Dbm {
        Dbm(self.0 - rhs.0)
    }
}
impl Sub for Dbm {
    /// dBm − dBm = a ratio in dB.
    type Output = Db;
    fn sub(self, rhs: Dbm) -> Db {
        Db(self.0 - rhs.0)
    }
}
impl Add for Db {
    type Output = Db;
    fn add(self, rhs: Db) -> Db {
        Db(self.0 + rhs.0)
    }
}
impl Sub for Db {
    type Output = Db;
    fn sub(self, rhs: Db) -> Db {
        Db(self.0 - rhs.0)
    }
}
impl Neg for Db {
    type Output = Db;
    fn neg(self) -> Db {
        Db(-self.0)
    }
}
impl Add for Power {
    type Output = Power;
    fn add(self, rhs: Power) -> Power {
        Power(self.0 + rhs.0)
    }
}
impl AddAssign for Power {
    fn add_assign(&mut self, rhs: Power) {
        self.0 += rhs.0;
    }
}
impl Sub for Power {
    type Output = Power;
    fn sub(self, rhs: Power) -> Power {
        Power(self.0 - rhs.0)
    }
}
impl Mul<f64> for Power {
    type Output = Power;
    fn mul(self, rhs: f64) -> Power {
        Power(self.0 * rhs)
    }
}
impl Sum for Power {
    fn sum<I: Iterator<Item = Power>>(iter: I) -> Power {
        iter.fold(Power::default(), |a, b| a + b)
    }
}
impl Add for Energy {
    type Output = Energy;
    fn add(self, rhs: Energy) -> Energy {
        Energy(self.0 + rhs.0)
    }
}
impl AddAssign for Energy {
    fn add_assign(&mut self, rhs: Energy) {
        self.0 += rhs.0;
    }
}
impl Sub for Energy {
    type Output = Energy;
    fn sub(self, rhs: Energy) -> Energy {
        Energy(self.0 - rhs.0)
    }
}
impl Sum for Energy {
    fn sum<I: Iterator<Item = Energy>>(iter: I) -> Energy {
        iter.fold(Energy::default(), |a, b| a + b)
    }
}
impl Mul<f64> for BitRate {
    type Output = BitRate;
    fn mul(self, rhs: f64) -> BitRate {
        BitRate(self.0 * rhs)
    }
}
impl Add for BitRate {
    type Output = BitRate;
    fn add(self, rhs: BitRate) -> BitRate {
        BitRate(self.0 + rhs.0)
    }
}
impl Div for BitRate {
    /// rate / rate = dimensionless utilisation.
    type Output = f64;
    fn div(self, rhs: BitRate) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for Dbm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dBm", self.0)
    }
}
impl fmt::Display for Db {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} dB", self.0)
    }
}
impl fmt::Display for BitRate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2} Gbps", self.0 / 1e9)
        } else if self.0 >= 1e6 {
            write!(f, "{:.2} Mbps", self.0 / 1e6)
        } else if self.0 >= 1e3 {
            write!(f, "{:.2} Kbps", self.0 / 1e3)
        } else {
            write!(f, "{:.0} bps", self.0)
        }
    }
}
impl fmt::Display for Power {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.1} mW", self.0)
    }
}
impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} J", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dbm_milliwatt_roundtrip() {
        let p = Dbm::new(0.0).to_milliwatts();
        assert!((p.milliwatts() - 1.0).abs() < 1e-12);
        let p30 = Dbm::new(30.0).to_milliwatts();
        assert!((p30.milliwatts() - 1000.0).abs() < 1e-9);
        let back = Dbm::from_milliwatts(p30);
        assert!((back.value() - 30.0).abs() < 1e-12);
    }

    #[test]
    fn db_linear_roundtrip() {
        assert!((Db::new(3.0103).to_linear() - 2.0).abs() < 1e-4);
        assert!((Db::from_linear(100.0).value() - 20.0).abs() < 1e-12);
    }

    #[test]
    fn dbm_arithmetic() {
        let rx = Dbm::new(-60.0) - Db::new(20.0);
        assert_eq!(rx.value(), -80.0);
        let gap = Dbm::new(-70.0) - Dbm::new(-80.0);
        assert_eq!(gap.value(), 10.0);
    }

    #[test]
    fn energy_accounting() {
        // 2 W for 10 s = 20 J.
        let e = Power::from_watts(2.0).over_seconds(10.0);
        assert!((e.joules() - 20.0).abs() < 1e-12);
        // 20 J over 1 Mbit = 20 uJ/bit.
        assert!((e.micro_joules_per_bit(1e6) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn bitrate_serialisation_time() {
        let r = BitRate::from_mbps(100.0);
        // 12 500 bytes at 100 Mbps = 1 ms.
        assert!((r.secs_for_bits(12_500.0 * 8.0) - 1e-3).abs() < 1e-12);
        assert!(BitRate::ZERO.secs_for_bits(8.0).is_infinite());
    }

    #[test]
    fn utilisation_ratio() {
        let u = BitRate::from_mbps(280.0) / BitRate::from_mbps(880.0);
        assert!((u - 0.3181818).abs() < 1e-6);
    }

    #[test]
    fn frequency_conversions() {
        assert_eq!(Frequency::from_ghz(3.5).mhz(), 3500.0);
        assert_eq!(Bandwidth::from_mhz(100.0).hz(), 1e8);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", BitRate::from_mbps(880.0)), "880.00 Mbps");
        assert_eq!(format!("{}", BitRate::from_gbps(1.2)), "1.20 Gbps");
        assert_eq!(format!("{}", Dbm::new(-84.03)), "-84.03 dBm");
    }
}
