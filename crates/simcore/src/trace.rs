//! Time-series recorders.
//!
//! The measurement campaigns produce traces — throughput over time, power
//! over time, cwnd over time — which benches print as figure series.
//! [`TimeSeries`] is the common container: timestamped samples with
//! resampling and windowed-aggregation helpers.

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A monotonic sequence of `(time, value)` samples.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimeSeries {
    times: Vec<SimTime>,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        TimeSeries::default()
    }

    /// Appends a sample. Samples must be pushed in non-decreasing time
    /// order; an out-of-order sample is silently dropped, in every build
    /// profile. (This used to panic in debug builds and drop in release
    /// builds — a recorder fed by event-driven callbacks must not turn a
    /// harmless late sample into a crash that depends on the profile.)
    /// Use [`TimeSeries::try_push`] to observe whether a sample landed.
    pub fn push(&mut self, t: SimTime, v: f64) {
        let _ = self.try_push(t, v);
    }

    /// Appends a sample; returns `false` (dropping the sample) when `t`
    /// is earlier than the last recorded time.
    pub fn try_push(&mut self, t: SimTime, v: f64) -> bool {
        if self.times.last().is_some_and(|&last| t < last) {
            return false;
        }
        self.times.push(t);
        self.values.push(v);
        true
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Iterator over `(time, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, f64)> + '_ {
        self.times.iter().copied().zip(self.values.iter().copied())
    }

    /// The raw values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// The raw timestamps.
    pub fn times(&self) -> &[SimTime] {
        &self.times
    }

    /// Mean of all values (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return f64::NAN;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Largest value (`NaN` when empty).
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(f64::NAN, f64::max)
    }

    /// Last value, if any.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        Some((*self.times.last()?, *self.values.last()?))
    }

    /// Aggregates samples into fixed windows of `width`, producing one
    /// `(window_start, aggregate)` point per non-empty window. `agg`
    /// receives the samples that fell into the window.
    pub fn windowed<F>(&self, width: SimDuration, mut agg: F) -> Vec<(SimTime, f64)>
    where
        F: FnMut(&[f64]) -> f64,
    {
        assert!(!width.is_zero(), "window width must be positive");
        let mut out = Vec::new();
        if self.times.is_empty() {
            return out;
        }
        let w = width.as_nanos();
        let mut win_start = self.times[0].as_nanos() / w * w;
        let mut bucket: Vec<f64> = Vec::new();
        for (t, v) in self.iter() {
            let s = t.as_nanos() / w * w;
            if s != win_start {
                if !bucket.is_empty() {
                    out.push((SimTime::from_nanos(win_start), agg(&bucket)));
                    bucket.clear();
                }
                win_start = s;
            }
            bucket.push(v);
        }
        if !bucket.is_empty() {
            out.push((SimTime::from_nanos(win_start), agg(&bucket)));
        }
        out
    }

    /// Sums values per window — the natural aggregation for byte counts,
    /// returning `(window_start, sum)` pairs.
    pub fn windowed_sum(&self, width: SimDuration) -> Vec<(SimTime, f64)> {
        self.windowed(width, |xs| xs.iter().sum())
    }

    /// Means values per window — the natural aggregation for gauges.
    pub fn windowed_mean(&self, width: SimDuration) -> Vec<(SimTime, f64)> {
        self.windowed(width, |xs| xs.iter().sum::<f64>() / xs.len() as f64)
    }

    /// Renders the series as CSV with the given header, for artifact
    /// export.
    pub fn to_csv(&self, value_name: &str) -> String {
        let mut s = String::with_capacity(self.len() * 24 + 16);
        s.push_str("time_s,");
        s.push_str(value_name);
        s.push('\n');
        for (t, v) in self.iter() {
            s.push_str(&format!("{:.6},{v}\n", t.as_secs_f64()));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn push_and_iterate() {
        let mut ts = TimeSeries::new();
        ts.push(ms(0), 1.0);
        ts.push(ms(10), 2.0);
        ts.push(ms(20), 3.0);
        assert_eq!(ts.len(), 3);
        assert_eq!(ts.mean(), 2.0);
        assert_eq!(ts.max(), 3.0);
        assert_eq!(ts.last(), Some((ms(20), 3.0)));
    }

    #[test]
    fn windowed_sum_buckets_correctly() {
        let mut ts = TimeSeries::new();
        for i in 0..10 {
            ts.push(ms(i * 100), 1.0); // samples at 0,100,...,900 ms
        }
        let w = ts.windowed_sum(SimDuration::from_millis(500));
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], (ms(0), 5.0));
        assert_eq!(w[1], (ms(500), 5.0));
    }

    #[test]
    fn windowed_mean() {
        let mut ts = TimeSeries::new();
        ts.push(ms(0), 2.0);
        ts.push(ms(1), 4.0);
        ts.push(ms(1000), 10.0);
        let w = ts.windowed_mean(SimDuration::from_secs(1));
        assert_eq!(w, vec![(ms(0), 3.0), (ms(1000), 10.0)]);
    }

    #[test]
    fn out_of_order_pushes_are_dropped_in_every_profile() {
        let mut ts = TimeSeries::new();
        assert!(ts.try_push(ms(10), 1.0));
        assert!(!ts.try_push(ms(5), 9.0), "late sample must be rejected");
        ts.push(ms(5), 9.0); // same behavior via the infallible API
        assert_eq!(ts.len(), 1);
        assert_eq!(ts.last(), Some((ms(10), 1.0)));
        // Equal timestamps are in order and accepted.
        assert!(ts.try_push(ms(10), 2.0));
        assert_eq!(ts.len(), 2);
    }

    #[test]
    fn empty_series() {
        let ts = TimeSeries::new();
        assert!(ts.mean().is_nan());
        assert!(ts.windowed_sum(SimDuration::from_secs(1)).is_empty());
        assert!(ts.last().is_none());
    }

    #[test]
    fn csv_rendering() {
        let mut ts = TimeSeries::new();
        ts.push(ms(1500), 42.0);
        let csv = ts.to_csv("power_mw");
        assert_eq!(csv, "time_s,power_mw\n1.500000,42\n");
    }
}
