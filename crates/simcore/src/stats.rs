//! Statistics for aggregating measurement campaigns.
//!
//! The paper reports means ± standard deviations, CDFs and bucketed
//! distributions; this module provides exactly those aggregations:
//! [`OnlineStats`] (Welford's numerically-stable running moments),
//! [`Cdf`] (empirical distribution with percentile queries) and
//! [`Histogram`] (fixed-edge bucket counts, e.g. the paper's Tab. 2 RSRP
//! buckets).

use serde::{Deserialize, Serialize};

/// Running mean/variance/min/max using Welford's algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Empirical cumulative distribution over a finite sample.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(f64::total_cmp);
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`; 0 for an empty CDF.
    pub fn prob_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Quantile by linear interpolation; `q` is clamped to `[0, 1]`.
    /// Returns `NaN` for an empty CDF.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        let q = q.clamp(0.0, 1.0);
        let pos = q * (self.sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            self.sorted[lo]
        } else {
            let w = pos - lo as f64;
            self.sorted[lo] * (1.0 - w) + self.sorted[hi] * w
        }
    }

    /// Median, i.e. the 0.5 quantile.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Arithmetic mean of the samples (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            return f64::NAN;
        }
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// The sorted samples, for plotting `(x, F(x))` series.
    pub fn samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Renders the CDF as `n` evenly spaced `(value, probability)` points,
    /// the format benches print for figure series.
    pub fn points(&self, n: usize) -> Vec<(f64, f64)> {
        if self.sorted.is_empty() || n == 0 {
            return Vec::new();
        }
        (0..n)
            .map(|i| {
                let q = i as f64 / (n - 1).max(1) as f64;
                (self.quantile(q), q)
            })
            .collect()
    }
}

/// Fixed-edge histogram. Buckets are `[edge[i], edge[i+1])`, with an
/// implicit underflow bucket below the first edge and overflow bucket at
/// or above the last.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with the given ascending bucket edges.
    ///
    /// # Panics
    /// Panics if fewer than two edges are supplied or they are not
    /// strictly ascending.
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let n = edges.len() - 1;
        Histogram {
            edges,
            counts: vec![0; n],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.edges[0] {
            self.underflow += 1;
            return;
        }
        let Some(&last) = self.edges.last() else {
            self.overflow += 1;
            return;
        };
        if x >= last {
            self.overflow += 1;
            return;
        }
        // partition_point returns the first edge > x; bucket is that - 1.
        let idx = self.edges.partition_point(|&e| e <= x) - 1;
        self.counts[idx] += 1;
    }

    /// Count in bucket `i`.
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// All in-range bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the first edge.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the last edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including under/overflow.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Fraction of all observations in bucket `i`.
    pub fn fraction(&self, i: usize) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.counts[i] as f64 / t as f64
        }
    }

    /// Bucket boundaries `(lo, hi)` for bucket `i`.
    pub fn bucket_range(&self, i: usize) -> (f64, f64) {
        (self.edges[i], self.edges[i + 1])
    }

    /// Number of in-range buckets.
    pub fn num_buckets(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn online_stats_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        xs.iter().for_each(|&x| whole.push(x));
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        xs[..37].iter().for_each(|&x| a.push(x));
        xs[37..].iter().for_each(|&x| b.push(x));
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn empty_stats_are_sane() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.count(), 0);
    }

    #[test]
    fn cdf_quantiles() {
        let c = Cdf::from_samples(vec![3.0, 1.0, 2.0, 4.0, 5.0]);
        assert_eq!(c.quantile(0.0), 1.0);
        assert_eq!(c.quantile(1.0), 5.0);
        assert_eq!(c.median(), 3.0);
        assert!((c.quantile(0.25) - 2.0).abs() < 1e-12);
        assert!((c.mean() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_prob_le() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.prob_le(0.5), 0.0);
        assert_eq!(c.prob_le(2.0), 0.5);
        assert_eq!(c.prob_le(10.0), 1.0);
    }

    #[test]
    fn cdf_drops_nan_and_handles_empty() {
        let c = Cdf::from_samples(vec![f64::NAN, 1.0, f64::NAN]);
        assert_eq!(c.len(), 1);
        let e = Cdf::from_samples(vec![]);
        assert!(e.quantile(0.5).is_nan());
        assert_eq!(e.prob_le(1.0), 0.0);
        assert!(e.points(5).is_empty());
    }

    #[test]
    fn histogram_bucketing() {
        // Paper Tab. 2 RSRP bucket edges.
        let mut h = Histogram::new(vec![-140.0, -105.0, -90.0, -80.0, -70.0, -60.0, -40.0]);
        h.push(-110.0); // bucket 0
        h.push(-100.0); // bucket 1
        h.push(-85.0); // bucket 2
        h.push(-75.0); // bucket 3
        h.push(-65.0); // bucket 4
        h.push(-50.0); // bucket 5
        h.push(-150.0); // underflow
        h.push(-40.0); // overflow (>= last edge)
        assert_eq!(h.counts(), &[1, 1, 1, 1, 1, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
        assert_eq!(h.total(), 8);
        assert!((h.fraction(0) - 0.125).abs() < 1e-12);
        assert_eq!(h.bucket_range(0), (-140.0, -105.0));
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_bad_edges() {
        let _ = Histogram::new(vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn cdf_points_monotonic() {
        let c = Cdf::from_samples((0..100).map(|i| i as f64).collect());
        let pts = c.points(11);
        assert_eq!(pts.len(), 11);
        for w in pts.windows(2) {
            assert!(w[0].0 <= w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
    }
}
