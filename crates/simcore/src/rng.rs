//! Deterministic random number generation.
//!
//! Every stochastic model in the workspace draws from a [`SimRng`], a thin
//! wrapper over `ChaCha12Rng`. ChaCha is used (rather than `StdRng`)
//! because its output stream is documented to be stable across `rand`
//! releases and platforms, so a seed fully pins an experiment's results.
//!
//! Substreams: independent model components should not share one RNG
//! (inserting a draw in one component would perturb all others). Instead,
//! derive a named substream per component with [`SimRng::substream`]; the
//! derivation hashes the parent seed with the label, so streams are stable
//! under refactoring as long as labels are kept.

use crate::hash::fnv1a64 as fnv1a;
use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// Seedable, portable random stream for simulations.
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: ChaCha12Rng,
    seed: u64,
}

impl SimRng {
    /// Creates a stream from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha12Rng::seed_from_u64(seed),
            seed,
        }
    }

    /// The seed this stream was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent stream identified by `label`.
    ///
    /// The same `(seed, label)` pair always yields the same stream, and
    /// distinct labels yield streams that do not overlap in practice.
    pub fn substream(&self, label: &str) -> SimRng {
        let derived = self.seed ^ fnv1a(label.as_bytes());
        SimRng::new(derived.rotate_left(17).wrapping_add(0x9e37_79b9_7f4a_7c15))
    }

    /// Derives an independent stream identified by a numeric index, for
    /// per-entity streams (e.g. one per flow or per cell).
    pub fn substream_idx(&self, label: &str, idx: u64) -> SimRng {
        let derived = self
            .seed
            .wrapping_add(idx.wrapping_mul(0xd134_2543_de82_ef95))
            ^ fnv1a(label.as_bytes());
        SimRng::new(derived.rotate_left(29).wrapping_add(0x2545_f491_4f6c_dd1d))
    }

    /// Uniform draw in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the range is empty.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.f64()
    }

    /// Uniform integer draw in `[lo, hi)`. Panics if the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform index draw in `[0, n)`. Panics if `n == 0`.
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with success probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Picks a uniformly random element.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.index(items.len())])
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest);
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn substreams_are_stable_and_distinct() {
        let root = SimRng::new(7);
        let mut s1 = root.substream("phy");
        let mut s1b = root.substream("phy");
        let mut s2 = root.substream("net");
        assert_eq!(s1.next_u64(), s1b.next_u64());
        assert_ne!(s1.next_u64(), s2.next_u64());
    }

    #[test]
    fn indexed_substreams_distinct() {
        let root = SimRng::new(9);
        let mut a = root.substream_idx("flow", 0);
        let mut b = root.substream_idx("flow", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_f64_bounds() {
        let mut r = SimRng::new(11);
        for _ in 0..1_000 {
            let x = r.range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
        assert_eq!(r.range_f64(5.0, 5.0), 5.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        let expect: Vec<u32> = (0..50).collect();
        assert_eq!(sorted, expect);
        assert_ne!(
            v, expect,
            "shuffle left the slice in order (astronomically unlikely)"
        );
    }
}
