//! # fiveg-campaign
//!
//! Campaign orchestration for the `fiveg` workspace: turns the paper's
//! ~30 independent experiment campaigns from a wall of sequential calls
//! into an enumerable, schedulable job system.
//!
//! The subsystem has three layers:
//!
//! * **Job registry** ([`job`], [`registry`]) — every experiment is a
//!   named [`Job`] (name, paper section, fidelity knobs) returning a
//!   [`JobOutput`] (human text + JSON artifact). The full paper suite
//!   becomes *data* that can be listed, filtered and sharded.
//! * **Deterministic parallel executor** ([`executor`]) — a plain
//!   `std::thread` worker pool (no async runtime, per DESIGN.md §4).
//!   Each `(job, rep)` unit derives its RNG seed by stable-hashing
//!   `(base_seed, job_name, rep)`, so artifacts are byte-identical for
//!   any worker count or scheduling order. Panicking jobs are isolated
//!   with `catch_unwind` and a per-job retry budget instead of killing
//!   the run.
//! * **Observability + regression** ([`manifest`], [`golden`],
//!   [`artifacts`]) — per-job status/wall-time progress events, a run
//!   `manifest.json` (jobs, seeds, durations, artifact hashes), and a
//!   golden-check mode that diffs fresh JSON artifacts against committed
//!   outputs and reports drift.
//!
//! The `repro` binary in `fiveg-bench` is a thin CLI over this crate;
//! `fiveg-core::jobs` registers the paper suite.
//!
//! ## Example
//!
//! ```
//! use fiveg_campaign::{FnJob, JobOutput, Registry, RunConfig, run};
//!
//! let mut reg = Registry::new();
//! reg.register(FnJob::new("double", "demo", |ctx| {
//!     let v = ctx.seed.wrapping_mul(2);
//!     Ok(JobOutput::new(format!("{v}\n"), format!("{{\"v\":{v}}}")))
//! }));
//! let report = run(&reg, &RunConfig::new(2020).workers(2), &mut |_| {});
//! assert_eq!(report.results.len(), 1);
//! assert!(report.results[0].is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod artifacts;
pub mod executor;
pub mod golden;
pub mod job;
pub mod manifest;
pub mod registry;

pub use artifacts::{write_golden, write_run};
pub use executor::{run, JobEvent, JobResult, JobStatus, RunConfig, RunReport};
pub use golden::{check_artifacts, check_run, ArtifactCheck, GoldenReport};
pub use job::{derive_seed, FidelityLevel, FnJob, Job, JobCtx, JobOutput};
pub use manifest::{Manifest, ManifestJob, PerfBlock};
pub use registry::Registry;
