//! Golden-result regression checks.
//!
//! A golden directory holds committed JSON artifacts from a blessed run
//! (same base seed and fidelity). `check_run` diffs a fresh
//! [`crate::RunReport`] against it: any byte difference,
//! missing golden file, or failed job is drift, and the caller exits
//! non-zero.

use crate::executor::RunReport;
use std::fs;
use std::io;
use std::path::Path;

/// Outcome of checking one artifact against its golden file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactCheck {
    /// Bytes match.
    Match {
        /// Artifact file name.
        name: String,
    },
    /// Bytes differ; carries the first differing line, the byte offset
    /// of the divergence and the JSON key path enclosing it.
    Drift {
        /// Artifact file name.
        name: String,
        /// 1-based line number of the first difference.
        line: usize,
        /// 0-based byte offset where the two artifacts diverge.
        offset: usize,
        /// Dotted JSON key path enclosing the divergence in the golden
        /// file (e.g. `faults[1].impact`), or empty at top level.
        key: String,
        /// The golden line (or `<eof>`).
        expected: String,
        /// The freshly produced line (or `<eof>`).
        actual: String,
    },
    /// The run produced an artifact with no committed golden.
    MissingGolden {
        /// Artifact file name.
        name: String,
    },
    /// The job failed, so there is nothing to compare.
    JobFailed {
        /// Job name.
        name: String,
        /// Failure message.
        error: String,
    },
}

impl ArtifactCheck {
    /// Whether this check passes.
    pub fn is_ok(&self) -> bool {
        matches!(self, ArtifactCheck::Match { .. })
    }

    /// One-line rendering for reports.
    pub fn describe(&self) -> String {
        match self {
            ArtifactCheck::Match { name } => format!("ok      {name}"),
            ArtifactCheck::Drift {
                name,
                line,
                offset,
                key,
                expected,
                actual,
            } => {
                let at = if key.is_empty() {
                    format!("byte {offset}")
                } else {
                    format!("byte {offset}, key `{key}`")
                };
                format!(
                    "DRIFT   {name}: first difference at line {line} ({at})\n  golden: {expected}\n  actual: {actual}"
                )
            }
            ArtifactCheck::MissingGolden { name } => {
                format!("MISSING {name}: no golden file (bless the run to add it)")
            }
            ArtifactCheck::JobFailed { name, error } => {
                format!("FAILED  {name}: job did not produce an artifact: {error}")
            }
        }
    }
}

/// All artifact checks for one run.
#[derive(Debug, Clone)]
pub struct GoldenReport {
    /// Per-artifact outcomes, in run order.
    pub checks: Vec<ArtifactCheck>,
}

impl GoldenReport {
    /// Whether every artifact matched its golden.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(ArtifactCheck::is_ok)
    }

    /// Number of non-matching artifacts.
    pub fn drift_count(&self) -> usize {
        self.checks.iter().filter(|c| !c.is_ok()).count()
    }

    /// Multi-line human summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&c.describe());
            out.push('\n');
        }
        out.push_str(&format!(
            "golden check: {} artifacts, {} drifted\n",
            self.checks.len(),
            self.drift_count()
        ));
        out
    }
}

/// Byte offset at which the two strings diverge (`min(len)` when one is
/// a prefix of the other).
fn first_diff_offset(expected: &str, actual: &str) -> usize {
    expected
        .bytes()
        .zip(actual.bytes())
        .position(|(e, a)| e != a)
        .unwrap_or_else(|| expected.len().min(actual.len()))
}

/// The dotted JSON key path enclosing byte `offset` of `src`, assuming
/// well-formed JSON (which golden artifacts are): `faults[1].impact`,
/// or empty at top level. A light structural scan, not a full parser —
/// it only tracks object keys, array indices and string escapes.
fn json_key_path_at(src: &str, offset: usize) -> String {
    enum Frame {
        Object { key: Option<String> },
        Array { idx: usize },
    }
    let bytes = src.as_bytes();
    let end = offset.min(bytes.len());
    let mut stack: Vec<Frame> = Vec::new();
    let mut i = 0;
    while i < end {
        match bytes[i] {
            b'{' => stack.push(Frame::Object { key: None }),
            b'[' => stack.push(Frame::Array { idx: 0 }),
            b'}' | b']' => {
                stack.pop();
            }
            b',' => {
                if let Some(Frame::Array { idx }) = stack.last_mut() {
                    *idx += 1;
                }
            }
            b'"' => {
                // Scan the string body, honouring escapes.
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != b'"' {
                    if bytes[j] == b'\\' {
                        j += 1;
                    }
                    j += 1;
                }
                // A string followed by `:` names the next value.
                let mut k = j + 1;
                while k < bytes.len() && bytes[k].is_ascii_whitespace() {
                    k += 1;
                }
                if k < bytes.len() && bytes[k] == b':' {
                    if let Some(Frame::Object { key }) = stack.last_mut() {
                        *key = Some(String::from_utf8_lossy(&bytes[start..j]).into_owned());
                    }
                }
                // If the divergence is inside this string, stop before
                // skipping past it.
                if j >= end {
                    break;
                }
                i = j;
            }
            _ => {}
        }
        i += 1;
    }
    let mut path = String::new();
    for frame in &stack {
        match frame {
            Frame::Object { key: Some(k) } => {
                if !path.is_empty() {
                    path.push('.');
                }
                path.push_str(k);
            }
            Frame::Object { key: None } => {}
            Frame::Array { idx } => {
                path.push_str(&format!("[{idx}]"));
            }
        }
    }
    path
}

fn first_diff_line(expected: &str, actual: &str) -> (usize, String, String) {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return (i + 1, e.to_string(), a.to_string());
        }
    }
    let n = expected.lines().count().min(actual.lines().count());
    let e = expected.lines().nth(n).unwrap_or("<eof>").to_string();
    let a = actual.lines().nth(n).unwrap_or("<eof>").to_string();
    (n + 1, e, a)
}

/// Checks `(file_name, produced_json)` pairs against `golden_dir`.
pub fn check_artifacts(
    golden_dir: &Path,
    produced: &[(String, String)],
) -> io::Result<GoldenReport> {
    let mut checks = Vec::new();
    for (name, actual) in produced {
        let path = golden_dir.join(name);
        if !path.exists() {
            checks.push(ArtifactCheck::MissingGolden { name: name.clone() });
            continue;
        }
        let expected = fs::read_to_string(&path)?;
        if &expected == actual {
            checks.push(ArtifactCheck::Match { name: name.clone() });
        } else {
            let (line, e, a) = first_diff_line(&expected, actual);
            let offset = first_diff_offset(&expected, actual);
            checks.push(ArtifactCheck::Drift {
                name: name.clone(),
                line,
                offset,
                key: json_key_path_at(&expected, offset),
                expected: e,
                actual: a,
            });
        }
    }
    Ok(GoldenReport { checks })
}

/// Checks every artifact a run produced (and flags failed jobs) against
/// `golden_dir`.
pub fn check_run(golden_dir: &Path, report: &RunReport) -> io::Result<GoldenReport> {
    let mut produced = Vec::new();
    let mut checks = Vec::new();
    for r in &report.results {
        match &r.output {
            Some(out) => produced.push((format!("{}.json", r.artifact_stem()), out.json.clone())),
            None => checks.push(ArtifactCheck::JobFailed {
                name: r.name.clone(),
                error: match &r.status {
                    crate::JobStatus::Failed(e) => e.clone(),
                    crate::JobStatus::Ok => String::new(),
                },
            }),
        }
    }
    let mut rep = check_artifacts(golden_dir, &produced)?;
    rep.checks.extend(checks);
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("fiveg-golden-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn match_drift_and_missing() {
        let dir = tempdir("basic");
        fs::write(dir.join("a.json"), "{\n  \"v\": 1\n}").unwrap();
        fs::write(dir.join("b.json"), "{\n  \"v\": 2\n}").unwrap();
        let produced = vec![
            ("a.json".to_string(), "{\n  \"v\": 1\n}".to_string()),
            ("b.json".to_string(), "{\n  \"v\": 9\n}".to_string()),
            ("c.json".to_string(), "{}".to_string()),
        ];
        let rep = check_artifacts(&dir, &produced).unwrap();
        assert!(!rep.ok());
        assert_eq!(rep.drift_count(), 2);
        assert!(rep.checks[0].is_ok());
        match &rep.checks[1] {
            ArtifactCheck::Drift {
                line,
                offset,
                key,
                expected,
                actual,
                ..
            } => {
                assert_eq!(*line, 2);
                // `{\n  "v": 2` vs `{\n  "v": 9` diverge at the value.
                assert_eq!(*offset, 9);
                assert_eq!(key, "v");
                assert!(expected.contains('2'));
                assert!(actual.contains('9'));
            }
            other => panic!("expected drift, got {other:?}"),
        }
        assert!(matches!(
            &rep.checks[2],
            ArtifactCheck::MissingGolden { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_path_walks_nesting() {
        let src = r#"{
  "top": 1,
  "faults": [
    { "kind": "outage", "impact": 71 },
    { "kind": "storm", "impact": 21 }
  ]
}"#;
        let at = src.find("21").unwrap();
        assert_eq!(json_key_path_at(src, at), "faults[1].impact");
        let at = src.find('1').unwrap();
        assert_eq!(json_key_path_at(src, at), "top");
        assert_eq!(json_key_path_at(src, 0), "");
    }

    #[test]
    fn key_path_survives_escapes_and_strings_with_braces() {
        let src = r#"{ "a": "not { a key", "b": "esc \" quote", "c": 5 }"#;
        let at = src.find('5').unwrap();
        assert_eq!(json_key_path_at(src, at), "c");
        // Divergence inside a string value names that value's key.
        let at = src.find("quote").unwrap();
        assert_eq!(json_key_path_at(src, at), "b");
    }

    #[test]
    fn drift_describe_names_offset_and_key() {
        let dir = tempdir("offset");
        fs::write(
            dir.join("t.json"),
            "{\n  \"rsrp\": [\n    -85.5,\n    5.6\n  ]\n}",
        )
        .unwrap();
        let produced = vec![(
            "t.json".to_string(),
            "{\n  \"rsrp\": [\n    -85.5,\n    5.7\n  ]\n}".to_string(),
        )];
        let rep = check_artifacts(&dir, &produced).unwrap();
        match &rep.checks[0] {
            ArtifactCheck::Drift { offset, key, .. } => {
                assert_eq!(key, "rsrp[1]");
                let text = rep.checks[0].describe();
                assert!(text.contains(&format!("byte {offset}")), "{text}");
                assert!(text.contains("key `rsrp[1]`"), "{text}");
            }
            other => panic!("expected drift, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn prefix_truncation_diverges_at_shorter_len() {
        assert_eq!(first_diff_offset("abcdef", "abc"), 3);
        assert_eq!(first_diff_offset("abc", "abc"), 3);
        assert_eq!(first_diff_offset("xbc", "abc"), 0);
    }

    #[test]
    fn summary_counts() {
        let dir = tempdir("summary");
        fs::write(dir.join("x.json"), "1").unwrap();
        let rep = check_artifacts(&dir, &[("x.json".to_string(), "1".to_string())]).unwrap();
        assert!(rep.ok());
        assert!(rep.summary().contains("0 drifted"));
        let _ = fs::remove_dir_all(&dir);
    }
}
