//! Golden-result regression checks.
//!
//! A golden directory holds committed JSON artifacts from a blessed run
//! (same base seed and fidelity). `check_run` diffs a fresh
//! [`RunReport`](crate::RunReport) against it: any byte difference,
//! missing golden file, or failed job is drift, and the caller exits
//! non-zero.

use crate::executor::RunReport;
use std::fs;
use std::io;
use std::path::Path;

/// Outcome of checking one artifact against its golden file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArtifactCheck {
    /// Bytes match.
    Match {
        /// Artifact file name.
        name: String,
    },
    /// Bytes differ; carries the first differing line for diagnosis.
    Drift {
        /// Artifact file name.
        name: String,
        /// 1-based line number of the first difference.
        line: usize,
        /// The golden line (or `<eof>`).
        expected: String,
        /// The freshly produced line (or `<eof>`).
        actual: String,
    },
    /// The run produced an artifact with no committed golden.
    MissingGolden {
        /// Artifact file name.
        name: String,
    },
    /// The job failed, so there is nothing to compare.
    JobFailed {
        /// Job name.
        name: String,
        /// Failure message.
        error: String,
    },
}

impl ArtifactCheck {
    /// Whether this check passes.
    pub fn is_ok(&self) -> bool {
        matches!(self, ArtifactCheck::Match { .. })
    }

    /// One-line rendering for reports.
    pub fn describe(&self) -> String {
        match self {
            ArtifactCheck::Match { name } => format!("ok      {name}"),
            ArtifactCheck::Drift {
                name,
                line,
                expected,
                actual,
            } => format!(
                "DRIFT   {name}: first difference at line {line}\n  golden: {expected}\n  actual: {actual}"
            ),
            ArtifactCheck::MissingGolden { name } => {
                format!("MISSING {name}: no golden file (bless the run to add it)")
            }
            ArtifactCheck::JobFailed { name, error } => {
                format!("FAILED  {name}: job did not produce an artifact: {error}")
            }
        }
    }
}

/// All artifact checks for one run.
#[derive(Debug, Clone)]
pub struct GoldenReport {
    /// Per-artifact outcomes, in run order.
    pub checks: Vec<ArtifactCheck>,
}

impl GoldenReport {
    /// Whether every artifact matched its golden.
    pub fn ok(&self) -> bool {
        self.checks.iter().all(ArtifactCheck::is_ok)
    }

    /// Number of non-matching artifacts.
    pub fn drift_count(&self) -> usize {
        self.checks.iter().filter(|c| !c.is_ok()).count()
    }

    /// Multi-line human summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        for c in &self.checks {
            out.push_str(&c.describe());
            out.push('\n');
        }
        out.push_str(&format!(
            "golden check: {} artifacts, {} drifted\n",
            self.checks.len(),
            self.drift_count()
        ));
        out
    }
}

fn first_diff_line(expected: &str, actual: &str) -> (usize, String, String) {
    for (i, (e, a)) in expected.lines().zip(actual.lines()).enumerate() {
        if e != a {
            return (i + 1, e.to_string(), a.to_string());
        }
    }
    let n = expected.lines().count().min(actual.lines().count());
    let e = expected.lines().nth(n).unwrap_or("<eof>").to_string();
    let a = actual.lines().nth(n).unwrap_or("<eof>").to_string();
    (n + 1, e, a)
}

/// Checks `(file_name, produced_json)` pairs against `golden_dir`.
pub fn check_artifacts(
    golden_dir: &Path,
    produced: &[(String, String)],
) -> io::Result<GoldenReport> {
    let mut checks = Vec::new();
    for (name, actual) in produced {
        let path = golden_dir.join(name);
        if !path.exists() {
            checks.push(ArtifactCheck::MissingGolden { name: name.clone() });
            continue;
        }
        let expected = fs::read_to_string(&path)?;
        if &expected == actual {
            checks.push(ArtifactCheck::Match { name: name.clone() });
        } else {
            let (line, e, a) = first_diff_line(&expected, actual);
            checks.push(ArtifactCheck::Drift {
                name: name.clone(),
                line,
                expected: e,
                actual: a,
            });
        }
    }
    Ok(GoldenReport { checks })
}

/// Checks every artifact a run produced (and flags failed jobs) against
/// `golden_dir`.
pub fn check_run(golden_dir: &Path, report: &RunReport) -> io::Result<GoldenReport> {
    let mut produced = Vec::new();
    let mut checks = Vec::new();
    for r in &report.results {
        match &r.output {
            Some(out) => produced.push((format!("{}.json", r.artifact_stem()), out.json.clone())),
            None => checks.push(ArtifactCheck::JobFailed {
                name: r.name.clone(),
                error: match &r.status {
                    crate::JobStatus::Failed(e) => e.clone(),
                    crate::JobStatus::Ok => String::new(),
                },
            }),
        }
    }
    let mut rep = check_artifacts(golden_dir, &produced)?;
    rep.checks.extend(checks);
    Ok(rep)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let d =
            std::env::temp_dir().join(format!("fiveg-golden-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&d);
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn match_drift_and_missing() {
        let dir = tempdir("basic");
        fs::write(dir.join("a.json"), "{\n  \"v\": 1\n}").unwrap();
        fs::write(dir.join("b.json"), "{\n  \"v\": 2\n}").unwrap();
        let produced = vec![
            ("a.json".to_string(), "{\n  \"v\": 1\n}".to_string()),
            ("b.json".to_string(), "{\n  \"v\": 9\n}".to_string()),
            ("c.json".to_string(), "{}".to_string()),
        ];
        let rep = check_artifacts(&dir, &produced).unwrap();
        assert!(!rep.ok());
        assert_eq!(rep.drift_count(), 2);
        assert!(rep.checks[0].is_ok());
        match &rep.checks[1] {
            ArtifactCheck::Drift {
                line,
                expected,
                actual,
                ..
            } => {
                assert_eq!(*line, 2);
                assert!(expected.contains('2'));
                assert!(actual.contains('9'));
            }
            other => panic!("expected drift, got {other:?}"),
        }
        assert!(matches!(
            &rep.checks[2],
            ArtifactCheck::MissingGolden { .. }
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn summary_counts() {
        let dir = tempdir("summary");
        fs::write(dir.join("x.json"), "1").unwrap();
        let rep = check_artifacts(&dir, &[("x.json".to_string(), "1".to_string())]).unwrap();
        assert!(rep.ok());
        assert!(rep.summary().contains("0 drifted"));
        let _ = fs::remove_dir_all(&dir);
    }
}
