//! Artifact writing: text + JSON per job, plus the run manifest.

use crate::executor::RunReport;
use std::fs;
use std::io;
use std::path::Path;

/// Writes every successful unit's `*.txt` and `*.json` plus
/// `manifest.json` into `dir` (created if needed). Returns the number of
/// artifact pairs written.
pub fn write_run(dir: &Path, report: &RunReport) -> io::Result<usize> {
    fs::create_dir_all(dir)?;
    let mut written = 0;
    for r in &report.results {
        if let Some(out) = &r.output {
            let stem = r.artifact_stem();
            fs::write(dir.join(format!("{stem}.txt")), &out.text)?;
            fs::write(dir.join(format!("{stem}.json")), &out.json)?;
            if let Some(t) = &r.trace {
                fs::write(dir.join(format!("{stem}.trace.bin")), &t.bin)?;
                fs::write(dir.join(format!("{stem}.trace.json")), &t.sidecar)?;
                // Span self-profile is advisory (wall-clock) and not
                // fingerprinted; the `trace chrome` subcommand reads it.
                if let Some(snap) = &r.metrics {
                    fs::write(dir.join(format!("{stem}.trace.spans.json")), snap.to_json())?;
                }
            }
            written += 1;
        }
    }
    fs::write(dir.join("manifest.json"), report.manifest.to_json())?;
    Ok(written)
}

/// Blesses a run as the new golden: writes only the JSON artifacts
/// (the files `check_run` compares) into `dir`.
pub fn write_golden(dir: &Path, report: &RunReport) -> io::Result<usize> {
    fs::create_dir_all(dir)?;
    let mut written = 0;
    for r in &report.results {
        if let Some(out) = &r.output {
            fs::write(dir.join(format!("{}.json", r.artifact_stem())), &out.json)?;
            written += 1;
        }
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FnJob, JobOutput};
    use crate::registry::Registry;
    use crate::RunConfig;

    #[test]
    fn writes_artifacts_and_manifest() {
        let mut reg = Registry::new();
        reg.register(FnJob::new("art", "test", |_| {
            Ok(JobOutput::new("text\n".into(), "{\"v\":3}".into()))
        }));
        let report = crate::run(&reg, &RunConfig::new(1), &mut |_| {});
        let dir = std::env::temp_dir().join(format!("fiveg-artifacts-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let n = write_run(&dir, &report).unwrap();
        assert_eq!(n, 1);
        assert_eq!(fs::read_to_string(dir.join("art.txt")).unwrap(), "text\n");
        assert_eq!(
            fs::read_to_string(dir.join("art.json")).unwrap(),
            "{\"v\":3}"
        );
        assert!(dir.join("manifest.json").exists());
        let g = write_golden(&dir.join("golden"), &report).unwrap();
        assert_eq!(g, 1);
        assert!(dir.join("golden/art.json").exists());
        assert!(!dir.join("golden/art.txt").exists());
        let _ = fs::remove_dir_all(&dir);
    }
}
