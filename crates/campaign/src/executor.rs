//! The deterministic parallel executor.
//!
//! A plain `std::thread` worker pool (no async runtime — the workload is
//! CPU-bound simulation). Work units are `(job, rep)` pairs; each unit's
//! RNG seed is a stable hash of `(base_seed, job_name, rep)`, so the
//! produced artifacts are byte-identical whatever the worker count or
//! scheduling order. Unit panics are caught with `catch_unwind`,
//! re-attempted up to the job's retry budget, and reported as failures
//! without disturbing sibling jobs.

use crate::job::{derive_seed, FidelityLevel, Job, JobCtx, JobOutput};
use crate::manifest::Manifest;
use crate::registry::Registry;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Execution parameters for one campaign run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Base seed; per-unit seeds derive from it (see [`derive_seed`]).
    pub base_seed: u64,
    /// Fidelity handed to every job.
    pub fidelity: FidelityLevel,
    /// Worker threads (≥ 1). Has no effect on results, only wall time.
    pub workers: usize,
    /// Substring filter over job names/sections (`--only`).
    pub only: Option<String>,
    /// Event tracing: when set, every unit runs under a fresh
    /// `fiveg-trace` sink in this mode and its columnar artifact is
    /// written/fingerprinted next to the JSON artifact.
    pub trace: Option<fiveg_trace::TraceMode>,
}

impl RunConfig {
    /// Quick-fidelity, single-worker config with the given base seed.
    pub fn new(base_seed: u64) -> RunConfig {
        RunConfig {
            base_seed,
            fidelity: FidelityLevel::Quick,
            workers: 1,
            only: None,
            trace: None,
        }
    }

    /// Sets the worker count (clamped to ≥ 1).
    pub fn workers(mut self, n: usize) -> RunConfig {
        self.workers = n.max(1);
        self
    }

    /// Sets the fidelity.
    pub fn fidelity(mut self, f: FidelityLevel) -> RunConfig {
        self.fidelity = f;
        self
    }

    /// Restricts the run to jobs matching `filter`.
    pub fn only(mut self, filter: impl Into<String>) -> RunConfig {
        self.only = Some(filter.into());
        self
    }

    /// Enables per-unit event tracing in the given mode.
    pub fn trace(mut self, mode: fiveg_trace::TraceMode) -> RunConfig {
        self.trace = Some(mode);
        self
    }
}

/// Terminal state of one work unit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// The unit produced its output.
    Ok,
    /// All attempts failed; the message is the last error or panic.
    Failed(String),
}

/// The outcome of one `(job, rep)` work unit.
#[derive(Debug, Clone)]
pub struct JobResult {
    /// Job name.
    pub name: String,
    /// Job section.
    pub section: String,
    /// Repetition index.
    pub rep: u32,
    /// Derived seed the unit ran with.
    pub seed: u64,
    /// Attempts consumed (1 = first try succeeded).
    pub attempts: u32,
    /// Wall time across all attempts.
    pub wall: Duration,
    /// Terminal status.
    pub status: JobStatus,
    /// Output when `status == Ok`.
    pub output: Option<JobOutput>,
    /// Metrics recorded by the successful attempt (counters, gauges,
    /// histograms, span timers), when `status == Ok`.
    pub metrics: Option<fiveg_obs::Snapshot>,
    /// Finished trace artifact, when tracing was enabled and the unit
    /// succeeded.
    pub trace: Option<fiveg_trace::TraceOutput>,
}

impl JobResult {
    /// Whether the unit succeeded.
    pub fn is_ok(&self) -> bool {
        self.status == JobStatus::Ok
    }

    /// Artifact file stem: `name` for rep 0, `name.repN` for sweeps.
    pub fn artifact_stem(&self) -> String {
        if self.rep == 0 {
            self.name.clone()
        } else {
            format!("{}.rep{}", self.name, self.rep)
        }
    }
}

/// Progress notifications delivered to the `run` callback, on the
/// calling thread, as units start and finish.
#[derive(Debug, Clone)]
pub enum JobEvent {
    /// A worker picked up a unit.
    Started {
        /// Job name.
        name: String,
        /// Repetition index.
        rep: u32,
    },
    /// A unit reached a terminal state.
    Finished {
        /// Job name.
        name: String,
        /// Repetition index.
        rep: u32,
        /// Whether it succeeded.
        ok: bool,
        /// Failure message, when `!ok`.
        error: Option<String>,
        /// Attempts consumed.
        attempts: u32,
        /// Wall time in milliseconds.
        wall_ms: u64,
        /// Units finished so far (including this one).
        done: usize,
        /// Total units in the run.
        total: usize,
    },
}

/// Everything a campaign run produced.
#[derive(Debug)]
pub struct RunReport {
    /// Per-unit results, in deterministic `(registry, rep)` order.
    pub results: Vec<JobResult>,
    /// The run manifest (jobs, seeds, durations, artifact hashes).
    pub manifest: Manifest,
    /// Total wall time of the run.
    pub wall: Duration,
}

impl RunReport {
    /// Number of failed units.
    pub fn failures(&self) -> usize {
        self.results.iter().filter(|r| !r.is_ok()).count()
    }
}

enum Msg {
    Started { unit: usize },
    Done { unit: usize, result: Box<JobResult> },
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

fn run_unit(job: &dyn Job, cfg: &RunConfig, rep: u32) -> JobResult {
    let seed = derive_seed(cfg.base_seed, job.name(), rep);
    let ctx = JobCtx {
        seed,
        base_seed: cfg.base_seed,
        fidelity: cfg.fidelity,
        rep,
    };
    let max_attempts = 1 + job.retry_budget();
    // fiveg-lint: allow(D003) -- wall time feeds manifest.json, not artifacts
    let start = Instant::now();
    let mut attempts = 0;
    let mut last_err = String::new();
    while attempts < max_attempts {
        attempts += 1;
        // A fresh registry per attempt keeps a failed attempt's partial
        // counts out of the retry's metrics; the unit runs entirely on
        // this worker thread, so the thread-local scope sees all of it.
        let metrics = fiveg_obs::MetricsHandle::new();
        // Like the metrics registry, the trace sink is per attempt so a
        // failed attempt's partial events never leak into the retry.
        let trace_sink = cfg.trace.map(|mode| {
            fiveg_trace::TraceHandle::new(fiveg_trace::TraceConfig {
                mode,
                ..fiveg_trace::TraceConfig::default()
            })
        });
        match panic::catch_unwind(AssertUnwindSafe(|| {
            fiveg_obs::scoped(&metrics, || {
                let _timer = fiveg_obs::span("job.run");
                let run = || job.run(&ctx);
                match &trace_sink {
                    Some(t) => fiveg_trace::scoped(t, run),
                    None => run(),
                }
            })
        })) {
            Ok(Ok(output)) => {
                // Finish inside the unit's obs scope so trace.events /
                // trace.bytes land in this unit's perf block.
                let trace = trace_sink
                    .as_ref()
                    .map(|t| fiveg_obs::scoped(&metrics, || t.finish()));
                return JobResult {
                    name: job.name().to_string(),
                    section: job.section().to_string(),
                    rep,
                    seed,
                    attempts,
                    wall: start.elapsed(),
                    status: JobStatus::Ok,
                    output: Some(output),
                    metrics: Some(metrics.snapshot()),
                    trace,
                };
            }
            Ok(Err(e)) => last_err = e,
            Err(payload) => last_err = format!("panic: {}", panic_message(payload)),
        }
    }
    JobResult {
        name: job.name().to_string(),
        section: job.section().to_string(),
        rep,
        seed,
        attempts,
        wall: start.elapsed(),
        status: JobStatus::Failed(last_err),
        output: None,
        metrics: None,
        trace: None,
    }
}

/// Runs the (optionally filtered) registry under `cfg`, invoking
/// `progress` for every unit start/finish, and returns the collected
/// results plus manifest.
///
/// Results are returned in deterministic `(registry order, rep)` order
/// regardless of completion order, and each unit's bytes depend only on
/// `(base_seed, job_name, rep, fidelity)` — never on `cfg.workers`.
pub fn run(registry: &Registry, cfg: &RunConfig, progress: &mut dyn FnMut(&JobEvent)) -> RunReport {
    let jobs: Vec<Arc<dyn Job>> = match &cfg.only {
        Some(f) => registry.matching(f),
        None => registry.jobs().to_vec(),
    };
    // Work units in deterministic order: registry order, then rep.
    let units: Vec<(Arc<dyn Job>, u32)> = jobs
        .iter()
        .flat_map(|j| (0..j.reps().max(1)).map(move |r| (j.clone(), r)))
        .collect();
    let total = units.len();
    // fiveg-lint: allow(D003) -- campaign wall time feeds manifest.json only
    let start = Instant::now();

    let next_unit = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<Msg>();
    let mut slots: Vec<Option<JobResult>> = (0..total).map(|_| None).collect();

    thread::scope(|scope| {
        let workers = cfg.workers.max(1).min(total.max(1));
        for _ in 0..workers {
            let tx = tx.clone();
            let units = &units;
            let next_unit = &next_unit;
            scope.spawn(move || loop {
                let idx = next_unit.fetch_add(1, Ordering::Relaxed);
                if idx >= units.len() {
                    break;
                }
                let (job, rep) = &units[idx];
                if tx.send(Msg::Started { unit: idx }).is_err() {
                    break;
                }
                let result = run_unit(job.as_ref(), cfg, *rep);
                if tx
                    .send(Msg::Done {
                        unit: idx,
                        result: Box::new(result),
                    })
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(tx);

        let mut done = 0usize;
        while let Ok(msg) = rx.recv() {
            match msg {
                Msg::Started { unit } => {
                    let (job, rep) = &units[unit];
                    progress(&JobEvent::Started {
                        name: job.name().to_string(),
                        rep: *rep,
                    });
                }
                Msg::Done { unit, result } => {
                    done += 1;
                    progress(&JobEvent::Finished {
                        name: result.name.clone(),
                        rep: result.rep,
                        ok: result.is_ok(),
                        error: match &result.status {
                            JobStatus::Failed(e) => Some(e.clone()),
                            JobStatus::Ok => None,
                        },
                        attempts: result.attempts,
                        wall_ms: result.wall.as_millis() as u64,
                        done,
                        total,
                    });
                    slots[unit] = Some(*result);
                }
            }
        }
    });

    let results: Vec<JobResult> = slots
        .into_iter()
        .enumerate()
        .map(|(unit, s)| {
            s.unwrap_or_else(|| {
                // A worker died before reporting this unit (it panicked
                // outside the catch_unwind in run_unit): record a failed
                // result instead of tearing down the whole run.
                let (job, rep) = &units[unit];
                JobResult {
                    name: job.name().to_string(),
                    section: job.section().to_string(),
                    rep: *rep,
                    seed: derive_seed(cfg.base_seed, job.name(), *rep),
                    attempts: 0,
                    wall: Duration::ZERO,
                    status: JobStatus::Failed(
                        "worker terminated before reporting a result".to_string(),
                    ),
                    output: None,
                    metrics: None,
                    trace: None,
                }
            })
        })
        .collect();
    let wall = start.elapsed();
    let manifest = Manifest::from_results(cfg, &results, wall);
    RunReport {
        results,
        manifest,
        wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FnJob, JobOutput};

    fn seeded_job(name: &'static str) -> FnJob {
        FnJob::new(name, "test", |ctx| {
            Ok(JobOutput::new(
                format!("seed {}\n", ctx.seed),
                format!("{{\"seed\":{}}}", ctx.seed),
            ))
        })
    }

    fn registry() -> Registry {
        let mut r = Registry::new();
        r.register(seeded_job("a"));
        r.register(seeded_job("b"));
        r.register(seeded_job("c").with_reps(3));
        r
    }

    #[test]
    fn results_identical_across_worker_counts() {
        let reg = registry();
        let one = run(&reg, &RunConfig::new(7).workers(1), &mut |_| {});
        let four = run(&reg, &RunConfig::new(7).workers(4), &mut |_| {});
        assert_eq!(one.results.len(), 5);
        let json = |rep: &RunReport| -> Vec<String> {
            rep.results
                .iter()
                .map(|r| r.output.as_ref().unwrap().json.clone())
                .collect()
        };
        assert_eq!(json(&one), json(&four));
    }

    #[test]
    fn panicking_job_is_isolated_and_retried() {
        let mut reg = Registry::new();
        reg.register(seeded_job("good"));
        reg.register(
            FnJob::new("bad", "test", |_| panic!("intentional test panic")).with_retry_budget(2),
        );
        let report = run(&reg, &RunConfig::new(1).workers(2), &mut |_| {});
        assert_eq!(report.failures(), 1);
        let bad = report.results.iter().find(|r| r.name == "bad").unwrap();
        assert_eq!(bad.attempts, 3);
        assert!(matches!(&bad.status, JobStatus::Failed(e) if e.contains("intentional")));
        let good = report.results.iter().find(|r| r.name == "good").unwrap();
        assert!(good.is_ok());
    }

    #[test]
    fn job_level_errors_are_reported() {
        let mut reg = Registry::new();
        reg.register(FnJob::new("err", "test", |_| Err("no data".into())).with_retry_budget(0));
        let report = run(&reg, &RunConfig::new(1), &mut |_| {});
        assert!(matches!(&report.results[0].status, JobStatus::Failed(e) if e == "no data"));
        assert_eq!(report.results[0].attempts, 1);
    }

    #[test]
    fn only_filter_limits_units() {
        let reg = registry();
        let report = run(&reg, &RunConfig::new(7).only("a"), &mut |_| {});
        assert_eq!(report.results.len(), 1);
        assert_eq!(report.results[0].name, "a");
    }

    #[test]
    fn progress_events_cover_all_units() {
        let reg = registry();
        let mut started = 0;
        let mut finished = 0;
        run(&reg, &RunConfig::new(7).workers(3), &mut |ev| match ev {
            JobEvent::Started { .. } => started += 1,
            JobEvent::Finished { done, total, .. } => {
                finished += 1;
                assert_eq!(*total, 5);
                assert!(*done <= 5);
            }
        });
        assert_eq!(started, 5);
        assert_eq!(finished, 5);
    }
}
