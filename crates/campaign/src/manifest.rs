//! Run manifests: what ran, with which seeds, how long, producing what.

use crate::executor::{JobResult, JobStatus, RunConfig};
use fiveg_simcore::hash::{fnv1a64, hex64};
use serde::Serialize;
use std::collections::BTreeMap;
use std::time::Duration;

/// Per-unit performance summary (manifest schema ≥ 2).
///
/// `counters` is the flattened deterministic view of the unit's metrics
/// (see `fiveg_obs::Snapshot::deterministic`) — identical run to run for
/// a fixed seed. `wall_ms` and `events_per_sec` are host measurements
/// and advisory only.
#[derive(Debug, Clone, Serialize)]
pub struct PerfBlock {
    /// Wall time of the unit, milliseconds (advisory).
    pub wall_ms: u64,
    /// Simulation events executed (0 if the job runs no event loop).
    pub events: u64,
    /// Events per wall-clock second (advisory; 0 when unmeasurable).
    pub events_per_sec: u64,
    /// All deterministic counters, sorted by name.
    pub counters: BTreeMap<String, u64>,
}

impl PerfBlock {
    /// Builds the perf row for one successful unit.
    pub fn from_result(r: &JobResult) -> Option<PerfBlock> {
        let snap = r.metrics.as_ref()?;
        let counters = snap.deterministic();
        let events = counters.get("sim.events.executed").copied().unwrap_or(0);
        let wall_ms = r.wall.as_millis() as u64;
        let events_per_sec = if r.wall.as_secs_f64() > 0.0 {
            (events as f64 / r.wall.as_secs_f64()) as u64
        } else {
            0
        };
        Some(PerfBlock {
            wall_ms,
            events,
            events_per_sec,
            counters,
        })
    }
}

/// One work unit's row in the manifest.
#[derive(Debug, Clone, Serialize)]
pub struct ManifestJob {
    /// Job name.
    pub name: String,
    /// Paper section/family.
    pub section: String,
    /// Repetition index.
    pub rep: u32,
    /// Derived seed the unit ran with.
    pub seed: u64,
    /// `"ok"` or `"failed"`.
    pub status: String,
    /// Failure message, when failed.
    pub error: Option<String>,
    /// Attempts consumed.
    pub attempts: u32,
    /// Wall time, milliseconds (informational; varies run to run).
    pub wall_ms: u64,
    /// JSON artifact file name, when produced.
    pub artifact: Option<String>,
    /// FNV-1a fingerprint of the JSON artifact bytes, when produced.
    pub json_hash: Option<String>,
    /// Trace binary artifact file name, when the unit was traced.
    pub trace_artifact: Option<String>,
    /// FNV-1a fingerprint of the trace binary bytes, when produced.
    /// Deterministic for a fixed seed regardless of shard/thread count.
    pub trace_hash: Option<String>,
    /// Performance summary, when the unit succeeded (schema ≥ 2).
    pub perf: Option<PerfBlock>,
}

/// The `manifest.json` document written next to the artifacts.
///
/// Everything except `wall_ms`/`total_wall_ms` is deterministic for a
/// given `(base_seed, fidelity, job set)` — golden checks diff the
/// artifacts themselves and treat the manifest as metadata.
#[derive(Debug, Clone, Serialize)]
pub struct Manifest {
    /// Manifest schema version.
    pub schema: u32,
    /// Base seed of the run.
    pub base_seed: u64,
    /// Fidelity name (`"quick"` / `"paper"`).
    pub fidelity: String,
    /// Worker threads used (informational).
    pub workers: usize,
    /// Total run wall time, milliseconds (informational).
    pub total_wall_ms: u64,
    /// Per-unit rows, in deterministic `(registry, rep)` order.
    pub jobs: Vec<ManifestJob>,
}

impl Manifest {
    /// Builds the manifest for a finished run.
    pub fn from_results(cfg: &RunConfig, results: &[JobResult], wall: Duration) -> Manifest {
        let jobs = results
            .iter()
            .map(|r| {
                let (artifact, json_hash) = match &r.output {
                    Some(out) => (
                        Some(format!("{}.json", r.artifact_stem())),
                        Some(hex64(fnv1a64(out.json.as_bytes()))),
                    ),
                    None => (None, None),
                };
                let (trace_artifact, trace_hash) = match &r.trace {
                    Some(t) => (
                        Some(format!("{}.trace.bin", r.artifact_stem())),
                        Some(hex64(fnv1a64(&t.bin))),
                    ),
                    None => (None, None),
                };
                ManifestJob {
                    name: r.name.clone(),
                    section: r.section.clone(),
                    rep: r.rep,
                    seed: r.seed,
                    status: match &r.status {
                        JobStatus::Ok => "ok".to_string(),
                        JobStatus::Failed(_) => "failed".to_string(),
                    },
                    error: match &r.status {
                        JobStatus::Failed(e) => Some(e.clone()),
                        JobStatus::Ok => None,
                    },
                    attempts: r.attempts,
                    wall_ms: r.wall.as_millis() as u64,
                    artifact,
                    json_hash,
                    trace_artifact,
                    trace_hash,
                    perf: PerfBlock::from_result(r),
                }
            })
            .collect();
        Manifest {
            schema: 2,
            base_seed: cfg.base_seed,
            fidelity: cfg.fidelity.name().to_string(),
            workers: cfg.workers,
            total_wall_ms: wall.as_millis() as u64,
            jobs,
        }
    }

    /// Pretty JSON rendering.
    pub fn to_json(&self) -> String {
        // Serialisation of plain data cannot fail; keep the library
        // panic-free rather than abort a whole campaign on a bug here.
        serde_json::to_string_pretty(self).unwrap_or_else(|_| "{}".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FnJob, JobOutput};
    use crate::registry::Registry;

    #[test]
    fn manifest_rows_mirror_results() {
        let mut reg = Registry::new();
        reg.register(FnJob::new("ok_job", "test", |_| {
            Ok(JobOutput::new("t".into(), "{\"v\":1}".into()))
        }));
        reg.register(FnJob::new("bad_job", "test", |_| Err("boom".into())).with_retry_budget(0));
        let report = crate::run(&reg, &RunConfig::new(5), &mut |_| {});
        let m = &report.manifest;
        assert_eq!(m.schema, 2);
        assert_eq!(m.base_seed, 5);
        assert_eq!(m.jobs.len(), 2);
        let ok = &m.jobs[0];
        assert_eq!(ok.status, "ok");
        assert_eq!(ok.artifact.as_deref(), Some("ok_job.json"));
        assert_eq!(ok.json_hash.as_deref().map(str::len), Some(16));
        let perf = ok.perf.as_ref().expect("successful units carry perf");
        assert_eq!(perf.events, 0, "FnJob runs no event loop");
        let bad = &m.jobs[1];
        assert_eq!(bad.status, "failed");
        assert_eq!(bad.error.as_deref(), Some("boom"));
        assert!(bad.artifact.is_none());
        assert!(bad.perf.is_none());
        let json = m.to_json();
        assert!(json.contains("\"base_seed\": 5"));
    }
}
