//! The job abstraction: what the executor schedules.

use fiveg_simcore::hash::stable_hash_fields;

/// How long/large a job's campaign runs.
///
/// Mirrors `fiveg_core::Fidelity` without depending on it — the
/// orchestration layer sits *below* the experiment facade in the crate
/// DAG, so it owns the CLI-facing knob and `fiveg-core` maps it onto its
/// own type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FidelityLevel {
    /// Short runs for tests, CI and smoke checks.
    Quick,
    /// Paper-methodology scale (60 s flows, full campaigns).
    Paper,
}

impl FidelityLevel {
    /// Stable lowercase name, used in manifests.
    pub fn name(self) -> &'static str {
        match self {
            FidelityLevel::Quick => "quick",
            FidelityLevel::Paper => "paper",
        }
    }
}

/// Everything a job may depend on. Handed to [`Job::run`].
///
/// `seed` is already derived for this `(job, rep)` unit — jobs must draw
/// all randomness from it and nothing else, which is what makes results
/// independent of scheduling.
#[derive(Debug, Clone, Copy)]
pub struct JobCtx {
    /// Derived RNG seed for this unit (see [`derive_seed`]).
    pub seed: u64,
    /// The run's base seed, shared by every job. Jobs that measure one
    /// common deployment (the campus scenario) build it from this, so
    /// all figures describe the *same* campus; job-private randomness
    /// must come from `seed`.
    pub base_seed: u64,
    /// Requested fidelity.
    pub fidelity: FidelityLevel,
    /// Repetition index within the job's seed sweep, `0..reps`.
    pub rep: u32,
}

/// What a job produces: the human-readable rendering and the JSON
/// artifact that golden checks diff.
#[derive(Debug, Clone)]
pub struct JobOutput {
    /// Text rendering (paper-vs-measured table).
    pub text: String,
    /// JSON artifact; must be deterministic for a given [`JobCtx`].
    pub json: String,
}

impl JobOutput {
    /// Bundles the two renderings.
    pub fn new(text: String, json: String) -> JobOutput {
        JobOutput { text, json }
    }
}

/// A schedulable unit of the measurement campaign.
///
/// Implementations must be deterministic functions of the [`JobCtx`]:
/// same ctx, same output bytes. They may panic; the executor isolates
/// panics and charges them against [`Job::retry_budget`].
pub trait Job: Send + Sync {
    /// Unique name, used for seeds, artifact files and `--only` filters.
    fn name(&self) -> &str;

    /// Paper section/family the job belongs to (e.g. `"coverage"`).
    fn section(&self) -> &str;

    /// Number of seed-sweep repetitions; `1` for single-shot jobs.
    fn reps(&self) -> u32 {
        1
    }

    /// How many times a failing unit may be re-attempted (same seed).
    fn retry_budget(&self) -> u32 {
        1
    }

    /// Runs one unit of the job.
    fn run(&self, ctx: &JobCtx) -> Result<JobOutput, String>;
}

/// A [`Job`] built from a plain function pointer plus metadata — the
/// registration currency of `fiveg-core::jobs`.
pub struct FnJob {
    name: &'static str,
    section: &'static str,
    reps: u32,
    retry_budget: u32,
    runner: fn(&JobCtx) -> Result<JobOutput, String>,
}

impl FnJob {
    /// Single-rep job with the default retry budget.
    pub fn new(
        name: &'static str,
        section: &'static str,
        runner: fn(&JobCtx) -> Result<JobOutput, String>,
    ) -> FnJob {
        FnJob {
            name,
            section,
            reps: 1,
            retry_budget: 1,
            runner,
        }
    }

    /// Sets the number of seed-sweep repetitions.
    pub fn with_reps(mut self, reps: u32) -> FnJob {
        assert!(reps >= 1, "a job needs at least one rep");
        self.reps = reps;
        self
    }

    /// Sets the per-unit retry budget.
    pub fn with_retry_budget(mut self, retries: u32) -> FnJob {
        self.retry_budget = retries;
        self
    }
}

impl Job for FnJob {
    fn name(&self) -> &str {
        self.name
    }
    fn section(&self) -> &str {
        self.section
    }
    fn reps(&self) -> u32 {
        self.reps
    }
    fn retry_budget(&self) -> u32 {
        self.retry_budget
    }
    fn run(&self, ctx: &JobCtx) -> Result<JobOutput, String> {
        (self.runner)(ctx)
    }
}

/// Derives the RNG seed for one `(job, rep)` unit.
///
/// Stable-hashes `(base_seed, job_name, rep)` so the seed depends only
/// on identity, never on worker count, scheduling order or registry
/// position — the core determinism guarantee of the executor.
pub fn derive_seed(base_seed: u64, job_name: &str, rep: u32) -> u64 {
    stable_hash_fields(&[
        &base_seed.to_le_bytes(),
        job_name.as_bytes(),
        &rep.to_le_bytes(),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derive_seed_is_stable_and_spreads() {
        assert_eq!(
            derive_seed(2020, "table1", 0),
            derive_seed(2020, "table1", 0)
        );
        assert_ne!(
            derive_seed(2020, "table1", 0),
            derive_seed(2020, "table1", 1)
        );
        assert_ne!(
            derive_seed(2020, "table1", 0),
            derive_seed(2020, "table2", 0)
        );
        assert_ne!(
            derive_seed(2020, "table1", 0),
            derive_seed(2021, "table1", 0)
        );
    }

    #[test]
    fn fn_job_carries_metadata() {
        let j = FnJob::new("x", "sec", |_| {
            Ok(JobOutput::new(String::new(), String::new()))
        })
        .with_reps(3)
        .with_retry_budget(0);
        assert_eq!(j.name(), "x");
        assert_eq!(j.section(), "sec");
        assert_eq!(j.reps(), 3);
        assert_eq!(j.retry_budget(), 0);
    }
}
