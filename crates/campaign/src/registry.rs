//! The job registry: the paper suite as enumerable data.

use crate::job::Job;
use std::sync::Arc;

/// An ordered collection of registered jobs.
///
/// Order is preserved for display and artifact listing; it has no effect
/// on results (seeds derive from job *names*).
#[derive(Default, Clone)]
pub struct Registry {
    jobs: Vec<Arc<dyn Job>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers a job. Panics on duplicate names — artifact files and
    /// derived seeds key off the name, so duplicates would collide.
    pub fn register(&mut self, job: impl Job + 'static) {
        assert!(
            !self.jobs.iter().any(|j| j.name() == job.name()),
            "duplicate job name `{}`",
            job.name()
        );
        self.jobs.push(Arc::new(job));
    }

    /// All jobs, in registration order.
    pub fn jobs(&self) -> &[Arc<dyn Job>] {
        &self.jobs
    }

    /// Number of registered jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Jobs whose name or section contains `filter` (substring match,
    /// the `--only` semantics).
    pub fn matching(&self, filter: &str) -> Vec<Arc<dyn Job>> {
        self.jobs
            .iter()
            .filter(|j| j.name().contains(filter) || j.section().contains(filter))
            .cloned()
            .collect()
    }

    /// `(name, section, reps)` rows for `--list`.
    pub fn describe(&self) -> Vec<(String, String, u32)> {
        self.jobs
            .iter()
            .map(|j| (j.name().to_string(), j.section().to_string(), j.reps()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{FnJob, JobOutput};

    fn noop(name: &'static str, section: &'static str) -> FnJob {
        FnJob::new(name, section, |_| {
            Ok(JobOutput::new(String::new(), String::new()))
        })
    }

    #[test]
    fn registry_preserves_order_and_filters() {
        let mut r = Registry::new();
        r.register(noop("table1", "coverage"));
        r.register(noop("fig7", "throughput"));
        r.register(noop("fig9", "throughput"));
        assert_eq!(r.len(), 3);
        assert_eq!(r.matching("throughput").len(), 2);
        assert_eq!(r.matching("table1").len(), 1);
        assert_eq!(r.matching("nope").len(), 0);
        assert_eq!(r.describe()[0].0, "table1");
    }

    #[test]
    #[should_panic(expected = "duplicate job name")]
    fn duplicate_names_rejected() {
        let mut r = Registry::new();
        r.register(noop("x", "a"));
        r.register(noop("x", "b"));
    }
}
