//! Measurement events and the A3 hand-off trigger.
//!
//! The paper (Sec. 3.4, Tab. 5) observed five event types in the
//! operator's configuration — 21.98 % A1, 0.18 % A2, 67.25 % A3, 9.19 %
//! A5, 1.40 % B1 — but the gNB only *acts* on A3: "the signal quality of
//! the neighboring cell is higher than that of the serving cell for a
//! certain period", formally (paper Eq. 1)
//!
//! ```text
//! Mn + Ofn + Ocn − Hys > Ms + Ofs + Ocs + Off
//! ```
//!
//! sustained for `timeToTrigger`. The operator's parameters, extracted
//! via XCAL: an effective 3 dB RSRQ gap threshold and a 324 ms
//! time-to-trigger.

use fiveg_simcore::{Db, SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// The 3GPP measurement-event taxonomy (paper Tab. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MeasurementEvent {
    /// Serving cell better than a threshold: stop measuring neighbours.
    A1,
    /// Serving cell worse than a threshold: start measuring neighbours.
    A2,
    /// Neighbour better than serving by an offset for a period — the
    /// hand-off trigger.
    A3,
    /// Neighbour better than an absolute threshold.
    A4,
    /// Serving below threshold-1 while neighbour above threshold-2.
    A5,
    /// Inter-RAT neighbour better than a threshold.
    B1,
    /// Serving below threshold-1 while inter-RAT neighbour above
    /// threshold-2.
    B2,
}

impl MeasurementEvent {
    /// Share of each event type among reported events in the paper's
    /// campaign (Sec. 3.4). A4 and B2 were not observed.
    pub fn paper_share(self) -> f64 {
        match self {
            MeasurementEvent::A1 => 0.2198,
            MeasurementEvent::A2 => 0.0018,
            MeasurementEvent::A3 => 0.6725,
            MeasurementEvent::A4 => 0.0,
            MeasurementEvent::A5 => 0.0919,
            MeasurementEvent::B1 => 0.0140,
            MeasurementEvent::B2 => 0.0,
        }
    }

    /// One-line description, as in the paper's Tab. 5.
    pub fn description(self) -> &'static str {
        match self {
            MeasurementEvent::A1 => {
                "serving cell above threshold; UE may stop neighbour measurements"
            }
            MeasurementEvent::A2 => {
                "serving cell below threshold; UE starts neighbour measurements"
            }
            MeasurementEvent::A3 => {
                "neighbour better than serving by an offset for a period (main hand-off trigger)"
            }
            MeasurementEvent::A4 => "neighbour above an absolute threshold",
            MeasurementEvent::A5 => "serving below threshold1 while neighbour above threshold2",
            MeasurementEvent::B1 => "inter-RAT neighbour above a threshold",
            MeasurementEvent::B2 => {
                "serving below threshold1 while inter-RAT neighbour above threshold2"
            }
        }
    }
}

/// A3 trigger configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct A3Config {
    /// Effective neighbour-minus-serving RSRQ gap required, dB
    /// (hysteresis + offsets). Paper: 3 dB for the 5G configuration,
    /// 1 dB for 4G.
    pub gap_db: Db,
    /// How long the condition must hold. Paper: 324 ms.
    pub time_to_trigger: SimDuration,
}

impl A3Config {
    /// The operator's NR configuration from the paper.
    pub fn paper_nr() -> Self {
        A3Config {
            gap_db: Db::new(3.0),
            time_to_trigger: SimDuration::from_millis(324),
        }
    }

    /// The operator's LTE configuration from the paper.
    pub fn paper_lte() -> Self {
        A3Config {
            gap_db: Db::new(1.0),
            time_to_trigger: SimDuration::from_millis(324),
        }
    }
}

/// Stateful A3 evaluator: feed it periodic serving/neighbour quality
/// samples; it reports when the hand-off condition has been sustained
/// for `time_to_trigger`.
#[derive(Debug, Clone)]
pub struct A3Tracker {
    config: A3Config,
    /// Time the condition first became true against the current
    /// candidate, if it is currently true.
    held_since: Option<(u16, SimTime)>,
}

impl A3Tracker {
    /// Creates a tracker.
    pub fn new(config: A3Config) -> Self {
        A3Tracker {
            config,
            held_since: None,
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &A3Config {
        &self.config
    }

    /// Feeds one measurement sample.
    ///
    /// `best_neighbor` is the strongest neighbour `(pci, rsrq)`; returns
    /// `Some(pci)` when the A3 condition against that neighbour has held
    /// for the configured time-to-trigger (the caller then executes the
    /// hand-off and should call [`A3Tracker::reset`]).
    pub fn observe(
        &mut self,
        now: SimTime,
        serving_rsrq: Db,
        best_neighbor: Option<(u16, Db)>,
    ) -> Option<u16> {
        let Some((pci, neigh_rsrq)) = best_neighbor else {
            self.held_since = None;
            return None;
        };
        let condition = neigh_rsrq.value() - serving_rsrq.value() > self.config.gap_db.value();
        if !condition {
            self.held_since = None;
            return None;
        }
        match self.held_since {
            // Condition newly true, or the best candidate changed: the
            // timer restarts (3GPP resets T310-style timers per cell).
            None => {
                self.held_since = Some((pci, now));
                None
            }
            Some((held_pci, _)) if held_pci != pci => {
                self.held_since = Some((pci, now));
                None
            }
            Some((_, since)) => {
                if now.since(since) >= self.config.time_to_trigger {
                    Some(pci)
                } else {
                    None
                }
            }
        }
    }

    /// Clears the hold timer (after a hand-off executes).
    pub fn reset(&mut self) {
        self.held_since = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimTime {
        SimTime::from_millis(v)
    }

    #[test]
    fn paper_shares_sum_to_one() {
        let total: f64 = [
            MeasurementEvent::A1,
            MeasurementEvent::A2,
            MeasurementEvent::A3,
            MeasurementEvent::A4,
            MeasurementEvent::A5,
            MeasurementEvent::B1,
            MeasurementEvent::B2,
        ]
        .iter()
        .map(|e| e.paper_share())
        .sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn a3_triggers_after_time_to_trigger() {
        let mut t = A3Tracker::new(A3Config::paper_nr());
        let serving = Db::new(-15.0);
        let neigh = Some((44, Db::new(-10.0))); // 5 dB better: condition true
        assert_eq!(t.observe(ms(0), serving, neigh), None);
        assert_eq!(t.observe(ms(200), serving, neigh), None);
        // 324 ms not yet reached at 300 ms.
        assert_eq!(t.observe(ms(300), serving, neigh), None);
        assert_eq!(t.observe(ms(324), serving, neigh), Some(44));
    }

    #[test]
    fn a3_resets_when_condition_breaks() {
        let mut t = A3Tracker::new(A3Config::paper_nr());
        let serving = Db::new(-15.0);
        let strong = Some((44, Db::new(-10.0)));
        let weak = Some((44, Db::new(-14.0))); // only 1 dB better: below 3 dB gap
        t.observe(ms(0), serving, strong);
        t.observe(ms(200), serving, weak); // resets
        assert_eq!(t.observe(ms(400), serving, strong), None); // timer restarted
        assert_eq!(t.observe(ms(724), serving, strong), Some(44));
    }

    #[test]
    fn a3_restarts_on_candidate_change() {
        let mut t = A3Tracker::new(A3Config::paper_nr());
        let serving = Db::new(-15.0);
        t.observe(ms(0), serving, Some((44, Db::new(-10.0))));
        // A different neighbour takes over at 200 ms: timer restarts.
        t.observe(ms(200), serving, Some((45, Db::new(-9.0))));
        assert_eq!(t.observe(ms(400), serving, Some((45, Db::new(-9.0)))), None);
        assert_eq!(
            t.observe(ms(524), serving, Some((45, Db::new(-9.0)))),
            Some(45)
        );
    }

    #[test]
    fn a3_gap_is_strict() {
        let mut t = A3Tracker::new(A3Config::paper_nr());
        let serving = Db::new(-15.0);
        // Exactly 3 dB is NOT enough (condition is strict >).
        let exact = Some((44, Db::new(-12.0)));
        t.observe(ms(0), serving, exact);
        assert_eq!(t.observe(ms(1000), serving, exact), None);
    }

    #[test]
    fn no_neighbor_resets() {
        let mut t = A3Tracker::new(A3Config::paper_nr());
        let serving = Db::new(-15.0);
        let neigh = Some((44, Db::new(-10.0)));
        t.observe(ms(0), serving, neigh);
        t.observe(ms(200), serving, None);
        assert_eq!(t.observe(ms(400), serving, neigh), None);
    }

    #[test]
    fn reset_clears_state() {
        let mut t = A3Tracker::new(A3Config::paper_nr());
        let serving = Db::new(-15.0);
        let neigh = Some((44, Db::new(-10.0)));
        t.observe(ms(0), serving, neigh);
        t.reset();
        assert_eq!(t.observe(ms(324), serving, neigh), None);
        assert_eq!(t.observe(ms(648), serving, neigh), Some(44));
    }

    #[test]
    fn lte_config_is_more_eager() {
        assert!(A3Config::paper_lte().gap_db.value() < A3Config::paper_nr().gap_db.value());
    }
}
