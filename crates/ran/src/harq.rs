//! HARQ retransmission ladder.
//!
//! The paper (Sec. 4.2, Fig. 10) verifies that RAN losses never reach the
//! transport layer: the MAC retransmits until success, with a 32-attempt
//! ceiling extracted from PDSCH configuration, and in practice every
//! transport block got through within 4 attempts on 4G and 2 on 5G.
//! That behaviour falls out of link adaptation: the scheduler operates at
//! ≈10 % initial BLER and each retransmission adds combining gain.

use fiveg_phy::mcs;
use fiveg_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// HARQ configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HarqConfig {
    /// Maximum transmission attempts (paper: 32 from PDSCH config).
    pub max_attempts: u32,
    /// SINR gain per retransmission from chase combining, dB. Each
    /// retransmission roughly doubles accumulated energy (≈3 dB).
    pub combining_gain_db: f64,
    /// Round-trip of one HARQ retransmission (grant + retx), per attempt.
    pub retx_delay: SimDuration,
}

impl HarqConfig {
    /// The paper's NR configuration: 32 attempts, 8 HARQ processes on a
    /// 0.5 ms slot → ≈4 ms per retransmission round.
    pub fn paper_nr() -> Self {
        HarqConfig {
            max_attempts: 32,
            combining_gain_db: 3.0,
            retx_delay: SimDuration::from_millis(4),
        }
    }

    /// The paper's LTE configuration: 8 ms HARQ RTT.
    pub fn paper_lte() -> Self {
        HarqConfig {
            max_attempts: 32,
            combining_gain_db: 3.0,
            retx_delay: SimDuration::from_millis(8),
        }
    }
}

/// Result of transmitting one transport block through HARQ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HarqOutcome {
    /// Number of transmission attempts used (1 = first try succeeded).
    pub attempts: u32,
    /// Whether the block was eventually delivered.
    pub delivered: bool,
}

impl HarqOutcome {
    /// Extra MAC-layer delay caused by retransmissions.
    pub fn extra_delay(&self, cfg: &HarqConfig) -> SimDuration {
        SimDuration::from_nanos(
            cfg.retx_delay.as_nanos() * (self.attempts.saturating_sub(1)) as u64,
        )
    }
}

/// Transmits one transport block at the link-adapted MCS for `sinr_db`,
/// drawing per-attempt success from the BLER model with chase-combining
/// gain on retransmissions.
pub fn transmit_block(sinr_db: f64, cfg: &HarqConfig, rng: &mut SimRng) -> HarqOutcome {
    let mcs_idx = mcs::select_mcs(sinr_db);
    let mut attempts = 0;
    while attempts < cfg.max_attempts {
        attempts += 1;
        let effective_sinr = sinr_db + cfg.combining_gain_db * (attempts - 1) as f64;
        let p_fail = mcs::bler(effective_sinr, mcs_idx);
        if !rng.chance(p_fail) {
            let out = HarqOutcome {
                attempts,
                delivered: true,
            };
            record_outcome(&out);
            return out;
        }
    }
    let out = HarqOutcome {
        attempts: cfg.max_attempts,
        delivered: false,
    };
    record_outcome(&out);
    out
}

/// Tries-per-transport-block histogram edges: the paper's Fig. 10 shows
/// everything resolving within 4 attempts; the coarser upper buckets
/// catch pathological channels short of the 32-attempt ceiling.
const HARQ_TRIES_EDGES: [u64; 7] = [1, 2, 3, 4, 8, 16, 32];

/// Records one HARQ outcome into the ambient metrics scope (no-op when
/// no scope is installed — see `fiveg-obs`).
fn record_outcome(out: &HarqOutcome) {
    fiveg_obs::observe("ran.harq.tries", &HARQ_TRIES_EDGES, out.attempts as u64);
    if !out.delivered {
        fiveg_obs::counter_add("ran.harq.exhausted", 1);
    }
}

/// Distribution of HARQ attempt counts over `n` blocks at a given SINR:
/// `result[k]` is the fraction of blocks needing `k + 1` attempts.
pub fn attempts_histogram(sinr_db: f64, cfg: &HarqConfig, n: usize, rng: &mut SimRng) -> Vec<f64> {
    let mut counts = vec![0u64; cfg.max_attempts as usize];
    for _ in 0..n {
        let o = transmit_block(sinr_db, cfg, rng);
        counts[(o.attempts - 1) as usize] += 1;
    }
    counts.iter().map(|&c| c as f64 / n as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_succeeds_about_ninety_percent() {
        // Operate exactly at the MCS requirement → ~10 % initial BLER.
        let mut rng = SimRng::new(1);
        let cfg = HarqConfig::paper_nr();
        // Exactly at a CQI threshold the selected MCS's requirement
        // equals the SINR (no quantisation margin).
        let sinr = fiveg_phy::mcs::CQI_SINR_THRESHOLD_DB[10];
        let h = attempts_histogram(sinr, &cfg, 50_000, &mut rng);
        assert!((h[0] - 0.9).abs() < 0.02, "first-try {}", h[0]);
    }

    #[test]
    fn everything_delivered_within_few_attempts() {
        // Paper Fig. 10: all retransmissions succeed within ≤4 tries,
        // far below the 32 ceiling.
        let mut rng = SimRng::new(2);
        let cfg = HarqConfig::paper_nr();
        let sinr = fiveg_phy::mcs::CQI_SINR_THRESHOLD_DB[10];
        for _ in 0..50_000 {
            let o = transmit_block(sinr, &cfg, &mut rng);
            assert!(o.delivered);
            assert!(o.attempts <= 5, "attempts {}", o.attempts);
        }
    }

    #[test]
    fn good_channel_needs_fewer_retx_than_marginal() {
        let mut rng = SimRng::new(3);
        let cfg = HarqConfig::paper_nr();
        // 2 dB of margin above the MCS-12 operating point vs none.
        let base = fiveg_phy::mcs::mcs_sinr_requirement_db(12);
        let tight = attempts_histogram(base, &cfg, 20_000, &mut rng);
        // CQI quantisation: halfway between MCS-12 and MCS-13 thresholds
        // still selects MCS 12, with extra margin.
        let comfy = attempts_histogram(base + 1.0, &cfg, 20_000, &mut rng);
        assert!(comfy[0] > tight[0], "{} vs {}", comfy[0], tight[0]);
    }

    #[test]
    fn retx_delay_accounting() {
        let cfg = HarqConfig::paper_nr();
        let first_try = HarqOutcome {
            attempts: 1,
            delivered: true,
        };
        assert_eq!(first_try.extra_delay(&cfg), SimDuration::ZERO);
        let third_try = HarqOutcome {
            attempts: 3,
            delivered: true,
        };
        assert_eq!(third_try.extra_delay(&cfg), SimDuration::from_millis(8));
    }

    #[test]
    fn ceiling_respected_in_hopeless_channel() {
        // Force a hopeless channel by lying about SINR to the BLER model:
        // pick the highest MCS at an SINR 40 dB below requirement — even
        // combining gain cannot rescue early attempts, but 32 × 3 dB
        // eventually can, so just check the ceiling is honoured.
        let cfg = HarqConfig {
            max_attempts: 4,
            combining_gain_db: 0.0,
            retx_delay: SimDuration::from_millis(4),
        };
        let mut rng = SimRng::new(4);
        let mut failed = 0;
        for _ in 0..1_000 {
            // select_mcs(-40) = MCS 0, so force the scenario via a config
            // with zero combining gain at an SINR below MCS-0 threshold.
            let o = transmit_block(-12.0, &cfg, &mut rng);
            assert!(o.attempts <= 4);
            if !o.delivered {
                failed += 1;
            }
        }
        assert!(failed > 0, "expected some blocks to exhaust the ceiling");
    }

    #[test]
    fn histogram_sums_to_one() {
        let mut rng = SimRng::new(5);
        let cfg = HarqConfig::paper_lte();
        let h = attempts_histogram(10.0, &cfg, 10_000, &mut rng);
        let total: f64 = h.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
