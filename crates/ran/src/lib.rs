//! # fiveg-ran
//!
//! Cellular control-plane substrate: everything between the physical
//! layer (`fiveg-phy`) and the packet network (`fiveg-net`).
//!
//! * [`events`] — the 3GPP measurement-event taxonomy (A1–A5, B1/B2,
//!   paper Tab. 5) and the A3 evaluator with hysteresis and
//!   time-to-trigger that the paper found to drive all hand-offs.
//! * [`signaling`] — the NSA hand-off signalling procedures reverse-
//!   engineered in the paper's Appendix A, with per-step latency models
//!   calibrated to Fig. 6 (4G-4G ≈30 ms, 4G-5G ≈80 ms, 5G-5G ≈108 ms).
//! * [`handoff`] — the hand-off campaign simulator: drives an NSA UE
//!   along a mobility trace, evaluates measurement events, executes
//!   hand-offs and records the event log the paper's Figs. 4/5/6/12 are
//!   drawn from.
//! * [`harq`] — MAC-layer HARQ retransmission ladder (Fig. 10) with the
//!   32-attempt ceiling the paper extracted from PDSCH configuration.
//! * [`prb`] — PRB allocation under time-of-day contention (Sec. 4.1:
//!   5G users get essentially all PRBs around the clock; 4G users get
//!   40–85 of 100 by day, 95–100 at night).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
pub mod handoff;
pub mod harq;
pub mod prb;
pub mod signaling;

pub use events::{A3Config, A3Tracker, MeasurementEvent};
pub use handoff::{HandoffCampaign, HandoffKind, HandoffRecord, NsaUe};
pub use harq::{HarqConfig, HarqOutcome};
pub use prb::{DayPeriod, PrbAllocator};
pub use signaling::{handoff_latency, HandoffProcedure, SignalingStep};
