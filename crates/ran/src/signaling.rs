//! NSA hand-off signalling procedures and their latency.
//!
//! The paper reverse-engineered the NSA hand-off message sequence from
//! XCAL traces (Appendix A, Fig. 24): under NSA the 5G NR leg has no
//! control plane of its own, so a 5G→5G hand-off must (i) release the
//! current NR resource, (ii) perform an LTE hand-off between the master
//! eNBs, and (iii) re-add NR resources on the target — which is why it
//! takes 108.4 ms on average versus 30.1 ms for a plain 4G→4G hand-off
//! (Fig. 6).
//!
//! Each procedure is a list of [`SignalingStep`]s with per-step latency
//! distributions; the step means sum to the paper's Fig. 6 averages.

use fiveg_simcore::dist::Dist;
use fiveg_simcore::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// One signalling exchange within a hand-off procedure.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SignalingStep {
    /// Message / phase name (as in the paper's Fig. 24).
    pub name: &'static str,
    /// Latency distribution, milliseconds.
    pub latency_ms: Dist,
}

impl SignalingStep {
    fn new(name: &'static str, mean_ms: f64, std_ms: f64) -> Self {
        SignalingStep {
            name,
            latency_ms: Dist::NormalClamped {
                mean: mean_ms,
                std_dev: std_ms,
                min: 0.5,
            },
        }
    }
}

/// A hand-off procedure: an ordered list of signalling steps.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HandoffProcedure {
    /// Procedure name.
    pub name: &'static str,
    /// The steps, in execution order.
    pub steps: Vec<SignalingStep>,
}

impl HandoffProcedure {
    /// Plain LTE hand-off (4G→4G): measurement report → decision/
    /// admission → RRC reconfiguration → RACH on the target. Mean
    /// ≈30.1 ms (paper Fig. 6).
    pub fn lte_to_lte() -> Self {
        HandoffProcedure {
            name: "4G-4G",
            steps: vec![
                SignalingStep::new("measurement report processing", 4.0, 1.0),
                SignalingStep::new("HO decision + admission control", 8.1, 2.0),
                SignalingStep::new("RRC connection reconfiguration", 10.0, 2.5),
                SignalingStep::new("random access on target eNB", 8.0, 2.0),
            ],
        }
    }

    /// NSA NR hand-off (5G→5G): release the NR leg, hand the LTE anchor
    /// over, then re-add NR on the target (LTE MAC RACH trigger → ... →
    /// NR MAC RACH Attempt SUCCESS). Mean ≈108.4 ms.
    pub fn nr_to_nr() -> Self {
        let mut steps = vec![SignalingStep::new(
            "NR resource release to master eNB",
            12.0,
            3.0,
        )];
        steps.extend(Self::lte_to_lte().steps); // anchor hand-off, 30.1 ms
        steps.extend(vec![
            SignalingStep::new("SgNB addition request + ACK", 14.3, 3.0),
            SignalingStep::new("RRC reconfiguration (NR config)", 18.0, 4.0),
            SignalingStep::new("SN status transfer + path update", 18.0, 4.0),
            SignalingStep::new("NR random access (RACH attempt)", 16.0, 4.0),
        ]);
        HandoffProcedure {
            name: "5G-5G",
            steps,
        }
    }

    /// Vertical hand-off into 5G (4G→5G): SgNB addition on the current
    /// master eNB, no anchor hand-off. Mean ≈80.2 ms.
    pub fn lte_to_nr() -> Self {
        HandoffProcedure {
            name: "4G-5G",
            steps: vec![
                SignalingStep::new("B1 measurement report processing", 8.0, 2.0),
                SignalingStep::new("SgNB addition request + ACK", 14.2, 3.0),
                SignalingStep::new("RRC reconfiguration (NR config)", 18.0, 4.0),
                SignalingStep::new("NR random access (RACH attempt)", 16.0, 4.0),
                SignalingStep::new("link synchronization + path update", 24.0, 5.0),
            ],
        }
    }

    /// Vertical hand-off out of 5G (5G→4G): NR leg release and data-path
    /// rollback onto the LTE anchor.
    pub fn nr_to_lte() -> Self {
        HandoffProcedure {
            name: "5G-4G",
            steps: vec![
                SignalingStep::new("NR measurement report processing", 5.0, 1.5),
                SignalingStep::new("SgNB release request", 10.0, 2.5),
                SignalingStep::new("RRC reconfiguration (drop NR leg)", 12.0, 3.0),
                SignalingStep::new("data path rollback to eNB", 8.0, 2.0),
            ],
        }
    }

    /// Mean total latency (sum of step means), milliseconds.
    pub fn mean_latency_ms(&self) -> f64 {
        self.steps.iter().map(|s| s.latency_ms.mean()).sum()
    }

    /// Samples a total latency for one execution.
    pub fn sample_latency(&self, rng: &mut SimRng) -> SimDuration {
        let ms: f64 = self.steps.iter().map(|s| s.latency_ms.sample(rng)).sum();
        SimDuration::from_millis_f64(ms)
    }
}

/// Convenience: samples the latency of the procedure matching a
/// `(from_is_nr, to_is_nr)` pair.
pub fn handoff_latency(from_nr: bool, to_nr: bool, rng: &mut SimRng) -> SimDuration {
    let proc = match (from_nr, to_nr) {
        (false, false) => HandoffProcedure::lte_to_lte(),
        (true, true) => HandoffProcedure::nr_to_nr(),
        (false, true) => HandoffProcedure::lte_to_nr(),
        (true, false) => HandoffProcedure::nr_to_lte(),
    };
    proc.sample_latency(rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fiveg_simcore::OnlineStats;

    #[test]
    fn means_match_figure6() {
        assert!((HandoffProcedure::lte_to_lte().mean_latency_ms() - 30.1).abs() < 0.5);
        assert!((HandoffProcedure::nr_to_nr().mean_latency_ms() - 108.4).abs() < 1.0);
        assert!((HandoffProcedure::lte_to_nr().mean_latency_ms() - 80.2).abs() < 0.5);
    }

    #[test]
    fn nsa_ordering_holds() {
        // 5G-5G > 4G-5G > 4G-4G — the paper's key NSA finding.
        let l44 = HandoffProcedure::lte_to_lte().mean_latency_ms();
        let l45 = HandoffProcedure::lte_to_nr().mean_latency_ms();
        let l55 = HandoffProcedure::nr_to_nr().mean_latency_ms();
        assert!(l55 > l45 && l45 > l44);
    }

    #[test]
    fn nr_handoff_contains_full_lte_handoff() {
        // The NSA architecture forces the anchor hand-off inside every
        // 5G-5G hand-off.
        let nr = HandoffProcedure::nr_to_nr();
        let lte = HandoffProcedure::lte_to_lte();
        for step in &lte.steps {
            assert!(
                nr.steps.iter().any(|s| s.name == step.name),
                "missing {}",
                step.name
            );
        }
    }

    #[test]
    fn sampled_latency_statistics() {
        let mut rng = SimRng::new(5);
        let proc = HandoffProcedure::nr_to_nr();
        let mut s = OnlineStats::new();
        for _ in 0..5_000 {
            s.push(proc.sample_latency(&mut rng).as_millis_f64());
        }
        assert!((s.mean() - 108.4).abs() < 1.0, "mean {}", s.mean());
        assert!(s.min() > 40.0, "min {}", s.min());
        assert!(
            s.std_dev() > 4.0 && s.std_dev() < 20.0,
            "std {}",
            s.std_dev()
        );
    }

    #[test]
    fn latency_helper_dispatches() {
        let mut rng = SimRng::new(9);
        let mut mean = |f, t| {
            let mut s = OnlineStats::new();
            for _ in 0..2_000 {
                s.push(handoff_latency(f, t, &mut rng).as_millis_f64());
            }
            s.mean()
        };
        assert!(mean(true, true) > mean(false, true));
        assert!(mean(false, true) > mean(false, false));
        assert!(mean(true, false) < mean(false, true));
    }
}
